//! # multiclass-ldp
//!
//! A from-scratch Rust implementation of *Multi-class Item Mining under
//! Local Differential Privacy* (ICDE 2025): frameworks (HEC / PTJ / PTS),
//! the validity and correlated perturbation mechanisms, multi-class
//! frequency estimation and top-k item mining, plus the frequency-oracle
//! substrate, dataset generators and evaluation metrics used by the paper's
//! experiments.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! paths. See the member crates for details:
//!
//! * [`oracles`] — GRR, SUE/OUE, OLH, adaptive selection, budgets, bitvecs,
//!   and the [`Exec`](oracles::exec::Exec) execution-plan API every
//!   pipeline's `execute` entry point takes.
//! * [`core`] — domains, frameworks, validity/correlated perturbation,
//!   estimators (Eqs. 4 and 6), utility analysis (Theorems 4–10, Table I).
//! * [`topk`] — PEM, the shuffling scheme, Algorithms 1 & 2.
//! * [`dist`] — the multi-process distributed reducer: a socket-backed
//!   [`Coordinator`](dist::Coordinator) executor plus the worker runtime
//!   behind `mcim worker`, bit-identical to in-process execution.
//! * [`datasets`] — SYN1–SYN4 and simulated real-world workloads.
//! * [`metrics`] — RMSE, F1@k, NCR@k, PMI.
//! * [`obs`] — deterministic telemetry: the metrics registry, stage/fold
//!   spans behind an injectable clock, Prometheus/JSON export. Collection
//!   is off unless enabled and never changes estimates.
//!
//! ## Quickstart
//!
//! ```
//! use multiclass_ldp::prelude::*;
//!
//! // Each of 60k users holds one (class, item) pair.
//! let domains = Domains::new(2, 32)?;
//! let data: Vec<LabelItem> = (0..60_000)
//!     .map(|u| LabelItem::new((u % 2) as u32, ((u * 17) % 32) as u32))
//!     .collect();
//!
//! // Estimate every class's item histogram under ε = 2 with the paper's
//! // correlated perturbation (PTS-CP). The `Exec` plan carries the seed
//! // and the execution knobs; threads and chunk size never change the
//! // estimates, only the wall clock and memory.
//! let plan = Exec::seeded(1).threads(4);
//! let result = Framework::PtsCp { label_frac: 0.5 }
//!     .execute(Eps::new(2.0)?, domains, &plan, SliceSource::new(&data))?;
//! assert_eq!(result.table.domains().classes(), 2);
//! # Ok::<(), multiclass_ldp::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mcim_core as core;
pub use mcim_datasets as datasets;
pub use mcim_dist as dist;
pub use mcim_metrics as metrics;
pub use mcim_obs as obs;
pub use mcim_oracles as oracles;
pub use mcim_topk as topk;

pub use mcim_oracles::{Eps, Error, Result};

/// Everything a typical application needs.
pub mod prelude {
    pub use mcim_core::{
        CorrelatedPerturbation, CpAggregator, Domains, Framework, FrequencyTable, LabelItem,
        ValidityInput, ValidityPerturbation, VpAggregator,
    };
    pub use mcim_dist::Coordinator;
    pub use mcim_metrics::{f1_at_k, ncr_at_k, rmse};
    pub use mcim_oracles::exec::{Exec, ExecMode, Executor, InProcess};
    pub use mcim_oracles::stream::{ReportSource, SliceSource, StreamConfig};
    pub use mcim_oracles::{
        exec, parallel, stream, Aggregator, ColumnCounter, Eps, Error, Oracle, Result,
    };
    pub use mcim_topk::{execute, execute_on, TopKConfig, TopKMethod, TopKResult};
}
