//! Side-by-side comparison of every framework and mechanism in the paper
//! on one dataset: frequency-estimation RMSE, top-k utility, and the
//! communication each method pays.
//!
//! A compressed, single-binary version of the paper's evaluation — useful
//! as a template for picking a method for your own deployment.
//!
//! Run: `cargo run --release --example framework_comparison`

use mcim_datasets::{anime_like, RealConfig};
use multiclass_ldp::prelude::*;

fn main() -> Result<()> {
    let ds = anime_like(RealConfig {
        users: 150_000,
        items: 1024,
        seed: 21,
    });
    let truth_table = ds.ground_truth();
    let eps = Eps::new(4.0)?;

    println!(
        "Anime-like workload: N = {}, c = 2, d = {}, ε = {}\n",
        ds.len(),
        ds.domains.items(),
        eps.value()
    );

    // ---- Frequency estimation: the four frameworks of Fig. 6. ----------
    println!("Frequency estimation (lower RMSE is better):");
    println!("framework | RMSE    | uplink bits/user");
    println!("----------+---------+-----------------");
    for (i, fw) in Framework::fig6_set().into_iter().enumerate() {
        let plan = Exec::seeded(31 + i as u64);
        let result = fw.execute(eps, ds.domains, &plan, SliceSource::new(&ds.pairs))?;
        println!(
            "{:>9} | {:>7.1} | {:>10.0}",
            fw.name(),
            rmse(result.table.values(), truth_table.values()),
            result.comm.bits_per_user()
        );
    }

    // ---- Top-k mining: the five methods of Fig. 7. ----------------------
    let k = 15;
    let truth = ds.true_top_k(k);
    let config = TopKConfig::new(k, eps);
    println!("\nTop-{k} mining (higher is better):");
    println!("method              | F1    | NCR   | uplink b/u | downlink b/u");
    println!("--------------------+-------+-------+------------+-------------");
    for (i, method) in TopKMethod::fig7_set().into_iter().enumerate() {
        let plan = Exec::seeded(41 + i as u64);
        let result = execute(
            method,
            config,
            ds.domains,
            &plan,
            SliceSource::new(&ds.pairs),
        )?;
        let f1 = (0..2)
            .map(|c| f1_at_k(&result.per_class[c], &truth[c]))
            .sum::<f64>()
            / 2.0;
        let ncr = (0..2)
            .map(|c| ncr_at_k(&result.per_class[c], &truth[c]))
            .sum::<f64>()
            / 2.0;
        println!(
            "{:<19} | {f1:>5.2} | {ncr:>5.2} | {:>10.0} | {:>11.0}",
            method.name(),
            result.comm.bits_per_user(),
            result.broadcast_bits_per_user
        );
    }
    println!(
        "\nReading guide: PTJ buys utility with c× the uplink; the optimized\n\
         (+Shuffling+VP/+CP) variants improve utility at a fraction of the\n\
         baseline downlink — the trade-offs of §V-C and Table II."
    );
    Ok(())
}
