//! Patients' data for disease diagnosis — the paper's second motivating
//! application (§I): collect classwise feature statistics (healthy vs
//! diabetic) for model training without a trusted aggregator.
//!
//! Users are partitioned into feature groups (the paper's Diabetes setup);
//! each group estimates its feature's label-value histogram under LDP. We
//! then inspect how well the private statistics separate the two classes —
//! the signal a decision-tree trainer would consume.
//!
//! Run: `cargo run --release --example medical_diagnosis`

use mcim_datasets::{diabetes_like, RealConfig};
use multiclass_ldp::prelude::*;

fn main() -> Result<()> {
    let ds = diabetes_like(RealConfig {
        users: 120_000,
        items: 0,
        seed: 11,
    });
    let eps = Eps::new(2.0)?;

    println!(
        "Diabetes-like workload: {} users over {} feature groups, ε = {}\n",
        ds.len(),
        ds.groups.len(),
        eps.value()
    );
    println!("feature (domain) | RMSE PTS-CP | healthy mean | diabetic mean (private est.)");
    println!("-----------------+-------------+--------------+-----------------------------");
    for (g, group) in ds.groups.iter().enumerate() {
        let truth = group.ground_truth();
        let plan = Exec::seeded(13 + g as u64);
        let result = Framework::PtsCp { label_frac: 0.5 }.execute(
            eps,
            group.domains,
            &plan,
            SliceSource::new(&group.pairs),
        )?;
        let err = rmse(result.table.values(), truth.values());

        // Classwise mean feature value from the *private* histogram — the
        // statistic a diagnosis model would train on.
        let private_mean = |label: u32| -> f64 {
            let row = result.table.class_row(label);
            let total: f64 = row.iter().map(|v| v.max(0.0)).sum();
            if total <= 0.0 {
                return f64::NAN;
            }
            row.iter()
                .enumerate()
                .map(|(v, c)| v as f64 * c.max(0.0))
                .sum::<f64>()
                / total
        };
        println!(
            "{:>16} | {err:>11.1} | {:>12.2} | {:>12.2}",
            group.name.split('/').next_back().unwrap_or(&group.name),
            private_mean(0),
            private_mean(1),
        );
    }
    println!(
        "\nThe generator shifts diabetic feature values upward; at ε = 2 the\n\
         private classwise means recover that shift where the per-class\n\
         signal is strong (binary and large-domain features) and drown it\n\
         in noise elsewhere — the fine-grained signal classwise statistics\n\
         buy, and the utility ceiling LDP imposes on it. Raise ε or N to\n\
         watch the remaining features separate."
    );
    Ok(())
}
