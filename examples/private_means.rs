//! Classwise **numerical** statistics under LDP — the paper's stated future
//! work (§IX), implemented with the same correlated-perturbation idea as
//! the categorical pipeline.
//!
//! Scenario: users report a satisfaction score in [-1, 1] together with a
//! sensitive segment label. The server wants each segment's mean score.
//! We compare the PTS recipe (independent label/value perturbation with a
//! cross-class correction) against the CP recipe (value validity tied to
//! the label's survival), at two budgets.
//!
//! Run: `cargo run --release --example private_means`

use multiclass_ldp::core::{LabelValue, MeanAggregator, MeanCp, MeanPts, NumericMechanism};
use multiclass_ldp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEGMENTS: [&str; 4] = ["new users", "regulars", "power users", "churning"];
const TRUE_CENTERS: [f64; 4] = [0.15, 0.45, 0.70, -0.55];

fn main() -> Result<()> {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 400_000;
    let data: Vec<LabelValue> = (0..n)
        .map(|_| {
            let label = rng.random_range(0..4u32);
            let value: f64 =
                (TRUE_CENTERS[label as usize] + rng.random_range(-0.3..0.3)).clamp(-1.0, 1.0);
            LabelValue::new(label, value)
        })
        .collect();

    // Ground truth for comparison.
    let mut sums = [0.0f64; 4];
    let mut counts = [0.0f64; 4];
    for lv in &data {
        sums[lv.label as usize] += lv.value;
        counts[lv.label as usize] += 1.0;
    }

    for eps_v in [1.0, 4.0] {
        let eps = Eps::new(eps_v)?;
        let pts = MeanPts::with_total(eps, 4, NumericMechanism::Piecewise)?;
        let cp = MeanCp::with_total(eps, 4, NumericMechanism::Piecewise)?;
        let mut pts_agg = MeanAggregator::for_pts(&pts);
        let mut cp_agg = MeanAggregator::for_cp(&cp);
        for lv in &data {
            pts_agg.absorb(&pts.privatize(*lv, &mut rng)?)?;
            cp_agg.absorb(&cp.privatize(*lv, &mut rng)?)?;
        }
        println!("=== ε = {eps_v}, N = {n} ===");
        println!("segment      | true mean | PTS est | CP est");
        println!("-------------+-----------+---------+-------");
        for (c, name) in SEGMENTS.iter().enumerate() {
            let truth = sums[c] / counts[c];
            println!(
                "{name:<12} | {truth:>9.3} | {:>7.3} | {:>6.3}",
                pts_agg.estimate_mean(c as u32).unwrap_or(f64::NAN),
                cp_agg.estimate_mean(c as u32).unwrap_or(f64::NAN),
            );
        }
        println!();
    }
    println!(
        "Both estimators are unbiased; CP spends part of its budget on a\n\
         validity flag but needs no cross-class correction term, which pays\n\
         off when segments have strongly opposed values (the churning\n\
         segment stays clearly negative even at ε = 1)."
    );
    Ok(())
}
