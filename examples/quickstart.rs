//! Quickstart: multi-class frequency estimation under LDP in ~50 lines.
//!
//! Scenario: 100,000 users each hold one (class, item) pair. We estimate
//! every class's item histogram with the paper's best-utility low-cost
//! method — PTS with correlated perturbation (Eq. 4 calibration) — and
//! compare against the ground truth.
//!
//! Run: `cargo run --release --example quickstart`

use multiclass_ldp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let mut rng = StdRng::seed_from_u64(2025);

    // 3 classes, 50 items. Each class prefers a different item region.
    let domains = Domains::new(3, 50)?;
    let data: Vec<LabelItem> = (0..100_000)
        .map(|_| {
            let label = rng.random_range(0..3);
            let item = (label * 15 + rng.random_range(0..8) + rng.random_range(0..8)) % 50;
            LabelItem::new(label, item)
        })
        .collect();
    let truth = FrequencyTable::ground_truth(domains, &data)?;

    // Privacy budget ε = 2, split evenly between label and item (the
    // paper's default). The `Exec` plan carries the seed and execution
    // knobs; results are bit-identical for every thread count.
    let eps = Eps::new(2.0)?;
    let plan = Exec::seeded(2025);
    let result = Framework::PtsCp { label_frac: 0.5 }.execute(
        eps,
        domains,
        &plan,
        SliceSource::new(&data),
    )?;

    println!("PTS-CP frequency estimation, ε = 2, N = {}", data.len());
    println!("uplink: {:.0} bits/user\n", result.comm.bits_per_user());
    println!("class | top item (true) | est. count | true count");
    println!("------+-----------------+------------+-----------");
    for class in 0..3 {
        let top = truth.top_k(class, 1)[0];
        println!(
            "{class:>5} | {top:>15} | {est:>10.0} | {tru:>10.0}",
            est = result.table.get(class, top),
            tru = truth.get(class, top),
        );
    }

    let err = rmse(result.table.values(), truth.values());
    println!("\nRMSE over all {} cells: {err:.1}", truth.values().len());
    Ok(())
}
