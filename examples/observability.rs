//! Observability end to end: run a pipeline with the `mcim_obs` registry
//! recording, print the `--verbose`-style summary table, export the
//! Prometheus text exposition, and validate it with the same golden
//! parser CI uses on `--metrics-out` files.
//!
//! Collection is off by default and never changes estimates — the run
//! below is bit-identical with `set_enabled(true)` removed (the
//! equivalence net in `tests/obs_equivalence.rs` pins exactly that).
//!
//! Run: `cargo run --release --example observability`
//! (writes `target/observability.prom`; CI runs this as its exposition
//! validation step.)

use multiclass_ldp::obs;
use multiclass_ldp::prelude::*;

fn main() -> Result<()> {
    let domains = Domains::new(4, 256)?;
    let data: Vec<LabelItem> = (0..200_000)
        .map(|u| LabelItem::new((u % 4) as u32, ((u * 7919) % 256) as u32))
        .collect();

    // Everything between enable and snapshot is recorded: pipeline and
    // stage spans, fold/chunk/report counters.
    obs::reset();
    obs::set_enabled(true);
    let plan = Exec::seeded(7).threads(4);
    let result = Framework::PtsCp { label_frac: 0.5 }.execute(
        Eps::new(2.0)?,
        domains,
        &plan,
        SliceSource::new(&data),
    )?;
    obs::set_enabled(false);
    let snap = obs::snapshot();
    obs::reset();

    println!(
        "PTS-CP over {} users (c = {}, d = {}): {:.1} report bits/user\n",
        data.len(),
        domains.classes(),
        domains.items(),
        result.comm.bits_per_user()
    );
    print!("{}", snap.render_table());

    // Export the exposition and validate it with the golden parser — the
    // exact check CI applies to `mcim … --metrics-out` output.
    let text = snap.to_prometheus();
    let path = std::path::Path::new("target").join("observability.prom");
    std::fs::create_dir_all("target").expect("creating target/");
    std::fs::write(&path, &text).expect("writing exposition");
    let samples = obs::parse_prometheus(&text).expect("exposition must satisfy the golden parser");
    assert!(
        samples.iter().any(|s| s.name == "mcim_folds_total"),
        "fold counters missing from the exposition"
    );
    println!(
        "\nwrote {} ({} samples, golden parser: ok)",
        path.display(),
        samples.len()
    );
    Ok(())
}
