//! Shopping preference across user groups — the paper's first motivating
//! application (§I): a recommendation system wants each **age group's** top
//! products, but purchase records are sensitive, so everything is collected
//! under ε-LDP.
//!
//! We simulate a JD-style sales workload (5 age groups with heavily
//! imbalanced sizes, shared global bestsellers plus group-specific
//! preferences) and mine the per-group top-10 with the paper's optimized
//! pipeline (Algorithms 1 & 2: global candidates → shuffled pruning →
//! validity/correlated perturbation), comparing it with the HEC strawman.
//!
//! Run: `cargo run --release --example shopping_recommendation`

use mcim_datasets::{jd_like, RealConfig};
use multiclass_ldp::prelude::*;

const AGE_GROUPS: [&str; 5] = ["<25", "26-35", "36-45", "46-55", "56+"];

fn main() -> Result<()> {
    let ds = jd_like(RealConfig {
        users: 250_000,
        items: 2048,
        seed: 7,
    });
    let k = 10;
    let truth = ds.true_top_k(k);
    let eps = Eps::new(4.0)?;
    let config = TopKConfig::new(k, eps);

    println!(
        "JD-like workload: N = {}, {} products, 5 age groups, ε = {}",
        ds.len(),
        ds.domains.items(),
        eps.value()
    );
    let sizes = ds.class_sizes();

    for (i, (name, method)) in [
        ("HEC strawman", TopKMethod::Hec),
        (
            "PTS-Shuffling+VP+CP (paper)",
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true,
            },
        ),
    ]
    .into_iter()
    .enumerate()
    {
        let plan = Exec::seeded(99 + i as u64);
        let result = execute(
            method,
            config,
            ds.domains,
            &plan,
            SliceSource::new(&ds.pairs),
        )?;
        println!("\n=== {name} ===");
        println!("group | users   | F1@10 | NCR@10 | top-3 mined products");
        println!("------+---------+-------+--------+---------------------");
        for g in 0..5usize {
            let f1 = f1_at_k(&result.per_class[g], &truth[g]);
            let ncr = ncr_at_k(&result.per_class[g], &truth[g]);
            let top3: Vec<String> = result.per_class[g]
                .iter()
                .take(3)
                .map(|i| format!("#{i}"))
                .collect();
            println!(
                "{:>5} | {:>7} | {f1:>5.2} | {ncr:>6.2} | {}",
                AGE_GROUPS[g],
                sizes[g],
                top3.join(", ")
            );
        }
        println!(
            "uplink {:.0} bits/user, downlink {:.0} bits/user",
            result.comm.bits_per_user(),
            result.broadcast_bits_per_user
        );
    }
    println!(
        "\nNote the small 46-55 and 56+ groups: the optimized pipeline keeps\n\
         mining them (global candidates + validity flags), where the\n\
         strawman mostly returns noise — the paper's Fig. 8 phenomenon."
    );
    Ok(())
}
