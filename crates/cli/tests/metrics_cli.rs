//! End-to-end checks of the CLI's telemetry surface: `--metrics-out`
//! files must parse under the same strict Prometheus/JSON grammar the
//! golden tests pin, `--verbose` must print the snapshot table (the one
//! rendering path for stage timings and the distributed fold report),
//! and none of it may perturb results. The CLI runs as a real
//! subprocess so stderr/stdout are observed exactly as a user sees them.

use std::path::PathBuf;
use std::process::Command;

fn mcim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mcim"))
        .args(args)
        .output()
        .expect("running the mcim binary")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("mcim-metrics-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

/// A small generated dataset shared by the tests below.
fn dataset(name: &str) -> String {
    let pairs = tmp(name);
    let gen = mcim(&[
        "gen",
        "--dataset",
        "syn3",
        "--users",
        "9000",
        "--items",
        "64",
        "--classes",
        "3",
        "--output",
        &pairs,
    ]);
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );
    pairs
}

#[test]
fn metrics_out_writes_parseable_prometheus_text() {
    let pairs = dataset("prom_pairs.csv");
    let metrics = tmp("freq_metrics.prom");
    let out = mcim(&[
        "freq",
        "--input",
        &pairs,
        "--eps",
        "2.0",
        "--seed",
        "5",
        "--metrics-out",
        &metrics,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&metrics).unwrap();
    let samples = mcim_obs::parse_prometheus(&text).expect("strict Prometheus grammar");
    let value = |name: &str| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
            .value
            .parse()
            .expect("numeric sample value")
    };
    // One fold per stage of the PTS-CP pipeline, each chunk and report
    // accounted for (PTS splits users into a label and an item report).
    assert!(value("mcim_folds_total") >= 1.0);
    // Each of the pipeline's folds walks all 9000 pairs.
    assert!(value("mcim_fold_reports_total") >= 9000.0);
    assert_eq!(
        value("mcim_fold_reports_total") % 9000.0,
        0.0,
        "fold report totals must be whole passes over the input"
    );
    assert!(value("mcim_fold_chunks_total") >= 1.0);
    assert!(samples
        .iter()
        .any(|s| s.name == "mcim_pipeline_runs_total" && s.labels.contains("pipeline=\"PTS-CP\"")));
    // Histogram families expose their full bucket layout.
    assert!(samples
        .iter()
        .any(|s| s.name == "mcim_fold_duration_seconds_bucket"));
    assert!(samples
        .iter()
        .any(|s| s.name == "mcim_stage_duration_seconds_count"));
}

#[test]
fn metrics_out_json_envelope_and_results_unperturbed() {
    let pairs = dataset("json_pairs.csv");
    let metrics = tmp("freq_metrics.json");
    let with = tmp("freq_with_metrics.csv");
    let without = tmp("freq_without_metrics.csv");

    let run = mcim(&[
        "freq", "--input", &pairs, "--eps", "2.0", "--seed", "5", "--output", &without,
    ]);
    assert!(run.status.success());
    let run = mcim(&[
        "freq",
        "--input",
        &pairs,
        "--eps",
        "2.0",
        "--seed",
        "5",
        "--output",
        &with,
        "--metrics-out",
        &metrics,
    ]);
    assert!(run.status.success());
    assert_eq!(
        std::fs::read_to_string(&without).unwrap(),
        std::fs::read_to_string(&with).unwrap(),
        "metrics collection must never change estimates"
    );

    let body = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        body.starts_with("{\"mcim_obs\":1,"),
        "envelope marker: {body}"
    );
    assert!(body.ends_with('\n'));
    assert!(body.contains("\"counters\""), "{body}");
    assert!(body.contains("\"mcim_folds_total\":"), "{body}");
    assert!(body.contains("\"bounds_micros\":[100,"), "{body}");
}

#[test]
fn verbose_prints_the_snapshot_table() {
    let pairs = dataset("table_pairs.csv");
    let out = mcim(&[
        "topk",
        "--input",
        &pairs,
        "--eps",
        "4.0",
        "--k",
        "3",
        "--seed",
        "5",
        "--method",
        "pts",
        "--verbose",
        "--output",
        &tmp("table_topk.csv"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);

    // Header row, then `metric  value` rows the table promises.
    let header = stderr
        .lines()
        .position(|l| l.starts_with("metric") && l.trim_end().ends_with("value"))
        .unwrap_or_else(|| panic!("no snapshot table header in stderr:\n{stderr}"));
    let rows: Vec<&str> = stderr.lines().skip(header + 1).collect();
    assert!(
        rows.iter().any(|r| r.starts_with("mcim_pem_rounds_total")),
        "PEM round counter missing from table:\n{stderr}"
    );
    assert!(
        rows.iter()
            .any(|r| r.starts_with("mcim_pipeline_duration_seconds")),
        "pipeline span missing from table:\n{stderr}"
    );
    // Every table row splits into a metric key and a value column.
    for row in rows.iter().filter(|r| r.starts_with("mcim_")) {
        let mut cols = row.split_whitespace();
        let key = cols.next().unwrap();
        let value = cols
            .next()
            .unwrap_or_else(|| panic!("no value in row {row:?}"));
        assert!(key.starts_with("mcim_"), "{row:?}");
        assert!(
            value
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit() || c == '-')
                || value.starts_with("count="),
            "unparseable value column in {row:?}"
        );
    }
}

#[test]
fn dist_report_rides_the_snapshot_table() {
    let pairs = dataset("dist_table_pairs.csv");
    let out = mcim(&[
        "freq",
        "--input",
        &pairs,
        "--eps",
        "2.0",
        "--seed",
        "5",
        "--dist-spawn",
        "2",
        "--verbose",
        "--output",
        &tmp("dist_table_freq.csv"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);

    // The old bespoke `dist: <FoldReport>` line is gone; its numbers now
    // live in the table as mcim_dist_* rows.
    assert!(
        !stderr.lines().any(|l| l.starts_with("dist: workers")),
        "bespoke session-report line resurfaced:\n{stderr}"
    );
    for metric in [
        "mcim_dist_folds_total",
        "mcim_dist_workers",
        "mcim_dist_workers_used",
        "mcim_dist_spawned_workers_total",
    ] {
        assert!(
            stderr.lines().any(|l| l.starts_with(metric)),
            "{metric} missing from table:\n{stderr}"
        );
    }
    // Per-worker I/O counters, labeled by stable worker index.
    for worker in ["0", "1"] {
        let label = format!("mcim_dist_tx_bytes_total{{worker=\"{worker}\"}}");
        assert!(
            stderr.lines().any(|l| l.starts_with(&label)),
            "{label} missing from table:\n{stderr}"
        );
    }

    let path = PathBuf::from(tmp("dist_table_freq.csv"));
    assert!(path.exists());
}
