//! The distributed equivalence matrix: real `mcim worker` processes
//! (spawned from the built binary), a socket-backed `Coordinator`, and
//! all four pipelines — framework frequency estimation, one PEM round, a
//! whole PEM mine, and multi-class top-k — each proven **bit-identical**
//! to the in-process executor at multiple worker counts × chunk sizes.
//!
//! This is the acceptance net for the `mcim-dist` subsystem: if any
//! backend drifts from the shard contract (boundaries, per-shard RNG
//! streams, merge order), some cell of this matrix fails.

use mcim_core::{Domains, Framework, LabelItem};
use mcim_dist::{spawn_local_workers, Coordinator, SpawnedWorkers};
use mcim_oracles::exec::Exec;
use mcim_oracles::parallel::SHARD_SIZE;
use mcim_oracles::stream::SliceSource;
use mcim_oracles::Eps;
use mcim_topk::{Pem, PemConfig, PemEngine, TopKConfig, TopKMethod};

fn spawn(n: usize) -> SpawnedWorkers {
    let binary = std::path::Path::new(env!("CARGO_BIN_EXE_mcim"));
    spawn_local_workers(binary, n).expect("spawning local mcim workers")
}

fn pairs(n: usize, domains: Domains) -> Vec<LabelItem> {
    (0..n as u32)
        .map(|u| {
            let label = u % domains.classes();
            let item = (u.wrapping_mul(2_654_435_761)) % domains.items();
            LabelItem::new(label, item)
        })
        .collect()
}

/// The worker-count × chunk-size grid each pipeline is checked over.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn chunk_sizes() -> [usize; 2] {
    [SHARD_SIZE - 1, 2 * SHARD_SIZE]
}

/// Framework frequency estimation (all four frameworks on the largest
/// grid cell, PTS-CP across the whole grid).
#[test]
fn framework_freq_matrix() {
    let domains = Domains::new(4, 128).unwrap();
    let data = pairs(3 * SHARD_SIZE + 1234, domains);
    let eps = Eps::new(2.0).unwrap();

    for workers in WORKER_COUNTS {
        for chunk in chunk_sizes() {
            let plan = Exec::seeded(1001).threads(2).chunk_size(chunk);
            let spawned = spawn(workers);
            let coordinator = Coordinator::connect(&plan, &spawned.addrs).unwrap();
            let frameworks: &[Framework] = if workers == 4 && chunk == 2 * SHARD_SIZE {
                &Framework::fig6_set()
            } else {
                &[Framework::PtsCp { label_frac: 0.5 }]
            };
            for fw in frameworks {
                let reference = fw
                    .execute_on(&plan.in_process(), eps, domains, SliceSource::new(&data))
                    .unwrap();
                let distributed = fw
                    .execute_on(&coordinator, eps, domains, SliceSource::new(&data))
                    .unwrap();
                assert_eq!(
                    distributed.comm,
                    reference.comm,
                    "{} w={workers} chunk={chunk}",
                    fw.name()
                );
                for label in 0..domains.classes() {
                    for item in 0..domains.items() {
                        assert!(
                            distributed.table.get(label, item) == reference.table.get(label, item),
                            "{} w={workers} chunk={chunk}: cell ({label},{item}) diverged",
                            fw.name()
                        );
                    }
                }
            }
        }
    }
}

/// A single PEM round (validity-perturbation and adaptive-oracle arms).
#[test]
fn pem_round_matrix() {
    let d = 256u32;
    let items: Vec<Option<u32>> = (0..2 * SHARD_SIZE as u32 + 500)
        .map(|u| if u % 7 == 0 { None } else { Some(u % d) })
        .collect();
    let eps = Eps::new(3.0).unwrap();

    for validity in [false, true] {
        for workers in WORKER_COUNTS {
            for chunk in chunk_sizes() {
                let plan = Exec::seeded(7).threads(2).chunk_size(chunk);
                let config = if validity {
                    PemConfig::new(4).with_validity()
                } else {
                    PemConfig::new(4)
                };
                let mut reference_engine = PemEngine::new(d, config).unwrap();
                let reference = reference_engine
                    .execute_round_on(&plan.in_process(), eps, 555, SliceSource::new(&items))
                    .unwrap();

                let spawned = spawn(workers);
                let coordinator = Coordinator::connect(&plan, &spawned.addrs).unwrap();
                let mut engine = PemEngine::new(d, config).unwrap();
                let stats = engine
                    .execute_round_on(&coordinator, eps, 555, SliceSource::new(&items))
                    .unwrap();
                assert_eq!(
                    stats, reference,
                    "validity={validity} w={workers} c={chunk}"
                );
                assert_eq!(
                    engine.candidates(),
                    reference_engine.candidates(),
                    "validity={validity} w={workers} c={chunk}: surviving candidates diverged"
                );
            }
        }
    }
}

/// A whole multi-round PEM mine (the rounds reuse one set of worker
/// connections).
#[test]
fn pem_mine_matrix() {
    let d = 128u32;
    let items: Vec<Option<u32>> = (0..SHARD_SIZE as u32 * 3)
        .map(|u| {
            if u % 6 == 0 {
                None
            } else {
                Some((u % 16) * (u % 3 + 1) % d)
            }
        })
        .collect();
    let eps = Eps::new(5.0).unwrap();
    let pem = Pem::new(d, PemConfig::new(5).with_validity()).unwrap();

    for workers in WORKER_COUNTS {
        for chunk in chunk_sizes() {
            let plan = Exec::seeded(31).threads(2).chunk_size(chunk);
            let reference = pem
                .execute_on(&plan.in_process(), eps, 31, SliceSource::new(&items))
                .unwrap();
            let spawned = spawn(workers);
            let coordinator = Coordinator::connect(&plan, &spawned.addrs).unwrap();
            let distributed = pem
                .execute_on(&coordinator, eps, 31, SliceSource::new(&items))
                .unwrap();
            assert_eq!(distributed.top, reference.top, "w={workers} c={chunk}");
            assert_eq!(distributed.comm, reference.comm, "w={workers} c={chunk}");
        }
    }
}

/// Multi-class top-k mining end to end (the full Algorithms 1 & 2
/// pipeline and the plain PTS-PEM ablation).
#[test]
fn topk_matrix() {
    let domains = Domains::new(3, 64).unwrap();
    let data = pairs(3 * SHARD_SIZE + 77, domains);
    let config = TopKConfig::new(3, Eps::new(6.0).unwrap());
    let methods = [
        TopKMethod::PtsPem {
            validity: false,
            global: true,
        },
        TopKMethod::PtsShuffled {
            validity: true,
            global: true,
            correlated: true,
        },
    ];

    for method in methods {
        for workers in WORKER_COUNTS {
            for chunk in chunk_sizes() {
                let plan = Exec::seeded(77).threads(2).chunk_size(chunk);
                let reference = mcim_topk::execute_on(
                    method,
                    config,
                    domains,
                    &plan.in_process(),
                    SliceSource::new(&data),
                )
                .unwrap();
                let spawned = spawn(workers);
                let coordinator = Coordinator::connect(&plan, &spawned.addrs).unwrap();
                let distributed = mcim_topk::execute_on(
                    method,
                    config,
                    domains,
                    &coordinator,
                    SliceSource::new(&data),
                )
                .unwrap();
                assert_eq!(
                    distributed.per_class,
                    reference.per_class,
                    "{} w={workers} c={chunk}",
                    method.name()
                );
                assert_eq!(distributed.comm, reference.comm);
            }
        }
    }
}

/// The CLI plumbing end to end: `freq --dist-spawn` writes the same CSV
/// as the local run.
#[test]
fn cli_dist_spawn_freq_matches_local() {
    let dir = std::env::temp_dir().join("mcim-dist-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    let mcim = env!("CARGO_BIN_EXE_mcim");
    let pairs_path = dir.join("pairs.csv");
    let run = |extra: &[&str], out: &std::path::Path| {
        let mut cmd = std::process::Command::new(mcim);
        cmd.args([
            "freq",
            "--input",
            pairs_path.to_str().unwrap(),
            "--eps",
            "2.0",
            "--seed",
            "13",
            "--output",
            out.to_str().unwrap(),
        ]);
        cmd.args(extra);
        let status = cmd.status().expect("running mcim");
        assert!(status.success(), "mcim freq {extra:?} failed");
    };

    let status = std::process::Command::new(mcim)
        .args([
            "gen",
            "--dataset",
            "syn3",
            "--users",
            "12000",
            "--items",
            "64",
            "--classes",
            "3",
            "--output",
            pairs_path.to_str().unwrap(),
        ])
        .status()
        .expect("running mcim gen");
    assert!(status.success());

    let local = dir.join("freq_local.csv");
    let dist = dir.join("freq_dist.csv");
    run(&[], &local);
    run(&["--dist-spawn", "2"], &dist);
    assert_eq!(
        std::fs::read_to_string(&local).unwrap(),
        std::fs::read_to_string(&dist).unwrap(),
        "--dist-spawn must not change the estimates"
    );
}
