//! CSV reading/writing for label-item pairs and result tables.
//!
//! Input format: one `label,item` pair per line (base-10, 0-indexed), with
//! an optional `label,item` header. Domains are inferred as `max + 1`
//! unless overridden on the command line.

use std::fs;
use std::path::Path;

use mcim_core::{Domains, FrequencyTable, LabelItem};

/// A loaded dataset with inferred or declared domains.
pub struct LoadedData {
    /// One pair per user.
    pub pairs: Vec<LabelItem>,
    /// Class/item domains.
    pub domains: Domains,
}

/// Reads a `label,item` CSV. `classes`/`items` of 0 mean "infer from data".
///
/// The grammar (header skip, field split, numeric validation, line-numbered
/// errors) lives in [`mcim_datasets::CsvPairSource`] — the same parser the
/// streaming mode pulls from, so batch and `--chunk-size` runs can never
/// read the same file differently.
pub fn read_pairs(
    path: &Path,
    classes: u32,
    items: u32,
) -> Result<LoadedData, Box<dyn std::error::Error>> {
    use mcim_oracles::stream::ReportSource as _;

    let mut source = mcim_datasets::CsvPairSource::open(path)?;
    let mut pairs: Vec<LabelItem> = Vec::new();
    while source.fill(&mut pairs, 64 * 1024)? > 0 {}
    if pairs.is_empty() {
        return Err("input contains no pairs".into());
    }
    let (mut max_label, mut max_item) = (0u32, 0u32);
    for p in &pairs {
        max_label = max_label.max(p.label);
        max_item = max_item.max(p.item);
    }
    let classes = if classes == 0 { max_label + 1 } else { classes };
    let items = if items == 0 { max_item + 1 } else { items };
    let domains = Domains::new(classes, items)?;
    for &p in &pairs {
        domains.check(p)?;
    }
    Ok(LoadedData { pairs, domains })
}

/// Writes `content` to `path`, creating parent directories and naming the
/// path in any error (a bare `fs::write` error omits it).
fn write_with_context(path: &Path, content: &str) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    fs::write(path, content).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(())
}

/// Writes an estimated frequency table as `class,item,estimate` CSV.
pub fn write_frequency_csv(
    path: &Path,
    table: &FrequencyTable,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut out = String::from("class,item,estimate\n");
    for class in 0..table.domains().classes() {
        for item in 0..table.domains().items() {
            out.push_str(&format!("{class},{item},{}\n", table.get(class, item)));
        }
    }
    write_with_context(path, &out)
}

/// Writes per-class top-k results as `class,rank,item` CSV.
pub fn write_topk_csv(
    path: &Path,
    per_class: &[Vec<u32>],
) -> Result<(), Box<dyn std::error::Error>> {
    let mut out = String::from("class,rank,item\n");
    for (class, items) in per_class.iter().enumerate() {
        for (rank, item) in items.iter().enumerate() {
            out.push_str(&format!("{class},{},{item}\n", rank + 1));
        }
    }
    write_with_context(path, &out)
}

/// Writes a dataset as `label,item` CSV.
pub fn write_pairs_csv(path: &Path, pairs: &[LabelItem]) -> Result<(), Box<dyn std::error::Error>> {
    let mut out = String::from("label,item\n");
    for p in pairs {
        out.push_str(&format!("{},{}\n", p.label, p.item));
    }
    write_with_context(path, &out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mcim-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_pairs() {
        let path = tmp("round_trip.csv");
        let pairs = vec![LabelItem::new(0, 3), LabelItem::new(2, 7)];
        write_pairs_csv(&path, &pairs).unwrap();
        let loaded = read_pairs(&path, 0, 0).unwrap();
        assert_eq!(loaded.pairs, pairs);
        assert_eq!(loaded.domains.classes(), 3, "inferred as max+1");
        assert_eq!(loaded.domains.items(), 8);
    }

    #[test]
    fn explicit_domains_override_inference() {
        let path = tmp("explicit.csv");
        write_pairs_csv(&path, &[LabelItem::new(0, 0)]).unwrap();
        let loaded = read_pairs(&path, 5, 100).unwrap();
        assert_eq!(loaded.domains.classes(), 5);
        assert_eq!(loaded.domains.items(), 100);
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.csv");
        fs::write(&path, "label,item\n1,2,3\n").unwrap();
        assert!(read_pairs(&path, 0, 0).is_err(), "extra field");
        fs::write(&path, "label,item\nx,2\n").unwrap();
        assert!(read_pairs(&path, 0, 0).is_err(), "non-numeric");
        fs::write(&path, "").unwrap();
        assert!(read_pairs(&path, 0, 0).is_err(), "empty");
        assert!(
            read_pairs(&tmp("missing.csv"), 0, 0).is_err(),
            "missing file"
        );
    }

    #[test]
    fn output_creates_missing_parent_dirs() {
        let dir = tmp("nested").join("deep");
        let _ = fs::remove_dir_all(tmp("nested"));
        let path = dir.join("out.csv");
        write_pairs_csv(&path, &[LabelItem::new(0, 0)]).expect("parents created on demand");
        assert!(path.exists());
        let _ = fs::remove_dir_all(tmp("nested"));
    }

    #[test]
    fn write_errors_name_the_path() {
        // A directory path is unwritable as a file; the error must say which.
        let dir = tmp("is_a_dir");
        fs::create_dir_all(&dir).unwrap();
        let err = write_pairs_csv(&dir, &[LabelItem::new(0, 0)]).unwrap_err();
        assert!(
            err.to_string().contains("is_a_dir"),
            "error should name the path: {err}"
        );
    }

    #[test]
    fn domain_violation_with_explicit_domains() {
        let path = tmp("violation.csv");
        fs::write(&path, "5,1\n").unwrap();
        assert!(read_pairs(&path, 2, 10).is_err(), "label 5 outside c=2");
    }

    #[test]
    fn frequency_and_topk_outputs() {
        let domains = Domains::new(2, 2).unwrap();
        let table =
            FrequencyTable::ground_truth(domains, &[LabelItem::new(0, 1), LabelItem::new(1, 0)])
                .unwrap();
        let fpath = tmp("freq_out.csv");
        write_frequency_csv(&fpath, &table).unwrap();
        let content = fs::read_to_string(&fpath).unwrap();
        assert!(content.starts_with("class,item,estimate"));
        assert_eq!(content.lines().count(), 5);

        let tpath = tmp("topk_out.csv");
        write_topk_csv(&tpath, &[vec![1, 0], vec![0]]).unwrap();
        let content = fs::read_to_string(&tpath).unwrap();
        assert!(content.contains("0,1,1"));
        assert!(content.contains("1,1,0"));
    }
}
