//! Minimal, dependency-free argument parsing (`--key value` / `--flag`).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
}

/// A user-facing argument error.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse(raw: &[String]) -> Result<Self, ArgError> {
        let mut iter = raw.iter();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing subcommand (try `mcim help`)".into()))?
            .clone();
        let mut options = HashMap::new();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(ArgError(format!("expected `--option`, got `{key}`")));
            };
            let value = iter
                .next()
                .ok_or_else(|| ArgError(format!("option `--{name}` needs a value")))?;
            if options.insert(name.to_string(), value.clone()).is_some() {
                return Err(ArgError(format!("option `--{name}` given twice")));
            }
        }
        Ok(Args { command, options })
    }

    /// A required string option.
    pub fn required(&self, name: &str) -> Result<&str, ArgError> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required option `--{name}`")))
    }

    /// An optional string option.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A required numeric option.
    pub fn required_num<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        self.required(name)?
            .parse()
            .map_err(|_| ArgError(format!("option `--{name}` is not a valid number")))
    }

    /// An optional numeric option with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("option `--{name}` is not a valid number"))),
        }
    }

    /// Rejects unknown options (catches typos early).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown option `--{key}` (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, ArgError> {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_command_and_options() {
        let args = parse(&["freq", "--eps", "2.0", "--input", "a.csv"]).unwrap();
        assert_eq!(args.command, "freq");
        assert_eq!(args.required("eps").unwrap(), "2.0");
        assert_eq!(args.required_num::<f64>("eps").unwrap(), 2.0);
        assert_eq!(args.optional("missing"), None);
        assert_eq!(args.num_or("k", 20usize).unwrap(), 20);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["freq", "eps", "2.0"]).is_err(), "missing --");
        assert!(parse(&["freq", "--eps"]).is_err(), "missing value");
        assert!(
            parse(&["freq", "--eps", "1", "--eps", "2"]).is_err(),
            "duplicate"
        );
    }

    #[test]
    fn required_and_typo_detection() {
        let args = parse(&["freq", "--epz", "2.0"]).unwrap();
        assert!(args.required("eps").is_err());
        assert!(args.expect_only(&["eps"]).is_err());
        assert!(args.expect_only(&["epz"]).is_ok());
    }

    #[test]
    fn numeric_validation() {
        let args = parse(&["freq", "--eps", "abc"]).unwrap();
        assert!(args.required_num::<f64>("eps").is_err());
        assert!(args.num_or::<f64>("eps", 1.0).is_err());
    }
}
