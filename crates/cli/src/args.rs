//! Minimal argument parsing (`--key value` / `--flag`) plus the one place
//! the CLI turns its execution options into an [`Exec`] plan.

use std::collections::HashMap;

use mcim_oracles::exec::Exec;
use mcim_oracles::parallel;

/// Options that take no value (`--flag` instead of `--key value`).
const BOOL_FLAGS: &[&str] = &["verbose", "once"];

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// A user-facing argument error.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse(raw: &[String]) -> Result<Self, ArgError> {
        let mut iter = raw.iter();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing subcommand (try `mcim help`)".into()))?
            .clone();
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(ArgError(format!("expected `--option`, got `{key}`")));
            };
            if BOOL_FLAGS.contains(&name) {
                if flags.iter().any(|f| f == name) {
                    return Err(ArgError(format!("flag `--{name}` given twice")));
                }
                flags.push(name.to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| ArgError(format!("option `--{name}` needs a value")))?;
            if options.insert(name.to_string(), value.clone()).is_some() {
                return Err(ArgError(format!("option `--{name}` given twice")));
            }
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// Whether a boolean `--flag` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A required string option.
    pub fn required(&self, name: &str) -> Result<&str, ArgError> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required option `--{name}`")))
    }

    /// An optional string option.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A required numeric option.
    pub fn required_num<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        self.required(name)?
            .parse()
            .map_err(|_| ArgError(format!("option `--{name}` is not a valid number")))
    }

    /// An optional numeric option with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("option `--{name}` is not a valid number"))),
        }
    }

    /// Rejects unknown options (catches typos early).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys().chain(self.flags.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown option `--{key}` (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }

    /// Builds the [`Exec`] plan shared by the `freq` and `topk` commands
    /// from `--seed`, `--threads`, `--chunk-size` and `--rng-contract` —
    /// the single place the CLI's execution options are interpreted.
    ///
    /// Without `--chunk-size` the plan is a batch plan (the input is
    /// materialized anyway); with it, a stream plan whose chunk is clamped
    /// to one shard (chunks smaller than a shard cannot parallelize).
    /// `--threads` wins over the `MCIM_THREADS` environment variable,
    /// which wins over the machine's parallelism; results never depend on
    /// the choice. `--rng-contract` only accepts the current contract
    /// (`v2`) — `v1` is retired and errors with a migration hint rather
    /// than silently re-deriving different bits. Print the resolved plan
    /// with `--verbose`.
    pub fn exec_plan(&self) -> Result<Exec, ArgError> {
        use mcim_oracles::exec::RngContract;
        if let Some(contract) = self.optional("rng-contract") {
            match contract {
                "v2" => {}
                "v1" => {
                    return Err(ArgError(format!(
                        "`--rng-contract v1` is retired: the split sequential/batch sampling \
                         streams were replaced by the word-parallel contract v{}, and v1 \
                         outputs cannot be reproduced — re-derive pinned outputs under v2 \
                         (see the README section \"RNG contract\")",
                        RngContract::CURRENT_VERSION
                    )))
                }
                other => {
                    return Err(ArgError(format!(
                        "option `--rng-contract` must be `v2` (got `{other}`)"
                    )))
                }
            }
        }
        let mut plan = Exec::seeded(self.num_or("seed", 0u64)?);
        plan = if self.optional("chunk-size").is_some() {
            let chunk: usize = self.required_num("chunk-size")?;
            plan.mode(mcim_oracles::exec::ExecMode::Stream)
                .chunk_size(chunk.max(parallel::SHARD_SIZE))
        } else {
            plan.mode(mcim_oracles::exec::ExecMode::Batch)
        };
        if self.optional("threads").is_some() {
            plan = plan.threads(self.required_num::<usize>("threads")?.max(1));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, ArgError> {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_command_and_options() {
        let args = parse(&["freq", "--eps", "2.0", "--input", "a.csv"]).unwrap();
        assert_eq!(args.command, "freq");
        assert_eq!(args.required("eps").unwrap(), "2.0");
        assert_eq!(args.required_num::<f64>("eps").unwrap(), 2.0);
        assert_eq!(args.optional("missing"), None);
        assert_eq!(args.num_or("k", 20usize).unwrap(), 20);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["freq", "eps", "2.0"]).is_err(), "missing --");
        assert!(parse(&["freq", "--eps"]).is_err(), "missing value");
        assert!(
            parse(&["freq", "--eps", "1", "--eps", "2"]).is_err(),
            "duplicate"
        );
    }

    #[test]
    fn required_and_typo_detection() {
        let args = parse(&["freq", "--epz", "2.0"]).unwrap();
        assert!(args.required("eps").is_err());
        assert!(args.expect_only(&["eps"]).is_err());
        assert!(args.expect_only(&["epz"]).is_ok());
    }

    #[test]
    fn numeric_validation() {
        let args = parse(&["freq", "--eps", "abc"]).unwrap();
        assert!(args.required_num::<f64>("eps").is_err());
        assert!(args.num_or::<f64>("eps", 1.0).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let args = parse(&["freq", "--verbose", "--eps", "2.0"]).unwrap();
        assert!(args.flag("verbose"));
        assert_eq!(args.required("eps").unwrap(), "2.0");
        assert!(!parse(&["freq"]).unwrap().flag("verbose"));
        assert!(parse(&["freq", "--verbose", "--verbose"]).is_err());
        // expect_only sees flags too.
        let args = parse(&["freq", "--verbose"]).unwrap();
        assert!(args.expect_only(&["eps"]).is_err());
        assert!(args.expect_only(&["eps", "verbose"]).is_ok());
    }

    #[test]
    fn exec_plan_reflects_options() {
        use mcim_oracles::exec::ExecMode;
        use mcim_oracles::parallel::SHARD_SIZE;

        let batch = parse(&["freq", "--seed", "9", "--threads", "3"])
            .unwrap()
            .exec_plan()
            .unwrap();
        assert_eq!(batch.resolved_mode(), ExecMode::Batch);
        assert_eq!(batch.base_seed(), 9);
        assert_eq!(batch.resolved_threads(), 3);

        let stream = parse(&["freq", "--chunk-size", "10"])
            .unwrap()
            .exec_plan()
            .unwrap();
        assert_eq!(stream.resolved_mode(), ExecMode::Stream);
        assert_eq!(
            stream.resolved_chunk_items(),
            SHARD_SIZE,
            "sub-shard chunks clamp up"
        );

        assert!(parse(&["freq", "--threads", "x"])
            .unwrap()
            .exec_plan()
            .is_err());
        assert!(parse(&["freq", "--chunk-size", "x"])
            .unwrap()
            .exec_plan()
            .is_err());
    }

    #[test]
    fn rng_contract_accepts_only_v2() {
        let current = parse(&["freq", "--rng-contract", "v2", "--seed", "4"])
            .unwrap()
            .exec_plan()
            .unwrap();
        assert_eq!(current.base_seed(), 4);

        let retired = parse(&["freq", "--rng-contract", "v1"])
            .unwrap()
            .exec_plan()
            .unwrap_err();
        assert!(retired.0.contains("retired"), "{retired}");
        assert!(retired.0.contains("README"), "{retired}");

        let unknown = parse(&["freq", "--rng-contract", "v3"])
            .unwrap()
            .exec_plan()
            .unwrap_err();
        assert!(unknown.0.contains("must be `v2`"), "{unknown}");
    }
}
