//! `mcim` — multi-class item mining under local differential privacy.
//!
//! ```text
//! mcim freq --input pairs.csv --eps 2.0 --framework pts-cp --output est.csv
//! mcim topk --input pairs.csv --eps 4.0 --k 20 --method pts-opt --output top.csv
//! mcim gen  --dataset jd --users 100000 --items 2048 --output pairs.csv
//! mcim worker --listen 127.0.0.1:7001
//! mcim freq --input pairs.csv --eps 2.0 --dist 127.0.0.1:7001,127.0.0.1:7002
//! mcim help
//! ```

mod args;
mod io;

use std::path::Path;
use std::process::ExitCode;

use args::{ArgError, Args};
use mcim_core::Framework;
use mcim_oracles::exec::ExecMode;
use mcim_oracles::stream::SliceSource;
use mcim_topk::{TopKConfig, TopKMethod};

const HELP: &str = "\
mcim — multi-class item mining under local differential privacy

USAGE:
  mcim freq --input <pairs.csv> --eps <f64> [options]
  mcim topk --input <pairs.csv> --eps <f64> --k <n> [options]
  mcim gen  --dataset <anime|jd|syn3|syn4> --users <n> [options]
  mcim worker --listen <addr[:port]> [--once]
  mcim help

COMMON OPTIONS:
  --classes <n>   class-domain size (default: inferred as max label + 1)
  --items <n>     item-domain size (default: inferred as max item + 1)
  --seed <n>      RNG seed of the execution plan (default 0)
  --threads <n>   worker threads for freq/topk (default: MCIM_THREADS env,
                  then the machine's parallelism; results are identical for
                  every thread count under a fixed --seed)
  --chunk-size <n> stream the input in n-pair chunks; requires explicit
                  --classes and --items. `.ndjson`/`.jsonl` inputs are
                  parsed as {\"label\": c, \"item\": i} lines, anything
                  else as CSV. freq memory stays bounded by the chunk;
                  topk still holds the 8-byte pairs (multi-round mining
                  revisits them) but never the privatized reports.
                  Values below 4096 (one shard — chunks smaller than a
                  shard cannot parallelize) are raised to 4096.
                  Results are bit-identical to the non-streaming run.
  --dist <a,b,..> run the bulk stages on the distributed reducer: a
                  comma-separated list of `mcim worker` addresses. Results
                  are bit-identical to the local run under the same --seed,
                  for every worker count.
  --dist-spawn <n> like --dist, but spawn (and reap) n local worker
                  processes automatically
  --dist-timeout <ms> socket read/write deadline per worker conversation;
                  a worker silent for this long counts as failed and its
                  shards are re-routed (0 = wait forever, the default).
                  Don't set it below the time a worker legitimately needs
                  to fold its share, or slow-but-alive workers get dropped
  --dist-retries <n> connection attempts per worker (with deterministic
                  exponential backoff) and the per-fold re-route budget
                  (default 3 attempts, 8 re-routes). Requires --dist or
                  --dist-spawn, as does --dist-timeout. Worker loss is
                  survived either way: lost shards replay on surviving
                  workers, or in-process when none remain — results stay
                  bit-identical, only `--verbose` shows the difference
  --rng-contract <v2> assert the RNG contract the run is pinned against.
                  Only the current word-parallel contract `v2` is
                  accepted; `v1` is retired and errors with a migration
                  hint (see the README section \"RNG contract\")
  --metrics-out <file> write the run's telemetry snapshot after the
                  results: Prometheus text exposition, or the JSON
                  envelope when the path ends in `.json`. Metrics never
                  change results — estimates are bit-identical with the
                  snapshot on or off (freq/topk only)
  --verbose       print the resolved execution plan (mode/seed/threads/
                  chunk/contract) before running, then the telemetry
                  snapshot table (stage/fold timings plus the distributed
                  reducer's I/O and fold-report counters) after
  --output <file> write results as CSV (default: print a summary)

These options assemble one execution plan (see `Exec` in the library):
freq/topk run `Framework::execute` / `mcim_topk::execute` with a batch
plan, or a stream plan when --chunk-size is given.

freq OPTIONS:
  --framework <hec|ptj|pts|pts-cp>   (default pts-cp)
  --label-frac <f64>                 PTS budget share for the label (default 0.5)

topk OPTIONS:
  --method <hec|ptj|ptj-opt|pts|pts-opt>   (default pts-opt)
  --label-frac / --sample-frac / --noise-b  pipeline parameters (defaults 0.5 / 0.2 / 2)

gen OPTIONS:
  --classes <n>   class count for syn3/syn4 (default 10)
  --items <n>     item-domain size (default 2048)

worker OPTIONS:
  --listen <addr> bind address (port 0 picks an ephemeral port; the worker
                  prints `MCIM_WORKER_LISTENING <addr>` once bound).
                  Default 127.0.0.1:0
  --once          serve exactly one coordinator connection, then exit
                  (what --dist-spawn children run)
";

/// Best-effort stdout line: results piped into `head` (or any reader that
/// closes early) must end the program quietly, not panic like `println!`
/// does on a broken pipe.
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `mcim help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    match args.command.as_str() {
        "help" | "--help" | "-h" => {
            out!("{HELP}");
            Ok(())
        }
        "freq" => cmd_freq(&args),
        "topk" => cmd_topk(&args),
        "gen" => cmd_gen(&args),
        "worker" => cmd_worker(&args),
        other => Err(ArgError(format!("unknown subcommand `{other}`")).into()),
    }
}

fn parse_framework(name: &str) -> Result<Framework, ArgError> {
    match name {
        "hec" => Ok(Framework::Hec),
        "ptj" => Ok(Framework::Ptj),
        "pts" => Ok(Framework::Pts { label_frac: 0.5 }),
        "pts-cp" => Ok(Framework::PtsCp { label_frac: 0.5 }),
        _ => Err(ArgError(format!(
            "unknown framework `{name}` (hec|ptj|pts|pts-cp)"
        ))),
    }
}

fn parse_method(name: &str) -> Result<TopKMethod, ArgError> {
    match name {
        "hec" => Ok(TopKMethod::Hec),
        "ptj" => Ok(TopKMethod::PtjPem { validity: false }),
        "ptj-opt" => Ok(TopKMethod::PtjShuffled { validity: true }),
        "pts" => Ok(TopKMethod::PtsPem {
            validity: false,
            global: false,
        }),
        "pts-opt" => Ok(TopKMethod::PtsShuffled {
            validity: true,
            global: true,
            correlated: true,
        }),
        _ => Err(ArgError(format!(
            "unknown method `{name}` (hec|ptj|ptj-opt|pts|pts-opt)"
        ))),
    }
}

/// Builds the transport config from `--dist-timeout`/`--dist-retries`
/// (defaults otherwise).
fn dist_config(args: &Args) -> Result<mcim_dist::DistConfig, Box<dyn std::error::Error>> {
    let mut config = mcim_dist::DistConfig::default();
    if args.optional("dist-timeout").is_some() {
        let millis: u64 = args.required_num("dist-timeout")?;
        // 0 = "wait forever"; the socket API would reject a zero timeout.
        config.io_timeout = (millis > 0).then(|| std::time::Duration::from_millis(millis));
    }
    if args.optional("dist-retries").is_some() {
        let n: u32 = args.required_num("dist-retries")?;
        config.connect_attempts = n.max(1);
        config.max_reroutes = n;
    }
    Ok(config)
}

/// Assembles the distributed backend from `--dist addr,addr,...` or
/// `--dist-spawn n` (mutually exclusive). `None` means run locally. The
/// coordinator owns any spawned children (adopted; reaped on drop) and
/// carries the `--dist-timeout`/`--dist-retries` transport knobs.
fn dist_setup(
    args: &Args,
    plan: &mcim_oracles::exec::Exec,
) -> Result<Option<mcim_dist::Coordinator>, Box<dyn std::error::Error>> {
    let addrs = args.optional("dist");
    let spawn = args.optional("dist-spawn");
    match (addrs, spawn) {
        (None, None) => {
            for knob in ["dist-timeout", "dist-retries"] {
                if args.optional(knob).is_some() {
                    return Err(
                        ArgError(format!("--{knob} requires --dist or --dist-spawn")).into(),
                    );
                }
            }
            Ok(None)
        }
        (Some(_), Some(_)) => {
            Err(ArgError("--dist and --dist-spawn are mutually exclusive".into()).into())
        }
        (Some(list), None) => {
            let addrs: Vec<&str> = list
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .collect();
            if addrs.is_empty() {
                return Err(ArgError("--dist needs at least one worker address".into()).into());
            }
            let coordinator =
                mcim_dist::Coordinator::connect_with(plan, &addrs, dist_config(args)?)?;
            Ok(Some(coordinator))
        }
        (None, Some(_)) => {
            let n: usize = args.required_num("dist-spawn")?;
            if n == 0 {
                return Err(ArgError("--dist-spawn needs at least one worker".into()).into());
            }
            let binary = std::env::current_exe()
                .map_err(|e| mcim_oracles::Error::transport("locating the mcim binary", e))?;
            let coordinator =
                mcim_dist::Coordinator::connect_spawned(plan, &binary, n, dist_config(args)?)?;
            Ok(Some(coordinator))
        }
    }
}

/// Turns metric recording on when this run asked for it (`--metrics-out`
/// or `--verbose`) and returns the export path, if any. Resets the
/// registry first so one process invocation is one snapshot.
fn metrics_setup(args: &Args) -> Option<&str> {
    let out = args.optional("metrics-out");
    if out.is_some() || args.flag("verbose") {
        mcim_obs::reset();
        mcim_obs::set_enabled(true);
    }
    out
}

/// Emits the run's telemetry: the `--verbose` snapshot table to stderr
/// (the one rendering path for fold reports, dist I/O and stage timings)
/// and the `--metrics-out` file — the JSON envelope for `.json` paths,
/// Prometheus text exposition otherwise.
fn metrics_finish(args: &Args, out: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    if !mcim_obs::enabled() {
        return Ok(());
    }
    let snap = mcim_obs::snapshot();
    if args.flag("verbose") && !snap.is_empty() {
        eprint!("{}", snap.render_table());
    }
    if let Some(path) = out {
        let json = Path::new(path)
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| e.eq_ignore_ascii_case("json"));
        let body = if json {
            snap.to_json()
        } else {
            snap.to_prometheus()
        };
        std::fs::write(path, body)
            .map_err(|e| mcim_oracles::Error::transport(format!("writing metrics to {path}"), e))?;
        eprintln!("wrote {path}");
    }
    mcim_obs::set_enabled(false);
    Ok(())
}

fn cmd_worker(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&["listen", "once"])?;
    let listen = args.optional("listen").unwrap_or("127.0.0.1:0");
    mcim_dist::worker_main(listen, args.flag("once"))?;
    Ok(())
}

/// Streaming-mode plumbing shared by `freq` and `topk`: explicit domains
/// (inference would need a full pass) and a file source picked by
/// extension (`.ndjson`/`.jsonl` → NDJSON, otherwise CSV).
fn stream_setup(
    args: &Args,
    input: &str,
) -> Result<(mcim_core::Domains, PairSource), Box<dyn std::error::Error>> {
    let classes: u32 = args.num_or("classes", 0)?;
    let items: u32 = args.num_or("items", 0)?;
    if classes == 0 || items == 0 {
        return Err(ArgError(
            "streaming mode (--chunk-size) cannot infer domains; pass --classes and --items".into(),
        )
        .into());
    }
    let domains = mcim_core::Domains::new(classes, items)?;
    let path = Path::new(input);
    let ndjson = path
        .extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.eq_ignore_ascii_case("ndjson") || e.eq_ignore_ascii_case("jsonl"));
    let source = if ndjson {
        PairSource::Ndjson(mcim_datasets::NdjsonPairSource::open(path)?)
    } else {
        PairSource::Csv(mcim_datasets::CsvPairSource::open(path)?)
    };
    Ok((domains, source))
}

/// Either file-backed pair source behind one type, so the streaming
/// commands stay monomorphic.
enum PairSource {
    Csv(mcim_datasets::CsvPairSource),
    Ndjson(mcim_datasets::NdjsonPairSource),
}

impl PairSource {
    fn counted(self, domains: mcim_core::Domains) -> CountedPairSource {
        CountedPairSource {
            inner: self,
            domains,
            yielded: 0,
        }
    }
}

/// Validates every pair against the declared domains (the batch path's
/// `read_pairs` does the same check up front — streaming must fail fast
/// too, not feed out-of-domain items into the miners) and counts the
/// pairs it yields, so the summary line can report the user count
/// (`comm.users` counts *reports*, and PTS users submit a label report
/// and an item report each).
struct CountedPairSource {
    inner: PairSource,
    domains: mcim_core::Domains,
    yielded: u64,
}

impl mcim_oracles::stream::ReportSource for CountedPairSource {
    type Item = mcim_core::LabelItem;
    fn fill(
        &mut self,
        buf: &mut Vec<mcim_core::LabelItem>,
        max: usize,
    ) -> mcim_oracles::Result<usize> {
        let start = buf.len();
        let got = match &mut self.inner {
            PairSource::Csv(s) => s.fill(buf, max)?,
            PairSource::Ndjson(s) => s.fill(buf, max)?,
        };
        for pair in &buf[start..] {
            self.domains.check(*pair)?;
        }
        self.yielded += got as u64;
        Ok(got)
    }

    fn rewind(&mut self, n: u64) -> mcim_oracles::Result<bool> {
        // Forwarded so streamed `--dist` runs stay recoverable on worker
        // loss (the file sources replay from the start of the file). The
        // replayed pairs re-validate in `fill`; the count stays in step.
        let ok = match &mut self.inner {
            PairSource::Csv(s) => s.rewind(n)?,
            PairSource::Ndjson(s) => s.rewind(n)?,
        };
        if ok {
            self.yielded = self.yielded.saturating_sub(n);
        }
        Ok(ok)
    }
}

fn cmd_freq(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&[
        "input",
        "eps",
        "classes",
        "items",
        "seed",
        "threads",
        "chunk-size",
        "rng-contract",
        "dist",
        "dist-spawn",
        "dist-timeout",
        "dist-retries",
        "verbose",
        "metrics-out",
        "output",
        "framework",
        "label-frac",
    ])?;
    let input = args.required("input")?;
    let eps = mcim_oracles::Eps::new(args.required_num::<f64>("eps")?)?;
    let label_frac: f64 = args.num_or("label-frac", 0.5)?;
    let framework = match parse_framework(args.optional("framework").unwrap_or("pts-cp"))? {
        Framework::Pts { .. } => Framework::Pts { label_frac },
        Framework::PtsCp { .. } => Framework::PtsCp { label_frac },
        other => other,
    };
    let plan = args.exec_plan()?;
    let metrics_out = metrics_setup(args);
    let dist = dist_setup(args, &plan)?;
    if args.flag("verbose") {
        eprintln!("plan: {plan}");
        if let Some(backend) = &dist {
            eprintln!("dist: {} workers", backend.workers());
        }
    }
    let (result, n, domains) = match plan.resolved_mode() {
        ExecMode::Stream => {
            let (domains, source) = stream_setup(args, input)?;
            let mut source = source.counted(domains);
            let result = match &dist {
                Some(backend) => framework.execute_on(backend, eps, domains, &mut source)?,
                None => framework.execute(eps, domains, &plan, &mut source)?,
            };
            (result, source.yielded, domains)
        }
        _ => {
            let data = io::read_pairs(
                Path::new(input),
                args.num_or("classes", 0u32)?,
                args.num_or("items", 0u32)?,
            )?;
            let source = SliceSource::new(&data.pairs);
            let result = match &dist {
                Some(backend) => framework.execute_on(backend, eps, data.domains, source)?,
                None => framework.execute(eps, data.domains, &plan, source)?,
            };
            let n = data.pairs.len() as u64;
            (result, n, data.domains)
        }
    };
    // Shut the backend down before snapshotting so its final I/O deltas
    // (including the Shutdown frames) land in the exported metrics. The
    // old bespoke `dist: <session_report>` verbose line lives on as the
    // `mcim_dist_*` rows of the snapshot table.
    drop(dist);
    eprintln!(
        "{}: N = {n}, c = {}, d = {}, {}, threads = {} — {:.0} uplink bits/user",
        framework.name(),
        domains.classes(),
        domains.items(),
        eps,
        plan.resolved_threads(),
        result.comm.bits_per_user()
    );
    match args.optional("output") {
        Some(path) => {
            io::write_frequency_csv(Path::new(path), &result.table)?;
            eprintln!("wrote {path}");
        }
        None => {
            out!("class | top-5 items by estimated frequency");
            for class in 0..domains.classes() {
                let top = result.table.top_k(class, 5);
                let cells: Vec<String> = top
                    .iter()
                    .map(|&i| format!("#{i} ({:.0})", result.table.get(class, i)))
                    .collect();
                out!("{class:>5} | {}", cells.join(", "));
            }
        }
    }
    metrics_finish(args, metrics_out)
}

fn cmd_topk(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&[
        "input",
        "eps",
        "k",
        "classes",
        "items",
        "seed",
        "threads",
        "chunk-size",
        "rng-contract",
        "dist",
        "dist-spawn",
        "dist-timeout",
        "dist-retries",
        "verbose",
        "metrics-out",
        "output",
        "method",
        "label-frac",
        "sample-frac",
        "noise-b",
    ])?;
    let input = args.required("input")?;
    let eps = mcim_oracles::Eps::new(args.required_num::<f64>("eps")?)?;
    let k: usize = args.required_num("k")?;
    let method = parse_method(args.optional("method").unwrap_or("pts-opt"))?;
    let mut config = TopKConfig::new(k, eps);
    config.label_frac = args.num_or("label-frac", config.label_frac)?;
    config.sample_frac = args.num_or("sample-frac", config.sample_frac)?;
    config.noise_factor = args.num_or("noise-b", config.noise_factor)?;
    let plan = args.exec_plan()?;
    let metrics_out = metrics_setup(args);
    let dist = dist_setup(args, &plan)?;
    if args.flag("verbose") {
        eprintln!("plan: {plan}");
        if let Some(backend) = &dist {
            eprintln!("dist: {} workers", backend.workers());
        }
    }
    let (result, n, domains) = match plan.resolved_mode() {
        ExecMode::Stream => {
            let (domains, source) = stream_setup(args, input)?;
            let mut source = source.counted(domains);
            let result = match &dist {
                Some(backend) => {
                    mcim_topk::execute_on(method, config, domains, backend, &mut source)?
                }
                None => mcim_topk::execute(method, config, domains, &plan, &mut source)?,
            };
            (result, source.yielded, domains)
        }
        _ => {
            let data = io::read_pairs(
                Path::new(input),
                args.num_or("classes", 0u32)?,
                args.num_or("items", 0u32)?,
            )?;
            let source = SliceSource::new(&data.pairs);
            let result = match &dist {
                Some(backend) => {
                    mcim_topk::execute_on(method, config, data.domains, backend, source)?
                }
                None => mcim_topk::execute(method, config, data.domains, &plan, source)?,
            };
            let n = data.pairs.len() as u64;
            (result, n, data.domains)
        }
    };
    // See cmd_freq: the backend flushes its final I/O deltas on drop, and
    // the snapshot table replaces the bespoke session-report line.
    drop(dist);
    eprintln!(
        "{}: N = {n}, c = {}, d = {}, {}, k = {k}, threads = {} — {:.0} uplink bits/user",
        method.name(),
        domains.classes(),
        domains.items(),
        eps,
        plan.resolved_threads(),
        result.comm.bits_per_user()
    );
    match args.optional("output") {
        Some(path) => {
            io::write_topk_csv(Path::new(path), &result.per_class)?;
            eprintln!("wrote {path}");
        }
        None => {
            for (class, items) in result.per_class.iter().enumerate() {
                out!("class {class}: {items:?}");
            }
        }
    }
    metrics_finish(args, metrics_out)
}

fn cmd_gen(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.expect_only(&["dataset", "users", "items", "classes", "seed", "output"])?;
    let dataset = args.required("dataset")?;
    let users: usize = args.num_or("users", 100_000)?;
    let items: u32 = args.num_or("items", 2_048)?;
    let classes: u32 = args.num_or("classes", 10)?;
    let seed: u64 = args.num_or("seed", 0)?;
    let ds = match dataset {
        "anime" => mcim_datasets::anime_like(mcim_datasets::RealConfig { users, items, seed }),
        "jd" => mcim_datasets::jd_like(mcim_datasets::RealConfig { users, items, seed }),
        "syn3" => mcim_datasets::syn3(mcim_datasets::SynLargeConfig {
            classes,
            items,
            users,
            seed,
        }),
        "syn4" => mcim_datasets::syn4(mcim_datasets::SynLargeConfig {
            classes,
            items,
            users,
            seed,
        }),
        other => {
            return Err(ArgError(format!("unknown dataset `{other}` (anime|jd|syn3|syn4)")).into())
        }
    };
    let output = args.optional("output").unwrap_or("pairs.csv");
    io::write_pairs_csv(Path::new(output), &ds.pairs)?;
    eprintln!(
        "generated {}: {} users, c = {}, d = {} → {output}",
        ds.name,
        ds.len(),
        ds.domains.classes(),
        ds.domains.items()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(parts: &[&str]) -> Result<(), Box<dyn std::error::Error>> {
        run(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mcim-cli-main-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_cli(&["help"]).is_ok());
        assert!(run_cli(&["frobnicate"]).is_err());
        assert!(run_cli(&[]).is_err());
    }

    #[test]
    fn gen_then_freq_then_topk() {
        let pairs = tmp("e2e_pairs.csv");
        run_cli(&[
            "gen",
            "--dataset",
            "syn4",
            "--users",
            "20000",
            "--items",
            "256",
            "--classes",
            "4",
            "--output",
            &pairs,
        ])
        .unwrap();

        let freq_out = tmp("e2e_freq.csv");
        run_cli(&[
            "freq",
            "--input",
            &pairs,
            "--eps",
            "4.0",
            "--framework",
            "pts-cp",
            "--output",
            &freq_out,
        ])
        .unwrap();
        let content = std::fs::read_to_string(&freq_out).unwrap();
        assert!(content.lines().count() > 4 * 256, "one row per cell");

        let topk_out = tmp("e2e_topk.csv");
        run_cli(&[
            "topk", "--input", &pairs, "--eps", "4.0", "--k", "5", "--method", "pts-opt",
            "--output", &topk_out,
        ])
        .unwrap();
        let content = std::fs::read_to_string(&topk_out).unwrap();
        assert!(content.starts_with("class,rank,item"));
        assert!(content.lines().count() > 1);
    }

    #[test]
    fn freq_output_is_identical_for_every_thread_count() {
        let pairs = tmp("threads_pairs.csv");
        run_cli(&[
            "gen",
            "--dataset",
            "syn3",
            "--users",
            "9000",
            "--items",
            "64",
            "--classes",
            "3",
            "--output",
            &pairs,
        ])
        .unwrap();
        let mut outputs = Vec::new();
        for threads in ["1", "3"] {
            let out = tmp(&format!("threads_freq_{threads}.csv"));
            run_cli(&[
                "freq",
                "--input",
                &pairs,
                "--eps",
                "2.0",
                "--seed",
                "7",
                "--threads",
                threads,
                "--output",
                &out,
            ])
            .unwrap();
            outputs.push(std::fs::read_to_string(&out).unwrap());
        }
        assert_eq!(
            outputs[0], outputs[1],
            "estimates must not depend on --threads"
        );
    }

    #[test]
    fn streaming_freq_matches_batch_bit_for_bit() {
        let pairs = tmp("stream_pairs.csv");
        run_cli(&[
            "gen",
            "--dataset",
            "syn3",
            "--users",
            "12000",
            "--items",
            "64",
            "--classes",
            "3",
            "--output",
            &pairs,
        ])
        .unwrap();
        let batch_out = tmp("stream_freq_batch.csv");
        run_cli(&[
            "freq", "--input", &pairs, "--eps", "2.0", "--seed", "5", "--output", &batch_out,
        ])
        .unwrap();
        // Several chunk sizes, including one that splits shards mid-way.
        for chunk in ["1000", "4096", "5000"] {
            let stream_out = tmp(&format!("stream_freq_{chunk}.csv"));
            run_cli(&[
                "freq",
                "--input",
                &pairs,
                "--eps",
                "2.0",
                "--seed",
                "5",
                "--chunk-size",
                chunk,
                "--classes",
                "3",
                "--items",
                "64",
                "--output",
                &stream_out,
            ])
            .unwrap();
            assert_eq!(
                std::fs::read_to_string(&batch_out).unwrap(),
                std::fs::read_to_string(&stream_out).unwrap(),
                "chunk-size {chunk} diverged from the batch run"
            );
        }
    }

    #[test]
    fn streaming_topk_runs_and_requires_domains() {
        let pairs = tmp("stream_topk_pairs.csv");
        run_cli(&[
            "gen",
            "--dataset",
            "syn4",
            "--users",
            "9000",
            "--items",
            "128",
            "--classes",
            "3",
            "--output",
            &pairs,
        ])
        .unwrap();
        let out = tmp("stream_topk.csv");
        run_cli(&[
            "topk",
            "--input",
            &pairs,
            "--eps",
            "4.0",
            "--k",
            "3",
            "--chunk-size",
            "2048",
            "--classes",
            "3",
            "--items",
            "128",
            "--output",
            &out,
        ])
        .unwrap();
        assert!(std::fs::read_to_string(&out)
            .unwrap()
            .starts_with("class,rank,item"));
        // Streaming cannot infer domains.
        assert!(run_cli(&[
            "freq",
            "--input",
            &pairs,
            "--eps",
            "2.0",
            "--chunk-size",
            "1000",
        ])
        .is_err());
    }

    #[test]
    fn streaming_rejects_out_of_domain_pairs() {
        let path = tmp("stream_violation.csv");
        std::fs::write(&path, "label,item\n0,1\n5,1\n").unwrap();
        for cmd in [
            vec![
                "freq",
                "--input",
                path.as_str(),
                "--eps",
                "2.0",
                "--chunk-size",
                "10",
                "--classes",
                "2",
                "--items",
                "10",
            ],
            vec![
                "topk",
                "--input",
                path.as_str(),
                "--eps",
                "2.0",
                "--k",
                "2",
                "--chunk-size",
                "10",
                "--classes",
                "2",
                "--items",
                "10",
            ],
        ] {
            let err = run_cli(&cmd).unwrap_err();
            assert!(err.to_string().contains("outside domain"), "{cmd:?}: {err}");
        }
    }

    #[test]
    fn streaming_freq_reads_ndjson() {
        let path = tmp("stream_pairs.ndjson");
        let mut body = String::new();
        for u in 0..4000u32 {
            body.push_str(&format!(
                "{{\"label\": {}, \"item\": {}}}\n",
                u % 2,
                (u * 7) % 32
            ));
        }
        std::fs::write(&path, body).unwrap();
        let out = tmp("stream_ndjson_freq.csv");
        run_cli(&[
            "freq",
            "--input",
            &path,
            "--eps",
            "2.0",
            "--chunk-size",
            "512",
            "--classes",
            "2",
            "--items",
            "32",
            "--output",
            &out,
        ])
        .unwrap();
        assert!(std::fs::read_to_string(&out).unwrap().lines().count() > 64);
    }

    #[test]
    fn verbose_flag_is_accepted_and_stable() {
        let pairs = tmp("verbose_pairs.csv");
        run_cli(&[
            "gen",
            "--dataset",
            "syn3",
            "--users",
            "6000",
            "--items",
            "32",
            "--classes",
            "2",
            "--output",
            &pairs,
        ])
        .unwrap();
        let quiet = tmp("verbose_off.csv");
        let loud = tmp("verbose_on.csv");
        run_cli(&[
            "freq", "--input", &pairs, "--eps", "2.0", "--seed", "3", "--output", &quiet,
        ])
        .unwrap();
        run_cli(&[
            "freq",
            "--input",
            &pairs,
            "--eps",
            "2.0",
            "--seed",
            "3",
            "--verbose",
            "--output",
            &loud,
        ])
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&quiet).unwrap(),
            std::fs::read_to_string(&loud).unwrap(),
            "--verbose only adds diagnostics, never changes results"
        );
    }

    #[test]
    fn freq_rejects_bad_options() {
        assert!(run_cli(&["freq", "--eps", "2.0"]).is_err(), "missing input");
        assert!(
            run_cli(&["freq", "--input", "x.csv", "--eps", "-1"]).is_err(),
            "bad eps"
        );
        assert!(
            run_cli(&["freq", "--input", "x.csv", "--eps", "1", "--typo", "1"]).is_err(),
            "unknown option"
        );
        let err = run_cli(&[
            "freq",
            "--input",
            "x.csv",
            "--eps",
            "1",
            "--rng-contract",
            "v1",
        ])
        .expect_err("retired contract");
        assert!(err.to_string().contains("retired"), "{err}");
    }

    #[test]
    fn dist_knobs_require_a_dist_backend() {
        for knob in ["--dist-timeout", "--dist-retries"] {
            let err = run_cli(&["freq", "--input", "x.csv", "--eps", "1", knob, "100"])
                .expect_err("transport knobs without --dist must be rejected");
            assert!(err.to_string().contains("requires --dist"), "{knob}: {err}");
        }
    }

    #[test]
    fn parser_round_trips_methods_and_frameworks() {
        for name in ["hec", "ptj", "pts", "pts-cp"] {
            assert!(parse_framework(name).is_ok());
        }
        assert!(parse_framework("nope").is_err());
        for name in ["hec", "ptj", "ptj-opt", "pts", "pts-opt"] {
            assert!(parse_method(name).is_ok());
        }
        assert!(parse_method("nope").is_err());
    }
}
