//! Property-based tests for the multi-class core.

use mcim_core::analysis::{self, CpProbs, Probs};
use mcim_core::{
    CorrelatedPerturbation, CpAggregator, Domains, FrequencyTable, LabelItem, ValidityInput,
    ValidityPerturbation, VpAggregator,
};
use mcim_oracles::Eps;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Joint-index mapping is a bijection for arbitrary domains.
    #[test]
    fn joint_index_bijection(c in 1u32..50, d in 1u32..500) {
        let dom = Domains::new(c, d).unwrap();
        for joint in [0, dom.joint_size() / 2, dom.joint_size() - 1] {
            let pair = dom.pair_of_joint(joint);
            prop_assert!(pair.label < c && pair.item < d);
            prop_assert_eq!(dom.joint_index(pair), joint);
        }
    }

    /// Ground-truth tables conserve mass: cells sum to the dataset size.
    #[test]
    fn ground_truth_conserves_mass(seed in any::<u64>(), n in 1usize..2_000) {
        let dom = Domains::new(4, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<LabelItem> = (0..n)
            .map(|_| {
                use rand::Rng;
                LabelItem::new(rng.random_range(0..4), rng.random_range(0..16))
            })
            .collect();
        let t = FrequencyTable::ground_truth(dom, &data).unwrap();
        let total: f64 = t.values().iter().sum();
        prop_assert!((total - n as f64).abs() < 1e-9);
        let class_sum: f64 = (0..4).map(|c| t.class_total(c)).sum();
        prop_assert!((class_sum - n as f64).abs() < 1e-9);
    }

    /// VP reports always have length d+1 and the encoding is one-hot.
    #[test]
    fn vp_encoding_is_one_hot(eps_v in 0.2f64..6.0, d in 1u32..200, item in 0u32..200) {
        let vp = ValidityPerturbation::new(Eps::new(eps_v).unwrap(), d).unwrap();
        let input = if item < d { ValidityInput::Valid(item) } else { ValidityInput::Invalid };
        let encoded = vp.encode(input).unwrap();
        prop_assert_eq!(encoded.len(), d as usize + 1);
        prop_assert_eq!(encoded.count_ones(), 1);
        match input {
            ValidityInput::Valid(v) => prop_assert!(encoded.get(v as usize)),
            ValidityInput::Invalid => prop_assert!(encoded.get(d as usize)),
        }
    }

    /// Theorem 5's invalid noise is below Theorem 4's for every
    /// configuration (the paper's §V-A claim).
    #[test]
    fn vp_noise_strictly_better(eps_v in 0.1f64..8.0, d in 2u32..5_000, m in 1.0f64..1e6) {
        let pr = Probs::oue(Eps::new(eps_v).unwrap());
        prop_assert!(
            analysis::thm5_vp_invalid_noise_mean(m, pr)
                < analysis::thm4_invalid_noise_mean(d, m, pr)
        );
    }

    /// §V-B: the VP-vs-OUE count-variance difference is negative for any
    /// population composition.
    #[test]
    fn vp_variance_advantage_negative(
        eps_v in 0.1f64..8.0,
        d in 2u32..2_000,
        n1 in 0.0f64..1e5,
        n2 in 0.0f64..1e5,
        m in 1.0f64..1e5,
    ) {
        let pr = Probs::oue(Eps::new(eps_v).unwrap());
        prop_assert!(analysis::vp_variance_advantage(n1, n2, m, d, pr) < 0.0);
    }

    /// Eq. (5) variance is positive and monotone in n and N.
    #[test]
    fn thm8_variance_monotone(eps_v in 0.3f64..6.0, c in 2u32..30) {
        let pr = CpProbs::even_split(Eps::new(eps_v).unwrap(), c).unwrap();
        let v_base = analysis::thm8_cp_variance(100.0, 1_000.0, 10_000.0, pr);
        prop_assert!(v_base > 0.0);
        let v_more_n = analysis::thm8_cp_variance(100.0, 2_000.0, 10_000.0, pr);
        let v_more_total = analysis::thm8_cp_variance(100.0, 1_000.0, 20_000.0, pr);
        prop_assert!(v_more_n > v_base, "variance grows with class size n (§V-C)");
        prop_assert!(v_more_total > v_base, "variance grows with N");
    }

    /// Theorem 10's gap bound stays positive across budgets and shapes.
    #[test]
    fn thm10_gap_positive(
        eps_v in 0.2f64..8.0,
        c in 2u32..20,
        f in 1.0f64..1e4,
        extra_n in 0.0f64..1e5,
        extra_total in 0.0f64..1e6,
    ) {
        let pr = CpProbs::even_split(Eps::new(eps_v).unwrap(), c).unwrap();
        let n = f + extra_n;
        let n_total = n + extra_total;
        let f_item = f; // item appears only in this class
        prop_assert!(analysis::thm10_variance_gap_lower_bound(f, n, f_item, n_total, pr) > 0.0);
    }

    /// CP reports preserve shape invariants for arbitrary pairs.
    #[test]
    fn cp_report_shape(seed in any::<u64>(), c in 2u32..10, d in 1u32..100) {
        let domains = Domains::new(c, d).unwrap();
        let m = CorrelatedPerturbation::with_total(Eps::new(1.0).unwrap(), domains).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let pair = LabelItem::new(c - 1, d - 1);
        let r = m.privatize(pair, &mut rng).unwrap();
        prop_assert!(r.label < c);
        prop_assert_eq!(r.bits.len(), d as usize + 1);
    }

    /// The CP aggregator's estimate is finite everywhere for any stream.
    #[test]
    fn cp_estimates_finite(seed in any::<u64>(), n in 1usize..300) {
        let domains = Domains::new(3, 8).unwrap();
        let m = CorrelatedPerturbation::with_total(Eps::new(0.5).unwrap(), domains).unwrap();
        let mut agg = CpAggregator::new(&m);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let pair = LabelItem::new((i % 3) as u32, (i % 8) as u32);
            agg.absorb(&m.privatize(pair, &mut rng).unwrap()).unwrap();
        }
        for v in agg.estimate().values() {
            prop_assert!(v.is_finite());
        }
    }

    /// VP aggregator invariants: flag count + filtered reports == N, and
    /// estimates stay finite.
    #[test]
    fn vp_aggregator_invariants(seed in any::<u64>(), n in 1usize..300, d in 1u32..64) {
        let vp = ValidityPerturbation::new(Eps::new(1.0).unwrap(), d).unwrap();
        let mut agg = VpAggregator::new(&vp);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let input = if i % 3 == 0 { ValidityInput::Invalid } else { ValidityInput::Valid((i as u32) % d) };
            agg.absorb(&vp.privatize(input, &mut rng).unwrap()).unwrap();
        }
        prop_assert_eq!(agg.report_count(), n as u64);
        prop_assert!(agg.raw_flag_count() <= n as u64);
        for v in agg.estimate() {
            prop_assert!(v.is_finite());
        }
    }
}

proptest! {
    /// Mean estimators produce finite sums/means for arbitrary populations
    /// and budget splits, under both recipes and both numeric mechanisms.
    #[test]
    fn mean_estimators_finite(
        seed in any::<u64>(),
        classes in 2u32..8,
        n in 10usize..300,
        eps_v in 0.2f64..6.0,
    ) {
        use mcim_core::mean::{LabelValue, MeanAggregator, MeanCp, MeanPts, NumericMechanism};
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<LabelValue> = (0..n)
            .map(|i| {
                use rand::Rng;
                LabelValue::new((i as u32) % classes, rng.random_range(-1.0..1.0))
            })
            .collect();
        let eps = Eps::new(eps_v).unwrap();
        for mech_kind in [NumericMechanism::StochasticRounding, NumericMechanism::Piecewise] {
            let pts = MeanPts::with_total(eps, classes, mech_kind).unwrap();
            let cp = MeanCp::with_total(eps, classes, mech_kind).unwrap();
            let mut pts_agg = MeanAggregator::for_pts(&pts);
            let mut cp_agg = MeanAggregator::for_cp(&cp);
            for lv in &data {
                pts_agg.absorb(&pts.privatize(*lv, &mut rng).unwrap()).unwrap();
                cp_agg.absorb(&cp.privatize(*lv, &mut rng).unwrap()).unwrap();
            }
            for c in 0..classes {
                prop_assert!(pts_agg.estimate_class_sum(c).is_finite());
                prop_assert!(cp_agg.estimate_class_sum(c).is_finite());
                if let Some(m) = pts_agg.estimate_mean(c) {
                    prop_assert!(m.is_finite());
                }
            }
        }
    }

    /// MeanCp budget accounting: the three budgets always sum to the total.
    #[test]
    fn mean_cp_budget_sums(eps_v in 0.1f64..10.0) {
        let eps = Eps::new(eps_v).unwrap();
        let (e1, item) = eps.halve();
        let (ef, ev) = item.halve();
        prop_assert!((e1.value() + ef.value() + ev.value() - eps_v).abs() < 1e-12);
    }
}
