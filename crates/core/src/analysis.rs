//! Utility analysis — closed forms for Theorems 4–10 and Table I (§V).
//!
//! Each function mirrors one theorem of the paper; the Monte-Carlo tests in
//! this module and in `validity.rs`/`correlated.rs` check the formulas
//! against simulation, which is the strongest reproduction evidence we can
//! offer for the analysis section.

use mcim_oracles::{Eps, Grr, Result, UnaryEncoding};

/// Mechanism flip probabilities `(p, q)` bundled for the analysis functions.
#[derive(Debug, Clone, Copy)]
pub struct Probs {
    /// Keep probability.
    pub p: f64,
    /// Flip-on probability.
    pub q: f64,
}

impl Probs {
    /// OUE probabilities for budget ε.
    pub fn oue(eps: Eps) -> Self {
        Probs {
            p: 0.5,
            q: 1.0 / (eps.exp() + 1.0),
        }
    }

    /// GRR probabilities for budget ε over domain size `d`.
    pub fn grr(eps: Eps, d: u32) -> Self {
        let e = eps.exp();
        Probs {
            p: e / (e + d as f64 - 1.0),
            q: 1.0 / (e + d as f64 - 1.0),
        }
    }
}

/// **Theorem 4** — expected noise injected into one valid item by `m`
/// invalid users under a plain LDP mechanism (invalid users substitute a
/// uniformly random valid item): `E = m·q + m(p−q)/d`.
pub fn thm4_invalid_noise_mean(d: u32, m: f64, pr: Probs) -> f64 {
    m * pr.q + m * (pr.p - pr.q) / d as f64
}

/// **Theorem 4** — variance of that injected noise:
/// `Var = m·q(1−q) + (m/d)(p−q)(1−p−q)`.
pub fn thm4_invalid_noise_var(d: u32, m: f64, pr: Probs) -> f64 {
    m * pr.q * (1.0 - pr.q) + m / d as f64 * (pr.p - pr.q) * (1.0 - pr.p - pr.q)
}

/// **Theorem 5** — expected noise injected into one valid item by `m`
/// invalid users under validity perturbation: `E = m·q(1−p)`.
pub fn thm5_vp_invalid_noise_mean(m: f64, pr: Probs) -> f64 {
    m * pr.q * (1.0 - pr.p)
}

/// **Theorem 5** — variance of that injected noise:
/// `Var = m·q(1−q) − m·p·q(1 + pq − 2q)`.
pub fn thm5_vp_invalid_noise_var(m: f64, pr: Probs) -> f64 {
    m * pr.q * (1.0 - pr.q) - m * pr.p * pr.q * (1.0 + pr.p * pr.q - 2.0 * pr.q)
}

/// **Theorem 6** — expected collected count of the target item under a
/// plain LDP mechanism, with `n1` target holders, `n2` holders of other
/// valid items (domain size `d`) and `m` invalid users.
pub fn thm6_count_mean(n1: f64, n2: f64, m: f64, d: u32, pr: Probs) -> f64 {
    n1 * pr.p + n2 * pr.q + m * pr.q + m / d as f64 * (pr.p - pr.q)
}

/// **Theorem 6** — variance of that count.
pub fn thm6_count_var(n1: f64, n2: f64, m: f64, d: u32, pr: Probs) -> f64 {
    let Probs { p, q } = pr;
    n1 * (p - p * p) + n2 * (q - q * q) + m * (q - q * q) + m / d as f64 * (p - q) * (1.0 - p - q)
}

/// **Theorem 7** — expected flag-filtered count of the target item under
/// validity perturbation.
pub fn thm7_vp_count_mean(n1: f64, n2: f64, m: f64, pr: Probs) -> f64 {
    let Probs { p, q } = pr;
    n1 * p * (1.0 - q) + n2 * q * (1.0 - q) + m * q * (1.0 - p)
}

/// **Theorem 7** — variance of that count.
pub fn thm7_vp_count_var(n1: f64, n2: f64, m: f64, pr: Probs) -> f64 {
    let Probs { p, q } = pr;
    n1 * (p - p * p + 2.0 * p * p * q - p * q - p * p * q * q)
        + n2 * (q - 2.0 * q * q + 2.0 * q * q * q - q.powi(4))
        + m * (q - q * q + 2.0 * p * q * q - p * q - p * p * q * q)
}

/// §V-B — the count-variance difference `Var_VP − Var_LDP`; the paper shows
/// it is always negative (VP is strictly better at fixed composition).
pub fn vp_variance_advantage(n1: f64, n2: f64, m: f64, d: u32, pr: Probs) -> f64 {
    let Probs { p, q } = pr;
    n1 * p * q * (2.0 * p - 1.0 - p * q)
        + n2 * q * q * (2.0 * q - 1.0 - q * q)
        + m * p * q * (2.0 * q - 1.0 - p * q)
        - m / d as f64 * (p - q) * (1.0 - p - q)
}

/// Label/item probability set for the correlated-perturbation analysis.
#[derive(Debug, Clone, Copy)]
pub struct CpProbs {
    /// Label keep probability `p₁`.
    pub p1: f64,
    /// Label flip probability `q₁`.
    pub q1: f64,
    /// Item keep probability `p₂`.
    pub p2: f64,
    /// Item flip-on probability `q₂`.
    pub q2: f64,
}

impl CpProbs {
    /// The paper's configuration: GRR(ε₁) over `c` labels + OUE(ε₂).
    pub fn standard(eps1: Eps, eps2: Eps, classes: u32) -> Result<Self> {
        let grr = Grr::new(eps1, classes)?;
        let oue = UnaryEncoding::optimized(eps2, 2)?; // q depends only on ε
        Ok(CpProbs {
            p1: grr.p(),
            q1: grr.q(),
            p2: oue.p(),
            q2: oue.q(),
        })
    }

    /// Even split of a total budget, the paper's default.
    pub fn even_split(eps: Eps, classes: u32) -> Result<Self> {
        let (e1, e2) = eps.halve();
        Self::standard(e1, e2, classes)
    }
}

/// **Theorem 8 / Eq. (5)** — variance of the calibrated CP estimate
/// `f̂(C, I)` given true pair count `f`, class size `n`, population `N`.
pub fn thm8_cp_variance(f: f64, n: f64, n_total: f64, pr: CpProbs) -> f64 {
    let CpProbs { p1, q1, p2, q2 } = pr;
    let a = p1 * (1.0 - q2) * (p2 - q2);
    let a2 = a * a;
    let t1 = f * (p1 * (1.0 - q2) * p2) * (1.0 - p1 * (1.0 - q2) * p2) / a2;
    let t2 = (n - f) * (p1 * (1.0 - q2) * q2) * (1.0 - p1 * (1.0 - q2) * q2) / a2;
    let t3 = (n_total - n) * (q1 * (1.0 - p2) * q2) * (1.0 - q1 * (1.0 - p2) * q2) / a2;
    let coef = q2 * (p1 * (1.0 - q2) - q1 * (1.0 - p2)) / a;
    let var_n_hat = (n * (p1 * (1.0 - p1) - q1 * (1.0 - q1)) + n_total * q1 * (1.0 - q1))
        / ((p1 - q1) * (p1 - q1));
    t1 + t2 + t3 + coef * coef * var_n_hat
}

/// Exact variance of the calibrated CP estimate — Theorem 8's Eq. (5)
/// **plus** the `f̃`–`n̂` covariance the paper's closed form drops when it
/// treats the class-size estimate as independent.
///
/// Every user counted by `f̃(C, I)` necessarily reported label `C`, so
/// `Cov(f̃, ñ) = Σ_u x_u (1 − y_u)` over the three user populations, where
/// `x_u` is the user's `f̃`-contribution probability and `y_u` its
/// label-report probability. The covariance enters the estimator variance
/// with coefficient `−2·c/a²` (`c` = Eq. (4)'s `n̂` coefficient, `a` the
/// calibration denominator) and is non-negligible at small populations —
/// the Monte-Carlo test below matches this form to well under a percent.
pub fn cp_variance_exact(f: f64, n: f64, n_total: f64, pr: CpProbs) -> f64 {
    let CpProbs { p1, q1, p2, q2 } = pr;
    let a = p1 * (1.0 - q2) * (p2 - q2);
    let c = q2 * (p1 * (1.0 - q2) - q1 * (1.0 - p2));
    let cov_raw = f * p1 * (1.0 - q2) * p2 * (1.0 - p1)
        + (n - f) * p1 * (1.0 - q2) * q2 * (1.0 - p1)
        + (n_total - n) * q1 * (1.0 - p2) * q2 * (1.0 - q1);
    let cov_n_hat = cov_raw / (p1 - q1);
    thm8_cp_variance(f, n, n_total, pr) - 2.0 * c * cov_n_hat / (a * a)
}

/// Derived variance of the PTS (GRR + OUE, uncorrelated) estimate Eq. (6),
/// treating `n̂` and the global item estimate as independent (the same
/// simplification the paper's Eq. (5) uses for `n̂`). `f_item` is the global
/// frequency of the item across classes.
pub fn pts_variance(f: f64, n: f64, f_item: f64, n_total: f64, pr: CpProbs) -> f64 {
    let CpProbs { p1, q1, p2, q2 } = pr;
    let denom = (p1 - q1) * (p2 - q2);
    let denom2 = denom * denom;
    // Var of the raw pair count f̃: four Binomial populations.
    let c11 = p1 * p2; // (C, I) users
    let c12 = p1 * q2; // (C, I') users
    let c21 = q1 * p2; // (C', I) users
    let c22 = q1 * q2; // (C', I') users
    let var_raw = f * c11 * (1.0 - c11)
        + (n - f) * c12 * (1.0 - c12)
        + (f_item - f) * c21 * (1.0 - c21)
        + (n_total - n - (f_item - f)) * c22 * (1.0 - c22);
    let var_n_hat = (n * (p1 * (1.0 - p1) - q1 * (1.0 - q1)) + n_total * q1 * (1.0 - q1))
        / ((p1 - q1) * (p1 - q1));
    let var_item_hat = (f_item * (p2 * (1.0 - p2) - q2 * (1.0 - q2)) + n_total * q2 * (1.0 - q2))
        / ((p2 - q2) * (p2 - q2));
    (var_raw
        + q2 * q2 * (p1 - q1) * (p1 - q1) * var_n_hat
        + q1 * q1 * (p2 - q2) * (p2 - q2) * var_item_hat)
        / denom2
}

/// **Theorem 10** — the paper's lower bound on the variance gap
/// `Var[f̂]_{GRR+OUE} − Var[f̂]_{CP}` (positive ⇒ CP wins).
pub fn thm10_variance_gap_lower_bound(
    f: f64,
    n: f64,
    f_item: f64,
    n_total: f64,
    pr: CpProbs,
) -> f64 {
    let CpProbs { p1, q1, p2, q2 } = pr;
    let a = p1 * (1.0 - q2) * (p2 - q2);
    let term1 = ((n - f) * p1 * p1 * q2 * q2 * (1.0 - q2) * (1.0 - q2)
        + (n_total - n) * q1 * q2 * p2 * (1.0 - q1 * q2) * (1.0 - q1 * q2))
        / (a * a);
    let c2 = q1 * q2 * (1.0 - p2) / a;
    let term2 =
        c2 * c2 * (n * p1 * (1.0 - p1) + (n_total - n) * q1 * (1.0 - q1)) / ((p1 - q1) * (p1 - q1));
    let c3 = q1 / ((p1 - q1) * (p2 - q2));
    let term3 = c3 * c3 * (f_item * p2 * (1.0 - p2) + (n_total - f_item) * q2 * (1.0 - q2));
    term1 + term2 + term3
}

/// One row of **Table I**: the linear coefficients of `f(C,I)`, `n`, `N` in
/// Eq. (5). Computed with GRR over `classes` labels and OUE items at an even
/// ε split, matching the paper's setup (SYN1: 4 classes).
#[derive(Debug, Clone, Copy)]
pub struct VarianceCoefficients {
    /// Coefficient of the pair frequency `f(C, I)`.
    pub f_coef: f64,
    /// Coefficient of the class size `n`.
    pub n_coef: f64,
    /// Coefficient of the population size `N`.
    pub n_total_coef: f64,
}

/// Computes one Table I row by symbolic differentiation of Eq. (5) (the
/// equation is affine in `f`, `n`, `N`).
pub fn table1_coefficients(eps: Eps, classes: u32) -> Result<VarianceCoefficients> {
    let pr = CpProbs::even_split(eps, classes)?;
    // Evaluate the affine map at unit probes.
    let base = thm8_cp_variance(0.0, 0.0, 0.0, pr);
    let f_coef = thm8_cp_variance(1.0, 0.0, 0.0, pr) - base;
    let n_coef = thm8_cp_variance(0.0, 1.0, 0.0, pr) - base;
    let n_total_coef = thm8_cp_variance(0.0, 0.0, 1.0, pr) - base;
    Ok(VarianceCoefficients {
        f_coef,
        n_coef,
        n_total_coef,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::{ValidityInput, ValidityPerturbation, VpAggregator};
    use mcim_oracles::UnaryEncoding;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn thm4_matches_simulation() {
        // m invalid users substitute a random item and report through OUE.
        let d = 10u32;
        let m = 50_000usize;
        let e = eps(1.0);
        let pr = Probs::oue(e);
        let oue = UnaryEncoding::optimized(e, d).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let mut count0 = 0u64;
        for _ in 0..m {
            let fake = rng.random_range(0..d);
            if oue.privatize(fake, &mut rng).unwrap().get(0) {
                count0 += 1;
            }
        }
        let predicted = thm4_invalid_noise_mean(d, m as f64, pr);
        assert!(
            (count0 as f64 - predicted).abs() < 0.03 * predicted,
            "sim {count0} vs thm4 {predicted}"
        );
    }

    #[test]
    fn thm5_matches_simulation() {
        let d = 10u32;
        let m = 50_000usize;
        let e = eps(1.0);
        let pr = Probs::oue(e);
        let vp = ValidityPerturbation::new(e, d).unwrap();
        let mut agg = VpAggregator::new(&vp);
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..m {
            agg.absorb(&vp.privatize(ValidityInput::Invalid, &mut rng).unwrap())
                .unwrap();
        }
        let predicted = thm5_vp_invalid_noise_mean(m as f64, pr);
        let sim = agg.raw_counts()[0] as f64;
        assert!(
            (sim - predicted).abs() < 0.05 * predicted,
            "sim {sim} vs thm5 {predicted}"
        );
    }

    #[test]
    fn thm5_noise_is_below_thm4() {
        for e in [0.5, 1.0, 2.0, 4.0] {
            let pr = Probs::oue(eps(e));
            for d in [4u32, 64, 1024] {
                let m = 1000.0;
                assert!(
                    thm5_vp_invalid_noise_mean(m, pr) < thm4_invalid_noise_mean(d, m, pr),
                    "e={e} d={d}"
                );
            }
        }
    }

    #[test]
    fn vp_variance_advantage_always_negative() {
        // §V-B claims the difference is always < 0.
        for e in [0.5f64, 1.0, 2.0, 4.0] {
            let pr = Probs::oue(eps(e));
            for d in [4u32, 100] {
                for (n1, n2, m) in [
                    (100.0, 900.0, 500.0),
                    (0.0, 0.0, 1000.0),
                    (1000.0, 0.0, 10.0),
                ] {
                    let diff = vp_variance_advantage(n1, n2, m, d, pr);
                    assert!(diff < 0.0, "e={e} d={d} n1={n1} n2={n2} m={m}: diff={diff}");
                }
            }
        }
    }

    #[test]
    fn thm6_thm7_match_simulation() {
        let d = 8u32;
        let e = eps(1.0);
        let pr = Probs::oue(e);
        let (n1, n2, m) = (6_000usize, 18_000usize, 12_000usize);
        let mut rng = StdRng::seed_from_u64(33);

        // Plain OUE with random substitution for invalid users.
        let oue = UnaryEncoding::optimized(e, d).unwrap();
        let mut count = 0u64;
        for u in 0..n1 + n2 + m {
            let item = if u < n1 {
                0
            } else if u < n1 + n2 {
                1 + (u % (d as usize - 1)) as u32
            } else {
                rng.random_range(0..d)
            };
            if oue.privatize(item, &mut rng).unwrap().get(0) {
                count += 1;
            }
        }
        let predicted6 = thm6_count_mean(n1 as f64, n2 as f64, m as f64, d, pr);
        assert!(
            (count as f64 - predicted6).abs() < 0.03 * predicted6,
            "thm6: sim {count} vs {predicted6}"
        );

        // VP.
        let vp = ValidityPerturbation::new(e, d).unwrap();
        let mut agg = VpAggregator::new(&vp);
        for u in 0..n1 + n2 + m {
            let input = if u < n1 {
                ValidityInput::Valid(0)
            } else if u < n1 + n2 {
                ValidityInput::Valid(1 + (u % (d as usize - 1)) as u32)
            } else {
                ValidityInput::Invalid
            };
            agg.absorb(&vp.privatize(input, &mut rng).unwrap()).unwrap();
        }
        let predicted7 = thm7_vp_count_mean(n1 as f64, n2 as f64, m as f64, pr);
        let sim7 = agg.raw_counts()[0] as f64;
        assert!(
            (sim7 - predicted7).abs() < 0.03 * predicted7,
            "thm7: sim {sim7} vs {predicted7}"
        );
    }

    #[test]
    fn table1_n_row_matches_paper() {
        // Paper Table I, the `n` coefficient: ε=1 → 58.9, ε=2 → 10.5
        // (c = 4, the SYN1 configuration). Our exact evaluation of Eq. (5)
        // reproduces these to the paper's displayed precision.
        let c1 = table1_coefficients(eps(1.0), 4).unwrap();
        assert!((c1.n_coef - 58.9).abs() < 0.2, "ε=1 n coef {}", c1.n_coef);
        let c2 = table1_coefficients(eps(2.0), 4).unwrap();
        assert!((c2.n_coef - 10.5).abs() < 0.2, "ε=2 n coef {}", c2.n_coef);
    }

    #[test]
    fn table1_coefficients_decrease_with_eps() {
        let mut prev = table1_coefficients(eps(0.5), 4).unwrap();
        for e in [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0] {
            let cur = table1_coefficients(eps(e), 4).unwrap();
            assert!(cur.f_coef < prev.f_coef, "f coef must fall with ε");
            assert!(cur.n_coef < prev.n_coef, "n coef must fall with ε");
            assert!(
                cur.n_total_coef < prev.n_total_coef,
                "N coef must fall with ε"
            );
            prev = cur;
        }
    }

    #[test]
    fn thm8_variance_matches_monte_carlo() {
        use crate::correlated::{CorrelatedPerturbation, CpAggregator};
        use crate::{Domains, LabelItem};
        // Small population, many trials: empirical Var[f̂] ≈ Eq. (5).
        let domains = Domains::new(4, 4).unwrap();
        let e = eps(2.0);
        let m = CorrelatedPerturbation::with_total(e, domains).unwrap();
        let pr = CpProbs::even_split(e, 4).unwrap();
        let n_total = 2000usize;
        let n_class = 800usize; // class 0 size
        let f = 500usize; // f(class 0, item 0)
        let trials = 400;
        let mut rng = StdRng::seed_from_u64(77);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..trials {
            let mut agg = CpAggregator::new(&m);
            for u in 0..n_total {
                let pair = if u < f {
                    LabelItem::new(0, 0)
                } else if u < n_class {
                    LabelItem::new(0, 1 + (u % 3) as u32)
                } else {
                    LabelItem::new(1 + (u % 3) as u32, (u % 4) as u32)
                };
                agg.absorb(&m.privatize(pair, &mut rng).unwrap()).unwrap();
            }
            let est = agg.estimate().get(0, 0);
            sum += est;
            sum_sq += est * est;
        }
        let mean = sum / trials as f64;
        let var = sum_sq / trials as f64 - mean * mean;
        let predicted = cp_variance_exact(f as f64, n_class as f64, n_total as f64, pr);
        // Unbiasedness: mean close to f within a few standard errors.
        let se = (predicted / trials as f64).sqrt();
        assert!(
            (mean - f as f64).abs() < 5.0 * se,
            "mean {mean} vs f {f} (se {se})"
        );
        // The exact form (Eq. (5) + the f̃–n̂ covariance) must match the
        // empirical variance within its sampling error (~7% relative SE for
        // a variance over 400 trials).
        assert!(
            (var - predicted).abs() < 0.15 * predicted,
            "var {var} vs predicted {predicted}"
        );
        // Eq. (5) itself drops that covariance, which only *adds* noise
        // terms: it must stay a (strict, here) upper bound.
        let simplified = thm8_cp_variance(f as f64, n_class as f64, n_total as f64, pr);
        assert!(
            simplified > var,
            "Eq. (5) {simplified} should upper-bound empirical {var}"
        );
    }

    #[test]
    fn thm10_gap_is_positive() {
        for e in [0.5, 1.0, 2.0, 4.0] {
            let pr = CpProbs::even_split(eps(e), 4).unwrap();
            let gap = thm10_variance_gap_lower_bound(1e3, 1e5, 5e3, 1e6, pr);
            assert!(gap > 0.0, "ε={e}: gap {gap}");
        }
    }

    #[test]
    fn cp_beats_pts_in_analytic_variance() {
        // The actual comparison behind Theorem 10: our derived PTS variance
        // exceeds the CP variance across budgets.
        for e in [0.5, 1.0, 2.0, 4.0] {
            let pr = CpProbs::even_split(eps(e), 4).unwrap();
            let (f, n, f_item, n_total) = (1e3, 1e5, 5e3, 1e6);
            let cp = thm8_cp_variance(f, n, n_total, pr);
            let pts = pts_variance(f, n, f_item, n_total, pr);
            assert!(pts > cp, "ε={e}: pts {pts} vs cp {cp}");
        }
    }
}
