//! HEC — *Handle Each Class independently* (§II-D), the strawman baseline.
//!
//! Users are partitioned round-robin into `c` groups; group `g` collects
//! item statistics for class `C_g` with the full budget ε through the
//! adaptive oracle. A user whose label does not match her group's class has
//! no valid item for that class and must submit a **uniformly random item**
//! to keep deniability — the invalid-data noise that motivates the whole
//! paper (Theorem 4 quantifies it).
//!
//! Estimator (§VI-A): `f̂(C, I) = (c·f̃(C, I) − N·q)/(p − q)`, implemented
//! with the exact group sizes so it stays unbiased when `c ∤ N`.

use rand::Rng;

use mcim_oracles::{parallel, stream, Aggregator, Eps, Error, Oracle, Report, Result};

use crate::{Domains, FrequencyTable, LabelItem};

/// The HEC framework (client side).
#[derive(Debug, Clone)]
pub struct Hec {
    domains: Domains,
    oracle: Oracle,
}

/// A report tagged with the group that produced it.
#[derive(Debug, Clone)]
pub struct HecReport {
    /// Group index = class index the user was assigned to mine.
    pub group: u32,
    /// The perturbed item report.
    pub report: Report,
}

impl Hec {
    /// Creates the framework with the adaptive oracle over the item domain.
    pub fn new(eps: Eps, domains: Domains) -> Result<Self> {
        Ok(Hec {
            domains,
            oracle: Oracle::adaptive(eps, domains.items())?,
        })
    }

    /// The domains.
    #[inline]
    pub fn domains(&self) -> Domains {
        self.domains
    }

    /// The underlying oracle (exposed for analysis / tests).
    #[inline]
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Which group (class) user `user_index` is assigned to mine.
    #[inline]
    pub fn group_of(&self, user_index: u64) -> u32 {
        (user_index % self.domains.classes() as u64) as u32
    }

    /// Privatizes one user's pair. `user_index` determines the group.
    pub fn privatize<R: Rng + ?Sized>(
        &self,
        user_index: u64,
        pair: LabelItem,
        rng: &mut R,
    ) -> Result<HecReport> {
        self.domains.check(pair)?;
        let group = self.group_of(user_index);
        // Mismatched label ⇒ invalid for this group ⇒ random item for
        // deniability (the strawman's handling of invalid data).
        let value = if pair.label == group {
            pair.item
        } else {
            rng.random_range(0..self.domains.items())
        };
        Ok(HecReport {
            group,
            report: self.oracle.privatize(value, rng)?,
        })
    }

    /// Privatizes a batch of pairs on up to `threads` workers; user
    /// `pairs[i]` gets the global index `first_user_index + i` (group
    /// assignment is positional in HEC). Sharded deterministic RNG streams
    /// make the output bit-identical for every thread count.
    pub fn privatize_batch(
        &self,
        first_user_index: u64,
        pairs: &[LabelItem],
        base_seed: u64,
        threads: usize,
    ) -> Result<Vec<HecReport>> {
        parallel::try_fill_shards(pairs, threads, |shard, chunk, slots| {
            let mut rng = parallel::shard_rng(base_seed, shard);
            let start = first_user_index + shard * parallel::SHARD_SIZE as u64;
            for (i, (&pair, slot)) in chunk.iter().zip(slots.iter_mut()).enumerate() {
                *slot = Some(self.privatize(start + i as u64, pair, &mut rng)?);
            }
            Ok(())
        })
    }
}

/// Server-side aggregation: one oracle aggregator per class group.
#[derive(Debug, Clone)]
pub struct HecAggregator {
    domains: Domains,
    groups: Vec<Aggregator>,
}

impl HecAggregator {
    /// Creates an empty aggregator matching the framework.
    pub fn new(framework: &Hec) -> Self {
        HecAggregator {
            domains: framework.domains,
            groups: (0..framework.domains.classes())
                .map(|_| Aggregator::new(&framework.oracle))
                .collect(),
        }
    }

    /// Absorbs one report into its group.
    pub fn absorb(&mut self, report: &HecReport) -> Result<()> {
        let g = report.group as usize;
        if g >= self.groups.len() {
            return Err(Error::ValueOutOfDomain {
                value: report.group as u64,
                domain: self.groups.len() as u64,
            });
        }
        self.groups[g].absorb(&report.report)
    }

    /// Absorbs a block of reports: bucketed by group, each group's block
    /// goes through its oracle aggregator's word-parallel path
    /// ([`Aggregator::absorb_all`]).
    pub fn absorb_all<'a, I>(&mut self, reports: I) -> Result<()>
    where
        I: IntoIterator<Item = &'a HecReport>,
    {
        let mut buckets: Vec<Vec<&Report>> = vec![Vec::new(); self.groups.len()];
        let mut outcome = Ok(());
        for report in reports {
            let g = report.group as usize;
            if g >= buckets.len() {
                outcome = Err(Error::ValueOutOfDomain {
                    value: report.group as u64,
                    domain: buckets.len() as u64,
                });
                break;
            }
            buckets[g].push(&report.report);
        }
        for (agg, bucket) in self.groups.iter_mut().zip(&buckets) {
            agg.absorb_all(bucket.iter().copied())?;
        }
        outcome
    }

    /// [`HecAggregator::absorb_all`] sharded across up to `threads`
    /// workers; bit-identical for every thread count.
    pub fn absorb_batch(&mut self, reports: &[HecReport], threads: usize) -> Result<()> {
        if threads.max(1) == 1 || reports.len() <= parallel::SHARD_SIZE {
            return self.absorb_all(reports);
        }
        let template = self.fresh();
        let shards = parallel::map_shards(reports, threads, |_, chunk| {
            let mut local = template.clone();
            local.absorb_all(chunk).map(|()| local)
        });
        for shard in shards {
            self.merge(&shard?)?;
        }
        Ok(())
    }

    /// Absorbs every report pulled from `source` in bounded chunks —
    /// [`HecAggregator::absorb_batch`] without the materialized slice.
    /// Counts are bit-identical to the batch path for every chunk size and
    /// thread count.
    pub fn absorb_stream<S>(&mut self, source: &mut S, config: stream::StreamConfig) -> Result<()>
    where
        S: stream::ReportSource<Item = HecReport>,
    {
        let template = self.fresh();
        let merged = stream::absorb_stream_with(
            source,
            config,
            &template,
            |agg: &mut HecAggregator, chunk| agg.absorb_all(chunk),
            |a, b| a.merge(b),
        )?;
        self.merge(&merged)
    }

    /// An empty aggregator with this one's group oracles (the per-shard
    /// accumulator of [`HecAggregator::absorb_batch`]).
    fn fresh(&self) -> Self {
        HecAggregator {
            domains: self.domains,
            groups: self
                .groups
                .iter()
                .map(|g| Aggregator::new(g.oracle()))
                .collect(),
        }
    }

    /// Merges another aggregator over the same framework (sharded
    /// aggregation across threads).
    pub fn merge(&mut self, other: &HecAggregator) -> Result<()> {
        if self.domains != other.domains || self.groups.len() != other.groups.len() {
            return Err(Error::ReportMismatch {
                expected: "HEC aggregator with identical domains",
            });
        }
        for (a, b) in self.groups.iter_mut().zip(&other.groups) {
            a.merge(b)?;
        }
        Ok(())
    }

    /// Total reports absorbed across groups.
    pub fn report_count(&self) -> u64 {
        self.groups.iter().map(|g| g.report_count()).sum()
    }

    /// Estimates the classwise frequency table.
    ///
    /// Each group's calibrated counts estimate the class's item frequencies
    /// *within the group's user sample*; scaling by `N / N_g` (≈ `c`)
    /// recovers population counts — the `c·f̃` of the paper's formula.
    pub fn estimate(&self) -> Result<FrequencyTable> {
        let n_total: u64 = self.report_count();
        let mut table = FrequencyTable::zeros(self.domains);
        for (g, agg) in self.groups.iter().enumerate() {
            let n_g = agg.report_count();
            if n_g == 0 {
                return Err(Error::InvalidParameter {
                    name: "data",
                    constraint: "every class group needs at least one user",
                });
            }
            let scale = n_total as f64 / n_g as f64;
            for (item, est) in agg.estimate().into_iter().enumerate() {
                *table.get_mut(g as u32, item as u32) = scale * est;
            }
        }
        Ok(table)
    }
}

/// Partial state for the distributed reducer: every group's counters.
/// Decoded against a template, so a partial with a different group count
/// (built for other domains) is rejected.
impl mcim_oracles::wire::WireState for HecAggregator {
    fn save(&self, buf: &mut Vec<u8>) {
        use mcim_oracles::wire::Wire;
        (self.groups.len() as u32).put(buf);
        for group in &self.groups {
            group.save(buf);
        }
    }

    fn load(&mut self, r: &mut mcim_oracles::wire::WireReader<'_>) -> Result<()> {
        use mcim_oracles::wire::Wire;
        if u32::take(r)? as usize != self.groups.len() {
            return Err(Error::ReportMismatch {
                expected: "HEC partial with the template's group count",
            });
        }
        for group in &mut self.groups {
            group.load(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn groups_rotate_round_robin() {
        let fw = Hec::new(eps(1.0), Domains::new(3, 4).unwrap()).unwrap();
        assert_eq!(fw.group_of(0), 0);
        assert_eq!(fw.group_of(1), 1);
        assert_eq!(fw.group_of(2), 2);
        assert_eq!(fw.group_of(3), 0);
    }

    #[test]
    fn empty_group_is_an_error() {
        let fw = Hec::new(eps(1.0), Domains::new(3, 4).unwrap()).unwrap();
        let mut agg = HecAggregator::new(&fw);
        let mut rng = StdRng::seed_from_u64(0);
        // Only one user → groups 1 and 2 empty.
        let r = fw.privatize(0, LabelItem::new(0, 0), &mut rng).unwrap();
        agg.absorb(&r).unwrap();
        assert!(agg.estimate().is_err());
    }

    #[test]
    fn estimates_match_theorem4_biased_expectation() {
        // HEC is *not* unbiased: each group's invalid users add random-item
        // noise. After calibration and scaling, the bias per (C, I) cell is
        // (N − n_C)/d — exactly Theorem 4's injection. We assert the
        // estimate matches truth *plus* that predicted bias.
        let domains = Domains::new(2, 4).unwrap();
        let fw = Hec::new(eps(6.0), domains).unwrap();
        let mut agg = HecAggregator::new(&fw);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 40_000u64;
        // class 0 → item 1 (60%), class 1 → item 2 (40%).
        for u in 0..n {
            let pair = if u % 5 < 3 {
                LabelItem::new(0, 1)
            } else {
                LabelItem::new(1, 2)
            };
            agg.absorb(&fw.privatize(u, pair, &mut rng).unwrap())
                .unwrap();
        }
        let est = agg.estimate().unwrap();
        let n = n as f64;
        let d = 4.0;
        let bias0 = (n - 0.6 * n) / d; // class 0 holds 60% of users
        let bias1 = (n - 0.4 * n) / d;
        assert!(
            (est.get(0, 1) - (0.6 * n + bias0)).abs() < 0.03 * n,
            "est {} vs biased expectation {}",
            est.get(0, 1),
            0.6 * n + bias0
        );
        assert!(
            (est.get(1, 2) - (0.4 * n + bias1)).abs() < 0.03 * n,
            "est {} vs biased expectation {}",
            est.get(1, 2),
            0.4 * n + bias1
        );
    }

    #[test]
    fn mismatched_users_submit_random_items() {
        // With a huge ε the oracle barely perturbs; a user in the wrong
        // group must still hide her item behind a uniform draw.
        let domains = Domains::new(2, 8).unwrap();
        let fw = Hec::new(eps(10.0), domains).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            // user_index 1 → group 1, but label is 0: invalid.
            let r = fw.privatize(1, LabelItem::new(0, 5), &mut rng).unwrap();
            if let Report::Value(v) = r.report {
                counts[v as usize] += 1;
            } else if let Report::Bits(bits) = &r.report {
                for i in bits.iter_ones() {
                    counts[i] += 1;
                }
            }
        }
        // No single item should dominate: uniform ⇒ each ≈ 1000.
        for (item, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 1000.0).abs() < 250.0,
                "item {item}: count {c} not uniform"
            );
        }
    }
}
