//! The three multi-class frequency-estimation frameworks (§III, §VI-A).
//!
//! * [`Hec`] — *Handle Each Class independently*: the strawman; users are
//!   partitioned by class assignment and mismatched users submit random
//!   items (§II-D).
//! * [`Ptj`] — *Perturb The pair Jointly* over the Cartesian domain `C × I`
//!   (§III-B).
//! * [`Pts`] — *Perturb The pair Separately*: GRR on the label, OUE on the
//!   item, estimator Eq. (6).
//! * `PtsCp` ([`Framework::PtsCp`]) — PTS with the paper's **correlated perturbation**,
//!   estimator Eq. (4).
//!
//! Each framework exposes the same two-phase API: a client-side
//! `privatize`-style step and a streaming server-side aggregator, plus a
//! convenience [`run`](Framework::run) that processes a whole dataset and
//! returns the estimated [`FrequencyTable`] with communication statistics.

mod hec;
mod ptj;
mod pts;

pub use hec::{Hec, HecAggregator, HecReport};
pub use ptj::{Ptj, PtjAggregator};
pub use pts::{Pts, PtsAggregator, PtsReport};

use mcim_oracles::stream::{ReportSource, StreamConfig};
use mcim_oracles::{parallel, Eps, Result};
use rand::Rng;

use crate::correlated::{CorrelatedPerturbation, CpAggregator};
use crate::{Domains, FrequencyTable, LabelItem};

/// Communication accounting for one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Total uplink bits across all users.
    pub total_report_bits: u64,
    /// Number of reporting users.
    pub users: u64,
}

impl CommStats {
    /// Adds one report of `bits` bits.
    #[inline]
    pub fn record(&mut self, bits: usize) {
        self.total_report_bits += bits as u64;
        self.users += 1;
    }

    /// Mean uplink bits per user.
    pub fn bits_per_user(&self) -> f64 {
        if self.users == 0 {
            0.0
        } else {
            self.total_report_bits as f64 / self.users as f64
        }
    }

    /// Merges another accounting record.
    pub fn merge(&mut self, other: CommStats) {
        self.total_report_bits += other.total_report_bits;
        self.users += other.users;
    }
}

/// Result of a full frequency-estimation run.
#[derive(Debug, Clone)]
pub struct EstimationResult {
    /// Estimated classwise frequencies `f̂(C, I)`.
    pub table: FrequencyTable,
    /// Communication statistics.
    pub comm: CommStats,
}

/// A framework selector for experiment harnesses (Fig. 6 sweeps these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Framework {
    /// Handle-each-class strawman.
    Hec,
    /// Joint perturbation over `C × I`.
    Ptj,
    /// Separate label/item perturbation; `label_frac` is ε₁/ε.
    Pts {
        /// Fraction of the budget spent on the label (paper default 0.5).
        label_frac: f64,
    },
    /// PTS with correlated perturbation; `label_frac` is ε₁/ε.
    PtsCp {
        /// Fraction of the budget spent on the label (paper default 0.5).
        label_frac: f64,
    },
}

impl Framework {
    /// Display name used in benchmark tables (paper's labels).
    pub fn name(&self) -> &'static str {
        match self {
            Framework::Hec => "HEC",
            Framework::Ptj => "PTJ",
            Framework::Pts { .. } => "PTS",
            Framework::PtsCp { .. } => "PTS-CP",
        }
    }

    /// The paper's default framework set for Fig. 6.
    pub fn fig6_set() -> [Framework; 4] {
        [
            Framework::Hec,
            Framework::Ptj,
            Framework::Pts { label_frac: 0.5 },
            Framework::PtsCp { label_frac: 0.5 },
        ]
    }

    /// Runs the framework end-to-end over a dataset.
    pub fn run<R: Rng + ?Sized>(
        &self,
        eps: Eps,
        domains: Domains,
        data: &[LabelItem],
        rng: &mut R,
    ) -> Result<EstimationResult> {
        match *self {
            Framework::Hec => {
                let mech = Hec::new(eps, domains)?;
                let mut agg = HecAggregator::new(&mech);
                let mut comm = CommStats::default();
                for (u, &pair) in data.iter().enumerate() {
                    let report = mech.privatize(u as u64, pair, rng)?;
                    comm.record(report.report.size_bits());
                    agg.absorb(&report)?;
                }
                Ok(EstimationResult {
                    table: agg.estimate()?,
                    comm,
                })
            }
            Framework::Ptj => {
                let mech = Ptj::new(eps, domains)?;
                let mut agg = PtjAggregator::new(&mech);
                let mut comm = CommStats::default();
                for &pair in data {
                    let report = mech.privatize(pair, rng)?;
                    comm.record(report.size_bits());
                    agg.absorb(&report)?;
                }
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
            Framework::Pts { label_frac } => {
                let (e1, e2) = eps.split(label_frac)?;
                let mech = Pts::new(e1, e2, domains)?;
                let mut agg = PtsAggregator::new(&mech);
                let mut comm = CommStats::default();
                for &pair in data {
                    let report = mech.privatize(pair, rng)?;
                    comm.record(report.size_bits());
                    agg.absorb(&report)?;
                }
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
            Framework::PtsCp { label_frac } => {
                let (e1, e2) = eps.split(label_frac)?;
                let mech = CorrelatedPerturbation::new(e1, e2, domains)?;
                let mut agg = CpAggregator::new(&mech);
                let mut comm = CommStats::default();
                for &pair in data {
                    let report = mech.privatize(pair, rng)?;
                    comm.record(report.size_bits());
                    agg.absorb(&report)?;
                }
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
        }
    }

    /// Runs the framework end-to-end on the batched, sharded runtime.
    ///
    /// The dataset is split into fixed [`parallel::SHARD_SIZE`] shards;
    /// each shard privatizes its users with the deterministic per-shard RNG
    /// [`parallel::shard_rng`]`(base_seed, shard)` and aggregates through
    /// the word-parallel column-sum path, and the per-shard counters are
    /// merged in shard order. The estimated table is therefore a pure
    /// function of `(self, eps, domains, data, base_seed)` — bit-identical
    /// for every `threads` value.
    pub fn run_batch(
        &self,
        eps: Eps,
        domains: Domains,
        data: &[LabelItem],
        base_seed: u64,
        threads: usize,
    ) -> Result<EstimationResult> {
        /// Shards `data`, runs `shard_fn` per shard into a (partial
        /// aggregator, comm) pair, and folds the partials with `merge_fn`.
        fn sharded<A, I, F, M>(
            data: &[I],
            threads: usize,
            mut acc: A,
            shard_fn: F,
            mut merge_fn: M,
        ) -> Result<EstimationResultParts<A>>
        where
            I: Sync,
            A: Clone + Send + Sync,
            F: Fn(u64, &[I], A) -> Result<(A, CommStats)> + Sync,
            M: FnMut(&mut A, &A) -> Result<()>,
        {
            let template = acc.clone();
            let shards = parallel::map_shards(data, threads, |shard, chunk| {
                shard_fn(shard, chunk, template.clone())
            });
            let mut comm = CommStats::default();
            for shard in shards {
                let (partial, partial_comm) = shard?;
                merge_fn(&mut acc, &partial)?;
                comm.merge(partial_comm);
            }
            Ok((acc, comm))
        }
        type EstimationResultParts<A> = (A, CommStats);

        match *self {
            Framework::Hec => {
                let mech = Hec::new(eps, domains)?;
                let (agg, comm) = sharded(
                    data,
                    threads,
                    HecAggregator::new(&mech),
                    |shard, chunk, mut agg| {
                        let mut rng = parallel::shard_rng(base_seed, shard);
                        let start = shard * parallel::SHARD_SIZE as u64;
                        let mut comm = CommStats::default();
                        let mut reports = Vec::with_capacity(chunk.len());
                        for (i, &pair) in chunk.iter().enumerate() {
                            let report = mech.privatize(start + i as u64, pair, &mut rng)?;
                            comm.record(report.report.size_bits());
                            reports.push(report);
                        }
                        agg.absorb_all(&reports)?;
                        Ok((agg, comm))
                    },
                    |acc, partial| acc.merge(partial),
                )?;
                Ok(EstimationResult {
                    table: agg.estimate()?,
                    comm,
                })
            }
            Framework::Ptj => {
                let mech = Ptj::new(eps, domains)?;
                let (agg, comm) = sharded(
                    data,
                    threads,
                    PtjAggregator::new(&mech),
                    |shard, chunk, mut agg| {
                        let mut rng = parallel::shard_rng(base_seed, shard);
                        let mut comm = CommStats::default();
                        let mut reports = Vec::with_capacity(chunk.len());
                        for &pair in chunk {
                            let report = mech.privatize(pair, &mut rng)?;
                            comm.record(report.size_bits());
                            reports.push(report);
                        }
                        agg.absorb_batch(&reports, 1)?;
                        Ok((agg, comm))
                    },
                    |acc, partial| acc.merge(partial),
                )?;
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
            Framework::Pts { label_frac } => {
                let (e1, e2) = eps.split(label_frac)?;
                let mech = Pts::new(e1, e2, domains)?;
                let (agg, comm) = sharded(
                    data,
                    threads,
                    PtsAggregator::new(&mech),
                    |shard, chunk, mut agg| {
                        let mut rng = parallel::shard_rng(base_seed, shard);
                        let mut comm = CommStats::default();
                        let mut reports = Vec::with_capacity(chunk.len());
                        for &pair in chunk {
                            let report = mech.privatize(pair, &mut rng)?;
                            comm.record(report.size_bits());
                            reports.push(report);
                        }
                        agg.absorb_all(&reports)?;
                        Ok((agg, comm))
                    },
                    |acc, partial| acc.merge(partial),
                )?;
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
            Framework::PtsCp { label_frac } => {
                let (e1, e2) = eps.split(label_frac)?;
                let mech = CorrelatedPerturbation::new(e1, e2, domains)?;
                let (agg, comm) = sharded(
                    data,
                    threads,
                    CpAggregator::new(&mech),
                    |shard, chunk, mut agg| {
                        let mut rng = parallel::shard_rng(base_seed, shard);
                        let mut comm = CommStats::default();
                        let mut reports = Vec::with_capacity(chunk.len());
                        for &pair in chunk {
                            let report = mech.privatize(pair, &mut rng)?;
                            comm.record(report.size_bits());
                            reports.push(report);
                        }
                        agg.absorb_all(&reports)?;
                        Ok((agg, comm))
                    },
                    |acc, partial| acc.merge(partial),
                )?;
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
        }
    }

    /// Runs the framework end-to-end over a **stream** of label-item pairs
    /// with bounded memory: [`Framework::run_batch`] without the
    /// materialized `&[LabelItem]` slice.
    ///
    /// Users are pulled from `source` in `config.chunk_items`-sized chunks;
    /// each absolute [`parallel::SHARD_SIZE`] shard privatizes with the same
    /// deterministic per-shard RNG stream the batch runtime derives (RNG
    /// state is carried across chunk boundaries that split a shard), and
    /// per-worker partial aggregators merge associatively. The estimated
    /// table is therefore **bit-identical** to
    /// `run_batch(eps, domains, data, base_seed, threads)` over the same
    /// pairs, for every chunk size and thread count, while memory stays
    /// `O(chunk + threads × shard)` instead of `O(n)`.
    pub fn run_stream<S>(
        &self,
        eps: Eps,
        domains: Domains,
        source: &mut S,
        base_seed: u64,
        config: StreamConfig,
    ) -> Result<EstimationResult>
    where
        S: ReportSource<Item = LabelItem>,
    {
        use mcim_oracles::stream::fold_stream;

        /// Per-worker fold state: a partial aggregator, its uplink stats,
        /// and a reusable privatized-report scratch buffer (excluded from
        /// merging; cloned empty from the template).
        struct Partial<Agg, Rep> {
            agg: Agg,
            comm: CommStats,
            scratch: Vec<Rep>,
        }
        impl<Agg: Clone, Rep> Clone for Partial<Agg, Rep> {
            fn clone(&self) -> Self {
                Partial {
                    agg: self.agg.clone(),
                    comm: self.comm,
                    scratch: Vec::new(),
                }
            }
        }

        /// Drives one framework arm: `privatize(rng, abs_index, pair)`
        /// produces the report, `absorb` consumes a scratch block, `bits`
        /// prices it, `merge` folds partials.
        #[allow(clippy::too_many_arguments)]
        fn arm<S, Agg, Rep, P, B, Ab, M>(
            source: &mut S,
            base_seed: u64,
            config: StreamConfig,
            agg0: Agg,
            privatize: P,
            bits: B,
            absorb: Ab,
            merge: M,
        ) -> Result<(Agg, CommStats)>
        where
            S: ReportSource<Item = LabelItem>,
            Agg: Clone + Send,
            Rep: Send,
            P: Fn(&mut rand::rngs::StdRng, u64, LabelItem) -> Result<Rep> + Sync,
            B: Fn(&Rep) -> usize + Sync,
            Ab: Fn(&mut Agg, &[Rep]) -> Result<()> + Sync,
            M: Fn(&mut Agg, &Agg) -> Result<()> + Sync,
        {
            let template = Partial {
                agg: agg0,
                comm: CommStats::default(),
                scratch: Vec::new(),
            };
            let merged = fold_stream(
                source,
                config,
                base_seed,
                &template,
                |rng, abs, pairs, part: &mut Partial<Agg, Rep>| {
                    let Partial { agg, comm, scratch } = part;
                    scratch.clear();
                    for (i, &pair) in pairs.iter().enumerate() {
                        let report = privatize(rng, abs + i as u64, pair)?;
                        comm.record(bits(&report));
                        scratch.push(report);
                    }
                    absorb(agg, scratch)
                },
                |a, b| {
                    merge(&mut a.agg, &b.agg)?;
                    a.comm.merge(b.comm);
                    Ok(())
                },
            )?;
            Ok((merged.agg, merged.comm))
        }

        match *self {
            Framework::Hec => {
                let mech = Hec::new(eps, domains)?;
                let (agg, comm) = arm(
                    source,
                    base_seed,
                    config,
                    HecAggregator::new(&mech),
                    |rng, abs, pair| mech.privatize(abs, pair, rng),
                    |r: &HecReport| r.report.size_bits(),
                    |agg, block| agg.absorb_all(block),
                    |a, b| a.merge(b),
                )?;
                Ok(EstimationResult {
                    table: agg.estimate()?,
                    comm,
                })
            }
            Framework::Ptj => {
                let mech = Ptj::new(eps, domains)?;
                let (agg, comm) = arm(
                    source,
                    base_seed,
                    config,
                    PtjAggregator::new(&mech),
                    |rng, _abs, pair| mech.privatize(pair, rng),
                    |r: &mcim_oracles::Report| r.size_bits(),
                    |agg, block| agg.absorb_batch(block, 1),
                    |a, b| a.merge(b),
                )?;
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
            Framework::Pts { label_frac } => {
                let (e1, e2) = eps.split(label_frac)?;
                let mech = Pts::new(e1, e2, domains)?;
                let (agg, comm) = arm(
                    source,
                    base_seed,
                    config,
                    PtsAggregator::new(&mech),
                    |rng, _abs, pair| mech.privatize(pair, rng),
                    |r: &PtsReport| r.size_bits(),
                    |agg, block| agg.absorb_all(block),
                    |a, b| a.merge(b),
                )?;
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
            Framework::PtsCp { label_frac } => {
                let (e1, e2) = eps.split(label_frac)?;
                let mech = CorrelatedPerturbation::new(e1, e2, domains)?;
                let (agg, comm) = arm(
                    source,
                    base_seed,
                    config,
                    CpAggregator::new(&mech),
                    |rng, _abs, pair| mech.privatize(pair, rng),
                    |r: &crate::CpReport| r.size_bits(),
                    |agg, block| agg.absorb_all(block),
                    |a, b| a.merge(b),
                )?;
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    /// A skewed 3-class, 8-item dataset with known counts.
    fn dataset(n: usize) -> (Domains, Vec<LabelItem>) {
        let domains = Domains::new(3, 8).unwrap();
        let data: Vec<LabelItem> = (0..n)
            .map(|u| match u % 10 {
                0..=3 => LabelItem::new(0, 0),
                4..=6 => LabelItem::new(1, 1),
                7 | 8 => LabelItem::new(2, 2),
                _ => LabelItem::new(2, 7),
            })
            .collect();
        (domains, data)
    }

    #[test]
    fn all_frameworks_recover_skewed_truth() {
        let n = 120_000;
        let (domains, data) = dataset(n);
        let truth = FrequencyTable::ground_truth(domains, &data).unwrap();
        let mut rng = StdRng::seed_from_u64(101);
        for fw in Framework::fig6_set() {
            let res = fw.run(eps(4.0), domains, &data, &mut rng).unwrap();
            for label in 0..3u32 {
                for item in 0..8 {
                    let t = truth.get(label, item);
                    let e = res.table.get(label, item);
                    // HEC carries Theorem 4's invalid-data bias of
                    // (N − n_C)/d per cell; the unbiased frameworks do not.
                    let expectation = if fw.name() == "HEC" {
                        let n_c = truth.class_total(label);
                        t + (n as f64 - n_c) / 8.0
                    } else {
                        t
                    };
                    assert!(
                        (e - expectation).abs() < 0.04 * n as f64,
                        "{}: ({label},{item}) est {e} expected {expectation}",
                        fw.name()
                    );
                }
            }
        }
    }

    #[test]
    fn run_batch_is_thread_count_invariant_and_accurate() {
        let n = 30_000;
        let (domains, data) = dataset(n);
        let truth = FrequencyTable::ground_truth(domains, &data).unwrap();
        for fw in Framework::fig6_set() {
            let seq = fw.run_batch(eps(4.0), domains, &data, 9, 1).unwrap();
            for threads in [2, 8] {
                let par = fw.run_batch(eps(4.0), domains, &data, 9, threads).unwrap();
                assert_eq!(par.comm, seq.comm, "{} threads={threads}", fw.name());
                for label in 0..3u32 {
                    for item in 0..8 {
                        assert!(
                            par.table.get(label, item) == seq.table.get(label, item),
                            "{} threads={threads} diverged at ({label},{item})",
                            fw.name()
                        );
                    }
                }
            }
            // Sanity: the batched runtime estimates the same quantity the
            // sequential `run` does (HEC keeps its Theorem-4 bias).
            for label in 0..3u32 {
                for item in 0..8 {
                    let t = truth.get(label, item);
                    let expectation = if fw.name() == "HEC" {
                        t + (n as f64 - truth.class_total(label)) / 8.0
                    } else {
                        t
                    };
                    assert!(
                        (seq.table.get(label, item) - expectation).abs() < 0.08 * n as f64,
                        "{}: ({label},{item}) est {} expected {expectation}",
                        fw.name(),
                        seq.table.get(label, item)
                    );
                }
            }
        }
    }

    #[test]
    fn ptj_communication_exceeds_pts_for_large_domains() {
        // §V-C / Table II: PTJ pays O(c·d) bits per user, PTS pays O(d).
        let domains = Domains::new(5, 256).unwrap();
        let data: Vec<LabelItem> = (0..200).map(|u| LabelItem::new(u % 5, u % 256)).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let ptj = Framework::Ptj
            .run(eps(1.0), domains, &data, &mut rng)
            .unwrap();
        let pts = Framework::Pts { label_frac: 0.5 }
            .run(eps(1.0), domains, &data, &mut rng)
            .unwrap();
        assert!(
            ptj.comm.bits_per_user() > 4.0 * pts.comm.bits_per_user(),
            "ptj {} vs pts {}",
            ptj.comm.bits_per_user(),
            pts.comm.bits_per_user()
        );
    }

    #[test]
    fn comm_stats_merge() {
        let mut a = CommStats::default();
        a.record(10);
        let mut b = CommStats::default();
        b.record(20);
        b.record(30);
        a.merge(b);
        assert_eq!(a.users, 3);
        assert_eq!(a.total_report_bits, 60);
        assert_eq!(a.bits_per_user(), 20.0);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Framework::Hec.name(), "HEC");
        assert_eq!(Framework::Ptj.name(), "PTJ");
        assert_eq!(Framework::Pts { label_frac: 0.5 }.name(), "PTS");
        assert_eq!(Framework::PtsCp { label_frac: 0.5 }.name(), "PTS-CP");
    }
}
