//! The three multi-class frequency-estimation frameworks (§III, §VI-A).
//!
//! * [`Hec`] — *Handle Each Class independently*: the strawman; users are
//!   partitioned by class assignment and mismatched users submit random
//!   items (§II-D).
//! * [`Ptj`] — *Perturb The pair Jointly* over the Cartesian domain `C × I`
//!   (§III-B).
//! * [`Pts`] — *Perturb The pair Separately*: GRR on the label, OUE on the
//!   item, estimator Eq. (6).
//! * `PtsCp` ([`Framework::PtsCp`]) — PTS with the paper's **correlated perturbation**,
//!   estimator Eq. (4).
//!
//! Each framework exposes the same two-phase API: a client-side
//! `privatize`-style step and a streaming server-side aggregator, plus one
//! generic [`execute`](Framework::execute) entry point that processes a
//! whole dataset (or stream) under an [`Exec`] plan and returns the
//! estimated [`FrequencyTable`] with communication statistics. Under
//! RNG-contract v2 every [`Exec`] mode folds through the same sharded
//! stages, so `execute` is a thin wrapper over
//! [`execute_on`](Framework::execute_on) with the plan's in-process
//! executor; the legacy `run`/`run_batch`/`run_stream` triplet (and the
//! separate v1 sequential stream it preserved) is gone.

mod hec;
mod ptj;
mod pts;
pub mod stages;

pub use hec::{Hec, HecAggregator, HecReport};
pub use ptj::{Ptj, PtjAggregator};
pub use pts::{Pts, PtsAggregator, PtsReport};

use mcim_oracles::exec::{Exec, Executor};
use mcim_oracles::stream::ReportSource;
use mcim_oracles::{Eps, Result};

use crate::{Domains, FrequencyTable, LabelItem};

/// Communication accounting for one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Total uplink bits across all users.
    pub total_report_bits: u64,
    /// Number of reporting users.
    pub users: u64,
}

impl CommStats {
    /// Adds one report of `bits` bits.
    #[inline]
    pub fn record(&mut self, bits: usize) {
        self.total_report_bits += bits as u64;
        self.users += 1;
    }

    /// Mean uplink bits per user.
    pub fn bits_per_user(&self) -> f64 {
        if self.users == 0 {
            0.0
        } else {
            self.total_report_bits as f64 / self.users as f64
        }
    }

    /// Merges another accounting record.
    pub fn merge(&mut self, other: CommStats) {
        self.total_report_bits += other.total_report_bits;
        self.users += other.users;
    }
}

/// Uplink accounting crosses the reducer's sockets as two `u64` tallies.
impl mcim_oracles::wire::WireState for CommStats {
    fn save(&self, buf: &mut Vec<u8>) {
        self.total_report_bits.save(buf);
        self.users.save(buf);
    }

    fn load(&mut self, r: &mut mcim_oracles::wire::WireReader<'_>) -> Result<()> {
        self.total_report_bits.load(r)?;
        self.users.load(r)
    }
}

/// Result of a full frequency-estimation run.
#[derive(Debug, Clone)]
pub struct EstimationResult {
    /// Estimated classwise frequencies `f̂(C, I)`.
    pub table: FrequencyTable,
    /// Communication statistics.
    pub comm: CommStats,
}

/// A framework selector for experiment harnesses (Fig. 6 sweeps these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Framework {
    /// Handle-each-class strawman.
    Hec,
    /// Joint perturbation over `C × I`.
    Ptj,
    /// Separate label/item perturbation; `label_frac` is ε₁/ε.
    Pts {
        /// Fraction of the budget spent on the label (paper default 0.5).
        label_frac: f64,
    },
    /// PTS with correlated perturbation; `label_frac` is ε₁/ε.
    PtsCp {
        /// Fraction of the budget spent on the label (paper default 0.5).
        label_frac: f64,
    },
}

impl Framework {
    /// Display name used in benchmark tables (paper's labels).
    pub fn name(&self) -> &'static str {
        match self {
            Framework::Hec => "HEC",
            Framework::Ptj => "PTJ",
            Framework::Pts { .. } => "PTS",
            Framework::PtsCp { .. } => "PTS-CP",
        }
    }

    /// The paper's default framework set for Fig. 6.
    pub fn fig6_set() -> [Framework; 4] {
        [
            Framework::Hec,
            Framework::Ptj,
            Framework::Pts { label_frac: 0.5 },
            Framework::PtsCp { label_frac: 0.5 },
        ]
    }

    /// Runs the framework end-to-end under an [`Exec`] plan — the single
    /// entry point for every execution mode.
    ///
    /// Under RNG-contract v2 every mode (sequential, batch, stream, auto)
    /// folds the same sharded stages through the plan's in-process
    /// [`Executor`], so seed-equal plans are bit-identical across modes,
    /// thread counts and chunk sizes; mode only picks the resource
    /// envelope. Pass any [`ReportSource`] of label-item pairs: a
    /// `SliceSource` over an in-memory dataset, a CSV/NDJSON file source,
    /// or `&mut source` to keep ownership.
    pub fn execute<S>(
        &self,
        eps: Eps,
        domains: Domains,
        plan: &Exec,
        source: S,
    ) -> Result<EstimationResult>
    where
        S: ReportSource<Item = LabelItem>,
    {
        self.execute_on(&plan.in_process(), eps, domains, source)
    }

    /// Runs the framework's sharded pipeline on an explicit [`Executor`]
    /// backend — the seam where the distributed reducer (`mcim-dist`'s
    /// `Coordinator`: one worker process per shard range, partials merged
    /// over sockets) plugs in without changing callers.
    ///
    /// Each arm is a named serializable [`stages`] stage, so any backend
    /// — local threads or remote worker processes rebuilding the stage
    /// from its spec — privatizes every user with the deterministic
    /// per-shard RNG stream `shard_rng(plan.base_seed(), shard)`,
    /// aggregates through the word-parallel column-sum path, and merges
    /// partial aggregators associatively. The estimated table is therefore
    /// a pure function of `(self, eps, domains, pairs, base_seed)` —
    /// bit-identical for every conforming executor, thread count, chunk
    /// size and worker count.
    pub fn execute_on<E, S>(
        &self,
        executor: &E,
        eps: Eps,
        domains: Domains,
        mut source: S,
    ) -> Result<EstimationResult>
    where
        E: Executor,
        S: ReportSource<Item = LabelItem>,
    {
        use stages::{CpArm, FwStage, HecArm, PtjArm, PtsArm};

        if mcim_obs::enabled() {
            mcim_obs::counter_add(
                &mcim_obs::labeled("mcim_pipeline_runs_total", &[("pipeline", self.name())]),
                1,
            );
        }
        let span = mcim_obs::span_with(|| {
            mcim_obs::labeled(
                "mcim_pipeline_duration_seconds",
                &[("pipeline", self.name())],
            )
        });
        let source = &mut source;
        let seed = executor.plan().base_seed();
        let result = match *self {
            Framework::Hec => {
                let stage = FwStage::new(HecArm::new(eps, domains)?);
                let (agg, comm) = executor.fold(source, seed, &stage)?.into_parts();
                Ok(EstimationResult {
                    table: agg.estimate()?,
                    comm,
                })
            }
            Framework::Ptj => {
                let stage = FwStage::new(PtjArm::new(eps, domains)?);
                let (agg, comm) = executor.fold(source, seed, &stage)?.into_parts();
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
            Framework::Pts { label_frac } => {
                let (e1, e2) = eps.split(label_frac)?;
                let stage = FwStage::new(PtsArm::new(e1, e2, domains)?);
                let (agg, comm) = executor.fold(source, seed, &stage)?.into_parts();
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
            Framework::PtsCp { label_frac } => {
                let (e1, e2) = eps.split(label_frac)?;
                let stage = FwStage::new(CpArm::new(e1, e2, domains)?);
                let (agg, comm) = executor.fold(source, seed, &stage)?.into_parts();
                Ok(EstimationResult {
                    table: agg.estimate(),
                    comm,
                })
            }
        };
        span.finish();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcim_oracles::stream::SliceSource;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    /// A skewed 3-class, 8-item dataset with known counts.
    fn dataset(n: usize) -> (Domains, Vec<LabelItem>) {
        let domains = Domains::new(3, 8).unwrap();
        let data: Vec<LabelItem> = (0..n)
            .map(|u| match u % 10 {
                0..=3 => LabelItem::new(0, 0),
                4..=6 => LabelItem::new(1, 1),
                7 | 8 => LabelItem::new(2, 2),
                _ => LabelItem::new(2, 7),
            })
            .collect();
        (domains, data)
    }

    #[test]
    fn all_frameworks_recover_skewed_truth() {
        let n = 120_000;
        let (domains, data) = dataset(n);
        let truth = FrequencyTable::ground_truth(domains, &data).unwrap();
        for (i, fw) in Framework::fig6_set().into_iter().enumerate() {
            let plan = Exec::sequential().seed(101 + i as u64);
            let res = fw
                .execute(eps(4.0), domains, &plan, SliceSource::new(&data))
                .unwrap();
            for label in 0..3u32 {
                for item in 0..8 {
                    let t = truth.get(label, item);
                    let e = res.table.get(label, item);
                    // HEC carries Theorem 4's invalid-data bias of
                    // (N − n_C)/d per cell; the unbiased frameworks do not.
                    let expectation = if fw.name() == "HEC" {
                        let n_c = truth.class_total(label);
                        t + (n as f64 - n_c) / 8.0
                    } else {
                        t
                    };
                    assert!(
                        (e - expectation).abs() < 0.04 * n as f64,
                        "{}: ({label},{item}) est {e} expected {expectation}",
                        fw.name()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_execute_is_thread_count_invariant_and_accurate() {
        let n = 30_000;
        let (domains, data) = dataset(n);
        let truth = FrequencyTable::ground_truth(domains, &data).unwrap();
        for fw in Framework::fig6_set() {
            let seq = fw
                .execute(
                    eps(4.0),
                    domains,
                    &Exec::batch().seed(9).threads(1),
                    SliceSource::new(&data),
                )
                .unwrap();
            for threads in [2, 8] {
                let par = fw
                    .execute(
                        eps(4.0),
                        domains,
                        &Exec::batch().seed(9).threads(threads),
                        SliceSource::new(&data),
                    )
                    .unwrap();
                assert_eq!(par.comm, seq.comm, "{} threads={threads}", fw.name());
                for label in 0..3u32 {
                    for item in 0..8 {
                        assert!(
                            par.table.get(label, item) == seq.table.get(label, item),
                            "{} threads={threads} diverged at ({label},{item})",
                            fw.name()
                        );
                    }
                }
            }
            // Sanity: the batched runtime estimates the same quantity the
            // sequential `run` does (HEC keeps its Theorem-4 bias).
            for label in 0..3u32 {
                for item in 0..8 {
                    let t = truth.get(label, item);
                    let expectation = if fw.name() == "HEC" {
                        t + (n as f64 - truth.class_total(label)) / 8.0
                    } else {
                        t
                    };
                    assert!(
                        (seq.table.get(label, item) - expectation).abs() < 0.08 * n as f64,
                        "{}: ({label},{item}) est {} expected {expectation}",
                        fw.name(),
                        seq.table.get(label, item)
                    );
                }
            }
        }
    }

    #[test]
    fn ptj_communication_exceeds_pts_for_large_domains() {
        // §V-C / Table II: PTJ pays O(c·d) bits per user, PTS pays O(d).
        let domains = Domains::new(5, 256).unwrap();
        let data: Vec<LabelItem> = (0..200).map(|u| LabelItem::new(u % 5, u % 256)).collect();
        let plan = Exec::sequential().seed(7);
        let ptj = Framework::Ptj
            .execute(eps(1.0), domains, &plan, SliceSource::new(&data))
            .unwrap();
        let pts = Framework::Pts { label_frac: 0.5 }
            .execute(eps(1.0), domains, &plan, SliceSource::new(&data))
            .unwrap();
        assert!(
            ptj.comm.bits_per_user() > 4.0 * pts.comm.bits_per_user(),
            "ptj {} vs pts {}",
            ptj.comm.bits_per_user(),
            pts.comm.bits_per_user()
        );
    }

    #[test]
    fn comm_stats_merge() {
        let mut a = CommStats::default();
        a.record(10);
        let mut b = CommStats::default();
        b.record(20);
        b.record(30);
        a.merge(b);
        assert_eq!(a.users, 3);
        assert_eq!(a.total_report_bits, 60);
        assert_eq!(a.bits_per_user(), 20.0);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Framework::Hec.name(), "HEC");
        assert_eq!(Framework::Ptj.name(), "PTJ");
        assert_eq!(Framework::Pts { label_frac: 0.5 }.name(), "PTS");
        assert_eq!(Framework::PtsCp { label_frac: 0.5 }.name(), "PTS-CP");
    }
}
