//! PTS — *Perturb The pair Separately* (§III-B), with the Eq. (6) estimator.
//!
//! The label is perturbed with GRR(ε₁) and the item with OUE(ε₂),
//! independently (no correlation — that is [`crate::CorrelatedPerturbation`]'s
//! job). The server buckets item reports under the *perturbed* label and
//! de-biases with Eq. (6), which corrects for three noise sources:
//!
//! 1. items of same-class users flipping on/off (`p₂`, `q₂`),
//! 2. users of *other* classes whose labels flipped into `C` and whose item
//!    bits leak in (`q₁` terms, weighted by the item's global frequency),
//! 3. the uncertainty in the class-size estimate `n̂`.

use rand::Rng;

use mcim_oracles::{
    calibrate::unbiased_count, parallel, stream, BitVec, ColumnCounter, Eps, Error, Grr, Result,
    UnaryEncoding,
};

use crate::{Domains, FrequencyTable, LabelItem};

/// One PTS report: perturbed label + independently perturbed item bits.
#[derive(Debug, Clone, PartialEq)]
pub struct PtsReport {
    /// GRR-perturbed label.
    pub label: u32,
    /// OUE-perturbed item bits (`d` bits — no validity flag in plain PTS).
    pub bits: BitVec,
}

impl PtsReport {
    /// Communication cost in bits.
    pub fn size_bits(&self) -> usize {
        32 + self.bits.len()
    }
}

/// The PTS framework (client side).
#[derive(Debug, Clone)]
pub struct Pts {
    domains: Domains,
    label_mech: Grr,
    item_mech: UnaryEncoding,
}

impl Pts {
    /// Creates the framework with explicit per-phase budgets.
    pub fn new(eps1: Eps, eps2: Eps, domains: Domains) -> Result<Self> {
        Ok(Pts {
            domains,
            label_mech: Grr::new(eps1, domains.classes())?,
            item_mech: UnaryEncoding::optimized(eps2, domains.items())?,
        })
    }

    /// Creates the framework with the paper's even split ε₁ = ε₂ = ε/2.
    pub fn with_total(eps: Eps, domains: Domains) -> Result<Self> {
        let (e1, e2) = eps.halve();
        Self::new(e1, e2, domains)
    }

    /// The domains.
    #[inline]
    pub fn domains(&self) -> Domains {
        self.domains
    }

    /// Label-side probabilities `(p₁, q₁)`.
    pub fn label_probs(&self) -> (f64, f64) {
        (self.label_mech.p(), self.label_mech.q())
    }

    /// Item-side probabilities `(p₂, q₂)`.
    pub fn item_probs(&self) -> (f64, f64) {
        (self.item_mech.p(), self.item_mech.q())
    }

    /// Privatizes one pair: label and item perturbed independently.
    pub fn privatize<R: Rng + ?Sized>(&self, pair: LabelItem, rng: &mut R) -> Result<PtsReport> {
        self.domains.check(pair)?;
        Ok(PtsReport {
            label: self.label_mech.perturb(pair.label, rng)?,
            bits: self.item_mech.privatize(pair.item, rng)?,
        })
    }

    /// Privatizes a batch of pairs on up to `threads` workers with the
    /// sharded deterministic RNG scheme of [`parallel`]: output is
    /// bit-identical for every thread count.
    pub fn privatize_batch(
        &self,
        pairs: &[LabelItem],
        base_seed: u64,
        threads: usize,
    ) -> Result<Vec<PtsReport>> {
        parallel::try_fill_shards(pairs, threads, |shard, chunk, slots| {
            let mut rng = parallel::shard_rng(base_seed, shard);
            for (&pair, slot) in chunk.iter().zip(slots.iter_mut()) {
                *slot = Some(self.privatize(pair, &mut rng)?);
            }
            Ok(())
        })
    }
}

/// Server-side aggregation with the Eq. (6) estimator.
#[derive(Debug, Clone)]
pub struct PtsAggregator {
    domains: Domains,
    p1: f64,
    q1: f64,
    p2: f64,
    q2: f64,
    /// `f̃(C, I)`, row-major.
    pair_counts: Vec<u64>,
    /// `ñ(C)`.
    label_counts: Vec<u64>,
    n: u64,
}

impl PtsAggregator {
    /// Creates an empty aggregator matching the framework.
    pub fn new(framework: &Pts) -> Self {
        let (p1, q1) = framework.label_probs();
        let (p2, q2) = framework.item_probs();
        PtsAggregator {
            domains: framework.domains,
            p1,
            q1,
            p2,
            q2,
            pair_counts: vec![0; framework.domains.joint_size() as usize],
            label_counts: vec![0; framework.domains.classes() as usize],
            n: 0,
        }
    }

    /// Validates one report's shape.
    #[inline]
    fn check_report(&self, report: &PtsReport) -> Result<()> {
        if report.label >= self.domains.classes() {
            return Err(Error::ValueOutOfDomain {
                value: report.label as u64,
                domain: self.domains.classes() as u64,
            });
        }
        if report.bits.len() != self.domains.items() as usize {
            return Err(Error::ReportMismatch {
                expected: "PTS item bits of length d",
            });
        }
        Ok(())
    }

    /// Absorbs one report.
    pub fn absorb(&mut self, report: &PtsReport) -> Result<()> {
        self.check_report(report)?;
        let d = self.domains.items() as usize;
        self.n += 1;
        self.label_counts[report.label as usize] += 1;
        let base = report.label as usize * d;
        report
            .bits
            .count_ones_into(&mut self.pair_counts[base..base + d]);
        Ok(())
    }

    /// Absorbs a block of reports through the word-parallel column-sum
    /// runtime: reports are bucketed by perturbed label and each class's
    /// rows are summed bit-sliced. Counts equal sequential
    /// [`PtsAggregator::absorb`].
    pub fn absorb_all<'a, I>(&mut self, reports: I) -> Result<()>
    where
        I: IntoIterator<Item = &'a PtsReport>,
    {
        let d = self.domains.items() as usize;
        let c = self.domains.classes() as usize;
        let mut buckets: Vec<Vec<&BitVec>> = vec![Vec::new(); c];
        let mut outcome = Ok(());
        for report in reports {
            if let Err(e) = self.check_report(report) {
                outcome = Err(e);
                break;
            }
            self.n += 1;
            self.label_counts[report.label as usize] += 1;
            buckets[report.label as usize].push(&report.bits);
        }
        let mut cc = ColumnCounter::new(d);
        for (label, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            for bits in bucket {
                cc.add(bits.words());
            }
            cc.drain_into(&mut self.pair_counts[label * d..(label + 1) * d]);
        }
        outcome
    }

    /// [`PtsAggregator::absorb_all`] sharded across up to `threads` workers;
    /// per-shard counter sums merge associatively, so results are
    /// bit-identical for every thread count.
    pub fn absorb_batch(&mut self, reports: &[PtsReport], threads: usize) -> Result<()> {
        if threads.max(1) == 1 || reports.len() <= parallel::SHARD_SIZE {
            return self.absorb_all(reports);
        }
        let template = self.fresh();
        let shards = parallel::map_shards(reports, threads, |_, chunk| {
            let mut local = template.clone();
            local.absorb_all(chunk).map(|()| local)
        });
        for shard in shards {
            self.merge(&shard?)?;
        }
        Ok(())
    }

    /// Absorbs every report pulled from `source` in bounded chunks —
    /// [`PtsAggregator::absorb_batch`] without the materialized slice.
    /// Counts are bit-identical to the batch path for every chunk size and
    /// thread count.
    pub fn absorb_stream<S>(&mut self, source: &mut S, config: stream::StreamConfig) -> Result<()>
    where
        S: stream::ReportSource<Item = PtsReport>,
    {
        let template = self.fresh();
        let merged = stream::absorb_stream_with(
            source,
            config,
            &template,
            |agg: &mut PtsAggregator, chunk| agg.absorb_all(chunk),
            |a, b| a.merge(b),
        )?;
        self.merge(&merged)
    }

    /// An empty aggregator with this one's mechanism parameters (the
    /// per-shard accumulator of [`PtsAggregator::absorb_batch`]).
    fn fresh(&self) -> Self {
        PtsAggregator {
            domains: self.domains,
            p1: self.p1,
            q1: self.q1,
            p2: self.p2,
            q2: self.q2,
            pair_counts: vec![0; self.pair_counts.len()],
            label_counts: vec![0; self.label_counts.len()],
            n: 0,
        }
    }

    /// Merges another aggregator over the same domains (sharded aggregation
    /// across threads).
    pub fn merge(&mut self, other: &PtsAggregator) -> Result<()> {
        if self.domains != other.domains {
            return Err(Error::ReportMismatch {
                expected: "PTS aggregator with identical domains",
            });
        }
        for (a, b) in self.pair_counts.iter_mut().zip(&other.pair_counts) {
            *a += b;
        }
        for (a, b) in self.label_counts.iter_mut().zip(&other.label_counts) {
            *a += b;
        }
        self.n += other.n;
        Ok(())
    }

    /// Number of absorbed reports `N`.
    #[inline]
    pub fn report_count(&self) -> u64 {
        self.n
    }

    /// Raw collected pair count `f̃(C, I)`.
    pub fn raw_pair_count(&self, label: u32, item: u32) -> u64 {
        self.pair_counts[(label * self.domains.items() + item) as usize]
    }

    /// Unbiased class-size estimate `n̂(C)`.
    pub fn estimate_class_size(&self, label: u32) -> f64 {
        unbiased_count(
            self.label_counts[label as usize] as f64,
            self.n as f64,
            self.p1,
            self.q1,
        )
    }

    /// Unbiased *global* item estimate `Σ_C f̂(C, I)` from the column sums
    /// (Eq. (6)'s helper term).
    pub fn estimate_item_total(&self, item: u32) -> f64 {
        let d = self.domains.items();
        let col_sum: u64 = (0..self.domains.classes())
            .map(|c| self.pair_counts[(c * d + item) as usize])
            .sum();
        unbiased_count(col_sum as f64, self.n as f64, self.p2, self.q2)
    }

    /// Unbiased frequency estimates — Eq. (6):
    ///
    /// ```text
    ///           f̃(C,I) − n̂·q₂(p₁−q₁)     Σ_C f̂(C,I)·q₁(p₂−q₂) + N·q₁q₂
    /// f̂(C,I) = ──────────────────────  −  ──────────────────────────────
    ///             (p₁−q₁)(p₂−q₂)               (p₁−q₁)(p₂−q₂)
    /// ```
    pub fn estimate(&self) -> FrequencyTable {
        let (p1, q1, p2, q2) = (self.p1, self.q1, self.p2, self.q2);
        let denom = (p1 - q1) * (p2 - q2);
        let n_total = self.n as f64;
        let mut table = FrequencyTable::zeros(self.domains);
        for item in 0..self.domains.items() {
            let item_total = self.estimate_item_total(item);
            for label in 0..self.domains.classes() {
                let n_hat = self.estimate_class_size(label);
                let collected = self.raw_pair_count(label, item) as f64;
                *table.get_mut(label, item) = (collected
                    - n_hat * q2 * (p1 - q1)
                    - item_total * q1 * (p2 - q2)
                    - n_total * q1 * q2)
                    / denom;
            }
        }
        table
    }
}

/// Partial state for the distributed reducer: pair/label counters and the
/// report tally (the calibration constants stay with the template).
impl mcim_oracles::wire::WireState for PtsAggregator {
    fn save(&self, buf: &mut Vec<u8>) {
        self.pair_counts.save(buf);
        self.label_counts.save(buf);
        self.n.save(buf);
    }

    fn load(&mut self, r: &mut mcim_oracles::wire::WireReader<'_>) -> Result<()> {
        self.pair_counts.load(r)?;
        self.label_counts.load(r)?;
        self.n.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn even_split_matches_manual() {
        let domains = Domains::new(4, 16).unwrap();
        let a = Pts::with_total(eps(2.0), domains).unwrap();
        let b = Pts::new(eps(1.0), eps(1.0), domains).unwrap();
        assert_eq!(a.label_probs(), b.label_probs());
        assert_eq!(a.item_probs(), b.item_probs());
    }

    #[test]
    fn eq6_estimator_is_unbiased_monte_carlo() {
        // Item 0 is globally frequent (shared by classes 0 and 1), so the
        // cross-class correction in Eq. (6) matters here.
        let domains = Domains::new(3, 6).unwrap();
        let fw = Pts::with_total(eps(2.0), domains).unwrap();
        let mut agg = PtsAggregator::new(&fw);
        let mut rng = StdRng::seed_from_u64(19);
        let n = 150_000;
        for u in 0..n {
            let pair = match u % 10 {
                0..=3 => LabelItem::new(0, 0), // 40%
                4..=6 => LabelItem::new(1, 0), // 30% — same item, other class
                7 | 8 => LabelItem::new(1, 3), // 20%
                _ => LabelItem::new(2, 5),     // 10%
            };
            agg.absorb(&fw.privatize(pair, &mut rng).unwrap()).unwrap();
        }
        let est = agg.estimate();
        let n = n as f64;
        assert!(
            (est.get(0, 0) - 0.4 * n).abs() < 0.03 * n,
            "got {}",
            est.get(0, 0)
        );
        assert!(
            (est.get(1, 0) - 0.3 * n).abs() < 0.03 * n,
            "got {}",
            est.get(1, 0)
        );
        assert!(
            (est.get(1, 3) - 0.2 * n).abs() < 0.03 * n,
            "got {}",
            est.get(1, 3)
        );
        assert!(
            (est.get(2, 5) - 0.1 * n).abs() < 0.03 * n,
            "got {}",
            est.get(2, 5)
        );
        assert!(
            est.get(2, 0).abs() < 0.03 * n,
            "empty cell {}",
            est.get(2, 0)
        );
    }

    #[test]
    fn item_total_estimate_is_unbiased() {
        let domains = Domains::new(2, 4).unwrap();
        let fw = Pts::with_total(eps(2.0), domains).unwrap();
        let mut agg = PtsAggregator::new(&fw);
        let mut rng = StdRng::seed_from_u64(20);
        let n = 50_000;
        for u in 0..n {
            let pair = if u % 2 == 0 {
                LabelItem::new(0, 2)
            } else {
                LabelItem::new(1, 2)
            };
            agg.absorb(&fw.privatize(pair, &mut rng).unwrap()).unwrap();
        }
        let total = agg.estimate_item_total(2);
        assert!((total - n as f64).abs() < 0.03 * n as f64, "total {total}");
    }

    #[test]
    fn batch_paths_match_sequential() {
        let domains = Domains::new(3, 130).unwrap();
        let fw = Pts::with_total(eps(2.0), domains).unwrap();
        let pairs: Vec<LabelItem> = (0..9000)
            .map(|u| LabelItem::new((u % 3) as u32, ((u * 11) % 130) as u32))
            .collect();
        let base = 3;
        let reports = fw.privatize_batch(&pairs, base, 1).unwrap();
        assert_eq!(
            fw.privatize_batch(&pairs, base, 4).unwrap(),
            reports,
            "privatize_batch must be thread-count invariant"
        );
        let mut seq = PtsAggregator::new(&fw);
        for r in &reports {
            seq.absorb(r).unwrap();
        }
        for threads in [1, 2, 8] {
            let mut batch = PtsAggregator::new(&fw);
            batch.absorb_batch(&reports, threads).unwrap();
            assert_eq!(
                batch.report_count(),
                seq.report_count(),
                "threads={threads}"
            );
            for label in 0..3u32 {
                for item in 0..130u32 {
                    assert_eq!(
                        batch.raw_pair_count(label, item),
                        seq.raw_pair_count(label, item),
                        "({label},{item})"
                    );
                }
            }
            let (a, b) = (batch.estimate(), seq.estimate());
            for label in 0..3u32 {
                for item in 0..130u32 {
                    assert!(a.get(label, item) == b.get(label, item));
                }
            }
        }
    }

    #[test]
    fn absorb_validates_shapes() {
        let domains = Domains::new(2, 4).unwrap();
        let fw = Pts::with_total(eps(1.0), domains).unwrap();
        let mut agg = PtsAggregator::new(&fw);
        assert!(agg
            .absorb(&PtsReport {
                label: 2,
                bits: BitVec::zeros(4)
            })
            .is_err());
        assert!(agg
            .absorb(&PtsReport {
                label: 0,
                bits: BitVec::zeros(5)
            })
            .is_err());
    }
}
