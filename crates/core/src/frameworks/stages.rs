//! The frameworks' bulk privatize+aggregate steps as named, serializable
//! [`Stage`] objects.
//!
//! [`Framework::execute_on`](crate::Framework::execute_on) used to hand its
//! [`Executor`](mcim_oracles::exec::Executor) a closure per arm; closures
//! cannot cross a process boundary, so the distributed reducer needs each
//! arm as a *stage object* that (a) folds exactly like the old closure and
//! (b) round-trips through a [`StageSpec`] — the worker process rebuilds
//! the mechanism from `(ε, domains)` and replays the identical
//! privatize+absorb loop under the identical per-shard RNG streams.
//!
//! One generic [`FwStage`] wraps the four per-framework [`FwArm`]s (HEC,
//! PTJ, PTS, PTS-CP); the arm supplies the mechanism calls and the spec
//! codec, the wrapper supplies the shared fold shape: privatize each pair
//! into a reusable scratch block, price its uplink, absorb the block
//! word-parallel.

use rand::rngs::StdRng;

use mcim_oracles::exec::{Stage, StageDecode};
use mcim_oracles::wire::{StageSpec, Wire, WireReader, WireState};
use mcim_oracles::{Eps, Report, Result};

use crate::correlated::{CorrelatedPerturbation, CpAggregator};
use crate::frameworks::{CommStats, Hec, HecAggregator, HecReport, Ptj, PtjAggregator};
use crate::frameworks::{Pts, PtsAggregator, PtsReport};
use crate::{CpReport, Domains, LabelItem};

/// Per-worker fold state of one framework arm: a partial aggregator, its
/// uplink stats, and a reusable privatized-report scratch buffer (excluded
/// from cloning, merging and the wire — each worker grows its own).
pub struct FwPartial<Agg, Rep> {
    agg: Agg,
    comm: CommStats,
    scratch: Vec<Rep>,
}

impl<Agg, Rep> FwPartial<Agg, Rep> {
    /// Consumes the partial into its aggregator and uplink stats.
    pub fn into_parts(self) -> (Agg, CommStats) {
        (self.agg, self.comm)
    }
}

impl<Agg: Clone, Rep> Clone for FwPartial<Agg, Rep> {
    fn clone(&self) -> Self {
        FwPartial {
            agg: self.agg.clone(),
            comm: self.comm,
            scratch: Vec::new(),
        }
    }
}

impl<Agg: WireState, Rep> WireState for FwPartial<Agg, Rep> {
    fn save(&self, buf: &mut Vec<u8>) {
        self.agg.save(buf);
        self.comm.save(buf);
    }

    fn load(&mut self, r: &mut WireReader<'_>) -> Result<()> {
        self.agg.load(r)?;
        self.comm.load(r)
    }
}

/// One framework's mechanism calls plus its spec codec — the varying part
/// of [`FwStage`].
pub trait FwArm: Sync + Sized {
    /// The privatized report this arm produces per user.
    type Rep: Send;
    /// The partial aggregator this arm folds into.
    type Agg: Clone + Send + WireState;

    /// Registry key of this arm's stage.
    const KIND: &'static str;

    /// A fresh (empty) aggregator.
    fn new_agg(&self) -> Self::Agg;

    /// Privatizes the user at absolute stream position `abs`.
    fn privatize(&self, rng: &mut StdRng, abs: u64, pair: LabelItem) -> Result<Self::Rep>;

    /// Uplink cost of one report in bits.
    fn report_bits(rep: &Self::Rep) -> usize;

    /// Absorbs a block of reports (word-parallel where the mechanism
    /// supports it).
    fn absorb(&self, agg: &mut Self::Agg, block: &[Self::Rep]) -> Result<()>;

    /// Merges two disjoint-range partial aggregators.
    fn merge(agg: &mut Self::Agg, other: &Self::Agg) -> Result<()>;

    /// Writes the parameters [`FwArm::decode`] rebuilds this arm from.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Rebuilds the arm from an encoded spec payload.
    fn decode(r: &mut WireReader<'_>) -> Result<Self>;
}

/// The shared fold shape over a [`FwArm`]: the [`Stage`] every framework
/// pipeline hands its executor.
pub struct FwStage<M> {
    arm: M,
}

impl<M: FwArm> FwStage<M> {
    /// Wraps an arm.
    pub fn new(arm: M) -> Self {
        FwStage { arm }
    }
}

impl<M: FwArm> Stage for FwStage<M> {
    type Item = LabelItem;
    type Acc = FwPartial<M::Agg, M::Rep>;

    fn template(&self) -> Self::Acc {
        FwPartial {
            agg: self.arm.new_agg(),
            comm: CommStats::default(),
            scratch: Vec::new(),
        }
    }

    fn fold(
        &self,
        rng: &mut StdRng,
        abs: u64,
        pairs: &[LabelItem],
        part: &mut Self::Acc,
    ) -> Result<()> {
        let FwPartial { agg, comm, scratch } = part;
        scratch.clear();
        for (i, &pair) in pairs.iter().enumerate() {
            let report = self.arm.privatize(rng, abs + i as u64, pair)?;
            comm.record(M::report_bits(&report));
            scratch.push(report);
        }
        self.arm.absorb(agg, scratch)
    }

    fn merge(&self, into: &mut Self::Acc, from: &Self::Acc) -> Result<()> {
        M::merge(&mut into.agg, &from.agg)?;
        into.comm.merge(from.comm);
        Ok(())
    }

    fn spec(&self) -> Option<StageSpec> {
        Some(StageSpec::new(M::KIND, |buf| self.arm.encode(buf)))
    }
}

impl<M: FwArm> StageDecode for FwStage<M> {
    const KIND: &'static str = M::KIND;

    fn decode(payload: &mut WireReader<'_>) -> Result<Self> {
        Ok(FwStage {
            arm: M::decode(payload)?,
        })
    }
}

fn put_eps_domains(buf: &mut Vec<u8>, eps: Eps, domains: Domains) {
    eps.value().put(buf);
    domains.classes().put(buf);
    domains.items().put(buf);
}

fn take_eps_domains(r: &mut WireReader<'_>) -> Result<(Eps, Domains)> {
    let eps = Eps::new(f64::take(r)?)?;
    let classes = u32::take(r)?;
    let items = u32::take(r)?;
    Ok((eps, Domains::new(classes, items)?))
}

// ------------------------------------------------------------------ HEC --

/// HEC's stage arm: positional group assignment, adaptive oracle.
pub struct HecArm {
    mech: Hec,
    eps: Eps,
}

impl HecArm {
    /// Builds the arm from the framework parameters.
    pub fn new(eps: Eps, domains: Domains) -> Result<Self> {
        Ok(HecArm {
            mech: Hec::new(eps, domains)?,
            eps,
        })
    }
}

impl FwArm for HecArm {
    type Rep = HecReport;
    type Agg = HecAggregator;

    const KIND: &'static str = "fw/hec";

    fn new_agg(&self) -> HecAggregator {
        HecAggregator::new(&self.mech)
    }

    fn privatize(&self, rng: &mut StdRng, abs: u64, pair: LabelItem) -> Result<HecReport> {
        self.mech.privatize(abs, pair, rng)
    }

    fn report_bits(rep: &HecReport) -> usize {
        rep.report.size_bits()
    }

    fn absorb(&self, agg: &mut HecAggregator, block: &[HecReport]) -> Result<()> {
        agg.absorb_all(block)
    }

    fn merge(agg: &mut HecAggregator, other: &HecAggregator) -> Result<()> {
        agg.merge(other)
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_eps_domains(buf, self.eps, self.mech.domains());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let (eps, domains) = take_eps_domains(r)?;
        HecArm::new(eps, domains)
    }
}

// ------------------------------------------------------------------ PTJ --

/// PTJ's stage arm: joint-domain adaptive oracle.
pub struct PtjArm {
    mech: Ptj,
    eps: Eps,
}

impl PtjArm {
    /// Builds the arm from the framework parameters.
    pub fn new(eps: Eps, domains: Domains) -> Result<Self> {
        Ok(PtjArm {
            mech: Ptj::new(eps, domains)?,
            eps,
        })
    }
}

impl FwArm for PtjArm {
    type Rep = Report;
    type Agg = PtjAggregator;

    const KIND: &'static str = "fw/ptj";

    fn new_agg(&self) -> PtjAggregator {
        PtjAggregator::new(&self.mech)
    }

    fn privatize(&self, rng: &mut StdRng, _abs: u64, pair: LabelItem) -> Result<Report> {
        self.mech.privatize(pair, rng)
    }

    fn report_bits(rep: &Report) -> usize {
        rep.size_bits()
    }

    fn absorb(&self, agg: &mut PtjAggregator, block: &[Report]) -> Result<()> {
        agg.absorb_batch(block, 1)
    }

    fn merge(agg: &mut PtjAggregator, other: &PtjAggregator) -> Result<()> {
        agg.merge(other)
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_eps_domains(buf, self.eps, self.mech.domains());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let (eps, domains) = take_eps_domains(r)?;
        PtjArm::new(eps, domains)
    }
}

// ------------------------------------------------------------------ PTS --

/// PTS's stage arm: GRR label + OUE item, independent budgets.
pub struct PtsArm {
    mech: Pts,
    eps1: Eps,
    eps2: Eps,
}

impl PtsArm {
    /// Builds the arm from explicit per-phase budgets.
    pub fn new(eps1: Eps, eps2: Eps, domains: Domains) -> Result<Self> {
        Ok(PtsArm {
            mech: Pts::new(eps1, eps2, domains)?,
            eps1,
            eps2,
        })
    }
}

impl FwArm for PtsArm {
    type Rep = PtsReport;
    type Agg = PtsAggregator;

    const KIND: &'static str = "fw/pts";

    fn new_agg(&self) -> PtsAggregator {
        PtsAggregator::new(&self.mech)
    }

    fn privatize(&self, rng: &mut StdRng, _abs: u64, pair: LabelItem) -> Result<PtsReport> {
        self.mech.privatize(pair, rng)
    }

    fn report_bits(rep: &PtsReport) -> usize {
        rep.size_bits()
    }

    fn absorb(&self, agg: &mut PtsAggregator, block: &[PtsReport]) -> Result<()> {
        agg.absorb_all(block)
    }

    fn merge(agg: &mut PtsAggregator, other: &PtsAggregator) -> Result<()> {
        agg.merge(other)
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        self.eps1.value().put(buf);
        self.eps2.value().put(buf);
        self.mech.domains().classes().put(buf);
        self.mech.domains().items().put(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let eps1 = Eps::new(f64::take(r)?)?;
        let eps2 = Eps::new(f64::take(r)?)?;
        let classes = u32::take(r)?;
        let items = u32::take(r)?;
        PtsArm::new(eps1, eps2, Domains::new(classes, items)?)
    }
}

// --------------------------------------------------------------- PTS-CP --

/// PTS-CP's stage arm: correlated label/item perturbation.
pub struct CpArm {
    mech: CorrelatedPerturbation,
    eps1: Eps,
    eps2: Eps,
}

impl CpArm {
    /// Builds the arm from explicit per-phase budgets.
    pub fn new(eps1: Eps, eps2: Eps, domains: Domains) -> Result<Self> {
        Ok(CpArm {
            mech: CorrelatedPerturbation::new(eps1, eps2, domains)?,
            eps1,
            eps2,
        })
    }
}

impl FwArm for CpArm {
    type Rep = CpReport;
    type Agg = CpAggregator;

    const KIND: &'static str = "fw/pts-cp";

    fn new_agg(&self) -> CpAggregator {
        CpAggregator::new(&self.mech)
    }

    fn privatize(&self, rng: &mut StdRng, _abs: u64, pair: LabelItem) -> Result<CpReport> {
        self.mech.privatize(pair, rng)
    }

    fn report_bits(rep: &CpReport) -> usize {
        rep.size_bits()
    }

    fn absorb(&self, agg: &mut CpAggregator, block: &[CpReport]) -> Result<()> {
        agg.absorb_all(block)
    }

    fn merge(agg: &mut CpAggregator, other: &CpAggregator) -> Result<()> {
        agg.merge(other)
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        self.eps1.value().put(buf);
        self.eps2.value().put(buf);
        self.mech.domains().classes().put(buf);
        self.mech.domains().items().put(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let eps1 = Eps::new(f64::take(r)?)?;
        let eps2 = Eps::new(f64::take(r)?)?;
        let classes = u32::take(r)?;
        let items = u32::take(r)?;
        CpArm::new(eps1, eps2, Domains::new(classes, items)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcim_oracles::exec::{Exec, Executor as _};
    use mcim_oracles::stream::SliceSource;

    fn pairs(n: usize) -> Vec<LabelItem> {
        (0..n as u32)
            .map(|u| LabelItem::new(u % 3, (u * 7) % 16))
            .collect()
    }

    /// Every arm's spec decodes to a stage that folds bit-identically to
    /// the original — the property the worker registry relies on.
    #[test]
    fn specs_round_trip_to_equivalent_stages() {
        let eps = Eps::new(2.0).unwrap();
        let domains = Domains::new(3, 16).unwrap();
        let (e1, e2) = eps.split(0.5).unwrap();
        let data = pairs(9000);

        fn check<M: FwArm>(stage: FwStage<M>, data: &[LabelItem])
        where
            M::Agg: std::fmt::Debug,
        {
            let spec = stage.spec().expect("framework stages are distributable");
            assert_eq!(spec.kind, M::KIND);
            let mut r = WireReader::new(&spec.payload);
            let rebuilt = FwStage::<M>::decode(&mut r).unwrap();
            r.finish().unwrap();

            let run = |s: &FwStage<M>| {
                let exec = Exec::batch().seed(11).threads(2);
                let part = exec
                    .in_process()
                    .fold(&mut SliceSource::new(data), 11, s)
                    .unwrap();
                let mut bytes = Vec::new();
                part.save(&mut bytes);
                bytes
            };
            assert_eq!(run(&stage), run(&rebuilt), "{} diverged", M::KIND);
        }

        check(FwStage::new(HecArm::new(eps, domains).unwrap()), &data);
        check(FwStage::new(PtjArm::new(eps, domains).unwrap()), &data);
        check(FwStage::new(PtsArm::new(e1, e2, domains).unwrap()), &data);
        check(FwStage::new(CpArm::new(e1, e2, domains).unwrap()), &data);
    }

    /// A partial's wire state loads only into a template of the same shape.
    #[test]
    fn partial_state_round_trips_and_checks_shape() {
        use mcim_oracles::exec::Stage as _;
        let domains = Domains::new(3, 16).unwrap();
        let eps = Eps::new(1.0).unwrap();
        let stage = FwStage::new(HecArm::new(eps, domains).unwrap());
        let exec = Exec::batch().seed(3).threads(1);
        let part = exec
            .in_process()
            .fold(&mut SliceSource::new(&pairs(500)), 3, &stage)
            .unwrap();
        let mut bytes = Vec::new();
        part.save(&mut bytes);

        let mut same = stage.template();
        same.load(&mut WireReader::new(&bytes)).unwrap();
        let (agg, comm) = same.into_parts();
        let (orig_agg, orig_comm) = part.into_parts();
        assert_eq!(comm, orig_comm);
        assert_eq!(
            agg.estimate().unwrap().values(),
            orig_agg.estimate().unwrap().values()
        );

        // A template over different domains rejects the partial.
        let other = FwStage::new(HecArm::new(eps, Domains::new(2, 16).unwrap()).unwrap());
        let mut wrong = other.template();
        assert!(wrong.load(&mut WireReader::new(&bytes)).is_err());
    }
}
