//! PTJ — *Perturb The pair Jointly* (§III-B).
//!
//! The perturbation domain is the Cartesian product `P = C × I` of size
//! `c·d`; each user perturbs her whole pair inside `P` with the full budget
//! through the adaptive oracle. PTJ never produces invalid data for
//! frequency estimation (every output is some pair), and it enjoys the full
//! ε, but its report is `O(c·d)` bits under OUE — the communication cost the
//! paper repeatedly flags (§V-C, Table II).

use rand::Rng;

use mcim_oracles::{Aggregator, Eps, Oracle, Report, Result};

use crate::{Domains, FrequencyTable, LabelItem};

/// The PTJ framework (client side).
#[derive(Debug, Clone)]
pub struct Ptj {
    domains: Domains,
    oracle: Oracle,
}

impl Ptj {
    /// Creates the framework with the adaptive oracle over `C × I`.
    pub fn new(eps: Eps, domains: Domains) -> Result<Self> {
        Ok(Ptj {
            domains,
            oracle: Oracle::adaptive(eps, domains.joint_size())?,
        })
    }

    /// The domains.
    #[inline]
    pub fn domains(&self) -> Domains {
        self.domains
    }

    /// The underlying oracle.
    #[inline]
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Privatizes one pair over the joint domain.
    pub fn privatize<R: Rng + ?Sized>(&self, pair: LabelItem, rng: &mut R) -> Result<Report> {
        self.domains.check(pair)?;
        self.oracle.privatize(self.domains.joint_index(pair), rng)
    }

    /// Privatizes a batch of pairs on up to `threads` workers with the
    /// sharded deterministic RNG scheme of [`mcim_oracles::parallel`]:
    /// output is bit-identical for every thread count.
    pub fn privatize_batch(
        &self,
        pairs: &[LabelItem],
        base_seed: u64,
        threads: usize,
    ) -> Result<Vec<Report>> {
        for &pair in pairs {
            self.domains.check(pair)?;
        }
        let joint: Vec<u32> = pairs.iter().map(|&p| self.domains.joint_index(p)).collect();
        self.oracle.privatize_batch(&joint, base_seed, threads)
    }
}

/// Server-side aggregation over the joint domain.
#[derive(Debug, Clone)]
pub struct PtjAggregator {
    domains: Domains,
    inner: Aggregator,
}

impl PtjAggregator {
    /// Creates an empty aggregator matching the framework.
    pub fn new(framework: &Ptj) -> Self {
        PtjAggregator {
            domains: framework.domains,
            inner: Aggregator::new(&framework.oracle),
        }
    }

    /// Absorbs one report.
    pub fn absorb(&mut self, report: &Report) -> Result<()> {
        self.inner.absorb(report)
    }

    /// Absorbs a block of reports through the word-parallel column-sum
    /// runtime (see [`Aggregator::absorb_batch`]); counts are bit-identical
    /// for every thread count.
    pub fn absorb_batch(&mut self, reports: &[Report], threads: usize) -> Result<()> {
        self.inner.absorb_batch(reports, threads)
    }

    /// Absorbs every report pulled from `source` in bounded chunks (see
    /// [`Aggregator::absorb_stream`]); counts are bit-identical to the
    /// batch path for every chunk size and thread count.
    pub fn absorb_stream<S>(
        &mut self,
        source: &mut S,
        config: mcim_oracles::stream::StreamConfig,
    ) -> Result<()>
    where
        S: mcim_oracles::stream::ReportSource<Item = Report>,
    {
        self.inner.absorb_stream(source, config)
    }

    /// Merges another aggregator over the same framework (sharded
    /// aggregation across threads).
    pub fn merge(&mut self, other: &PtjAggregator) -> Result<()> {
        self.inner.merge(&other.inner)
    }

    /// Number of absorbed reports.
    pub fn report_count(&self) -> u64 {
        self.inner.report_count()
    }

    /// Estimates the classwise frequency table:
    /// `f̂(C, I) = (f̃(C, I) − N·q)/(p − q)` per joint value (§VI-A).
    pub fn estimate(&self) -> FrequencyTable {
        let mut table = FrequencyTable::zeros(self.domains);
        for (joint, est) in self.inner.estimate().into_iter().enumerate() {
            let pair = self.domains.pair_of_joint(joint as u32);
            *table.get_mut(pair.label, pair.item) = est;
        }
        table
    }
}

/// Partial state for the distributed reducer: the joint-domain counters.
impl mcim_oracles::wire::WireState for PtjAggregator {
    fn save(&self, buf: &mut Vec<u8>) {
        self.inner.save(buf);
    }

    fn load(&mut self, r: &mut mcim_oracles::wire::WireReader<'_>) -> Result<()> {
        self.inner.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn joint_domain_size_drives_oracle_choice() {
        // Small joint domain → GRR; large → OUE.
        let small = Ptj::new(eps(2.0), Domains::new(2, 3).unwrap()).unwrap();
        assert_eq!(small.oracle().name(), "GRR");
        let large = Ptj::new(eps(2.0), Domains::new(10, 100).unwrap()).unwrap();
        assert_eq!(large.oracle().name(), "OUE");
    }

    #[test]
    fn estimates_recover_truth() {
        let domains = Domains::new(3, 5).unwrap();
        let fw = Ptj::new(eps(3.0), domains).unwrap();
        let mut agg = PtjAggregator::new(&fw);
        let mut rng = StdRng::seed_from_u64(12);
        let n = 60_000;
        for u in 0..n {
            let pair = if u % 4 == 0 {
                LabelItem::new(2, 4)
            } else {
                LabelItem::new(0, 1)
            };
            agg.absorb(&fw.privatize(pair, &mut rng).unwrap()).unwrap();
        }
        let est = agg.estimate();
        assert!((est.get(2, 4) - 0.25 * n as f64).abs() < 0.04 * n as f64);
        assert!((est.get(0, 1) - 0.75 * n as f64).abs() < 0.04 * n as f64);
        assert!(est.get(1, 3).abs() < 0.04 * n as f64);
    }

    #[test]
    fn rejects_out_of_domain_pairs() {
        let fw = Ptj::new(eps(1.0), Domains::new(2, 2).unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(fw.privatize(LabelItem::new(2, 0), &mut rng).is_err());
    }
}
