//! The **correlated perturbation** mechanism (§IV-B).
//!
//! Labels and items are correlated: once the label is perturbed away, the
//! item no longer belongs to the reported class and should count as noise,
//! not signal. Correlated perturbation therefore perturbs the *label first*
//! (GRR with ε₁) and makes the item's validity depend on the outcome:
//!
//! * label survived (`C′ = C`)  → item is valid → one-hot at the item,
//! * label flipped  (`C′ ≠ C`)  → item invalid → one-hot at the flag bit,
//!
//! followed by the validity-perturbation bit flipping with ε₂
//! (ε = ε₁ + ε₂, sequential composition — Theorem 2).
//!
//! ## Aggregation rule (derived)
//!
//! The paper states the calibration Eq. (4) but not the counting rule; the
//! variance terms of Theorem 8 pin it down uniquely. `f̃(C, I)` counts bit
//! `I` among reports whose perturbed label is `C` **and** whose perturbed
//! flag bit is 0. Then for a user with true pair `(C*, I*)`:
//!
//! * `(C, I)` user:   contributes w.p. `p₁(1−q₂)p₂` (label kept, flag stays
//!   0, item bit kept),
//! * `(C, I′)` user:  `p₁(1−q₂)q₂`,
//! * other-class user: `q₁(1−p₂)q₂` (label flipped *to* `C`, so the vector
//!   was the invalid encoding: flag must flip to 0, item bit flips on),
//!
//! matching the three Binomial terms of Eq. (5). Solving the expectation for
//! `f(C, I)` yields exactly Eq. (4); see `estimate` below.

use rand::Rng;

use mcim_oracles::{parallel, stream, BitVec, ColumnCounter, Eps, Error, Grr, Result};

use crate::validity::{ValidityInput, ValidityPerturbation};
use crate::{Domains, FrequencyTable, LabelItem};

/// One correlated-perturbation report.
#[derive(Debug, Clone, PartialEq)]
pub struct CpReport {
    /// GRR-perturbed label.
    pub label: u32,
    /// VP-perturbed item bits (`d+1` bits, flag at index `d`).
    pub bits: BitVec,
}

impl CpReport {
    /// Communication cost in bits.
    pub fn size_bits(&self) -> usize {
        32 + self.bits.len()
    }
}

/// The correlated perturbation mechanism.
#[derive(Debug, Clone)]
pub struct CorrelatedPerturbation {
    domains: Domains,
    label_mech: Grr,
    item_mech: ValidityPerturbation,
}

impl CorrelatedPerturbation {
    /// Creates the mechanism with an explicit budget split.
    pub fn new(eps1: Eps, eps2: Eps, domains: Domains) -> Result<Self> {
        Ok(CorrelatedPerturbation {
            domains,
            label_mech: Grr::new(eps1, domains.classes())?,
            item_mech: ValidityPerturbation::new(eps2, domains.items())?,
        })
    }

    /// Creates the mechanism with the paper's default even split
    /// (ε₁ = ε₂ = ε/2).
    pub fn with_total(eps: Eps, domains: Domains) -> Result<Self> {
        let (e1, e2) = eps.halve();
        Self::new(e1, e2, domains)
    }

    /// The domains.
    #[inline]
    pub fn domains(&self) -> Domains {
        self.domains
    }

    /// Label-side probabilities `(p₁, q₁)`.
    pub fn label_probs(&self) -> (f64, f64) {
        (self.label_mech.p(), self.label_mech.q())
    }

    /// Item-side probabilities `(p₂, q₂)`.
    pub fn item_probs(&self) -> (f64, f64) {
        (self.item_mech.p(), self.item_mech.q())
    }

    /// Per-user report size in bits.
    pub fn report_bits(&self) -> usize {
        self.label_mech.report_bits() + self.item_mech.report_bits()
    }

    /// Privatizes one label-item pair.
    pub fn privatize<R: Rng + ?Sized>(&self, pair: LabelItem, rng: &mut R) -> Result<CpReport> {
        self.domains.check(pair)?;
        let perturbed_label = self.label_mech.perturb(pair.label, rng)?;
        let input = if perturbed_label == pair.label {
            ValidityInput::Valid(pair.item)
        } else {
            ValidityInput::Invalid
        };
        Ok(CpReport {
            label: perturbed_label,
            bits: self.item_mech.privatize(input, rng)?,
        })
    }

    /// Privatizes a batch of pairs on up to `threads` workers with the
    /// sharded deterministic RNG scheme of [`parallel`]: output is
    /// bit-identical for every thread count.
    pub fn privatize_batch(
        &self,
        pairs: &[LabelItem],
        base_seed: u64,
        threads: usize,
    ) -> Result<Vec<CpReport>> {
        parallel::try_fill_shards(pairs, threads, |shard, chunk, slots| {
            let mut rng = parallel::shard_rng(base_seed, shard);
            for (&pair, slot) in chunk.iter().zip(slots.iter_mut()) {
                *slot = Some(self.privatize(pair, &mut rng)?);
            }
            Ok(())
        })
    }

    /// Privatizes a pair whose item may already be invalid (pruned), as in
    /// Algorithm 2's final iteration: validity requires *both* the label to
    /// survive and the item to be valid.
    pub fn privatize_with_validity<R: Rng + ?Sized>(
        &self,
        label: u32,
        item: ValidityInput,
        rng: &mut R,
    ) -> Result<CpReport> {
        let perturbed_label = self.label_mech.perturb(label, rng)?;
        let input = match item {
            ValidityInput::Valid(v) if perturbed_label == label => ValidityInput::Valid(v),
            _ => ValidityInput::Invalid,
        };
        Ok(CpReport {
            label: perturbed_label,
            bits: self.item_mech.privatize(input, rng)?,
        })
    }

    /// Exact probability of `(label_out, bits_out)` given a true pair — for
    /// the privacy-enumeration tests.
    pub fn response_probability(&self, pair: LabelItem, label_out: u32, bits_out: &BitVec) -> f64 {
        let p_label = self.label_mech.response_probability(pair.label, label_out);
        let input = if label_out == pair.label {
            ValidityInput::Valid(pair.item)
        } else {
            ValidityInput::Invalid
        };
        p_label * self.item_mech.response_probability(input, bits_out)
    }
}

/// Streaming server-side aggregation for correlated perturbation.
#[derive(Debug, Clone)]
pub struct CpAggregator {
    domains: Domains,
    p1: f64,
    q1: f64,
    p2: f64,
    q2: f64,
    /// `f̃(C, I)`: flag-filtered item-bit counts, row-major `[class][item]`.
    pair_counts: Vec<u64>,
    /// `ñ(C)`: perturbed-label counts.
    label_counts: Vec<u64>,
    n: u64,
}

impl CpAggregator {
    /// Creates an empty aggregator matching `mechanism`.
    pub fn new(mechanism: &CorrelatedPerturbation) -> Self {
        let (p1, q1) = mechanism.label_probs();
        let (p2, q2) = mechanism.item_probs();
        CpAggregator {
            domains: mechanism.domains,
            p1,
            q1,
            p2,
            q2,
            pair_counts: vec![0; mechanism.domains.joint_size() as usize],
            label_counts: vec![0; mechanism.domains.classes() as usize],
            n: 0,
        }
    }

    /// Validates one report's shape.
    #[inline]
    fn check_report(&self, report: &CpReport) -> Result<()> {
        if report.label >= self.domains.classes() {
            return Err(Error::ValueOutOfDomain {
                value: report.label as u64,
                domain: self.domains.classes() as u64,
            });
        }
        if report.bits.len() != self.domains.items() as usize + 1 {
            return Err(Error::ReportMismatch {
                expected: "CP item bits of length d+1",
            });
        }
        Ok(())
    }

    /// Whether a (length-checked) report's flag bit is set.
    #[inline]
    fn flag_set(&self, bits: &BitVec) -> bool {
        bits.bit(self.domains.items() as usize)
    }

    /// Absorbs one report.
    pub fn absorb(&mut self, report: &CpReport) -> Result<()> {
        self.check_report(report)?;
        let d = self.domains.items() as usize;
        self.n += 1;
        self.label_counts[report.label as usize] += 1;
        if self.flag_set(&report.bits) {
            return Ok(()); // flagged invalid: item bits excluded (counting rule)
        }
        let base = report.label as usize * d;
        // Flag bit is 0, so a d-wide row slice holds every set column.
        report
            .bits
            .count_ones_into(&mut self.pair_counts[base..base + d]);
        Ok(())
    }

    /// Absorbs a block of reports through the word-parallel column-sum
    /// runtime: reports are bucketed by perturbed label, each class's
    /// unflagged rows are summed bit-sliced into its `pair_counts` row.
    /// Counts equal sequential [`CpAggregator::absorb`].
    pub fn absorb_all<'a, I>(&mut self, reports: I) -> Result<()>
    where
        I: IntoIterator<Item = &'a CpReport>,
    {
        let d = self.domains.items() as usize;
        let c = self.domains.classes() as usize;
        let mut buckets: Vec<Vec<&BitVec>> = vec![Vec::new(); c];
        let mut outcome = Ok(());
        for report in reports {
            if let Err(e) = self.check_report(report) {
                outcome = Err(e);
                break;
            }
            self.n += 1;
            self.label_counts[report.label as usize] += 1;
            if !self.flag_set(&report.bits) {
                buckets[report.label as usize].push(&report.bits);
            }
        }
        let mut cc = ColumnCounter::new(d + 1);
        for (label, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            for bits in bucket {
                cc.add(bits.words());
            }
            // d-column prefix: the flag column is dropped.
            cc.drain_into(&mut self.pair_counts[label * d..(label + 1) * d]);
        }
        outcome
    }

    /// [`CpAggregator::absorb_all`] sharded across up to `threads` workers;
    /// per-shard counter sums merge associatively, so results are
    /// bit-identical for every thread count.
    pub fn absorb_batch(&mut self, reports: &[CpReport], threads: usize) -> Result<()> {
        if threads.max(1) == 1 || reports.len() <= parallel::SHARD_SIZE {
            return self.absorb_all(reports);
        }
        let template = self.fresh();
        let shards = parallel::map_shards(reports, threads, |_, chunk| {
            let mut local = template.clone();
            local.absorb_all(chunk).map(|()| local)
        });
        for shard in shards {
            self.merge(&shard?)?;
        }
        Ok(())
    }

    /// Absorbs every report pulled from `source` in bounded chunks —
    /// [`CpAggregator::absorb_batch`] without the materialized slice.
    /// Counts are bit-identical to the batch path for every chunk size and
    /// thread count.
    pub fn absorb_stream<S>(&mut self, source: &mut S, config: stream::StreamConfig) -> Result<()>
    where
        S: stream::ReportSource<Item = CpReport>,
    {
        let template = self.fresh();
        let merged = stream::absorb_stream_with(
            source,
            config,
            &template,
            |agg: &mut CpAggregator, chunk| agg.absorb_all(chunk),
            |a, b| a.merge(b),
        )?;
        self.merge(&merged)
    }

    /// An empty aggregator with this one's mechanism parameters (the
    /// per-shard accumulator of [`CpAggregator::absorb_batch`]).
    fn fresh(&self) -> Self {
        CpAggregator {
            domains: self.domains,
            p1: self.p1,
            q1: self.q1,
            p2: self.p2,
            q2: self.q2,
            pair_counts: vec![0; self.pair_counts.len()],
            label_counts: vec![0; self.label_counts.len()],
            n: 0,
        }
    }

    /// Merges another aggregator over the same domains (sharded aggregation
    /// across threads).
    pub fn merge(&mut self, other: &CpAggregator) -> Result<()> {
        if self.domains != other.domains {
            return Err(Error::ReportMismatch {
                expected: "CP aggregator with identical domains",
            });
        }
        for (a, b) in self.pair_counts.iter_mut().zip(&other.pair_counts) {
            *a += b;
        }
        for (a, b) in self.label_counts.iter_mut().zip(&other.label_counts) {
            *a += b;
        }
        self.n += other.n;
        Ok(())
    }

    /// Number of absorbed reports `N`.
    #[inline]
    pub fn report_count(&self) -> u64 {
        self.n
    }

    /// Raw collected count `f̃(C, I)`.
    pub fn raw_pair_count(&self, label: u32, item: u32) -> u64 {
        self.pair_counts[(label * self.domains.items() + item) as usize]
    }

    /// Raw collected label count `ñ(C)`.
    pub fn raw_label_count(&self, label: u32) -> u64 {
        self.label_counts[label as usize]
    }

    /// Unbiased estimate `n̂(C) = (ñ − N·q₁)/(p₁ − q₁)` of the class size.
    pub fn estimate_class_size(&self, label: u32) -> f64 {
        mcim_oracles::calibrate::unbiased_count(
            self.label_counts[label as usize] as f64,
            self.n as f64,
            self.p1,
            self.q1,
        )
    }

    /// Unbiased frequency estimates — Eq. (4) of the paper:
    ///
    /// ```text
    ///           f̃(C,I) − N·q₁q₂(1−p₂)       n̂·q₂[p₁(1−q₂) − q₁(1−p₂)]
    /// f̂(C,I) = ─────────────────────────  −  ─────────────────────────
    ///            p₁(1−q₂)(p₂−q₂)                p₁(1−q₂)(p₂−q₂)
    /// ```
    pub fn estimate(&self) -> FrequencyTable {
        let (p1, q1, p2, q2) = (self.p1, self.q1, self.p2, self.q2);
        let denom = p1 * (1.0 - q2) * (p2 - q2);
        let n_total = self.n as f64;
        let mut table = FrequencyTable::zeros(self.domains);
        for label in 0..self.domains.classes() {
            let n_hat = self.estimate_class_size(label);
            let correction = n_hat * q2 * (p1 * (1.0 - q2) - q1 * (1.0 - p2));
            for item in 0..self.domains.items() {
                let collected = self.raw_pair_count(label, item) as f64;
                *table.get_mut(label, item) =
                    (collected - n_total * q1 * q2 * (1.0 - p2) - correction) / denom;
            }
        }
        table
    }
}

/// Partial state for the distributed reducer: pair/label counters and the
/// report tally (the calibration constants stay with the template).
impl mcim_oracles::wire::WireState for CpAggregator {
    fn save(&self, buf: &mut Vec<u8>) {
        self.pair_counts.save(buf);
        self.label_counts.save(buf);
        self.n.save(buf);
    }

    fn load(&mut self, r: &mut mcim_oracles::wire::WireReader<'_>) -> Result<()> {
        self.pair_counts.load(r)?;
        self.label_counts.load(r)?;
        self.n.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    fn small_mech(e: f64) -> CorrelatedPerturbation {
        CorrelatedPerturbation::with_total(eps(e), Domains::new(3, 3).unwrap()).unwrap()
    }

    #[test]
    fn budget_splits_evenly_by_default() {
        let m = small_mech(2.0);
        // ε₁ = 1 over 3 classes: p₁ = e/(e+2).
        let (p1, _) = m.label_probs();
        let e1 = 1.0f64.exp();
        assert!((p1 - e1 / (e1 + 2.0)).abs() < 1e-12);
        // ε₂ = 1: q₂ = 1/(e+1).
        let (p2, q2) = m.item_probs();
        assert_eq!(p2, 0.5);
        assert!((q2 - 1.0 / (e1 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn privatize_rejects_out_of_domain() {
        let m = small_mech(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.privatize(LabelItem::new(3, 0), &mut rng).is_err());
        assert!(m.privatize(LabelItem::new(0, 3), &mut rng).is_err());
    }

    #[test]
    fn satisfies_composed_ldp_by_enumeration() {
        // Enumerate all (label_out, bits_out) for c = 3, d = 3 (3 × 2^4
        // outputs) over all 9 inputs: worst ratio ≤ e^{ε₁+ε₂}.
        let total = 1.6f64;
        let m = small_mech(total);
        let mut worst: f64 = 0.0;
        let inputs: Vec<LabelItem> = (0..3)
            .flat_map(|c| (0..3).map(move |i| LabelItem::new(c, i)))
            .collect();
        for label_out in 0..3u32 {
            for mask in 0..16u32 {
                let mut bits = BitVec::zeros(4);
                for i in 0..4 {
                    if (mask >> i) & 1 == 1 {
                        bits.set(i, true);
                    }
                }
                for &a in &inputs {
                    for &b in &inputs {
                        let r = m.response_probability(a, label_out, &bits)
                            / m.response_probability(b, label_out, &bits);
                        worst = worst.max(r);
                    }
                }
            }
        }
        assert!(
            worst <= total.exp() * (1.0 + 1e-9),
            "worst ratio {worst} exceeds e^ε = {}",
            total.exp()
        );
    }

    #[test]
    fn response_probabilities_normalize() {
        let m = small_mech(1.0);
        for &pair in &[LabelItem::new(0, 0), LabelItem::new(2, 1)] {
            let mut sum = 0.0;
            for label_out in 0..3u32 {
                for mask in 0..16u32 {
                    let mut bits = BitVec::zeros(4);
                    for i in 0..4 {
                        if (mask >> i) & 1 == 1 {
                            bits.set(i, true);
                        }
                    }
                    sum += m.response_probability(pair, label_out, &bits);
                }
            }
            assert!((sum - 1.0).abs() < 1e-10, "sum={sum}");
        }
    }

    #[test]
    fn estimate_is_unbiased_monte_carlo() {
        // 4 classes × 8 items; a strongly skewed distribution. The mean of
        // the estimator over many reports must approach the truth.
        let domains = Domains::new(4, 8).unwrap();
        let m = CorrelatedPerturbation::with_total(eps(2.0), domains).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 200_000usize;
        let mut agg = CpAggregator::new(&m);
        let mut truth = FrequencyTable::zeros(domains);
        for u in 0..n {
            // class 0: item 0 (30%), class 1: item 1 (30%),
            // class 2: items 2/3 (20%), class 3: item 7 (20%).
            let pair = match u % 10 {
                0..=2 => LabelItem::new(0, 0),
                3..=5 => LabelItem::new(1, 1),
                6 => LabelItem::new(2, 2),
                7 => LabelItem::new(2, 3),
                _ => LabelItem::new(3, 7),
            };
            *truth.get_mut(pair.label, pair.item) += 1.0;
            agg.absorb(&m.privatize(pair, &mut rng).unwrap()).unwrap();
        }
        let est = agg.estimate();
        for label in 0..4 {
            for item in 0..8 {
                let t = truth.get(label, item);
                let e = est.get(label, item);
                assert!(
                    (e - t).abs() < 0.02 * n as f64,
                    "({label},{item}): est {e} vs truth {t}"
                );
            }
        }
    }

    #[test]
    fn batch_paths_match_sequential() {
        let domains = Domains::new(4, 70).unwrap();
        let m = CorrelatedPerturbation::with_total(eps(2.0), domains).unwrap();
        let pairs: Vec<LabelItem> = (0..9000)
            .map(|u| LabelItem::new((u % 4) as u32, ((u * 13) % 70) as u32))
            .collect();
        let base = 77;
        let reports = m.privatize_batch(&pairs, base, 1).unwrap();
        assert_eq!(
            m.privatize_batch(&pairs, base, 4).unwrap(),
            reports,
            "privatize_batch must be thread-count invariant"
        );
        let mut seq = CpAggregator::new(&m);
        for r in &reports {
            seq.absorb(r).unwrap();
        }
        for threads in [1, 2, 8] {
            let mut batch = CpAggregator::new(&m);
            batch.absorb_batch(&reports, threads).unwrap();
            assert_eq!(
                batch.report_count(),
                seq.report_count(),
                "threads={threads}"
            );
            for label in 0..4u32 {
                assert_eq!(batch.raw_label_count(label), seq.raw_label_count(label));
                for item in 0..70u32 {
                    assert_eq!(
                        batch.raw_pair_count(label, item),
                        seq.raw_pair_count(label, item),
                        "({label},{item}) threads={threads}"
                    );
                }
            }
            let (a, b) = (batch.estimate(), seq.estimate());
            for label in 0..4u32 {
                for item in 0..70u32 {
                    assert!(a.get(label, item) == b.get(label, item));
                }
            }
        }
    }

    #[test]
    fn class_size_estimate_is_unbiased() {
        let domains = Domains::new(3, 4).unwrap();
        let m = CorrelatedPerturbation::with_total(eps(1.0), domains).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let mut agg = CpAggregator::new(&m);
        let n = 90_000;
        for u in 0..n {
            // class sizes 3:2:1
            let label = match u % 6 {
                0..=2 => 0,
                3 | 4 => 1,
                _ => 2,
            };
            agg.absorb(&m.privatize(LabelItem::new(label, 0), &mut rng).unwrap())
                .unwrap();
        }
        assert!((agg.estimate_class_size(0) - n as f64 / 2.0).abs() < 0.03 * n as f64);
        assert!((agg.estimate_class_size(1) - n as f64 / 3.0).abs() < 0.03 * n as f64);
        assert!((agg.estimate_class_size(2) - n as f64 / 6.0).abs() < 0.03 * n as f64);
    }

    #[test]
    fn flipped_label_reports_invalid_encoding() {
        // With ε₁ tiny, labels almost always flip; flag bit should then be
        // set about p₂ = 1/2 of the time.
        let domains = Domains::new(16, 4).unwrap();
        let m = CorrelatedPerturbation::new(eps(0.01), eps(1.0), domains).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut flagged = 0;
        let mut flipped = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let r = m.privatize(LabelItem::new(0, 0), &mut rng).unwrap();
            if r.label != 0 {
                flipped += 1;
                if r.bits.get(4) {
                    flagged += 1;
                }
            }
        }
        assert!(
            flipped > trials * 9 / 10,
            "labels should almost always flip"
        );
        let rate = flagged as f64 / flipped as f64;
        assert!(
            (rate - 0.5).abs() < 0.02,
            "flag rate {rate} should be p₂ = 1/2"
        );
    }

    #[test]
    fn privatize_with_validity_respects_pruned_items() {
        // Invalid item input can never produce a valid encoding, even when
        // the label survives.
        let domains = Domains::new(2, 4).unwrap();
        let m = CorrelatedPerturbation::new(eps(8.0), eps(8.0), domains).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut flag_set = 0;
        let trials = 2_000;
        for _ in 0..trials {
            let r = m
                .privatize_with_validity(0, ValidityInput::Invalid, &mut rng)
                .unwrap();
            if r.bits.get(4) {
                flag_set += 1;
            }
        }
        // With ε₂ = 8, the flag survives perturbation with p₂ = 1/2 — but it
        // must be the *encoded* bit: rate ≈ p₂ not q₂.
        let rate = flag_set as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.05, "flag rate {rate}");
    }

    #[test]
    fn report_size_accounting() {
        let m = small_mech(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let r = m.privatize(LabelItem::new(0, 0), &mut rng).unwrap();
        assert_eq!(r.size_bits(), 32 + 4);
        assert_eq!(m.report_bits(), 2 + 4); // ⌈log₂3⌉ label bits + d+1
    }
}
