//! # mcim-core
//!
//! The primary contribution of *Multi-class Item Mining under Local
//! Differential Privacy* (ICDE 2025): frameworks and optimized perturbation
//! mechanisms for estimating **classwise** item statistics when every user
//! holds one private label-item pair.
//!
//! ## Layout
//!
//! | Paper section | Module |
//! |---|---|
//! | §II-C problem setting | [`Domains`], [`LabelItem`], [`FrequencyTable`] |
//! | §II-D HEC strawman | [`frameworks::Hec`] |
//! | §III frameworks PTJ / PTS | [`frameworks::Ptj`], [`frameworks::Pts`] |
//! | §IV-A validity perturbation | [`ValidityPerturbation`] |
//! | §IV-B correlated perturbation | [`CorrelatedPerturbation`] |
//! | §V utility analysis (Thm 4–10, Table I) | [`analysis`] |
//! | §VI-A frequency estimation (Eqs. 4, 6) | aggregator `estimate()` methods |
//!
//! ## Quick example
//!
//! ```
//! use mcim_core::{Domains, LabelItem, Framework, FrequencyTable};
//! use mcim_oracles::exec::Exec;
//! use mcim_oracles::stream::SliceSource;
//! use mcim_oracles::Eps;
//!
//! let domains = Domains::new(2, 16).unwrap();
//! // 2 classes, 16 items: class 0 buys item 3, class 1 buys item 9.
//! let data: Vec<LabelItem> = (0..50_000)
//!     .map(|u| if u % 2 == 0 { LabelItem::new(0, 3) } else { LabelItem::new(1, 9) })
//!     .collect();
//! let truth = FrequencyTable::ground_truth(domains, &data).unwrap();
//!
//! let result = Framework::PtsCp { label_frac: 0.5 }
//!     .execute(Eps::new(4.0).unwrap(), domains, &Exec::seeded(1), SliceSource::new(&data))
//!     .unwrap();
//! let err = (result.table.get(0, 3) - truth.get(0, 3)).abs();
//! assert!(err < 2_500.0, "estimate within 5% of 25k: err {err}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod correlated;
mod domain;
pub mod frameworks;
pub mod mean;
mod validity;

pub use correlated::{CorrelatedPerturbation, CpAggregator, CpReport};
pub use domain::{Domains, FrequencyTable, LabelItem};
pub use frameworks::{CommStats, EstimationResult, Framework};
pub use mean::{LabelValue, MeanAggregator, MeanCp, MeanPts, NumericMechanism};
pub use validity::{ValidityInput, ValidityPerturbation, VpAggregator};

/// Re-export of the substrate crate for downstream convenience.
pub use mcim_oracles as oracles;
