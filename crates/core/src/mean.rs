//! Multi-class **mean** estimation over numerical items — the extension the
//! paper names as future work ("we aim to study multi-class item mining on
//! more data types, such as numerical items", §IX), built from the same two
//! ideas as the categorical pipeline:
//!
//! * [`MeanPts`] — the PTS recipe: GRR(ε₁) on the label, a numerical
//!   mechanism (stochastic rounding or piecewise) on the value, and an
//!   Eq. (6)-style cross-class correction:
//!   `Ŝ_C = (sum_C − q₁·Ŝ_total)/(p₁ − q₁)`, `mean̂_C = Ŝ_C / n̂_C`.
//! * [`MeanCp`] — the correlated-perturbation recipe: the value's
//!   *validity* is tied to the label surviving perturbation. A validity
//!   flag is randomized-response-perturbed with ε_f; invalid users submit
//!   the privatized value of **0** (whose calibrated expectation is 0), so
//!   label-flip arrivals cancel instead of polluting:
//!   `Ŝ_C = filtered_sum_C/(p₁·p_f)` — no global correction term needed.
//!
//! Both estimators are unbiased; the tests verify it by Monte-Carlo.

use rand::Rng;

use mcim_oracles::{
    calibrate::unbiased_count, Eps, Error, Grr, Piecewise, Result, StochasticRounding,
};

/// A user's private label and numerical value in `[-1, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelValue {
    /// Class label in `[0, c)`.
    pub label: u32,
    /// Value in `[-1, 1]`.
    pub value: f64,
}

impl LabelValue {
    /// Convenience constructor.
    pub fn new(label: u32, value: f64) -> Self {
        LabelValue { label, value }
    }
}

/// Which numerical primitive perturbs the value.
#[derive(Debug, Clone)]
enum ValueMech {
    Sr(StochasticRounding),
    Pm(Piecewise),
}

impl ValueMech {
    fn privatize<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> Result<f64> {
        match self {
            // SR needs explicit calibration; PM is already unbiased.
            ValueMech::Sr(m) => Ok(m.calibrate(m.privatize(v, rng)?)),
            ValueMech::Pm(m) => m.privatize(v, rng),
        }
    }

    fn report_bits(&self) -> usize {
        match self {
            ValueMech::Sr(m) => m.report_bits(),
            ValueMech::Pm(m) => m.report_bits(),
        }
    }
}

/// Numerical-mechanism selector for the mean estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericMechanism {
    /// One-bit stochastic rounding (best for small ε).
    StochasticRounding,
    /// The piecewise mechanism (best for ε ≳ 1.3).
    Piecewise,
}

impl NumericMechanism {
    fn build(self, eps: Eps) -> ValueMech {
        match self {
            NumericMechanism::StochasticRounding => ValueMech::Sr(StochasticRounding::new(eps)),
            NumericMechanism::Piecewise => ValueMech::Pm(Piecewise::new(eps)),
        }
    }
}

// ------------------------------------------------------------- MeanPts --

/// PTS-style classwise mean estimation (label and value perturbed
/// independently).
#[derive(Debug, Clone)]
pub struct MeanPts {
    classes: u32,
    label_mech: Grr,
    value_mech: ValueMech,
}

/// One report: perturbed label + calibrated value estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanReport {
    /// GRR-perturbed label.
    pub label: u32,
    /// Calibrated (unbiased) per-user value estimate.
    pub value: f64,
    /// Perturbed validity flag ([`MeanCp`] only; always `true` for PTS).
    pub claims_valid: bool,
}

impl MeanPts {
    /// Creates the estimator with explicit budgets (total = ε₁ + ε₂).
    pub fn new(eps1: Eps, eps2: Eps, classes: u32, mech: NumericMechanism) -> Result<Self> {
        Ok(MeanPts {
            classes,
            label_mech: Grr::new(eps1, classes)?,
            value_mech: mech.build(eps2),
        })
    }

    /// Even ε split, mirroring the categorical default.
    pub fn with_total(eps: Eps, classes: u32, mech: NumericMechanism) -> Result<Self> {
        let (e1, e2) = eps.halve();
        Self::new(e1, e2, classes, mech)
    }

    /// Per-user report size in bits.
    pub fn report_bits(&self) -> usize {
        self.label_mech.report_bits() + self.value_mech.report_bits()
    }

    /// Privatizes one user's pair.
    pub fn privatize<R: Rng + ?Sized>(&self, lv: LabelValue, rng: &mut R) -> Result<MeanReport> {
        if lv.label >= self.classes {
            return Err(Error::ValueOutOfDomain {
                value: lv.label as u64,
                domain: self.classes as u64,
            });
        }
        Ok(MeanReport {
            label: self.label_mech.perturb(lv.label, rng)?,
            value: self.value_mech.privatize(lv.value, rng)?,
            claims_valid: true,
        })
    }
}

// -------------------------------------------------------------- MeanCp --

/// Correlated-perturbation classwise mean estimation: value validity is
/// tied to the label surviving its perturbation, and the flag spends part
/// of the item budget (unlike the categorical VP, a numerical report has no
/// spare one-hot position to carry it for free).
#[derive(Debug, Clone)]
pub struct MeanCp {
    classes: u32,
    label_mech: Grr,
    /// Flag keep-probability (randomized response with ε_f).
    flag_keep: f64,
    value_mech: ValueMech,
}

impl MeanCp {
    /// Creates the estimator with explicit budgets
    /// (total = ε₁ + ε_f + ε_v).
    pub fn new(
        eps1: Eps,
        eps_flag: Eps,
        eps_value: Eps,
        classes: u32,
        mech: NumericMechanism,
    ) -> Result<Self> {
        Ok(MeanCp {
            classes,
            label_mech: Grr::new(eps1, classes)?,
            flag_keep: eps_flag.exp() / (eps_flag.exp() + 1.0),
            value_mech: mech.build(eps_value),
        })
    }

    /// Default split: half the budget on the label, a quarter each on the
    /// validity flag and the value.
    pub fn with_total(eps: Eps, classes: u32, mech: NumericMechanism) -> Result<Self> {
        let (e1, item) = eps.halve();
        let (ef, ev) = item.halve();
        Self::new(e1, ef, ev, classes, mech)
    }

    /// Per-user report size in bits (label + flag bit + value).
    pub fn report_bits(&self) -> usize {
        self.label_mech.report_bits() + 1 + self.value_mech.report_bits()
    }

    /// Label keep/flip probabilities `(p₁, q₁)`.
    pub fn label_probs(&self) -> (f64, f64) {
        (self.label_mech.p(), self.label_mech.q())
    }

    /// Flag keep probability `p_f`.
    pub fn flag_keep(&self) -> f64 {
        self.flag_keep
    }

    /// Privatizes one user's pair. If the label flips, the true value is
    /// replaced by 0 (a pure-noise report whose calibrated expectation is
    /// zero) and the validity flag is encoded as "invalid".
    pub fn privatize<R: Rng + ?Sized>(&self, lv: LabelValue, rng: &mut R) -> Result<MeanReport> {
        if lv.label >= self.classes {
            return Err(Error::ValueOutOfDomain {
                value: lv.label as u64,
                domain: self.classes as u64,
            });
        }
        let perturbed = self.label_mech.perturb(lv.label, rng)?;
        let valid = perturbed == lv.label;
        let flag_true = valid; // encoded flag: "I am valid"
        let claims_valid = if rng.random_bool(self.flag_keep) {
            flag_true
        } else {
            !flag_true
        };
        let value_in = if valid { lv.value } else { 0.0 };
        Ok(MeanReport {
            label: perturbed,
            value: self.value_mech.privatize(value_in, rng)?,
            claims_valid,
        })
    }
}

// ---------------------------------------------------------- aggregation --

/// Streaming aggregation for both mean estimators.
#[derive(Debug, Clone)]
pub struct MeanAggregator {
    classes: u32,
    p1: f64,
    q1: f64,
    /// `p_f` for CP (1.0 for PTS — every report claims validity).
    flag_keep: f64,
    /// Whether the CP filtered-sum estimator applies.
    correlated: bool,
    sums: Vec<f64>,
    label_counts: Vec<u64>,
    total_sum: f64,
    n: u64,
}

impl MeanAggregator {
    /// Aggregator for [`MeanPts`].
    pub fn for_pts(mech: &MeanPts) -> Self {
        MeanAggregator {
            classes: mech.classes,
            p1: mech.label_mech.p(),
            q1: mech.label_mech.q(),
            flag_keep: 1.0,
            correlated: false,
            sums: vec![0.0; mech.classes as usize],
            label_counts: vec![0; mech.classes as usize],
            total_sum: 0.0,
            n: 0,
        }
    }

    /// Aggregator for [`MeanCp`].
    pub fn for_cp(mech: &MeanCp) -> Self {
        MeanAggregator {
            classes: mech.classes,
            p1: mech.label_mech.p(),
            q1: mech.label_mech.q(),
            flag_keep: mech.flag_keep,
            correlated: true,
            sums: vec![0.0; mech.classes as usize],
            label_counts: vec![0; mech.classes as usize],
            total_sum: 0.0,
            n: 0,
        }
    }

    /// Absorbs one report.
    pub fn absorb(&mut self, report: &MeanReport) -> Result<()> {
        if report.label >= self.classes {
            return Err(Error::ValueOutOfDomain {
                value: report.label as u64,
                domain: self.classes as u64,
            });
        }
        self.n += 1;
        self.label_counts[report.label as usize] += 1;
        self.total_sum += report.value;
        if report.claims_valid {
            self.sums[report.label as usize] += report.value;
        }
        Ok(())
    }

    /// Number of absorbed reports.
    pub fn report_count(&self) -> u64 {
        self.n
    }

    /// Unbiased class-size estimate `n̂_C`.
    pub fn estimate_class_size(&self, label: u32) -> f64 {
        unbiased_count(
            self.label_counts[label as usize] as f64,
            self.n as f64,
            self.p1,
            self.q1,
        )
    }

    /// Unbiased estimate of the class's value **sum** `S_C`.
    pub fn estimate_class_sum(&self, label: u32) -> f64 {
        let idx = label as usize;
        if self.correlated {
            // CP: label-flip arrivals have zero-mean values; valid users
            // survive the (label, flag) pipeline with probability p₁·p_f.
            // Flag noise from invalid arrivals also has zero-mean values.
            self.sums[idx] / (self.p1 * self.flag_keep)
        } else {
            // PTS: E[sum_C] = p₁·S_C + q₁·(S_total − S_C).
            (self.sums[idx] - self.q1 * self.total_sum) / (self.p1 - self.q1)
        }
    }

    /// Classwise mean estimate `Ŝ_C / n̂_C`; `None` when the class-size
    /// estimate is too small to divide by meaningfully (< 1 user).
    pub fn estimate_mean(&self, label: u32) -> Option<f64> {
        let n_hat = self.estimate_class_size(label);
        if n_hat < 1.0 {
            return None;
        }
        Some(self.estimate_class_sum(label) / n_hat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    /// Three classes with distinct true means (0.6, -0.4, 0.1) and skewed
    /// sizes.
    fn population(n: usize, rng: &mut StdRng) -> Vec<LabelValue> {
        (0..n)
            .map(|u| {
                let label = match u % 10 {
                    0..=5 => 0,
                    6..=8 => 1,
                    _ => 2,
                };
                let center = [0.6, -0.4, 0.1][label as usize];
                let jitter: f64 = rng.random_range(-0.3..0.3);
                LabelValue::new(label, (center + jitter).clamp(-1.0, 1.0))
            })
            .collect()
    }

    fn true_means(data: &[LabelValue]) -> Vec<f64> {
        let mut sums = [0.0; 3];
        let mut counts = [0.0; 3];
        for lv in data {
            sums[lv.label as usize] += lv.value;
            counts[lv.label as usize] += 1.0;
        }
        sums.iter().zip(&counts).map(|(s, c)| s / c).collect()
    }

    #[test]
    fn pts_means_are_unbiased() {
        let mut rng = StdRng::seed_from_u64(61);
        let data = population(200_000, &mut rng);
        let truth = true_means(&data);
        for mech_kind in [
            NumericMechanism::StochasticRounding,
            NumericMechanism::Piecewise,
        ] {
            let mech = MeanPts::with_total(eps(4.0), 3, mech_kind).unwrap();
            let mut agg = MeanAggregator::for_pts(&mech);
            for lv in &data {
                agg.absorb(&mech.privatize(*lv, &mut rng).unwrap()).unwrap();
            }
            for c in 0..3u32 {
                let est = agg.estimate_mean(c).expect("enough users");
                assert!(
                    (est - truth[c as usize]).abs() < 0.08,
                    "{mech_kind:?} class {c}: est {est} vs {}",
                    truth[c as usize]
                );
            }
        }
    }

    #[test]
    fn cp_means_are_unbiased() {
        let mut rng = StdRng::seed_from_u64(62);
        let data = population(300_000, &mut rng);
        let truth = true_means(&data);
        let mech = MeanCp::with_total(eps(4.0), 3, NumericMechanism::Piecewise).unwrap();
        let mut agg = MeanAggregator::for_cp(&mech);
        for lv in &data {
            agg.absorb(&mech.privatize(*lv, &mut rng).unwrap()).unwrap();
        }
        for c in 0..3u32 {
            let est = agg.estimate_mean(c).expect("enough users");
            assert!(
                (est - truth[c as usize]).abs() < 0.1,
                "class {c}: est {est} vs {}",
                truth[c as usize]
            );
        }
    }

    #[test]
    fn cp_sum_estimate_ignores_cross_class_pollution() {
        // Class 1 has strongly negative values; class 0 positive. Under CP
        // the class-0 sum estimate must not drift toward class 1's sign
        // even at a small label budget (heavy mixing).
        let mut rng = StdRng::seed_from_u64(63);
        let n = 200_000;
        let data: Vec<LabelValue> = (0..n)
            .map(|u| {
                if u % 2 == 0 {
                    LabelValue::new(0, 0.8)
                } else {
                    LabelValue::new(1, -0.8)
                }
            })
            .collect();
        let mech =
            MeanCp::new(eps(0.5), eps(1.0), eps(1.0), 2, NumericMechanism::Piecewise).unwrap();
        let mut agg = MeanAggregator::for_cp(&mech);
        for lv in &data {
            agg.absorb(&mech.privatize(*lv, &mut rng).unwrap()).unwrap();
        }
        let s0 = agg.estimate_class_sum(0);
        let expected = 0.8 * (n / 2) as f64;
        assert!(
            (s0 - expected).abs() < 0.15 * expected,
            "S_0 estimate {s0} vs {expected}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let mech = MeanPts::with_total(eps(1.0), 2, NumericMechanism::StochasticRounding).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(mech.privatize(LabelValue::new(2, 0.0), &mut rng).is_err());
        assert!(mech.privatize(LabelValue::new(0, 1.5), &mut rng).is_err());
    }

    #[test]
    fn empty_class_yields_none() {
        let mech = MeanPts::with_total(eps(1.0), 4, NumericMechanism::StochasticRounding).unwrap();
        let agg = MeanAggregator::for_pts(&mech);
        assert!(agg.estimate_mean(3).is_none());
    }

    #[test]
    fn report_bits_accounting() {
        let pts = MeanPts::with_total(eps(2.0), 4, NumericMechanism::StochasticRounding).unwrap();
        assert_eq!(pts.report_bits(), 2 + 1);
        let cp = MeanCp::with_total(eps(2.0), 4, NumericMechanism::Piecewise).unwrap();
        assert_eq!(cp.report_bits(), 2 + 1 + 64);
    }
}
