//! Label/item domains and label-item pairs.
//!
//! The problem setting (§II-C): `N` users, `c` classes, `d` items; each user
//! holds one label-item pair `(C, I)`. [`Domains`] carries the two domain
//! sizes and the bijection between pairs and *joint* indices used by the PTJ
//! framework (perturbation domain `P = C × I`, §III-B).

use mcim_oracles::{Error, Result};

/// A user's private label-item pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelItem {
    /// Class label in `[0, c)`.
    pub label: u32,
    /// Item in `[0, d)`.
    pub item: u32,
}

impl LabelItem {
    /// Convenience constructor.
    #[inline]
    pub fn new(label: u32, item: u32) -> Self {
        LabelItem { label, item }
    }
}

/// The class and item domain sizes of a mining task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domains {
    classes: u32,
    items: u32,
}

impl Domains {
    /// Creates domains with `classes ≥ 1` and `items ≥ 1`.
    pub fn new(classes: u32, items: u32) -> Result<Self> {
        if classes == 0 || items == 0 {
            return Err(Error::EmptyDomain);
        }
        // The joint domain must fit in u32 for PTJ.
        if (classes as u64) * (items as u64) > u32::MAX as u64 {
            return Err(Error::InvalidParameter {
                name: "classes * items",
                constraint: "joint domain must fit in u32",
            });
        }
        Ok(Domains { classes, items })
    }

    /// Creates domains from shapes known to be valid, for generator code
    /// whose class/item counts are compile-time literals or already-asserted
    /// configuration. Being `const`, a call with literal arguments is
    /// checked at compile time.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`, `items == 0`, or `classes · items`
    /// overflows `u32` (the joint-domain bound PTJ relies on). Use
    /// [`Domains::new`] for untrusted input.
    #[must_use]
    pub const fn of(classes: u32, items: u32) -> Self {
        assert!(classes >= 1 && items >= 1, "domains must be non-empty");
        assert!(
            (classes as u64) * (items as u64) <= u32::MAX as u64,
            "joint domain must fit in u32"
        );
        Domains { classes, items }
    }

    /// Number of classes `c`.
    #[inline]
    pub fn classes(&self) -> u32 {
        self.classes
    }

    /// Number of items `d`.
    #[inline]
    pub fn items(&self) -> u32 {
        self.items
    }

    /// Size of the joint perturbation domain `c·d` (PTJ).
    #[inline]
    pub fn joint_size(&self) -> u32 {
        self.classes * self.items
    }

    /// Validates that a pair lies inside the domains.
    pub fn check(&self, pair: LabelItem) -> Result<()> {
        if pair.label >= self.classes {
            return Err(Error::ValueOutOfDomain {
                value: pair.label as u64,
                domain: self.classes as u64,
            });
        }
        if pair.item >= self.items {
            return Err(Error::ValueOutOfDomain {
                value: pair.item as u64,
                domain: self.items as u64,
            });
        }
        Ok(())
    }

    /// Maps a pair to its joint index `label·d + item`.
    #[inline]
    pub fn joint_index(&self, pair: LabelItem) -> u32 {
        pair.label * self.items + pair.item
    }

    /// Inverse of [`Domains::joint_index`].
    #[inline]
    pub fn pair_of_joint(&self, joint: u32) -> LabelItem {
        LabelItem {
            label: joint / self.items,
            item: joint % self.items,
        }
    }
}

/// A `c × d` matrix of per-class item frequency estimates.
///
/// Row `C` holds the estimates `f̂(C, ·)`; values may be negative (unbiased
/// estimators are not clamped — ranking tasks need the raw values).
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyTable {
    domains: Domains,
    values: Vec<f64>,
}

impl FrequencyTable {
    /// Creates an all-zero table.
    pub fn zeros(domains: Domains) -> Self {
        FrequencyTable {
            domains,
            values: vec![0.0; domains.joint_size() as usize],
        }
    }

    /// Builds a table of *true* counts from raw data (ground truth).
    pub fn ground_truth(domains: Domains, data: &[LabelItem]) -> Result<Self> {
        let mut t = Self::zeros(domains);
        for &pair in data {
            domains.check(pair)?;
            *t.get_mut(pair.label, pair.item) += 1.0;
        }
        Ok(t)
    }

    /// The domains this table covers.
    #[inline]
    pub fn domains(&self) -> Domains {
        self.domains
    }

    /// Reads `f̂(C, I)`.
    #[inline]
    pub fn get(&self, label: u32, item: u32) -> f64 {
        self.values[(label * self.domains.items + item) as usize]
    }

    /// Mutable access to `f̂(C, I)`.
    #[inline]
    pub fn get_mut(&mut self, label: u32, item: u32) -> &mut f64 {
        &mut self.values[(label * self.domains.items + item) as usize]
    }

    /// Row `C` as a slice of length `d`.
    pub fn class_row(&self, label: u32) -> &[f64] {
        let d = self.domains.items as usize;
        let start = label as usize * d;
        &self.values[start..start + d]
    }

    /// All values, row-major (`[class][item]`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total estimated count for class `C` (sum of its row).
    pub fn class_total(&self, label: u32) -> f64 {
        self.class_row(label).iter().sum()
    }

    /// Global estimate for item `I` (sum over classes).
    pub fn item_total(&self, item: u32) -> f64 {
        (0..self.domains.classes).map(|c| self.get(c, item)).sum()
    }

    /// The `k` items with the largest estimates within class `C`
    /// (descending; ties broken by item id for determinism).
    pub fn top_k(&self, label: u32, k: usize) -> Vec<u32> {
        let row = self.class_row(label);
        let mut idx: Vec<u32> = (0..row.len() as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            row[b as usize]
                .partial_cmp(&row[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }
}

/// Label-item pairs cross the reducer's sockets as two `u32`s.
impl mcim_oracles::wire::Wire for LabelItem {
    fn put(&self, buf: &mut Vec<u8>) {
        self.label.put(buf);
        self.item.put(buf);
    }

    fn take(r: &mut mcim_oracles::wire::WireReader<'_>) -> mcim_oracles::Result<Self> {
        Ok(LabelItem {
            label: u32::take(r)?,
            item: u32::take(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_validate() {
        assert!(Domains::new(0, 5).is_err());
        assert!(Domains::new(5, 0).is_err());
        assert!(Domains::new(3, 7).is_ok());
        assert!(Domains::new(70_000, 70_000).is_err(), "joint overflow");
    }

    #[test]
    fn joint_index_round_trip() {
        let dom = Domains::new(3, 10).unwrap();
        for label in 0..3 {
            for item in 0..10 {
                let pair = LabelItem::new(label, item);
                assert_eq!(dom.pair_of_joint(dom.joint_index(pair)), pair);
            }
        }
        assert_eq!(dom.joint_size(), 30);
    }

    #[test]
    fn check_rejects_out_of_domain() {
        let dom = Domains::new(2, 4).unwrap();
        assert!(dom.check(LabelItem::new(2, 0)).is_err());
        assert!(dom.check(LabelItem::new(0, 4)).is_err());
        assert!(dom.check(LabelItem::new(1, 3)).is_ok());
    }

    #[test]
    fn ground_truth_counts() {
        let dom = Domains::new(2, 3).unwrap();
        let data = vec![
            LabelItem::new(0, 1),
            LabelItem::new(0, 1),
            LabelItem::new(1, 2),
        ];
        let t = FrequencyTable::ground_truth(dom, &data).unwrap();
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.get(1, 2), 1.0);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.class_total(0), 2.0);
        assert_eq!(t.item_total(1), 2.0);
    }

    #[test]
    fn top_k_orders_descending_with_deterministic_ties() {
        let dom = Domains::new(1, 5).unwrap();
        let mut t = FrequencyTable::zeros(dom);
        *t.get_mut(0, 0) = 3.0;
        *t.get_mut(0, 1) = 9.0;
        *t.get_mut(0, 2) = 3.0;
        *t.get_mut(0, 3) = -1.0;
        *t.get_mut(0, 4) = 9.0;
        assert_eq!(t.top_k(0, 3), vec![1, 4, 0]);
        assert_eq!(t.top_k(0, 10), vec![1, 4, 0, 2, 3], "k larger than d");
    }

    #[test]
    fn class_row_is_contiguous() {
        let dom = Domains::new(2, 3).unwrap();
        let mut t = FrequencyTable::zeros(dom);
        *t.get_mut(1, 0) = 5.0;
        assert_eq!(t.class_row(1), &[5.0, 0.0, 0.0]);
        assert_eq!(t.class_row(0), &[0.0, 0.0, 0.0]);
    }
}
