//! The **validity perturbation** mechanism (§IV-A).
//!
//! Item mining pipelines produce *invalid* data: items pruned from the
//! candidate set, or items whose label was perturbed away. Existing
//! mechanisms make invalid users report a random valid item for deniability,
//! which injects `m·q + m(p−q)/d` noise into every valid item (Theorem 4).
//!
//! Validity perturbation instead *encodes validity into the report*: the
//! unary encoding is extended by one **validity flag** bit at position `d`.
//!
//! * valid item `v`   → one-hot at position `v` (flag bit 0),
//! * invalid          → one-hot at position `d` (the flag).
//!
//! Every bit is then flipped with the OUE probabilities, so no extra budget
//! is spent on the flag (Theorem 1: the whole vector still satisfies ε-LDP,
//! because valid and invalid encodings are both one-hot vectors of length
//! `d+1`). Server-side, a report only contributes to item counts when its
//! *perturbed* flag bit is 0; the residual noise from invalid users drops to
//! `m·q(1−p)` (Theorem 5).

use rand::Rng;

use mcim_oracles::{parallel, stream, BitVec, ColumnCounter, Eps, Error, Result, UnaryEncoding};

/// The validity perturbation mechanism over item domain `[0, d)`.
///
/// Reports are `d+1`-bit vectors; bit `d` is the validity flag.
#[derive(Debug, Clone)]
pub struct ValidityPerturbation {
    d: u32,
    ue: UnaryEncoding,
}

/// An item to perturb: either a valid domain value or "invalid".
///
/// `Invalid` covers both pruned items and label-mismatch cases; the
/// mechanism does not care why the item is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidityInput {
    /// A valid item in `[0, d)`.
    Valid(u32),
    /// No valid item to report.
    Invalid,
}

impl ValidityPerturbation {
    /// Creates the mechanism with OUE probabilities (`p = 1/2`,
    /// `q = 1/(e^ε+1)`), the paper's choice (§IV-A).
    pub fn new(eps: Eps, d: u32) -> Result<Self> {
        if d == 0 {
            return Err(Error::EmptyDomain);
        }
        Ok(ValidityPerturbation {
            d,
            ue: UnaryEncoding::optimized(eps, d + 1)?,
        })
    }

    /// Item domain size `d` (the report carries `d+1` bits).
    #[inline]
    pub fn domain_size(&self) -> u32 {
        self.d
    }

    /// Keep probability `p` for set bits.
    #[inline]
    pub fn p(&self) -> f64 {
        self.ue.p()
    }

    /// Flip-on probability `q` for clear bits.
    #[inline]
    pub fn q(&self) -> f64 {
        self.ue.q()
    }

    /// Report size in bits.
    #[inline]
    pub fn report_bits(&self) -> usize {
        self.d as usize + 1
    }

    /// Index of the validity flag bit.
    #[inline]
    pub fn flag_index(&self) -> usize {
        self.d as usize
    }

    /// Encodes an input to its `d+1`-bit one-hot vector (Fig. 2).
    pub fn encode(&self, input: ValidityInput) -> Result<BitVec> {
        let len = self.d as usize + 1;
        match input {
            ValidityInput::Valid(v) => {
                if v >= self.d {
                    return Err(Error::ValueOutOfDomain {
                        value: v as u64,
                        domain: self.d as u64,
                    });
                }
                Ok(BitVec::one_hot(len, v as usize))
            }
            ValidityInput::Invalid => Ok(BitVec::one_hot(len, self.d as usize)),
        }
    }

    /// Encodes and perturbs an input.
    pub fn privatize<R: Rng + ?Sized>(&self, input: ValidityInput, rng: &mut R) -> Result<BitVec> {
        let encoded = self.encode(input)?;
        self.ue.perturb_bits(&encoded, rng)
    }

    /// Privatizes a batch of inputs on up to `threads` workers with the
    /// sharded deterministic RNG scheme of [`parallel`]: output is
    /// bit-identical for every thread count.
    pub fn privatize_batch(
        &self,
        inputs: &[ValidityInput],
        base_seed: u64,
        threads: usize,
    ) -> Result<Vec<BitVec>> {
        parallel::try_fill_shards(inputs, threads, |shard, chunk, slots| {
            let mut rng = parallel::shard_rng(base_seed, shard);
            for (&input, slot) in chunk.iter().zip(slots.iter_mut()) {
                *slot = Some(self.privatize(input, &mut rng)?);
            }
            Ok(())
        })
    }

    /// Exact probability of an output vector given an input (for privacy
    /// enumeration tests; `O(d)` per call).
    pub fn response_probability(&self, input: ValidityInput, out: &BitVec) -> f64 {
        let set_pos = match input {
            ValidityInput::Valid(v) => v as usize,
            ValidityInput::Invalid => self.d as usize,
        };
        let (p, q) = (self.p(), self.q());
        let mut prob = 1.0;
        for i in 0..self.d as usize + 1 {
            let keep = if i == set_pos { p } else { q };
            prob *= if out.get(i) { keep } else { 1.0 - keep };
        }
        prob
    }
}

/// Streaming aggregation of validity-perturbation reports.
///
/// Implements the counting rule implied by Theorem 7: a report contributes
/// its item bits only when its perturbed flag is **0** (claims validity).
#[derive(Debug, Clone)]
pub struct VpAggregator {
    d: u32,
    p: f64,
    q: f64,
    counts: Vec<u64>,
    flag_count: u64,
    n: u64,
}

impl VpAggregator {
    /// Creates an empty aggregator matching `mechanism`.
    pub fn new(mechanism: &ValidityPerturbation) -> Self {
        VpAggregator {
            d: mechanism.d,
            p: mechanism.p(),
            q: mechanism.q(),
            counts: vec![0; mechanism.d as usize],
            flag_count: 0,
            n: 0,
        }
    }

    /// Whether a (length-checked) report's validity flag bit is set.
    #[inline]
    fn flag_set(&self, report: &BitVec) -> bool {
        report.bit(self.d as usize)
    }

    /// Absorbs one report.
    pub fn absorb(&mut self, report: &BitVec) -> Result<()> {
        if report.len() != self.d as usize + 1 {
            return Err(Error::ReportMismatch {
                expected: "VP report of length d+1",
            });
        }
        self.n += 1;
        if self.flag_set(report) {
            self.flag_count += 1;
            return Ok(()); // flagged invalid: item bits are excluded
        }
        // Flag bit is 0 here, so every set bit is an item bit; `counts` has
        // d entries and the d-th column is known clear, so a d-wide target
        // is safe.
        report.count_ones_into(&mut self.counts);
        Ok(())
    }

    /// Absorbs a block of reports through the word-parallel column-sum
    /// runtime: unflagged reports are summed bit-sliced, flagged ones only
    /// bump the flag counter. Counts equal sequential [`VpAggregator::absorb`].
    pub fn absorb_all<'a, I>(&mut self, reports: I) -> Result<()>
    where
        I: IntoIterator<Item = &'a BitVec>,
    {
        let width = self.d as usize + 1;
        let mut cc = ColumnCounter::new(width);
        let mut outcome = Ok(());
        let mut flagged = 0u64;
        for report in reports {
            if report.len() != width {
                outcome = Err(Error::ReportMismatch {
                    expected: "VP report of length d+1",
                });
                break;
            }
            if self.flag_set(report) {
                flagged += 1;
            } else {
                cc.add(report.words());
            }
        }
        self.n += cc.rows() + flagged;
        self.flag_count += flagged;
        cc.drain_into(&mut self.counts); // d-column prefix: flag column dropped
        outcome
    }

    /// [`VpAggregator::absorb_all`] sharded across up to `threads` workers;
    /// per-shard counter sums merge associatively, so results are
    /// bit-identical for every thread count.
    pub fn absorb_batch(&mut self, reports: &[BitVec], threads: usize) -> Result<()> {
        if threads.max(1) == 1 || reports.len() <= parallel::SHARD_SIZE {
            return self.absorb_all(reports);
        }
        let template = self.fresh();
        let shards = parallel::map_shards(reports, threads, |_, chunk| {
            let mut local = template.clone();
            local.absorb_all(chunk).map(|()| local)
        });
        for shard in shards {
            self.merge(&shard?)?;
        }
        Ok(())
    }

    /// Absorbs every report pulled from `source` in bounded chunks —
    /// [`VpAggregator::absorb_batch`] without the materialized slice.
    /// Counts are bit-identical to the batch path for every chunk size and
    /// thread count.
    pub fn absorb_stream<S>(&mut self, source: &mut S, config: stream::StreamConfig) -> Result<()>
    where
        S: stream::ReportSource<Item = BitVec>,
    {
        let template = self.fresh();
        let merged = stream::absorb_stream_with(
            source,
            config,
            &template,
            |agg: &mut VpAggregator, chunk| agg.absorb_all(chunk),
            |a, b| a.merge(b),
        )?;
        self.merge(&merged)
    }

    /// An empty aggregator with this one's mechanism parameters (the
    /// per-shard accumulator of [`VpAggregator::absorb_batch`]).
    fn fresh(&self) -> Self {
        VpAggregator {
            d: self.d,
            p: self.p,
            q: self.q,
            counts: vec![0; self.d as usize],
            flag_count: 0,
            n: 0,
        }
    }

    /// Merges another aggregator over the same mechanism (sharded
    /// aggregation across threads).
    pub fn merge(&mut self, other: &VpAggregator) -> Result<()> {
        if self.d != other.d {
            return Err(Error::ReportMismatch {
                expected: "VP aggregator with identical domain",
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.flag_count += other.flag_count;
        self.n += other.n;
        Ok(())
    }

    /// Number of absorbed reports.
    #[inline]
    pub fn report_count(&self) -> u64 {
        self.n
    }

    /// Raw flag-filtered item counts — the quantity Theorems 6/7 compare.
    /// Scaling is uniform across items, so ranking on these is sound
    /// (§V-B: "the counts of all items are scaled consistently").
    pub fn raw_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Raw count of reports whose perturbed flag was set.
    #[inline]
    pub fn raw_flag_count(&self) -> u64 {
        self.flag_count
    }

    /// Unbiased estimate of the number of *invalid* users:
    /// `m̂ = (flag_count − N·q)/(p − q)`.
    pub fn estimate_invalid(&self) -> f64 {
        mcim_oracles::calibrate::unbiased_count(
            self.flag_count as f64,
            self.n as f64,
            self.p,
            self.q,
        )
    }

    /// Unbiased item-frequency estimates.
    ///
    /// Inverts Theorem 7's expectation
    /// `E[count_I] = (1−q)[f·p + (N−m−f)·q] + m·q(1−p)` using the flag-based
    /// estimate `m̂` for the invalid population. (An extension over the
    /// paper, which only needs rank order from VP counts.)
    pub fn estimate(&self) -> Vec<f64> {
        let n = self.n as f64;
        let m = self.estimate_invalid();
        let (p, q) = (self.p, self.q);
        let valid = n - m;
        self.counts
            .iter()
            .map(|&c| {
                (c as f64 - (1.0 - q) * valid * q - m * q * (1.0 - p)) / ((1.0 - q) * (p - q))
            })
            .collect()
    }
}

/// Partial state for the distributed reducer: bucket counters, the flag
/// tally and the report count.
impl mcim_oracles::wire::WireState for VpAggregator {
    fn save(&self, buf: &mut Vec<u8>) {
        self.counts.save(buf);
        self.flag_count.save(buf);
        self.n.save(buf);
    }

    fn load(&mut self, r: &mut mcim_oracles::wire::WireReader<'_>) -> Result<()> {
        self.counts.load(r)?;
        self.flag_count.load(r)?;
        self.n.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn encode_valid_and_invalid() {
        let vp = ValidityPerturbation::new(eps(1.0), 4).unwrap();
        let valid = vp.encode(ValidityInput::Valid(2)).unwrap();
        assert_eq!(valid.iter_ones().collect::<Vec<_>>(), vec![2]);
        assert_eq!(valid.len(), 5);
        let invalid = vp.encode(ValidityInput::Invalid).unwrap();
        assert_eq!(invalid.iter_ones().collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn encode_rejects_out_of_domain() {
        let vp = ValidityPerturbation::new(eps(1.0), 4).unwrap();
        assert!(vp.encode(ValidityInput::Valid(4)).is_err());
    }

    #[test]
    fn satisfies_ldp_by_enumeration() {
        // Enumerate all 2^(d+1) outputs for d = 3 over all input pairs
        // (valid items and invalid): worst-case ratio must be ≤ e^ε.
        let e = 1.5f64;
        let vp = ValidityPerturbation::new(eps(e), 3).unwrap();
        let inputs = [
            ValidityInput::Valid(0),
            ValidityInput::Valid(1),
            ValidityInput::Valid(2),
            ValidityInput::Invalid,
        ];
        let mut worst: f64 = 0.0;
        for mask in 0..16u32 {
            let mut out = BitVec::zeros(4);
            for i in 0..4 {
                if (mask >> i) & 1 == 1 {
                    out.set(i, true);
                }
            }
            for &a in &inputs {
                for &b in &inputs {
                    let r = vp.response_probability(a, &out) / vp.response_probability(b, &out);
                    worst = worst.max(r);
                }
            }
        }
        assert!(worst <= e.exp() * (1.0 + 1e-9), "worst ratio {worst}");
        assert!(worst >= e.exp() * (1.0 - 1e-9), "bound should be tight");
    }

    #[test]
    fn response_probabilities_normalize() {
        let vp = ValidityPerturbation::new(eps(0.8), 3).unwrap();
        for input in [ValidityInput::Valid(1), ValidityInput::Invalid] {
            let mut total = 0.0;
            for mask in 0..16u32 {
                let mut out = BitVec::zeros(4);
                for i in 0..4 {
                    if (mask >> i) & 1 == 1 {
                        out.set(i, true);
                    }
                }
                total += vp.response_probability(input, &out);
            }
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn aggregation_filters_flagged_reports() {
        let vp = ValidityPerturbation::new(eps(1.0), 3).unwrap();
        let mut agg = VpAggregator::new(&vp);
        // Handcrafted reports: flag set → item bits ignored.
        let mut flagged = BitVec::zeros(4);
        flagged.set(0, true);
        flagged.set(3, true);
        agg.absorb(&flagged).unwrap();
        assert_eq!(agg.raw_counts(), &[0, 0, 0]);
        assert_eq!(agg.raw_flag_count(), 1);
        // Unflagged report counts its bits.
        let mut ok = BitVec::zeros(4);
        ok.set(0, true);
        ok.set(2, true);
        agg.absorb(&ok).unwrap();
        assert_eq!(agg.raw_counts(), &[1, 0, 1]);
        assert_eq!(agg.report_count(), 2);
    }

    #[test]
    fn batch_paths_match_sequential() {
        let vp = ValidityPerturbation::new(eps(1.0), 70).unwrap();
        let inputs: Vec<ValidityInput> = (0..9000)
            .map(|u| match u % 3 {
                0 => ValidityInput::Valid(u as u32 % 70),
                1 => ValidityInput::Valid(7),
                _ => ValidityInput::Invalid,
            })
            .collect();
        let base = 42;
        let reports = vp.privatize_batch(&inputs, base, 1).unwrap();
        assert_eq!(
            vp.privatize_batch(&inputs, base, 4).unwrap(),
            reports,
            "privatize_batch must be thread-count invariant"
        );
        let mut seq = VpAggregator::new(&vp);
        for r in &reports {
            seq.absorb(r).unwrap();
        }
        for threads in [1, 2, 8] {
            let mut batch = VpAggregator::new(&vp);
            batch.absorb_batch(&reports, threads).unwrap();
            assert_eq!(batch.raw_counts(), seq.raw_counts(), "threads={threads}");
            assert_eq!(batch.raw_flag_count(), seq.raw_flag_count());
            assert_eq!(batch.report_count(), seq.report_count());
            assert_eq!(batch.estimate(), seq.estimate());
        }
    }

    #[test]
    fn absorb_all_rejects_wrong_length_mid_block() {
        let vp = ValidityPerturbation::new(eps(1.0), 3).unwrap();
        let mut agg = VpAggregator::new(&vp);
        let good = BitVec::one_hot(4, 0);
        let bad = BitVec::zeros(3);
        assert!(agg.absorb_all([&good, &bad]).is_err());
    }

    #[test]
    fn absorb_rejects_wrong_length() {
        let vp = ValidityPerturbation::new(eps(1.0), 3).unwrap();
        let mut agg = VpAggregator::new(&vp);
        assert!(agg.absorb(&BitVec::zeros(3)).is_err());
    }

    #[test]
    fn estimate_recovers_frequencies_with_invalid_users() {
        let d = 16u32;
        let vp = ValidityPerturbation::new(eps(2.0), d).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut agg = VpAggregator::new(&vp);
        let n = 60_000;
        // 50% hold item 3, 20% item 7, 30% invalid.
        for u in 0..n {
            let input = match u % 10 {
                0..=4 => ValidityInput::Valid(3),
                5 | 6 => ValidityInput::Valid(7),
                _ => ValidityInput::Invalid,
            };
            agg.absorb(&vp.privatize(input, &mut rng).unwrap()).unwrap();
        }
        let m_hat = agg.estimate_invalid();
        assert!(
            (m_hat - 0.3 * n as f64).abs() < 0.05 * n as f64,
            "m̂={m_hat}"
        );
        let est = agg.estimate();
        assert!(
            (est[3] - 0.5 * n as f64).abs() < 0.05 * n as f64,
            "est3={}",
            est[3]
        );
        assert!(
            (est[7] - 0.2 * n as f64).abs() < 0.05 * n as f64,
            "est7={}",
            est[7]
        );
        assert!(est[0].abs() < 0.05 * n as f64, "est0={}", est[0]);
    }

    #[test]
    fn vp_injects_less_invalid_noise_than_plain_oue() {
        // The headline claim of §IV-A / Theorems 4 vs 5, checked empirically:
        // m invalid users add ~m·q+m(p−q)/d noise under OUE-with-random-item
        // but only ~m·q(1−p) under VP.
        let d = 8u32;
        let e = eps(1.0);
        let n = 40_000usize; // all users invalid
        let mut rng = StdRng::seed_from_u64(21);

        // Plain OUE baseline: invalid users pick a random item.
        let oue = UnaryEncoding::optimized(e, d).unwrap();
        let mut oue_counts = vec![0u64; d as usize];
        for _ in 0..n {
            let fake = rng.random_range(0..d);
            let bits = oue.privatize(fake, &mut rng).unwrap();
            for i in bits.iter_ones() {
                oue_counts[i] += 1;
            }
        }

        // VP: invalid users report the flag.
        let vp = ValidityPerturbation::new(e, d).unwrap();
        let mut agg = VpAggregator::new(&vp);
        for _ in 0..n {
            agg.absorb(&vp.privatize(ValidityInput::Invalid, &mut rng).unwrap())
                .unwrap();
        }

        let oue_noise = oue_counts[0] as f64;
        let vp_noise = agg.raw_counts()[0] as f64;
        let thm4 = n as f64 * (oue.q() + (oue.p() - oue.q()) / d as f64);
        let thm5 = n as f64 * vp.q() * (1.0 - vp.p());
        assert!(
            (oue_noise - thm4).abs() < 0.05 * thm4,
            "oue {oue_noise} vs thm4 {thm4}"
        );
        assert!(
            (vp_noise - thm5).abs() < 0.08 * thm5,
            "vp {vp_noise} vs thm5 {thm5}"
        );
        assert!(vp_noise < oue_noise, "VP must reduce invalid-user noise");
    }
}
