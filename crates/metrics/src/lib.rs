//! # mcim-metrics
//!
//! The paper's evaluation metrics (§VII-B) plus the statistical helpers the
//! variance analysis needs:
//!
//! * [`rmse`] — root mean square error over estimated vs true frequencies,
//! * [`f1_at_k`] — F1 score of a mined top-k set (precision = recall here,
//!   so F1 is the true-positive ratio),
//! * [`ncr_at_k`] — Normalized Cumulative Rank with weights `k, k−1, …, 1`,
//! * [`pmi`] — pointwise mutual information of a label-item pair (§V-C),
//! * [`RunningMoments`] — numerically stable mean/variance accumulation
//!   (Welford) for the empirical variance study of Fig. 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Root mean square error between two equally long slices:
/// `sqrt(mean((est − truth)²))` — Fig. 6's metric over all `(C, I)` cells.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn rmse(estimated: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimated.len(), truth.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty input");
    let sum_sq: f64 = estimated
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t) * (e - t))
        .sum();
    (sum_sq / truth.len() as f64).sqrt()
}

/// F1 score of mined vs true top-k items. Since `|mined| = |truth| = k`,
/// precision equals recall and F1 reduces to `|mined ∩ truth| / k`
/// (§VII-B). Extra or missing mined items are tolerated (miners may return
/// fewer than k candidates); the denominator stays `k = |truth|`.
pub fn f1_at_k(mined: &[u32], truth: &[u32]) -> f64 {
    if truth.is_empty() {
        return if mined.is_empty() { 1.0 } else { 0.0 };
    }
    let truth_set: std::collections::HashSet<u32> = truth.iter().copied().collect();
    let hits = mined.iter().filter(|i| truth_set.contains(i)).count();
    hits as f64 / truth.len() as f64
}

/// Normalized Cumulative Rank (§VII-B):
/// `NCR = 2·Σ_{I ∈ mined} q(I) / (k(k+1))` where the true top-1 item has
/// quality `q = k`, the second `k−1`, …, the k-th `1`, and items outside
/// the true top-k have quality 0. `truth` must be ordered by rank.
pub fn ncr_at_k(mined: &[u32], truth: &[u32]) -> f64 {
    let k = truth.len();
    if k == 0 {
        return if mined.is_empty() { 1.0 } else { 0.0 };
    }
    let quality: std::collections::HashMap<u32, usize> = truth
        .iter()
        .enumerate()
        .map(|(rank, &item)| (item, k - rank))
        .collect();
    let score: usize = mined.iter().filter_map(|i| quality.get(i)).sum();
    2.0 * score as f64 / (k * (k + 1)) as f64
}

/// Pointwise mutual information of a label-item pair (§V-C):
/// `PMI(C; I) = log₂[p(C, I) / (p(C)·p(I))]` with probabilities from counts
/// over a population of `n_total`.
///
/// Returns `-inf` when the pair never occurs; panics on zero marginals.
pub fn pmi(f_pair: f64, n_class: f64, f_item: f64, n_total: f64) -> f64 {
    assert!(
        n_class > 0.0 && f_item > 0.0 && n_total > 0.0,
        "zero marginal"
    );
    let p_pair = f_pair / n_total;
    let p_class = n_class / n_total;
    let p_item = f_item / n_total;
    (p_pair / (p_class * p_item)).log2()
}

/// Streaming mean/variance (Welford's algorithm) — used to measure the
/// empirical estimator variance across trials (Fig. 5 computes
/// `Var[f̂] = (1/t)·Σ (f̂ − f)²`; [`RunningMoments::mse_about`] provides
/// exactly that form, and `variance()` the centered one).
#[derive(Debug, Clone, Default)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
    sum_sq: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.sum_sq += x * x;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance about the mean (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Mean squared deviation about a *known* reference value — the paper's
    /// variance estimator `1/t·Σ(f̂ − f)²` with `f` the ground truth.
    pub fn mse_about(&self, reference: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        // E[(x − r)²] = E[x²] − 2r·E[x] + r².
        self.sum_sq / self.n as f64 - 2.0 * reference * self.mean + reference * reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_basic() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_checks_lengths() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn f1_counts_hits() {
        assert_eq!(f1_at_k(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(f1_at_k(&[1, 2, 9], &[1, 2, 3]), 2.0 / 3.0);
        assert_eq!(f1_at_k(&[7, 8, 9], &[1, 2, 3]), 0.0);
        assert_eq!(f1_at_k(&[1], &[1, 2, 3]), 1.0 / 3.0, "short mined list");
        assert_eq!(f1_at_k(&[], &[]), 1.0);
    }

    #[test]
    fn ncr_weights_by_rank() {
        // Perfect mining: 2·(3+2+1)/(3·4) = 1.
        assert_eq!(ncr_at_k(&[10, 20, 30], &[10, 20, 30]), 1.0);
        // Order of `mined` does not matter.
        assert_eq!(ncr_at_k(&[30, 10, 20], &[10, 20, 30]), 1.0);
        // Only the true top-1 found: 2·3/12 = 0.5.
        assert_eq!(ncr_at_k(&[10], &[10, 20, 30]), 0.5);
        // Only the true 3rd found: 2·1/12.
        assert!((ncr_at_k(&[30], &[10, 20, 30]) - 1.0 / 6.0).abs() < 1e-12);
        // Mining the top item is worth more than mining the tail item.
        assert!(ncr_at_k(&[10], &[10, 20, 30]) > ncr_at_k(&[30], &[10, 20, 30]));
    }

    #[test]
    fn pmi_signs() {
        // Independent: PMI = 0.
        assert!((pmi(25.0, 50.0, 50.0, 100.0)).abs() < 1e-12);
        // Positively correlated pair.
        assert!(pmi(50.0, 50.0, 50.0, 100.0) > 0.0);
        // Anti-correlated.
        assert!(pmi(1.0, 50.0, 50.0, 100.0) < 0.0);
        // Monotone in f_pair.
        assert!(pmi(40.0, 50.0, 50.0, 100.0) > pmi(30.0, 50.0, 50.0, 100.0));
    }

    #[test]
    fn running_moments_match_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rm = RunningMoments::new();
        for &x in &xs {
            rm.push(x);
        }
        assert_eq!(rm.count(), 8);
        assert!((rm.mean() - 5.0).abs() < 1e-12);
        assert!((rm.variance() - 4.0).abs() < 1e-12);
        // MSE about the mean equals the variance.
        assert!((rm.mse_about(5.0) - 4.0).abs() < 1e-9);
        // MSE about 0 equals E[x²].
        let ex2: f64 = xs.iter().map(|x| x * x).sum::<f64>() / 8.0;
        assert!((rm.mse_about(0.0) - ex2).abs() < 1e-9);
    }

    #[test]
    fn running_moments_empty_and_single() {
        let mut rm = RunningMoments::new();
        assert_eq!(rm.variance(), 0.0);
        assert_eq!(rm.mse_about(3.0), 0.0);
        rm.push(3.0);
        assert_eq!(rm.variance(), 0.0);
        assert!((rm.mse_about(0.0) - 9.0).abs() < 1e-12);
    }
}
