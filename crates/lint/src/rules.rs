//! The rule engine: per-crate policies, test-region tracking, and the
//! individual invariant checks.
//!
//! Every rule answers one question the compiler cannot:
//!
//! | rule | invariant |
//! |---|---|
//! | `ambient-entropy` | pipeline output depends only on the seed |
//! | `clock-discipline` | wall time is read only through the obs clock seam |
//! | `hashmap-in-wire` | iteration order never reaches encoded bytes |
//! | `panic-freedom` | library code returns `Error`, never panics |
//! | `stdout-noise` | library crates never write to stdout/stderr |
//! | `sampler-bypass` | noise planes come from the one UE sampler |
//! | `rng-discipline` | RNG streams are only constructed in their homes |
//! | `unsafe-header` | every lib crate carries `#![forbid(unsafe_code)]` |
//! | `schema-drift` | wire fingerprints match `wire-schema.lock` |
//! | `schema-lock` | the lock exists once wire symbols do |
//! | `protocol-version` | dist drift rides with a `PROTOCOL_VERSION` bump |
//! | `pragma-syntax` | every `mcim-lint:` comment actually parses |
//!
//! The three `schema-*`/`protocol-version` rules are produced by the
//! workspace pass ([`crate::schema`]), not per-file checks; they are
//! listed here so `--list-rules` and pragma validation know them —
//! schema findings are never baselineable or pragma-allowable, so a
//! pragma naming them is reported dead.

use crate::lexer::{scrub, tokenize, Pragma, Tok};
use crate::symbols::WIRE_TRAITS;

/// Every rule identifier, for `--list-rules` and pragma validation.
pub const RULE_IDS: &[&str] = &[
    "ambient-entropy",
    "clock-discipline",
    "hashmap-in-wire",
    "panic-freedom",
    "stdout-noise",
    "sampler-bypass",
    "rng-discipline",
    "unsafe-header",
    "schema-drift",
    "schema-lock",
    "protocol-version",
    "pragma-syntax",
];

/// How a file is policed, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library crate source: all rules apply.
    Lib,
    /// Front-end / harness binaries (`crates/cli`, `crates/bench`,
    /// `crates/lint`): may panic, print, and read clocks.
    Tool,
    /// Tests, benches, examples: may panic and print, but stay
    /// deterministic (`ambient-entropy` still applies).
    TestLike,
}

/// Classifies a workspace-relative path, or `None` to skip the file
/// entirely (vendored shims, build output).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") || rel.starts_with("vendor/") || rel.starts_with("target/") {
        return None;
    }
    for tool in ["crates/cli/", "crates/bench/", "crates/lint/"] {
        if rel.starts_with(tool) {
            return Some(FileClass::Tool);
        }
    }
    if rel.starts_with("tests/") || rel.starts_with("examples/") {
        return Some(FileClass::TestLike);
    }
    if let Some(in_crate) = rel.strip_prefix("crates/") {
        let (_, sub) = in_crate.split_once('/')?;
        if sub.starts_with("tests/") || sub.starts_with("benches/") || sub.starts_with("examples/")
        {
            return Some(FileClass::TestLike);
        }
        return Some(FileClass::Lib);
    }
    if rel.starts_with("src/") {
        return Some(FileClass::Lib);
    }
    None
}

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Rule identifier (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The offending token (baseline matching key).
    pub token: String,
    /// Human explanation.
    pub message: String,
}

/// Marks the lines belonging to `#[cfg(test)]` / `#[test]` items and
/// `mod tests { … }` blocks. (Also used by the symbol index to keep
/// test-only types and impls out of the wire schema.)
pub fn test_lines(toks: &[Tok], n_lines: usize) -> Vec<bool> {
    let mut in_test = vec![false; n_lines + 2];
    let mut i = 0usize;
    let mut pending_test: Option<usize> = None; // line of the test attr
    while i < toks.len() {
        // Attribute: `#` (`!`)? `[` … `]` — is it test-flavoured?
        if toks[i].is_punct('#') {
            let attr_line = toks[i].line;
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                let mut depth = 1usize;
                let mut idents: Vec<&str> = Vec::new();
                j += 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('[') {
                        depth += 1;
                    } else if toks[j].is_punct(']') {
                        depth -= 1;
                    } else if let Some(id) = toks[j].ident() {
                        idents.push(id);
                    }
                    j += 1;
                }
                // `not(test)` guards non-test code — don't let it exempt.
                let test_attr = idents.first() == Some(&"test")
                    || (idents.first() == Some(&"cfg")
                        && idents.contains(&"test")
                        && !idents.contains(&"not"));
                if test_attr && pending_test.is_none() {
                    pending_test = Some(attr_line);
                }
                i = j;
                continue;
            }
        }
        // `mod tests {` without an attribute still counts.
        let mod_tests = toks[i].ident() == Some("mod")
            && toks.get(i + 1).and_then(Tok::ident) == Some("tests")
            && toks.get(i + 2).is_some_and(|t| t.is_punct('{'));
        if pending_test.is_some() || mod_tests {
            let start_line = pending_test.unwrap_or(toks[i].line);
            // Find the item's body: first `{` (brace-match it) or a
            // terminating `;` at top level.
            let mut j = i;
            let mut end_line = toks[i].line;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    let mut depth = 1usize;
                    j += 1;
                    while j < toks.len() && depth > 0 {
                        if toks[j].is_punct('{') {
                            depth += 1;
                        } else if toks[j].is_punct('}') {
                            depth -= 1;
                        }
                        end_line = toks[j].line;
                        j += 1;
                    }
                    break;
                }
                if toks[j].is_punct(';') {
                    end_line = toks[j].line;
                    j += 1;
                    break;
                }
                end_line = toks[j].line;
                j += 1;
            }
            for flag in in_test
                .iter_mut()
                .take(end_line.min(n_lines) + 1)
                .skip(start_line)
            {
                *flag = true;
            }
            pending_test = None;
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Basenames whose whole file is a wire path: order there reaches bytes.
const WIRE_FILES: &[&str] = &["wire.rs", "stages.rs", "coord.rs", "worker.rs", "proto.rs"];

fn is_wire_sensitive(rel: &str, toks: &[Tok]) -> bool {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    if WIRE_FILES.contains(&base) {
        return true;
    }
    toks.windows(2).any(|w| {
        w[0].ident().is_some_and(|id| WIRE_TRAITS.contains(&id)) && w[1].ident() == Some("for")
    })
}

/// The raw Bernoulli fillers. Under RNG-contract v2 every noise plane
/// must be drawn through `UnaryEncoding`'s private `fill_plane` sampler —
/// a pipeline call site reaching these directly forks the noise stream
/// (the wordwise/geometric branch point would no longer be
/// mode-invariant). Call sites (`.name(` / `::name(`) are flagged;
/// definitions (`fn name`) are not.
const RAW_SAMPLERS: &[&str] = &["fill_bernoulli", "fill_bernoulli_wordwise"];

/// The sampler module itself: where the fillers live (`bitvec.rs`) and
/// the one sanctioned chooser between them (`ue.rs`'s `fill_plane`).
const SAMPLER_HOME_FILES: &[&str] = &["crates/oracles/src/bitvec.rs", "crates/oracles/src/ue.rs"];

/// RNG-stream constructors. Under RNG-contract v2 every stream a
/// pipeline consumes is derived by `shard_rng(stage_seed, shard)`
/// (splitmix64 key-stretching in `parallel.rs`); constructing a stream
/// any other way forks the noise sequence and breaks the cross-mode
/// bit-identity the equivalence matrices pin. Call sites are flagged;
/// definitions (`fn splitmix64`) are not.
const RNG_CONSTRUCTORS: &[&str] = &[
    "seed_from_u64",
    "from_seed",
    "from_rng",
    "try_from_rng",
    "from_entropy",
    "from_os_rng",
    "splitmix64",
];

/// Where RNG streams may legitimately be born: the shard-stream derivation
/// (`parallel.rs`) and the samplers that consume them (`ue.rs`,
/// `bitvec.rs`).
const RNG_HOME_FILES: &[&str] = &[
    "crates/oracles/src/parallel.rs",
    "crates/oracles/src/ue.rs",
    "crates/oracles/src/bitvec.rs",
];

/// `hash.rs` uses `splitmix64` as a *mixing function* (OLH seed
/// hashing), not to seed a stream — sanctioned for that token only.
const SPLITMIX_EXTRA_HOMES: &[&str] = &["crates/oracles/src/hash.rs"];

/// The one sanctioned home of `Instant::now` outside tool crates: the
/// telemetry layer's clock seam. Everything else (instrumentation sites,
/// spans, tests) goes through `mcim_obs::Clock`, so a test can inject a
/// `ManualClock` and every timing-shaped code path stays reproducible.
const CLOCK_HOME_FILES: &[&str] = &["crates/obs/src/clock.rs"];

/// Everything the engine knows about one analyzed file.
pub struct FileReport {
    /// All findings, before pragma/baseline filtering.
    pub findings: Vec<Finding>,
    /// Pragmas seen in the file (consumed ones and not).
    pub pragmas: Vec<Pragma>,
}

/// Whether this path must carry the `#![forbid(unsafe_code)]` header:
/// the root of every library crate.
fn requires_unsafe_header(rel: &str) -> bool {
    let is_lib_root =
        rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"));
    is_lib_root && classify(rel) == Some(FileClass::Lib)
}

/// Runs every rule over one file.
pub fn check_file(rel: &str, source: &str, class: FileClass) -> FileReport {
    let scrubbed = scrub(source);
    let toks = tokenize(&scrubbed.code);
    let n_lines = source.lines().count().max(1);
    let in_test = test_lines(&toks, n_lines);
    let wire = class == FileClass::Lib && is_wire_sensitive(rel, &toks);
    let mut findings = Vec::new();

    for (line, err) in &scrubbed.malformed_pragmas {
        findings.push(Finding {
            rule: "pragma-syntax",
            file: rel.to_string(),
            line: *line,
            col: 1,
            token: "pragma".to_string(),
            message: err.clone(),
        });
    }

    let mut push = |rule: &'static str, tok: &Tok, token: &str, message: String| {
        findings.push(Finding {
            rule,
            file: rel.to_string(),
            line: tok.line,
            col: tok.col,
            token: token.to_string(),
            message,
        });
    };

    for (idx, tok) in toks.iter().enumerate() {
        let Some(id) = tok.ident() else { continue };
        let prev = idx.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(idx + 1);
        let next_is = |c: char| next.is_some_and(|t| t.is_punct(c));
        let prev_is = |c: char| prev.is_some_and(|t| t.is_punct(c));
        let tested = in_test.get(tok.line).copied().unwrap_or(false);

        // ambient-entropy: everywhere except Tool crates, including tests —
        // the equivalence nets are only as deterministic as their inputs.
        // (Monotonic `Instant::now` is the separate `clock-discipline`
        // rule below: it has a sanctioned non-tool home, wall clocks and
        // thread RNGs do not.)
        if class != FileClass::Tool {
            let entropy = match id {
                "thread_rng" if next_is('(') => true,
                "now"
                    if prev_is(':') && idx >= 3 && toks[idx - 3].ident() == Some("SystemTime") =>
                {
                    true
                }
                _ => false,
            };
            if entropy {
                let what = if id == "thread_rng" {
                    "thread_rng()"
                } else {
                    "SystemTime::now()"
                };
                push(
                    "ambient-entropy",
                    tok,
                    id,
                    format!(
                        "{what} injects ambient entropy; pipeline code must derive all \
                         randomness and time from explicit seeds/parameters (clocks are \
                         allowed only in crates/bench and crates/cli)"
                    ),
                );
            }

            // clock-discipline: `Instant::now` lives in exactly one place
            // outside tool crates — the obs clock seam. Everything else
            // times through `mcim_obs` spans/`Clock`, so tests can inject
            // a manual clock and timing stays test-reproducible.
            if id == "now"
                && prev_is(':')
                && idx >= 3
                && toks[idx - 3].ident() == Some("Instant")
                && !CLOCK_HOME_FILES.contains(&rel)
            {
                push(
                    "clock-discipline",
                    tok,
                    id,
                    "`Instant::now()` outside the telemetry clock seam \
                     (crates/obs/src/clock.rs); time spans through `mcim_obs::span` / the \
                     `Clock` trait instead, so a `ManualClock` can reproduce them in tests"
                        .to_string(),
                );
            }
        }

        if class == FileClass::Lib && !tested {
            // panic-freedom
            let panicky = match id {
                "unwrap" | "expect" => prev_is('.') && next_is('('),
                "panic" | "todo" | "unimplemented" => next_is('!'),
                _ => false,
            };
            if panicky {
                push(
                    "panic-freedom",
                    tok,
                    id,
                    format!(
                        "`{id}` can panic; library code must propagate `Error` (or document \
                         the infallible pattern with `// mcim-lint: allow(panic-freedom, …)`)"
                    ),
                );
            }

            // stdout-noise
            if matches!(id, "println" | "eprintln" | "dbg") && next_is('!') {
                push(
                    "stdout-noise",
                    tok,
                    id,
                    format!(
                        "`{id}!` writes to stdout/stderr from a library crate; surface \
                         diagnostics through return values instead"
                    ),
                );
            }

            // hashmap-in-wire
            if wire && matches!(id, "HashMap" | "HashSet") {
                push(
                    "hashmap-in-wire",
                    tok,
                    id,
                    format!(
                        "`{id}` in a wire path: iteration order is nondeterministic and must \
                         never reach encoded bytes or merge order — use `BTreeMap`/sorted \
                         drains, or assert lookup-only use with a pragma"
                    ),
                );
            }
        }

        // sampler-bypass: lib code (tests may probe the fillers directly);
        // call sites only; the sampler module itself is exempt.
        if class == FileClass::Lib
            && !tested
            && RAW_SAMPLERS.contains(&id)
            && (prev_is('.') || prev_is(':'))
            && next_is('(')
            && !SAMPLER_HOME_FILES.contains(&rel)
        {
            push(
                "sampler-bypass",
                tok,
                id,
                format!(
                    "`{id}` bypasses the RNG-contract sampler; draw noise planes through \
                     `UnaryEncoding` (its `fill_plane` picks the wordwise/geometric path \
                     from the mechanism parameters alone, keeping every execution mode on \
                     one stream)"
                ),
            );
        }

        // rng-discipline: lib code may not construct RNG streams outside
        // the sanctioned homes (tests may build seeded fixtures freely).
        if class == FileClass::Lib
            && !tested
            && RNG_CONSTRUCTORS.contains(&id)
            && next_is('(')
            && prev.and_then(Tok::ident) != Some("fn")
            && !RNG_HOME_FILES.contains(&rel)
            && !(id == "splitmix64" && SPLITMIX_EXTRA_HOMES.contains(&rel))
        {
            push(
                "rng-discipline",
                tok,
                id,
                format!(
                    "`{id}` constructs an RNG stream outside the sanctioned homes \
                     (parallel.rs/ue.rs/bitvec.rs); RNG-contract v2 derives every pipeline \
                     stream via `shard_rng(stage_seed, shard)` so all execution modes share \
                     one noise sequence — route through it, or justify a non-privatization \
                     stream with a pragma"
                ),
            );
        }
    }

    // unsafe-header: lib crate roots must forbid unsafe code.
    if requires_unsafe_header(rel) {
        let has = toks.windows(8).any(|w| {
            w[0].is_punct('#')
                && w[1].is_punct('!')
                && w[2].is_punct('[')
                && w[3].ident() == Some("forbid")
                && w[4].is_punct('(')
                && w[5].ident() == Some("unsafe_code")
                && w[6].is_punct(')')
                && w[7].is_punct(']')
        });
        if !has {
            findings.push(Finding {
                rule: "unsafe-header",
                file: rel.to_string(),
                line: 1,
                col: 1,
                token: "forbid(unsafe_code)".to_string(),
                message: "library crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }

    FileReport {
        findings,
        pragmas: scrubbed.pragmas,
    }
}

/// Splits findings into (kept, allowed) by applying the file's pragmas,
/// and reports pragmas that allowed nothing (dead pragmas rot).
pub fn apply_pragmas(report: FileReport, rel: &str) -> (Vec<Finding>, Vec<Finding>, Vec<Finding>) {
    let FileReport { findings, pragmas } = report;
    let mut used = vec![false; pragmas.len()];
    let mut kept = Vec::new();
    let mut allowed = Vec::new();
    for f in findings {
        let covering = pragmas.iter().enumerate().find(|(_, p)| {
            p.rule == f.rule
                && if p.trailing {
                    p.line == f.line
                } else {
                    p.line + 1 == f.line
                }
        });
        match covering {
            Some((i, _)) => {
                used[i] = true;
                allowed.push(f);
            }
            None => kept.push(f),
        }
    }
    let mut dead = Vec::new();
    for (p, used) in pragmas.iter().zip(&used) {
        let unknown_rule = !RULE_IDS.contains(&p.rule.as_str());
        if !used || unknown_rule {
            dead.push(Finding {
                rule: "pragma-syntax",
                file: rel.to_string(),
                line: p.line,
                col: 1,
                token: "pragma".to_string(),
                message: if unknown_rule {
                    format!("pragma allows unknown rule `{}`", p.rule)
                } else {
                    format!(
                        "pragma `allow({}, …)` matches no finding on line {} — remove it",
                        p.rule,
                        p.line + usize::from(!p.trailing)
                    )
                },
            });
        }
    }
    (kept, allowed, dead)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_findings(rel: &str, src: &str) -> Vec<Finding> {
        check_file(rel, src, FileClass::Lib).findings
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn classify_follows_the_policy_table() {
        assert_eq!(classify("crates/oracles/src/wire.rs"), Some(FileClass::Lib));
        assert_eq!(classify("src/lib.rs"), Some(FileClass::Lib));
        assert_eq!(classify("crates/cli/src/main.rs"), Some(FileClass::Tool));
        assert_eq!(classify("crates/bench/benches/x.rs"), Some(FileClass::Tool));
        assert_eq!(classify("crates/lint/src/rules.rs"), Some(FileClass::Tool));
        assert_eq!(
            classify("crates/dist/tests/reducer.rs"),
            Some(FileClass::TestLike)
        );
        assert_eq!(
            classify("tests/exec_equivalence.rs"),
            Some(FileClass::TestLike)
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            Some(FileClass::TestLike)
        );
        assert_eq!(classify("vendor/rand/src/lib.rs"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn entropy_rule_catches_all_three_clocks() {
        let src = "fn f() { let mut r = thread_rng(); }\n\
                   fn g() -> u64 { SystemTime::now() }\n\
                   fn h() { let t = Instant::now(); }\n";
        let f = lib_findings("crates/core/src/x.rs", src);
        // thread_rng and the wall clock are ambient entropy; the
        // monotonic clock is owned by the clock-discipline rule.
        assert_eq!(
            rules_of(&f),
            ["ambient-entropy", "ambient-entropy", "clock-discipline"]
        );
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].token, "now");
        assert_eq!(f[2].line, 3);
        // And in tests too — determinism nets need seeded inputs.
        let t = check_file(
            "crates/core/tests/x.rs",
            "#[test]\nfn t() { thread_rng(); }",
            FileClass::TestLike,
        );
        assert_eq!(rules_of(&t.findings), ["ambient-entropy"]);
        // But tool crates may read clocks.
        let b = check_file("crates/bench/src/x.rs", src, FileClass::Tool);
        assert!(b.findings.is_empty());
    }

    #[test]
    fn clock_discipline_sanctions_only_the_obs_seam() {
        let src = "pub fn origin() { let t = Instant::now(); }\n";
        // The telemetry clock seam is the one sanctioned home …
        for home in CLOCK_HOME_FILES {
            assert!(lib_findings(home, src).is_empty(), "{home}");
        }
        // … any other lib file is a violation, including obs itself
        // outside clock.rs, and test-like files.
        let f = lib_findings("crates/obs/src/registry.rs", src);
        assert_eq!(rules_of(&f), ["clock-discipline"]);
        assert!(f[0].message.contains("clock seam"));
        let t = check_file("tests/obs_equivalence.rs", src, FileClass::TestLike);
        assert_eq!(rules_of(&t.findings), ["clock-discipline"]);
        // Tool crates (bench timing loops) stay free to read clocks.
        let b = check_file("crates/bench/benches/x.rs", src, FileClass::Tool);
        assert!(b.findings.is_empty());
        // Lookalikes don't trip it: a fn named now, a field, other paths.
        let src = "fn f(now: u64) { other::now(); instant.now_field; }";
        assert!(lib_findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn entropy_rule_ignores_lookalikes() {
        let src = "fn f(now: u64) { other::now(); my_thread_rng_state(); x.now_field; }";
        assert!(lib_findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_catches_the_five_escape_hatches() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); todo!(); \
                   unimplemented!(); }";
        let f = lib_findings("crates/oracles/src/x.rs", src);
        assert_eq!(f.len(), 5);
        assert!(f.iter().all(|f| f.rule == "panic-freedom"));
    }

    #[test]
    fn panic_rule_skips_tests_tools_and_lookalikes() {
        // unwrap_or / unwrap_err / a fn named unwrap are not findings.
        let src = "fn f() { a.unwrap_or(0); b.unwrap_err(); fn unwrap() {} }";
        assert!(lib_findings("crates/oracles/src/x.rs", src).is_empty());
        // #[cfg(test)] mod tests is exempt.
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(lib_findings("crates/oracles/src/x.rs", src).is_empty());
        // #[test] fn without a mod wrapper is exempt too.
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }";
        let f = lib_findings("crates/oracles/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        // Tool crates may panic.
        let t = check_file(
            "crates/cli/src/main.rs",
            "fn f() { x.unwrap(); }",
            FileClass::Tool,
        );
        assert!(t.findings.is_empty());
    }

    #[test]
    fn panic_rule_ignores_comments_and_strings() {
        let src = "fn f() -> &'static str { \"call .unwrap() or panic!()\" }\n\
                   // .unwrap() in a comment\n/* panic!() */\n";
        assert!(lib_findings("crates/oracles/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_rule_fires_only_in_wire_sensitive_files() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        // Named wire file: every HashMap token flagged.
        let f = lib_findings("crates/dist/src/worker.rs", src);
        assert_eq!(rules_of(&f), ["hashmap-in-wire", "hashmap-in-wire"]);
        // Impl-detected wire file.
        let src2 = format!("{src}impl Wire for X {{}}\nstruct S {{ s: HashSet<u8> }}\n");
        let f2 = lib_findings("crates/core/src/domain.rs", &src2);
        assert_eq!(f2.len(), 3);
        assert_eq!(f2[2].token, "HashSet");
        // Ordinary lib file: no finding.
        assert!(lib_findings("crates/topk/src/multiclass.rs", src).is_empty());
        // Wire file, but only in test code: no finding.
        let src3 = "#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert!(lib_findings("crates/oracles/src/wire.rs", src3).is_empty());
    }

    #[test]
    fn stdout_rule_flags_library_prints() {
        let src = "fn f() { println!(\"a\"); eprintln!(\"b\"); dbg!(1); }";
        let f = lib_findings("crates/dist/src/x.rs", src);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|f| f.rule == "stdout-noise"));
    }

    #[test]
    fn sampler_bypass_rule_flags_calls_not_definitions() {
        let src = "fn f(b: &mut BitVec) { b.fill_bernoulli(q, rng); \
                   BitVec::fill_bernoulli_wordwise(b, q, rng); }\n\
                   pub fn fill_bernoulli() {}\n";
        let f = lib_findings("crates/topk/src/x.rs", src);
        assert_eq!(rules_of(&f), ["sampler-bypass", "sampler-bypass"]);
        assert_eq!(f[0].token, "fill_bernoulli");
        assert_eq!(f[1].token, "fill_bernoulli_wordwise");
        // The sampler module itself is the sanctioned caller …
        for home in SAMPLER_HOME_FILES {
            assert!(lib_findings(home, src).is_empty(), "{home}");
        }
        // … and tests may probe the fillers directly.
        let t = check_file(
            "crates/oracles/tests/proptests.rs",
            "fn t() { b.fill_bernoulli(q, rng); }",
            FileClass::TestLike,
        );
        assert!(t.findings.is_empty());
        let src = "#[cfg(test)]\nmod tests {\n fn t() { b.fill_bernoulli(q, rng); }\n}\n";
        assert!(lib_findings("crates/oracles/src/colsum.rs", src).is_empty());
    }

    #[test]
    fn rng_discipline_bans_stream_construction_outside_homes() {
        let src = "fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); \
                   let s = SmallRng::from_entropy(); let k = splitmix64(seed); }\n\
                   pub fn splitmix64(x: u64) -> u64 { x }\n";
        let f = lib_findings("crates/topk/src/pem.rs", src);
        assert_eq!(
            rules_of(&f),
            ["rng-discipline", "rng-discipline", "rng-discipline"]
        );
        assert_eq!(f[0].token, "seed_from_u64");
        assert_eq!(f[2].token, "splitmix64");
        // The sanctioned homes may construct streams …
        for home in RNG_HOME_FILES {
            assert!(lib_findings(home, src).is_empty(), "{home}");
        }
        // … hash.rs may call splitmix64 (mixing, not stream seeding) but
        // not the other constructors.
        let h = lib_findings("crates/oracles/src/hash.rs", src);
        assert_eq!(rules_of(&h), ["rng-discipline", "rng-discipline"]);
        assert!(h.iter().all(|f| f.token != "splitmix64"));
        // Tests and tool crates build seeded fixtures freely.
        let t = check_file(
            "crates/oracles/tests/p.rs",
            "fn t() { StdRng::seed_from_u64(7); }",
            FileClass::TestLike,
        );
        assert!(t.findings.is_empty());
        let src = "#[cfg(test)]\nmod tests {\n fn t() { StdRng::seed_from_u64(7); }\n}\n";
        assert!(lib_findings("crates/core/src/domain.rs", src).is_empty());
        let b = check_file(
            "crates/bench/src/x.rs",
            "fn f() { StdRng::seed_from_u64(7); }",
            FileClass::Tool,
        );
        assert!(b.findings.is_empty());
    }

    #[test]
    fn unsafe_header_required_on_lib_roots_only() {
        let f = lib_findings("crates/core/src/lib.rs", "pub mod x;\n");
        assert_eq!(rules_of(&f), ["unsafe-header"]);
        let ok = lib_findings(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;\n",
        );
        assert!(ok.is_empty());
        // Non-root files don't need the header.
        assert!(lib_findings("crates/core/src/domain.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn pragmas_allow_same_line_and_next_line() {
        let src = "fn f() {\n\
                   a.unwrap(); // mcim-lint: allow(panic-freedom, join cannot fail)\n\
                   // mcim-lint: allow(panic-freedom, slot is always filled)\n\
                   b.expect(\"x\");\n\
                   c.unwrap();\n}\n";
        let report = check_file("crates/oracles/src/x.rs", src, FileClass::Lib);
        let (kept, allowed, dead) = apply_pragmas(report, "crates/oracles/src/x.rs");
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].line, 5);
        assert_eq!(allowed.len(), 2);
        assert!(dead.is_empty());
    }

    #[test]
    fn dead_and_unknown_pragmas_are_findings() {
        let src = "// mcim-lint: allow(panic-freedom, nothing here)\nfn f() {}\n\
                   fn g() {} // mcim-lint: allow(no-such-rule, reason)\n";
        let report = check_file("crates/oracles/src/x.rs", src, FileClass::Lib);
        let (kept, _, dead) = apply_pragmas(report, "crates/oracles/src/x.rs");
        assert!(kept.is_empty());
        assert_eq!(dead.len(), 2);
        assert!(dead[0].message.contains("matches no finding"));
        assert!(dead[1].message.contains("unknown rule"));
    }

    #[test]
    fn malformed_pragma_is_a_finding() {
        let src = "fn f() {} // mcim-lint: allow(panic-freedom)\n";
        let f = lib_findings("crates/oracles/src/x.rs", src);
        assert_eq!(rules_of(&f), ["pragma-syntax"]);
    }

    #[test]
    fn seeded_synthetic_violation_file_is_fully_caught() {
        // One file tripping every rule at once — the acceptance scenario.
        let src = "use std::collections::HashMap;\n\
                   impl WireState for X {}\n\
                   fn f() -> u64 {\n\
                       let t = SystemTime::now();\n\
                       let i = Instant::now();\n\
                       let r = thread_rng();\n\
                       let s = StdRng::seed_from_u64(7);\n\
                       println!(\"{t:?} {i:?}\");\n\
                       plane.fill_bernoulli(q, &mut r).unwrap()\n\
                   }\n";
        let f = lib_findings("crates/core/src/lib.rs", src);
        let mut rules = rules_of(&f);
        rules.sort_unstable();
        assert_eq!(
            rules,
            [
                "ambient-entropy",
                "ambient-entropy",
                "clock-discipline",
                "hashmap-in-wire",
                "panic-freedom",
                "rng-discipline",
                "sampler-bypass",
                "stdout-noise",
                "unsafe-header",
            ]
        );
    }
}
