//! A minimal Rust lexer producing a *code-only* view of a source file.
//!
//! The rule engine never wants to see the inside of a comment, string or
//! character literal: `// call .unwrap() here` and `"SystemTime::now"` are
//! not violations. [`scrub`] replaces every such region with spaces (one
//! per character, newlines preserved) so byte/line positions in the
//! scrubbed text match the original exactly, and extracts `mcim-lint:`
//! pragma comments on the way through.
//!
//! The tricky corners this lexer gets right (and unit-tests below pin):
//!
//! * nested block comments — `/* a /* b */ c */` is one comment,
//! * raw strings with any hash depth (`r"…"`, `r##"…"##`, `br#"…"#`),
//! * lifetimes vs char literals — `'a` in `&'a str` is code, `'a'` is a
//!   literal, `'\n'` and `'\u{1F600}'` are literals,
//! * multi-line strings (line numbering stays aligned).

/// An inline allowance: `// mcim-lint: allow(rule, reason)`.
///
/// A *trailing* pragma (code earlier on the same line) allows findings on
/// its own line; a *standalone* pragma allows findings on the next line.
#[derive(Debug, Clone, PartialEq)]
pub struct Pragma {
    /// 1-based source line the pragma comment sits on.
    pub line: usize,
    /// Rule identifier the pragma allows.
    pub rule: String,
    /// Mandatory human reason.
    pub reason: String,
    /// Whether code precedes the pragma on its line.
    pub trailing: bool,
}

/// The code-only view of one source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// The source with comments/strings/char literals blanked to spaces.
    /// Identical length and line structure to the input.
    pub code: String,
    /// Well-formed pragmas found in comments.
    pub pragmas: Vec<Pragma>,
    /// Lines carrying a comment that mentions `mcim-lint:` but does not
    /// parse — silently ignoring a typo'd pragma would be the worst
    /// possible failure mode for an allow mechanism.
    pub malformed_pragmas: Vec<(usize, String)>,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Blanks `chars[from..to]` into `out` (spaces; newlines preserved),
/// keeping the line counter in step.
fn blank(out: &mut String, chars: &[char], from: usize, to: usize, line: &mut usize) {
    for &c in &chars[from..to] {
        if c == '\n' {
            out.push('\n');
            *line += 1;
        } else {
            out.push(' ');
        }
    }
}

/// Parses one line-comment's text as a pragma, if it claims to be one.
fn parse_pragma(text: &str, line: usize, trailing: bool) -> Option<Result<Pragma, String>> {
    let marker = "mcim-lint:";
    let at = text.find(marker)?;
    let rest = text[at + marker.len()..].trim();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Some(Err(format!(
            "expected `allow(rule, reason)` after `mcim-lint:`, got `{rest}`"
        )));
    };
    let Some(close) = args.rfind(')') else {
        return Some(Err("unclosed `allow(` pragma".to_string()));
    };
    let args = &args[..close];
    let Some((rule, reason)) = args.split_once(',') else {
        return Some(Err(format!(
            "pragma `allow({args})` is missing a reason: use `allow(rule, reason)`"
        )));
    };
    let rule = rule.trim();
    let reason = reason.trim().trim_matches('"').trim();
    if rule.is_empty() || reason.is_empty() {
        return Some(Err(format!(
            "pragma `allow({args})` needs a non-empty rule and reason"
        )));
    }
    Some(Ok(Pragma {
        line,
        rule: rule.to_string(),
        reason: reason.to_string(),
        trailing,
    }))
}

/// Returns the code-only view of `src`. See the module docs.
pub fn scrub(src: &str) -> Scrubbed {
    let chars: Vec<char> = src.chars().collect();
    let len = chars.len();
    let mut out = String::with_capacity(src.len());
    let mut pragmas = Vec::new();
    let mut malformed = Vec::new();
    let mut line = 1usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    while i < len {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        let prev_is_ident = i > 0 && is_ident_char(chars[i - 1]);
        match c {
            '\n' => {
                out.push('\n');
                line += 1;
                line_has_code = false;
                i += 1;
            }
            '/' if next == Some('/') => {
                let start = i;
                while i < len && chars[i] != '\n' {
                    i += 1;
                }
                // Doc comments (`///`, `//!`) are prose, not pragma
                // carriers — they may *talk about* the pragma syntax.
                let doc = matches!(chars.get(start + 2), Some(&'/') | Some(&'!'));
                if !doc {
                    let text: String = chars[start..i].iter().collect();
                    match parse_pragma(&text, line, line_has_code) {
                        Some(Ok(p)) => pragmas.push(p),
                        Some(Err(e)) => malformed.push((line, e)),
                        None => {}
                    }
                }
                blank(&mut out, &chars, start, i, &mut line);
            }
            '/' if next == Some('*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < len && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, &chars, start, i, &mut line);
            }
            '"' => {
                let start = i;
                i += 1;
                while i < len {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, &chars, start, i.min(len), &mut line);
            }
            'r' | 'b' | 'c' if !prev_is_ident => {
                // Possible raw/byte/C-string prefix: r"", r#""#, b"", br#""#,
                // b'', c"", cr#""#. Anything else falls through as an
                // ordinary identifier character.
                let mut j = i + 1;
                if c == 'b' && chars.get(j) == Some(&'r') || c == 'c' && chars.get(j) == Some(&'r')
                {
                    j += 1;
                }
                let raw = j > i + 1 || c == 'r';
                let mut hashes = 0usize;
                if raw {
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                }
                if raw && chars.get(j) == Some(&'"') {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    let start = i;
                    j += 1;
                    'scan: while j < len {
                        if chars[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    blank(&mut out, &chars, start, j.min(len), &mut line);
                    i = j.min(len);
                } else if c == 'b' && hashes == 0 && next == Some('"') {
                    // Byte string: same shape as a normal string.
                    let start = i;
                    i += 2;
                    while i < len {
                        match chars[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    blank(&mut out, &chars, start, i.min(len), &mut line);
                } else if c == 'b' && hashes == 0 && next == Some('\'') {
                    // Byte char literal b'x' / b'\n'.
                    let start = i;
                    i += 2;
                    while i < len {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    blank(&mut out, &chars, start, i.min(len), &mut line);
                } else {
                    out.push(c);
                    line_has_code = true;
                    i += 1;
                }
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident with
                // no closing quote right after one ident char.
                if next == Some('\\') {
                    // Escaped char literal: '\n', '\\', '\u{…}'.
                    let start = i;
                    i += 2;
                    while i < len {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    blank(&mut out, &chars, start, i.min(len), &mut line);
                } else if chars.get(i + 2) == Some(&'\'')
                    && next.is_some_and(|n| n != '\'' && n != '\n')
                {
                    // 'x' — including non-ident chars like '+' and unicode.
                    blank(&mut out, &chars, i, i + 3, &mut line);
                    i += 3;
                } else {
                    // Lifetime ('a, 'static, '_) or stray quote: keep as
                    // code so `&'a str` still tokenizes around it.
                    out.push('\'');
                    line_has_code = true;
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                if !c.is_whitespace() {
                    line_has_code = true;
                }
                i += 1;
            }
        }
    }

    Scrubbed {
        code: out,
        pragmas,
        malformed_pragmas: malformed,
    }
}

/// One code token: an identifier/number or a single punctuation char.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier, keyword, or numeric literal chunk.
    Ident(String),
    /// Any single non-ident, non-whitespace character.
    Punct(char),
}

/// A token with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in chars).
    pub col: usize,
}

impl Tok {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            TokKind::Punct(_) => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Tokenizes scrubbed code (no comments/strings left to worry about).
pub fn tokenize(code: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = code.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c == '\n' {
            chars.next();
            line += 1;
            col = 1;
        } else if c.is_whitespace() {
            chars.next();
            col += 1;
        } else if is_ident_char(c) {
            let (start_line, start_col) = (line, col);
            let mut text = String::new();
            while let Some(&c) = chars.peek() {
                if is_ident_char(c) {
                    text.push(c);
                    chars.next();
                    col += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Ident(text),
                line: start_line,
                col: start_col,
            });
        } else {
            chars.next();
            toks.push(Tok {
                kind: TokKind::Punct(c),
                line,
                col,
            });
            col += 1;
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        scrub(src).code
    }

    #[test]
    fn line_comments_are_blanked() {
        let code = code_of("let x = 1; // call .unwrap() here\nlet y = 2;");
        assert!(!code.contains("unwrap"));
        assert!(code.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let code = code_of("a /* x /* y */ z */ b /* tail");
        assert_eq!(code.trim(), "a                   b");
    }

    #[test]
    fn strings_are_blanked_with_escapes() {
        let code = code_of(r#"let s = "panic!(\"no\")"; done();"#);
        assert!(!code.contains("panic"));
        assert!(code.contains("done();"));
    }

    #[test]
    fn raw_strings_respect_hash_depth() {
        let code = code_of(r###"let s = r#"inner " quote unwrap()"# ; after();"###);
        assert!(!code.contains("unwrap"), "{code}");
        assert!(code.contains("after();"), "{code}");
        // Zero-hash raw string.
        let code = code_of(r#"let s = r"no unwrap" ; tail();"#);
        assert!(!code.contains("unwrap"), "{code}");
        assert!(code.contains("tail();"), "{code}");
    }

    #[test]
    fn raw_string_containing_impl_wire_is_inert() {
        // A raw string spelling out a wire impl must not reach the symbol
        // index as tokens — only the real impl after it may.
        let code = code_of(
            r###"const DOC: &str = r#"impl Wire for Ghost { }"# ;
impl Wire for Real { }"###,
        );
        assert!(!code.contains("Ghost"), "{code}");
        assert!(code.contains("impl Wire for Real"), "{code}");
        let impls = tokenize(&code)
            .iter()
            .filter(|t| t.ident() == Some("impl"))
            .count();
        assert_eq!(impls, 1, "only the real impl tokenizes");
    }

    #[test]
    fn macro_bodies_tokenize_like_ordinary_code() {
        // Macro-expansion policy: `wire_int!`-style macros are fingerprinted
        // unexpanded, so their bodies and invocation args must tokenize with
        // honest positions rather than being treated as opaque blobs.
        let src = "macro_rules! wire_int { ($t:ty) => { impl Wire for $t { } } }\nwire_int!(u8);";
        let toks = tokenize(&scrub(src).code);
        let idents: Vec<&str> = toks.iter().filter_map(Tok::ident).collect();
        assert!(idents.contains(&"wire_int"));
        assert!(idents.contains(&"impl") && idents.contains(&"u8"));
        let bang = toks
            .iter()
            .position(|t| t.ident() == Some("wire_int"))
            .unwrap();
        assert_eq!(toks[bang].line, 1, "macro definition on line 1");
        let last = toks.iter().rposition(|t| t.ident() == Some("u8")).unwrap();
        assert_eq!(toks[last].line, 2, "invocation args on line 2");
    }

    #[test]
    fn byte_and_c_strings_are_blanked() {
        let code = code_of(r##"let b = b"unwrap"; let r = br#"x"# ; t();"##);
        assert!(!code.contains("unwrap"), "{code}");
        assert!(code.contains("t();"), "{code}");
    }

    #[test]
    fn lifetimes_survive_but_char_literals_do_not() {
        let code = code_of("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(code.contains("&'a str"), "{code}");
        assert!(!code.contains("'x'"), "{code}");
        // 'static and '_ are lifetimes; '\n' and '+' literals are not code.
        let code = code_of(r"let s: &'static str; let u = '_'; let c = '\n'; let p = '+';");
        assert!(code.contains("&'static str"), "{code}");
        assert!(!code.contains(r"\n"), "{code}");
        assert!(!code.contains('+'), "{code}");
    }

    #[test]
    fn multiline_strings_keep_line_numbers_aligned() {
        let src = "let a = \"one\ntwo\nthree\";\nlet b = 1;";
        let code = code_of(src);
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
        let toks = tokenize(&code);
        let b = toks.iter().find(|t| t.ident() == Some("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let code = code_of("let var = 1; let cr = 2; let b = 3;");
        assert!(code.contains("var"), "{code}");
        assert!(code.contains("cr"), "{code}");
    }

    #[test]
    fn pragmas_are_extracted_with_position_kind() {
        let src = "let x = risky(); // mcim-lint: allow(panic-freedom, join cannot fail)\n\
                   // mcim-lint: allow(stdout-noise, operator diagnostic)\n\
                   eprintln!(\"x\");";
        let s = scrub(src);
        assert_eq!(s.pragmas.len(), 2);
        assert!(s.pragmas[0].trailing && s.pragmas[0].line == 1);
        assert_eq!(s.pragmas[0].rule, "panic-freedom");
        assert_eq!(s.pragmas[0].reason, "join cannot fail");
        assert!(!s.pragmas[1].trailing && s.pragmas[1].line == 2);
    }

    #[test]
    fn doc_comments_may_talk_about_pragma_syntax() {
        let s =
            scrub("/// use `// mcim-lint: allow(rule, reason)`\n//! mcim-lint: prose\nfn f(){}");
        assert!(s.pragmas.is_empty());
        assert!(s.malformed_pragmas.is_empty());
    }

    #[test]
    fn malformed_pragmas_are_reported_not_dropped() {
        let s = scrub("// mcim-lint: allow(panic-freedom)\n// mcim-lint: alow(x, y)\n");
        assert_eq!(s.pragmas.len(), 0);
        assert_eq!(s.malformed_pragmas.len(), 2);
        assert_eq!(s.malformed_pragmas[0].0, 1);
    }

    #[test]
    fn tokenize_reports_positions() {
        let toks = tokenize("ab.cd!\n  ef");
        assert_eq!(toks[0].ident(), Some("ab"));
        assert!(toks[1].is_punct('.'));
        assert_eq!(toks[2].ident(), Some("cd"));
        assert!(toks[3].is_punct('!'));
        let ef = &toks[4];
        assert_eq!((ef.line, ef.col), (2, 3));
    }
}
