//! The `mcim-lint` analysis library: lexer, rule engine, baseline,
//! workspace symbol index and wire-schema lock.
//!
//! The binary in `main.rs` is a thin CLI over these modules; they are a
//! library target so the integration tests (and any future tooling) can
//! drive the analysis without spawning a process. Everything is
//! self-contained and offline-safe — no `syn`, no registry access.
//!
//! Analysis happens in two passes over the same scrubbed token streams:
//!
//! 1. **Per-file rules** ([`rules`]) — lexical invariants (entropy,
//!    panic-freedom, hygiene, sampler and RNG discipline) with pragma and
//!    baseline escapes.
//! 2. **Workspace schema** ([`symbols`] + [`schema`]) — a cross-file
//!    symbol index resolving every `Wire`/`WireState`/`StageDecode`
//!    implementation to its type definition, fingerprinted against the
//!    committed `wire-schema.lock` so no wire-visible layout can change
//!    silently.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod schema;
pub mod symbols;
