//! `mcim-lint` — the workspace invariant checker.
//!
//! The system's headline guarantee is bit-identical results across the
//! sequential/batch/stream/distributed backends. That rests on invariants
//! no compiler checks: no ambient entropy in pipeline code, no
//! order-nondeterministic hash iteration feeding wire encoding, no
//! panicking escape hatches in library crates a long-lived server would
//! hit at traffic, RNG streams born only in their sanctioned homes — and,
//! cross-file, wire formats that never change silently. This binary is a
//! self-contained static-analysis pass (hand-rolled lexer and symbol
//! index, no `syn` — the build environment is offline) that
//! machine-enforces them; the analysis itself lives in the `mcim_lint`
//! library.
//!
//! ```text
//! cargo run -p mcim-lint                      # human output, exit 1 on violations
//! cargo run -p mcim-lint -- --format=json     # machine output for CI
//! cargo run -p mcim-lint -- --deny-stale      # stale baseline entries also fail
//! cargo run -p mcim-lint -- --write-baseline  # regenerate lint-baseline.toml
//! cargo run -p mcim-lint -- --check-shrink old.toml    # baseline grew? fail
//! cargo run -p mcim-lint -- --write-schema-lock        # regenerate wire-schema.lock
//! cargo run -p mcim-lint -- --schema-compat old.lock   # unbumped dist drift? fail
//! ```
//!
//! Exit codes: `0` clean, `1` violations (or stale entries under
//! `--deny-stale`, baseline growth under `--check-shrink`, unbumped dist
//! drift under `--schema-compat` / `--write-schema-lock`), `2` usage or
//! I/O error. Inline allowances use `// mcim-lint: allow(rule, reason)`;
//! see README "Static analysis". Schema findings (`schema-drift`,
//! `schema-lock`, `protocol-version`) have no pragma or baseline escape —
//! the only way through is `--write-schema-lock`, which itself refuses
//! dist-reachable drift without a `PROTOCOL_VERSION` bump.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mcim_lint::rules::{classify, Finding};
use mcim_lint::symbols::SymbolIndex;
use mcim_lint::{baseline, rules, schema};

#[derive(Debug, Default)]
struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    schema_lock: Option<PathBuf>,
    json: bool,
    deny_stale: bool,
    write_baseline: bool,
    write_schema_lock: bool,
    check_shrink: Option<PathBuf>,
    schema_compat: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut path_value = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a path argument"))
        };
        match arg.as_str() {
            "--root" => args.root = Some(path_value("--root")?),
            "--baseline" => args.baseline = Some(path_value("--baseline")?),
            "--schema-lock" => args.schema_lock = Some(path_value("--schema-lock")?),
            "--check-shrink" => args.check_shrink = Some(path_value("--check-shrink")?),
            "--schema-compat" => args.schema_compat = Some(path_value("--schema-compat")?),
            "--format=json" => args.json = true,
            "--format=human" => args.json = false,
            "--deny-stale" => args.deny_stale = true,
            "--write-baseline" => args.write_baseline = true,
            "--write-schema-lock" => args.write_schema_lock = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: mcim-lint [--root DIR] [--baseline FILE] \
                            [--schema-lock FILE] [--format=human|json] [--deny-stale] \
                            [--write-baseline] [--write-schema-lock] \
                            [--check-shrink FILE] [--schema-compat FILE] [--list-rules]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: `--root`, or walk up from cwd looking for a
/// directory holding both `Cargo.toml` and `crates/`.
fn find_root(arg: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(root) = arg {
        return Ok(root);
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no workspace root found (run from the repo or pass --root)".to_string());
        }
    }
}

/// Collects every `.rs` file under the workspace's source directories,
/// sorted for deterministic reports.
fn collect_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = ["crates", "src", "tests", "examples"]
        .iter()
        .map(|d| root.join(d))
        .filter(|d| d.is_dir())
        .collect();
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding, baselined: bool) -> String {
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"token\":\"{}\",\
         \"baselined\":{},\"message\":\"{}\"}}",
        f.rule,
        json_escape(&f.file),
        f.line,
        f.col,
        json_escape(&f.token),
        baselined,
        json_escape(&f.message)
    )
}

fn read_lock(path: &Path) -> Result<schema::Lock, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    schema::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    if args.list_rules {
        for rule in rules::RULE_IDS {
            println!("{rule}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = find_root(args.root.clone())?;
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.toml"));
    let lock_path = args
        .schema_lock
        .clone()
        .unwrap_or_else(|| root.join("wire-schema.lock"));
    let lock_rel = rel_path(&root, &lock_path);
    let previous = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
    } else {
        baseline::Baseline::default()
    };

    // The shrink guard needs no source scan: it compares baselines.
    if let Some(ref_path) = &args.check_shrink {
        let text = std::fs::read_to_string(ref_path)
            .map_err(|e| format!("reading {}: {e}", ref_path.display()))?;
        let reference =
            baseline::parse(&text).map_err(|e| format!("{}: {e}", ref_path.display()))?;
        return Ok(match baseline::check_shrink(&previous, &reference) {
            Ok(()) => {
                println!("baseline is shrink-only relative to {}", ref_path.display());
                ExitCode::SUCCESS
            }
            Err(growth) => {
                for g in growth {
                    eprintln!("error: {g}");
                }
                ExitCode::FAILURE
            }
        });
    }

    // Neither does the schema-compat guard: it compares two lock files
    // (the committed lock vs the merge-base copy).
    if let Some(ref_path) = &args.schema_compat {
        let current = read_lock(&lock_path)?;
        let reference = read_lock(ref_path)?;
        return Ok(match schema::compat(&current, &reference) {
            Ok(()) => {
                println!(
                    "{lock_rel} is protocol-compatible with {} (dist drift, if any, is \
                     version-bumped)",
                    ref_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(errs) => {
                for e in errs {
                    eprintln!("error: {e}");
                }
                ExitCode::FAILURE
            }
        });
    }

    // Scan the tree: per-file rules plus the workspace symbol index.
    let mut all_kept: Vec<Finding> = Vec::new();
    let mut all_allowed: Vec<Finding> = Vec::new();
    let mut files_checked = 0usize;
    let mut index = SymbolIndex::default();
    for path in collect_files(&root)? {
        let rel = rel_path(&root, &path);
        let Some(class) = classify(&rel) else {
            continue;
        };
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        files_checked += 1;
        if class == rules::FileClass::Lib {
            index.add_file(&rel, &source);
        }
        let report = rules::check_file(&rel, &source, class);
        let (kept, allowed, dead) = rules::apply_pragmas(report, &rel);
        all_kept.extend(kept);
        all_kept.extend(dead);
        all_allowed.extend(allowed);
    }
    let entries = schema::compute(&index);

    if args.write_schema_lock {
        if lock_path.is_file() {
            let old = read_lock(&lock_path)?;
            if let Err(errs) = schema::write_guard(&entries, &old) {
                for e in errs {
                    eprintln!("error: {e}");
                }
                return Ok(ExitCode::FAILURE);
            }
        }
        std::fs::write(&lock_path, schema::render(&entries))
            .map_err(|e| format!("writing {}: {e}", lock_path.display()))?;
        println!("wrote {} ({} entries)", lock_path.display(), entries.len());
        if !args.write_baseline {
            return Ok(ExitCode::SUCCESS);
        }
    }

    if args.write_baseline {
        let fresh = baseline::from_findings(&all_kept, &previous);
        for note in baseline::shrink_notes(&previous, &fresh) {
            println!("note: {note}");
        }
        std::fs::write(&baseline_path, baseline::render(&fresh))
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "wrote {} ({} entries)",
            baseline_path.display(),
            fresh.entries.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    // Schema findings: never baselineable or pragma-allowable — appended
    // after baseline application.
    let schema_findings = if lock_path.is_file() {
        let lock = read_lock(&lock_path)?;
        schema::check(&entries, &lock, &lock_rel)
    } else if entries.is_empty() {
        Vec::new()
    } else {
        vec![Finding {
            rule: "schema-lock",
            file: lock_rel.clone(),
            line: 1,
            col: 1,
            token: "wire-schema.lock".to_string(),
            message: format!(
                "{} wire-visible symbol(s) but no {lock_rel} — generate it with \
                 `--write-schema-lock` and commit it",
                entries.len()
            ),
        }]
    };

    let mut matched = baseline::apply(all_kept, &previous);
    matched.violations.extend(schema_findings);
    let stale_fails = args.deny_stale && !matched.stale.is_empty();
    let ok = matched.violations.is_empty() && !stale_fails;

    if args.json {
        let mut items: Vec<String> = matched
            .violations
            .iter()
            .map(|f| finding_json(f, false))
            .chain(matched.baselined.iter().map(|f| finding_json(f, true)))
            .collect();
        items.sort();
        let stale: Vec<String> = matched
            .stale
            .iter()
            .map(|(e, remaining)| {
                format!(
                    "{{\"rule\":\"{}\",\"file\":\"{}\",\"token\":\"{}\",\"allowed\":{},\
                     \"found\":{}}}",
                    e.rule,
                    json_escape(&e.file),
                    json_escape(&e.token),
                    e.count,
                    remaining
                )
            })
            .collect();
        println!(
            "{{\"ok\":{ok},\"files_checked\":{files_checked},\"violations\":{},\
             \"baselined\":{},\"pragma_allowed\":{},\"schema_entries\":{},\
             \"findings\":[{}],\"stale_baseline\":[{}]}}",
            matched.violations.len(),
            matched.baselined.len(),
            all_allowed.len(),
            entries.len(),
            items.join(","),
            stale.join(",")
        );
    } else {
        for f in &matched.violations {
            println!(
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            );
        }
        for (e, remaining) in &matched.stale {
            let verb = if args.deny_stale { "error" } else { "note" };
            println!(
                "{verb}: stale baseline entry ({}, {}, {}): allows {} but only {} remain — \
                 shrink it",
                e.rule, e.file, e.token, e.count, remaining
            );
        }
        println!(
            "mcim-lint: {} files, {} violation(s), {} baselined, {} pragma-allowed, \
             {} schema entr(ies){}",
            files_checked,
            matched.violations.len(),
            matched.baselined.len(),
            all_allowed.len(),
            entries.len(),
            if matched.stale.is_empty() {
                String::new()
            } else {
                format!(", {} stale baseline entr(ies)", matched.stale.len())
            }
        );
    }

    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mcim-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_the_documented_surface() {
        let a = parse_args(&argv(&[
            "--root",
            "/x",
            "--format=json",
            "--deny-stale",
            "--baseline",
            "b.toml",
            "--schema-lock",
            "w.lock",
        ]))
        .unwrap();
        assert_eq!(a.root.as_deref(), Some(Path::new("/x")));
        assert!(a.json && a.deny_stale);
        assert_eq!(a.baseline.as_deref(), Some(Path::new("b.toml")));
        assert_eq!(a.schema_lock.as_deref(), Some(Path::new("w.lock")));
        let b = parse_args(&argv(&["--write-schema-lock", "--schema-compat", "r.lock"])).unwrap();
        assert!(b.write_schema_lock);
        assert_eq!(b.schema_compat.as_deref(), Some(Path::new("r.lock")));
        assert!(parse_args(&argv(&["--bogus"])).is_err());
        assert!(parse_args(&argv(&["--root"])).is_err(), "missing value");
        assert!(parse_args(&argv(&["--schema-compat"])).is_err());
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn finding_json_shape() {
        let f = Finding {
            rule: "panic-freedom",
            file: "crates/a/src/x.rs".into(),
            line: 3,
            col: 7,
            token: "unwrap".into(),
            message: "msg".into(),
        };
        let j = finding_json(&f, true);
        assert!(j.contains("\"rule\":\"panic-freedom\""));
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("\"baselined\":true"));
    }
}
