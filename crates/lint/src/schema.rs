//! The wire-schema lock: canonical fingerprints of every wire-visible
//! symbol, committed to `wire-schema.lock` and checked on every run.
//!
//! ## What gets fingerprinted
//!
//! * **Resolved types** — every `struct`/`enum` implementing
//!   `Wire`/`WireState`/`StageDecode`, fingerprinted twice: the
//!   *declaration* (field names, type tokens, order, variant tags — all
//!   `#[cfg]`-gated duplicates concatenated) and the *impl bodies* (the
//!   encode/decode logic, so a silent re-encoding of an unchanged struct
//!   is still drift).
//! * **Unresolved impls** — wire impls whose implementing type has no
//!   workspace definition (primitives, `Vec<T>`, tuples): one entry per
//!   `(trait, type)` hashing head plus body.
//! * **Macro-generated impls** — a `macro_rules!` whose body emits a wire
//!   impl (`wire_int!`) is fingerprinted **unexpanded**: the macro body
//!   plus every module-level invocation's argument list. Editing the
//!   codec rules or instantiating it for a new type both register as
//!   drift; expanding macros would need a full macro engine and buy
//!   nothing beyond that.
//! * **Protocol constants** — `PROTOCOL_VERSION` and `MAX_FRAME`
//!   anywhere, plus every `TAG_*` constant under `crates/dist/` (the
//!   frame tag bytes).
//! * **Special types** — `Frame` (in `crates/dist/`) and `StageSpec` (in
//!   `crates/oracles/`) are covered even without a direct wire impl:
//!   `Frame` is encoded by hand in `proto.rs`, and its variant list *is*
//!   the protocol.
//!
//! ## The dist guard
//!
//! Entries under `crates/dist/` are the multi-process protocol surface.
//! Any drift in them must ride with a `PROTOCOL_VERSION` bump:
//! [`check`] emits a `protocol-version` finding when dist entries drift
//! while the constant still equals the locked version, and
//! [`write_guard`] refuses to regenerate the lock in that state — so the
//! escape hatch cannot silently swallow a protocol change.
//!
//! Identity is the `(kind, name, traits)` key, not file paths or line
//! numbers: moving a definition between files or reformatting it does
//! not churn the lock. Fingerprints are FNV-1a 64 over the canonical
//! space-joined token text (comments/strings scrubbed first).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::rules::Finding;
use crate::symbols::{SymbolIndex, TraitImpl};

/// Constants fingerprinted wherever they are defined.
pub const WATCHED_CONSTS: &[&str] = &["PROTOCOL_VERSION", "MAX_FRAME"];

/// Path prefix marking the dist protocol surface.
pub const DIST_PREFIX: &str = "crates/dist/";

/// Types covered even without a resolvable wire impl: `(name, required
/// path prefix)`.
pub const SPECIAL_TYPES: &[(&str, &str)] =
    &[("Frame", "crates/dist/"), ("StageSpec", "crates/oracles/")];

/// What a lock entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// A resolved type definition plus its wire impls.
    Type,
    /// A wire impl for a type defined outside the workspace.
    Impl,
    /// A wire-impl-emitting macro plus its invocations.
    Macro,
    /// A protocol constant.
    Const,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Type => "type",
            Kind::Impl => "impl",
            Kind::Macro => "macro",
            Kind::Const => "const",
        }
    }

    fn parse(s: &str) -> Option<Kind> {
        match s {
            "type" => Some(Kind::Type),
            "impl" => Some(Kind::Impl),
            "macro" => Some(Kind::Macro),
            "const" => Some(Kind::Const),
            _ => None,
        }
    }
}

/// One fingerprinted wire-visible symbol — both the computed current
/// state and a parsed lock line share this shape.
#[derive(Debug, Clone, PartialEq)]
pub struct LockEntry {
    /// Entry kind.
    pub kind: Kind,
    /// Type/macro/const name (or full type text for `Kind::Impl`).
    pub name: String,
    /// `+`-joined wire traits implemented (empty for macros/consts).
    pub traits: String,
    /// Defining file (informational; not part of the identity key).
    pub file: String,
    /// Whether this entry is dist-protocol-reachable.
    pub dist: bool,
    /// FNV-1a 64 of the canonical declaration text.
    pub fingerprint: String,
    /// FNV-1a 64 of the concatenated impl bodies (`Kind::Type` only).
    pub impl_fp: Option<String>,
    /// Human-readable declaration summary (const values, macro
    /// invocation lists, type decls) — for reviewing lock diffs.
    pub decl: String,
}

impl LockEntry {
    fn key(&self) -> (Kind, &str, &str) {
        (self.kind, &self.name, &self.traits)
    }

    fn describe(&self) -> String {
        format!("{} `{}`", self.kind.as_str(), self.name)
    }
}

/// A parsed `wire-schema.lock`.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Lock {
    /// The `PROTOCOL_VERSION` value recorded at generation time.
    pub protocol_version: String,
    /// All fingerprint entries, sorted by key.
    pub entries: Vec<LockEntry>,
}

/// FNV-1a 64-bit over a canonical token string.
pub fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fp(s: &str) -> String {
    format!("{:016x}", fnv64(s))
}

fn is_dist(file: &str) -> bool {
    file.starts_with(DIST_PREFIX)
}

/// Derives the current lock entries from the symbol index.
pub fn compute(index: &SymbolIndex) -> Vec<LockEntry> {
    let mut entries = Vec::new();

    // Partition wire impls into workspace-resolved and extern.
    let mut by_type: BTreeMap<&str, Vec<&TraitImpl>> = BTreeMap::new();
    let mut extern_impls: Vec<&TraitImpl> = Vec::new();
    for imp in &index.impls {
        match imp
            .type_head
            .as_deref()
            .filter(|h| index.types.contains_key(*h))
        {
            Some(head) => by_type.entry(head).or_default().push(imp),
            None => extern_impls.push(imp),
        }
    }
    // Cover the special types even when nothing impls a wire trait for
    // them (Frame's codec is hand-written in proto.rs).
    for &(name, prefix) in SPECIAL_TYPES {
        let defined_there = index
            .types
            .get(name)
            .is_some_and(|defs| defs.iter().any(|d| d.file.starts_with(prefix)));
        if defined_there {
            by_type.entry(name).or_default();
        }
    }

    for (name, mut imps) in by_type {
        let defs = &index.types[name];
        imps.sort_by(|a, b| {
            (&a.file, a.line, &a.trait_name).cmp(&(&b.file, b.line, &b.trait_name))
        });
        let decl = defs
            .iter()
            .map(|d| d.decl.as_str())
            .collect::<Vec<_>>()
            .join(" | ");
        let mut traits: Vec<&str> = imps.iter().map(|i| i.trait_name.as_str()).collect();
        traits.sort_unstable();
        traits.dedup();
        let impl_src = imps
            .iter()
            .map(|i| i.body.as_str())
            .collect::<Vec<_>>()
            .join(" | ");
        entries.push(LockEntry {
            kind: Kind::Type,
            name: name.to_string(),
            traits: traits.join("+"),
            file: defs[0].file.clone(),
            dist: defs.iter().any(|d| is_dist(&d.file)) || imps.iter().any(|i| is_dist(&i.file)),
            fingerprint: fp(&decl),
            impl_fp: Some(fp(&impl_src)),
            decl,
        });
    }

    for imp in extern_impls {
        entries.push(LockEntry {
            kind: Kind::Impl,
            name: imp.type_text.clone(),
            traits: imp.trait_name.clone(),
            file: imp.file.clone(),
            dist: is_dist(&imp.file),
            fingerprint: fp(&format!(
                "{} for {} {{ {} }}",
                imp.trait_name, imp.type_text, imp.body
            )),
            impl_fp: None,
            decl: imp.type_text.clone(),
        });
    }

    for mac in index.macros.iter().filter(|m| m.emits_wire_impl) {
        let mut uses: Vec<_> = index
            .macro_uses
            .iter()
            .filter(|u| u.name == mac.name)
            .collect();
        uses.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        let invocations = uses
            .iter()
            .map(|u| u.args.as_str())
            .collect::<Vec<_>>()
            .join(" ; ");
        entries.push(LockEntry {
            kind: Kind::Macro,
            name: mac.name.clone(),
            traits: String::new(),
            file: mac.file.clone(),
            dist: is_dist(&mac.file) || uses.iter().any(|u| is_dist(&u.file)),
            fingerprint: fp(&format!("{} || {}", mac.body, invocations)),
            impl_fp: None,
            decl: invocations,
        });
    }

    let mut consts: BTreeMap<&str, Vec<&crate::symbols::ConstDef>> = BTreeMap::new();
    for c in &index.consts {
        let watched = WATCHED_CONSTS.contains(&c.name.as_str())
            || (c.name.starts_with("TAG_") && is_dist(&c.file));
        if watched {
            consts.entry(c.name.as_str()).or_default().push(c);
        }
    }
    for (name, defs) in consts {
        let value = defs
            .iter()
            .map(|d| d.value.as_str())
            .collect::<Vec<_>>()
            .join(" | ");
        entries.push(LockEntry {
            kind: Kind::Const,
            name: name.to_string(),
            traits: String::new(),
            file: defs[0].file.clone(),
            dist: defs.iter().any(|d| is_dist(&d.file)),
            fingerprint: fp(&format!("{name} = {value}")),
            impl_fp: None,
            decl: value,
        });
    }

    entries.sort_by(|a, b| a.key().cmp(&b.key()));
    entries
}

/// The current `PROTOCOL_VERSION` value as recorded in the entries.
pub fn current_protocol_version(entries: &[LockEntry]) -> String {
    entries
        .iter()
        .find(|e| e.kind == Kind::Const && e.name == "PROTOCOL_VERSION")
        .map(|e| e.decl.clone())
        .unwrap_or_default()
}

/// Dist-reachable entries that differ between `current` and `reference`
/// (fingerprint/impl drift, additions, removals), as human descriptions.
fn dist_changes(current: &[LockEntry], reference: &[LockEntry]) -> Vec<String> {
    let cur: BTreeMap<_, _> = current
        .iter()
        .filter(|e| e.dist)
        .map(|e| (e.key(), e))
        .collect();
    let old: BTreeMap<_, _> = reference
        .iter()
        .filter(|e| e.dist)
        .map(|e| (e.key(), e))
        .collect();
    let mut changed = BTreeSet::new();
    for (key, e) in &cur {
        match old.get(key) {
            None => {
                changed.insert(format!("{} (new)", e.describe()));
            }
            Some(o) if o.fingerprint != e.fingerprint || o.impl_fp != e.impl_fp => {
                changed.insert(e.describe());
            }
            Some(_) => {}
        }
    }
    for (key, o) in &old {
        if !cur.contains_key(key) {
            changed.insert(format!("{} (removed)", o.describe()));
        }
    }
    changed.into_iter().collect()
}

/// Checks the computed entries against the committed lock. Returns
/// `schema-drift` findings for every mismatch, plus one
/// `protocol-version` finding when dist-reachable entries drifted while
/// `PROTOCOL_VERSION` still equals the locked version.
pub fn check(entries: &[LockEntry], lock: &Lock, lock_rel: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let locked: BTreeMap<_, _> = lock.entries.iter().map(|e| (e.key(), e)).collect();
    let current: BTreeMap<_, _> = entries.iter().map(|e| (e.key(), e)).collect();

    let mut drift = |file: &str, line: usize, name: &str, message: String| {
        out.push(Finding {
            rule: "schema-drift",
            file: file.to_string(),
            line,
            col: 1,
            token: name.to_string(),
            message,
        });
    };

    for (key, e) in &current {
        let bump_hint = if e.dist {
            " and bump PROTOCOL_VERSION (dist-protocol-reachable)"
        } else {
            ""
        };
        match locked.get(key) {
            None => drift(
                &e.file,
                1,
                &e.name,
                format!(
                    "wire-visible {} is not in {lock_rel}; if intended, regenerate with \
                     `--write-schema-lock`{bump_hint}",
                    e.describe()
                ),
            ),
            Some(l) if l.fingerprint != e.fingerprint => drift(
                &e.file,
                1,
                &e.name,
                format!(
                    "declaration of {} changed (fingerprint {} -> {}); wire layout must not \
                     drift silently — if intended, regenerate with `--write-schema-lock`{bump_hint}",
                    e.describe(),
                    l.fingerprint,
                    e.fingerprint
                ),
            ),
            Some(l) if l.impl_fp != e.impl_fp => drift(
                &e.file,
                1,
                &e.name,
                format!(
                    "encode/decode implementation of {} changed (impl fingerprint {} -> {}); \
                     the byte format may have moved — if intended, regenerate with \
                     `--write-schema-lock`{bump_hint}",
                    e.describe(),
                    l.impl_fp.as_deref().unwrap_or("-"),
                    e.impl_fp.as_deref().unwrap_or("-")
                ),
            ),
            Some(_) => {}
        }
    }
    for (key, l) in &locked {
        if !current.contains_key(key) {
            drift(
                lock_rel,
                1,
                &l.name,
                format!(
                    "locked wire-visible {} no longer exists (moved out of library code, \
                     renamed, or deleted); regenerate with `--write-schema-lock`",
                    l.describe()
                ),
            );
        }
    }

    let changes = dist_changes(entries, &lock.entries);
    let version = current_protocol_version(entries);
    if !changes.is_empty() && version == lock.protocol_version {
        let file = entries
            .iter()
            .find(|e| e.kind == Kind::Const && e.name == "PROTOCOL_VERSION")
            .map(|e| e.file.clone())
            .unwrap_or_else(|| lock_rel.to_string());
        out.push(Finding {
            rule: "protocol-version",
            file,
            line: 1,
            col: 1,
            token: "PROTOCOL_VERSION".to_string(),
            message: format!(
                "dist protocol surface changed ({}) but PROTOCOL_VERSION is still {} — a \
                 coordinator/worker pair from different builds would disagree about frame \
                 bytes; bump PROTOCOL_VERSION in the same change",
                changes.join(", "),
                if version.is_empty() {
                    "unset"
                } else {
                    &version
                }
            ),
        });
    }
    out
}

/// Gate for `--write-schema-lock`: refuses to regenerate over `old` when
/// dist-reachable entries changed but `PROTOCOL_VERSION` did not — the
/// regeneration escape hatch must not swallow a protocol change.
pub fn write_guard(entries: &[LockEntry], old: &Lock) -> Result<(), Vec<String>> {
    let changes = dist_changes(entries, &old.entries);
    let version = current_protocol_version(entries);
    if changes.is_empty() || version != old.protocol_version {
        return Ok(());
    }
    let mut errs: Vec<String> = changes
        .iter()
        .map(|c| format!("dist-protocol-reachable change without a version bump: {c}"))
        .collect();
    errs.push(format!(
        "refusing to rewrite the schema lock: bump PROTOCOL_VERSION (currently {}) in \
         crates/dist/src/proto.rs first, then rerun --write-schema-lock",
        if version.is_empty() {
            "unset"
        } else {
            &version
        }
    ));
    Err(errs)
}

/// CI guard comparing the committed lock against the merge-base lock:
/// dist-reachable entries may only differ between them alongside a
/// `protocol_version` change.
pub fn compat(current: &Lock, reference: &Lock) -> Result<(), Vec<String>> {
    let changes = dist_changes(&current.entries, &reference.entries);
    if changes.is_empty() || current.protocol_version != reference.protocol_version {
        return Ok(());
    }
    Err(changes
        .into_iter()
        .map(|c| {
            format!(
                "dist protocol drift vs reference lock without a PROTOCOL_VERSION bump \
                 (both say {}): {c}",
                if current.protocol_version.is_empty() {
                    "unset"
                } else {
                    &current.protocol_version
                }
            )
        })
        .collect())
}

/// Serializes a lock in the canonical committed form.
pub fn render(entries: &[LockEntry]) -> String {
    let mut out = String::from(
        "# wire-schema.lock — canonical fingerprints of every wire-visible symbol.\n\
         # Generated by `cargo run -p mcim-lint -- --write-schema-lock`; do not edit.\n\
         #\n\
         # Each entry pins one Wire/WireState/StageDecode implementation (declaration\n\
         # + encode/decode bodies), the dist `Frame` enum and tag bytes, the\n\
         # `wire_int!` macro (unexpanded: body + invocation lists), and the protocol\n\
         # constants. `mcim-lint` fails with `schema-drift` when the code no longer\n\
         # matches this file.\n\
         #\n\
         # To change a wire type intentionally:\n\
         #   1. make the code change;\n\
         #   2. if any affected entry says `dist = true` (the multi-process frame\n\
         #      protocol), bump PROTOCOL_VERSION in crates/dist/src/proto.rs in the\n\
         #      same change — regeneration refuses dist drift without the bump, and\n\
         #      CI cross-checks this lock against the merge-base copy;\n\
         #   3. regenerate: cargo run -p mcim-lint -- --write-schema-lock\n",
    );
    let version = current_protocol_version(entries);
    let _ = write!(out, "\nprotocol_version = \"{version}\"\n");
    for e in entries {
        let _ = write!(
            out,
            "\n[[entry]]\nkind = \"{}\"\nname = \"{}\"\ntraits = \"{}\"\nfile = \"{}\"\n\
             dist = {}\nfingerprint = \"{}\"\n",
            e.kind.as_str(),
            e.name,
            e.traits,
            e.file,
            e.dist,
            e.fingerprint
        );
        if let Some(ifp) = &e.impl_fp {
            let _ = writeln!(out, "impl_fp = \"{ifp}\"");
        }
        let _ = writeln!(out, "decl = \"{}\"", e.decl);
    }
    out
}

/// Parses the lock format (same tiny TOML subset as the baseline).
pub fn parse(text: &str) -> Result<Lock, String> {
    let mut lock = Lock::default();
    let mut current: Option<BTreeMap<String, String>> = None;

    fn finish(
        fields: BTreeMap<String, String>,
        at: usize,
        entries: &mut Vec<LockEntry>,
    ) -> Result<(), String> {
        let get = |k: &str| {
            fields
                .get(k)
                .cloned()
                .ok_or_else(|| format!("entry ending near line {at}: missing `{k}`"))
        };
        let kind = get("kind")?;
        let kind = Kind::parse(&kind)
            .ok_or_else(|| format!("entry ending near line {at}: unknown kind `{kind}`"))?;
        let dist = match get("dist")?.as_str() {
            "true" => true,
            "false" => false,
            other => {
                return Err(format!(
                    "entry ending near line {at}: `dist` must be true/false, got `{other}`"
                ))
            }
        };
        entries.push(LockEntry {
            kind,
            name: get("name")?,
            traits: fields.get("traits").cloned().unwrap_or_default(),
            file: get("file")?,
            dist,
            fingerprint: get("fingerprint")?,
            impl_fp: fields.get("impl_fp").cloned(),
            decl: fields.get("decl").cloned().unwrap_or_default(),
        });
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[entry]]" {
            if let Some(fields) = current.take() {
                finish(fields, lineno, &mut lock.entries)?;
            }
            current = Some(BTreeMap::new());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `key = value`, got `{raw}`"
            ));
        };
        let key = key.trim().to_string();
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .unwrap_or(value)
            .to_string();
        match current.as_mut() {
            None if key == "protocol_version" => lock.protocol_version = value,
            None => {
                return Err(format!("line {lineno}: `{key}` outside an [[entry]]"));
            }
            Some(fields) => {
                if !matches!(
                    key.as_str(),
                    "kind"
                        | "name"
                        | "traits"
                        | "file"
                        | "dist"
                        | "fingerprint"
                        | "impl_fp"
                        | "decl"
                ) {
                    return Err(format!("line {lineno}: unknown key `{key}`"));
                }
                if fields.insert(key.clone(), value).is_some() {
                    return Err(format!("line {lineno}: duplicate key `{key}` in entry"));
                }
            }
        }
    }
    if let Some(fields) = current.take() {
        finish(fields, text.lines().count(), &mut lock.entries)?;
    }
    Ok(lock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolIndex;

    fn index_of(files: &[(&str, &str)]) -> SymbolIndex {
        let mut idx = SymbolIndex::default();
        for (rel, src) in files {
            idx.add_file(rel, src);
        }
        idx
    }

    fn lock_of(entries: &[LockEntry]) -> Lock {
        parse(&render(entries)).unwrap()
    }

    const POINT: &str = "pub struct Point { pub x: u32, pub y: u32 }\n\
                         impl Wire for Point { fn put(&self, b: &mut Vec<u8>) { self.x.put(b); } }\n";

    #[test]
    fn resolved_types_are_fingerprinted_with_decl_and_impls() {
        let entries = compute(&index_of(&[("crates/a/src/x.rs", POINT)]));
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(
            (e.kind, e.name.as_str(), e.traits.as_str()),
            (Kind::Type, "Point", "Wire")
        );
        assert!(!e.dist);
        assert!(e.impl_fp.is_some());
    }

    #[test]
    fn field_mutation_moves_the_fingerprint_and_body_moves_impl_fp() {
        let base = compute(&index_of(&[("crates/a/src/x.rs", POINT)]));
        let renamed = POINT.replace("pub y: u32", "pub z: u32");
        let renamed = compute(&index_of(&[("crates/a/src/x.rs", &renamed)]));
        assert_ne!(base[0].fingerprint, renamed[0].fingerprint);

        let rebody = POINT.replace("self.x.put(b);", "self.y.put(b); self.x.put(b);");
        let rebody = compute(&index_of(&[("crates/a/src/x.rs", &rebody)]));
        assert_eq!(base[0].fingerprint, rebody[0].fingerprint, "decl unchanged");
        assert_ne!(base[0].impl_fp, rebody[0].impl_fp, "encoding changed");
    }

    #[test]
    fn reformatting_is_not_drift() {
        let reformatted = "pub struct Point {\n    pub x: u32,\n    pub y: u32,\n}\n\
             impl Wire for Point {\n    fn put(&self, b: &mut Vec<u8>) {\n        self.x.put(b);\n    }\n}\n";
        let a = compute(&index_of(&[("crates/a/src/x.rs", POINT)]));
        let b = compute(&index_of(&[("crates/a/src/x.rs", reformatted)]));
        // Trailing comma is a token, so normalize it out for the decl…
        let c = compute(&index_of(&[(
            "crates/a/src/x.rs",
            &POINT.replace("pub y: u32 ", "pub y: u32, "),
        )]));
        assert_eq!(b[0].fingerprint, c[0].fingerprint);
        assert_eq!(a[0].impl_fp, b[0].impl_fp, "bodies token-identical");
    }

    #[test]
    fn special_types_are_covered_without_wire_impls() {
        let src = "pub enum Frame { Hello { version: u32 }, Flush }\n\
                   pub const PROTOCOL_VERSION: u32 = 2;\n\
                   pub const MAX_FRAME: u32 = 64 << 20;\n\
                   const TAG_HELLO: u8 = 0;\n";
        let entries = compute(&index_of(&[("crates/dist/src/proto.rs", src)]));
        let frame = entries.iter().find(|e| e.name == "Frame").expect("Frame");
        assert_eq!(frame.kind, Kind::Type);
        assert!(frame.dist && frame.traits.is_empty());
        let names: Vec<&str> = entries
            .iter()
            .filter(|e| e.kind == Kind::Const)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(names, ["MAX_FRAME", "PROTOCOL_VERSION", "TAG_HELLO"]);
        assert!(entries
            .iter()
            .filter(|e| e.kind == Kind::Const)
            .all(|e| e.dist));
        // TAG_* consts outside crates/dist are not protocol surface.
        let other = compute(&index_of(&[(
            "crates/a/src/x.rs",
            "const TAG_HELLO: u8 = 0;\n",
        )]));
        assert!(other.is_empty());
    }

    #[test]
    fn macro_generated_impls_fingerprint_body_and_invocations() {
        let mac = "macro_rules! wire_int { ($($t:ty),*) => {$(impl Wire for $t { fn put(&self) {} })*}; }\n";
        let base = compute(&index_of(&[(
            "crates/a/src/x.rs",
            &format!("{mac}wire_int!(u8, u16, u32, u64);\n"),
        )]));
        let e = base.iter().find(|e| e.kind == Kind::Macro).expect("macro");
        assert_eq!(e.name, "wire_int");
        assert!(e.decl.contains("u8 , u16 , u32 , u64"));
        // New instantiation drifts…
        let wider = compute(&index_of(&[(
            "crates/a/src/x.rs",
            &format!("{mac}wire_int!(u8, u16, u32, u64, u128);\n"),
        )]));
        let w = wider.iter().find(|e| e.kind == Kind::Macro).unwrap();
        assert_ne!(e.fingerprint, w.fingerprint);
        // …and so does editing the codec body.
        let edited = compute(&index_of(&[(
            "crates/a/src/x.rs",
            &format!(
                "{}wire_int!(u8, u16, u32, u64);\n",
                mac.replace("fn put(&self) {}", "fn put(&self) { loop {} }")
            ),
        )]));
        let ed = edited.iter().find(|e| e.kind == Kind::Macro).unwrap();
        assert_ne!(e.fingerprint, ed.fingerprint);
    }

    #[test]
    fn lock_round_trips_and_check_is_quiet_when_in_sync() {
        let src = "pub struct Frame { tag: u8 }\nimpl Wire for Frame { fn put(&self) {} }\n\
                   pub const PROTOCOL_VERSION: u32 = 2;\n";
        let entries = compute(&index_of(&[("crates/dist/src/proto.rs", src)]));
        let lock = lock_of(&entries);
        assert_eq!(lock.protocol_version, "2");
        assert_eq!(lock.entries, entries);
        assert!(check(&entries, &lock, "wire-schema.lock").is_empty());
    }

    #[test]
    fn drift_new_and_removed_entries_are_findings() {
        let v1 = compute(&index_of(&[("crates/a/src/x.rs", POINT)]));
        let lock = lock_of(&v1);
        // Field rename: fingerprint drift.
        let v2 = compute(&index_of(&[(
            "crates/a/src/x.rs",
            &POINT.replace("pub y", "pub z"),
        )]));
        let f = check(&v2, &lock, "wire-schema.lock");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "schema-drift");
        assert!(f[0].message.contains("declaration of type `Point`"));
        // New wire type: not in lock.
        let v3 = compute(&index_of(&[(
            "crates/a/src/x.rs",
            &format!("{POINT}pub struct Extra {{ e: u8 }}\nimpl Wire for Extra {{ fn put(&self) {{}} }}\n"),
        )]));
        let f = check(&v3, &lock, "wire-schema.lock");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not in wire-schema.lock"));
        // Type gone: locked entry orphaned.
        let f = check(&[], &lock, "wire-schema.lock");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no longer exists"));
        assert_eq!(f[0].file, "wire-schema.lock");
    }

    const DIST: &str = "pub enum Frame { Hello { version: u32 } }\n\
                        impl Wire for Frame { fn put(&self) {} }\n\
                        pub const PROTOCOL_VERSION: u32 = 2;\n";

    #[test]
    fn dist_drift_without_version_bump_adds_protocol_finding() {
        let v2 = compute(&index_of(&[("crates/dist/src/proto.rs", DIST)]));
        let lock = lock_of(&v2);
        let changed = DIST.replace(
            "Hello { version: u32 }",
            "Hello { version: u32, node: u64 }",
        );
        let cur = compute(&index_of(&[("crates/dist/src/proto.rs", &changed)]));
        let f = check(&cur, &lock, "wire-schema.lock");
        let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"schema-drift"), "{rules:?}");
        assert!(rules.contains(&"protocol-version"), "{rules:?}");
        // With the bump, only the (regenerable) drift findings remain.
        let bumped = changed.replace("PROTOCOL_VERSION: u32 = 2", "PROTOCOL_VERSION: u32 = 3");
        let cur = compute(&index_of(&[("crates/dist/src/proto.rs", &bumped)]));
        let f = check(&cur, &lock, "wire-schema.lock");
        assert!(f.iter().all(|f| f.rule == "schema-drift"), "{f:?}");
    }

    #[test]
    fn write_guard_refuses_unbumped_dist_drift() {
        let v2 = compute(&index_of(&[("crates/dist/src/proto.rs", DIST)]));
        let lock = lock_of(&v2);
        let changed = DIST.replace("Hello { version: u32 }", "Hello { v: u32 }");
        let cur = compute(&index_of(&[("crates/dist/src/proto.rs", &changed)]));
        let err = write_guard(&cur, &lock).unwrap_err();
        assert!(
            err.iter().any(|e| e.contains("bump PROTOCOL_VERSION")),
            "{err:?}"
        );
        // Bumped: allowed.
        let bumped = changed.replace("= 2", "= 3");
        let cur = compute(&index_of(&[("crates/dist/src/proto.rs", &bumped)]));
        assert!(write_guard(&cur, &lock).is_ok());
        // Non-dist drift never needs a bump.
        let v1 = compute(&index_of(&[("crates/a/src/x.rs", POINT)]));
        let lock = lock_of(&v1);
        let cur = compute(&index_of(&[(
            "crates/a/src/x.rs",
            &POINT.replace("pub y", "pub z"),
        )]));
        assert!(write_guard(&cur, &lock).is_ok());
    }

    #[test]
    fn compat_compares_two_locks_for_unbumped_dist_drift() {
        let old = lock_of(&compute(&index_of(&[("crates/dist/src/proto.rs", DIST)])));
        let same_version_drift = DIST.replace("version: u32", "version: u64");
        let cur = lock_of(&compute(&index_of(&[(
            "crates/dist/src/proto.rs",
            &same_version_drift,
        )])));
        assert!(compat(&cur, &old).is_err());
        let bumped = same_version_drift.replace("= 2", "= 3");
        let cur = lock_of(&compute(&index_of(&[(
            "crates/dist/src/proto.rs",
            &bumped,
        )])));
        assert!(compat(&cur, &old).is_ok());
        assert!(compat(&old, &old).is_ok());
    }

    #[test]
    fn parse_rejects_malformed_locks() {
        assert!(parse("kind = \"type\"\n").is_err(), "field outside entry");
        assert!(parse("[[entry]]\nkind = \"bogus\"\n").is_err(), "bad kind");
        assert!(
            parse("[[entry]]\nkind = \"type\"\nname = \"X\"\nfile = \"f\"\ndist = maybe\nfingerprint = \"0\"\n")
                .is_err(),
            "bad dist"
        );
        assert!(
            parse("[[entry]]\nkind = \"type\"\nname = \"X\"\n").is_err(),
            "missing fields"
        );
    }
}
