//! The workspace symbol index: a cross-file map of type definitions,
//! wire-trait implementations, constants and macros, built on the same
//! hand-rolled lexer the per-file rules use (no `syn` — offline build).
//!
//! The index answers the questions the schema lock needs:
//!
//! * which `struct`/`enum` definitions exist, and what do their
//!   declarations (field names, type tokens, order, variant tags) look
//!   like as a canonical token string,
//! * which types implement `Wire`/`WireState`/`StageDecode`, resolved
//!   from the `impl … for Type` head back to the definition — across
//!   files and crates,
//! * which `macro_rules!` macros *emit* wire impls, and with which
//!   argument lists they are invoked (macro-generated impls are
//!   fingerprinted unexpanded: body + invocations),
//! * which `const` items carry protocol-critical values
//!   (`PROTOCOL_VERSION`, `MAX_FRAME`, frame tags).
//!
//! ## What the scanner sees
//!
//! Items are recognized at module level only: the scanner tracks brace
//! depth, descends into inline `mod name { … }` blocks, and skips `fn`
//! bodies, test regions (`#[cfg(test)]`, `#[test]`, `mod tests`) and
//! everything inside consumed item bodies. `#[cfg]`-gated duplicate
//! definitions of one type are all collected — the schema fingerprint
//! covers every configuration, so gating a wire type differently is
//! itself a visible change. Comments and strings are scrubbed before
//! tokenization, so a raw string containing `impl Wire for X` is prose,
//! not an impl.

use std::collections::BTreeMap;

use crate::lexer::{scrub, tokenize, Tok, TokKind};
use crate::rules::test_lines;

/// Traits whose implementations define the wire surface. (Also the
/// trigger list for the per-file `hashmap-in-wire` rule.)
pub const WIRE_TRAITS: &[&str] = &["Wire", "WireState", "StageDecode"];

/// One `struct`/`enum` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `struct`/`enum` keyword.
    pub line: usize,
    /// Canonical declaration text (space-joined tokens, comments and
    /// strings already scrubbed): field names, types, order, variants.
    pub decl: String,
}

/// One `impl Trait for Type` block for a wire trait.
#[derive(Debug, Clone, PartialEq)]
pub struct TraitImpl {
    /// Last path segment of the trait (`crate::wire::WireState` → `WireState`).
    pub trait_name: String,
    /// The full implementing-type text (`FwPartial < Agg , Rep >`).
    pub type_text: String,
    /// The type's head identifier for definition lookup (`FwPartial`),
    /// or `None` for non-path types (tuples).
    pub type_head: Option<String>,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Canonical body text — the encode/decode logic itself.
    pub body: String,
}

/// One module-level `const` item.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDef {
    /// Constant name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Canonical initializer text (tokens after `=`).
    pub value: String,
}

/// One `macro_rules!` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroDef {
    /// Macro name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Canonical body text.
    pub body: String,
    /// Whether the body contains an `impl <WireTrait> for` sequence —
    /// such macros generate wire impls and must be fingerprinted.
    pub emits_wire_impl: bool,
}

/// One module-level macro invocation (`wire_int!(u8, u16, …)`).
#[derive(Debug, Clone, PartialEq)]
pub struct MacroUse {
    /// Invoked macro name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Canonical argument text.
    pub args: String,
}

/// The cross-file index, fed one library file at a time.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Definitions by type name. Multiple entries mean `#[cfg]`-gated
    /// (or name-colliding) duplicates; all participate in fingerprints.
    pub types: BTreeMap<String, Vec<TypeDef>>,
    /// Every wire-trait impl found.
    pub impls: Vec<TraitImpl>,
    /// Every module-level const.
    pub consts: Vec<ConstDef>,
    /// Every `macro_rules!` definition.
    pub macros: Vec<MacroDef>,
    /// Every module-level macro invocation.
    pub macro_uses: Vec<MacroUse>,
}

/// Canonical text of a token run: idents and puncts space-joined. All
/// fingerprints hash this form, so reformatting never registers as drift.
fn text(toks: &[Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        if !out.is_empty() {
            out.push(' ');
        }
        match &t.kind {
            TokKind::Ident(s) => out.push_str(s),
            TokKind::Punct(c) => out.push(*c),
        }
    }
    out
}

/// `i` points at `<`; returns the index just past the matching `>`.
/// `->` and `=>` arrows inside (e.g. `Fn(u32) -> u64` bounds) don't close.
fn skip_generics(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>')
            && !(i > 0 && (toks[i - 1].is_punct('-') || toks[i - 1].is_punct('=')))
        {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// `i` points at `open`; returns the index just past the matching `close`.
fn skip_delim(toks: &[Tok], mut i: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Last identifier of the leading path, before any `<` or `(`:
/// `mcim_oracles :: wire :: Wire` → `Wire`, `FwPartial < A , B >` →
/// `FwPartial`, `( A , B )` → `None`.
fn path_head(toks: &[Tok]) -> Option<String> {
    let cut = toks
        .iter()
        .position(|t| t.is_punct('<') || t.is_punct('('))
        .unwrap_or(toks.len());
    toks[..cut]
        .iter()
        .rev()
        .find_map(Tok::ident)
        .map(str::to_string)
}

/// `s` points at `struct`/`enum`; returns `(name, end_past_item)`.
fn parse_type_def(toks: &[Tok], s: usize) -> Option<(String, usize)> {
    let name = toks.get(s + 1)?.ident()?.to_string();
    let mut i = s + 2;
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_generics(toks, i);
    }
    while i < toks.len() {
        if toks[i].is_punct('{') {
            return Some((name, skip_delim(toks, i, '{', '}')));
        }
        if toks[i].is_punct('(') {
            // Tuple struct: fields, then (possibly a where clause and) `;`.
            i = skip_delim(toks, i, '(', ')');
            continue;
        }
        if toks[i].is_punct(';') {
            return Some((name, i + 1));
        }
        i += 1;
    }
    Some((name, i))
}

/// A parsed `impl` item.
enum ImplItem {
    /// Inherent impl (or a trait we don't resolve the head of): skipped.
    Other { end: usize },
    /// `impl Trait for Type { body }`.
    Trait {
        trait_name: String,
        type_text: String,
        type_head: Option<String>,
        body: String,
        end: usize,
    },
}

/// `s` points at `impl`; parses past the whole item (body included).
fn parse_impl(toks: &[Tok], s: usize) -> ImplItem {
    let mut i = s + 1;
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_generics(toks, i);
    }
    // Trait (or self-type, for inherent impls) tokens up to a top-level
    // `for`, `where`, or the body brace.
    let head_start = i;
    let mut angle = 0usize;
    let mut for_at = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            angle = angle.saturating_sub(1);
        } else if angle == 0 {
            if t.ident() == Some("for") {
                for_at = Some(i);
                break;
            }
            if t.ident() == Some("where") || t.is_punct('{') {
                break;
            }
        }
        i += 1;
    }
    let body_end = |from: usize| {
        let mut j = from;
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        (j, skip_delim(toks, j, '{', '}'))
    };
    let Some(for_at) = for_at else {
        let (_, end) = body_end(i);
        return ImplItem::Other { end };
    };
    let trait_toks = &toks[head_start..for_at];
    let Some(trait_name) = path_head(trait_toks) else {
        let (_, end) = body_end(for_at);
        return ImplItem::Other { end };
    };
    // Implementing-type tokens up to `where` or the body brace.
    let type_start = for_at + 1;
    let mut j = type_start;
    let mut angle = 0usize;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
            angle = angle.saturating_sub(1);
        } else if angle == 0 && (t.ident() == Some("where") || t.is_punct('{')) {
            break;
        }
        j += 1;
    }
    let type_toks = &toks[type_start..j];
    let (open, end) = body_end(j);
    let body = if open < toks.len() {
        text(&toks[open + 1..end.saturating_sub(1)])
    } else {
        String::new()
    };
    ImplItem::Trait {
        trait_name,
        type_text: text(type_toks),
        type_head: path_head(type_toks),
        body,
        end,
    }
}

/// `s` points at `const`; returns `(name, value_text, end)` for a const
/// *item* (`const NAME: Ty = …;`), or `None` for `const fn` and friends.
fn parse_const(toks: &[Tok], s: usize) -> Option<(String, String, usize)> {
    let name = toks.get(s + 1)?.ident()?;
    if name == "fn" || !toks.get(s + 2).is_some_and(|t| t.is_punct(':')) {
        return None;
    }
    // Find `=` then `;`, both at zero (paren|bracket|brace) depth — the
    // value may contain `[0; N]` arrays or `64 << 20` shifts.
    let mut depth = 0usize;
    let mut eq_at = None;
    let mut i = s + 3;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && eq_at.is_none() && t.is_punct('=') {
            eq_at = Some(i);
        } else if depth == 0 && t.is_punct(';') {
            let eq = eq_at?;
            return Some((name.to_string(), text(&toks[eq + 1..i]), i + 1));
        }
        i += 1;
    }
    None
}

/// Whether a macro body contains an `impl <WireTrait> for` sequence.
fn emits_wire_impl(body: &[Tok]) -> bool {
    let mut seen_impl = false;
    for (j, t) in body.iter().enumerate() {
        if t.ident() == Some("impl") {
            seen_impl = true;
        }
        if seen_impl
            && t.ident().is_some_and(|id| WIRE_TRAITS.contains(&id))
            && body.get(j + 1).and_then(Tok::ident) == Some("for")
        {
            return true;
        }
    }
    false
}

/// The matching close delimiter for a macro invocation's open delimiter.
fn close_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

impl SymbolIndex {
    /// Indexes one library source file.
    pub fn add_file(&mut self, rel: &str, source: &str) {
        let scrubbed = scrub(source);
        let toks = tokenize(&scrubbed.code);
        let n_lines = source.lines().count().max(1);
        let in_test = test_lines(&toks, n_lines);
        let tested = |line: usize| in_test.get(line).copied().unwrap_or(false);

        // Brace frames: `true` frames are inline `mod name { … }` blocks
        // whose contents are still module-level; `false` frames (trait
        // bodies, initializers, anything unconsumed) hide items.
        let mut frames: Vec<bool> = Vec::new();
        let mut opaque = 0usize;
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_punct('{') {
                frames.push(false);
                opaque += 1;
                i += 1;
                continue;
            }
            if t.is_punct('}') {
                if let Some(transparent) = frames.pop() {
                    if !transparent {
                        opaque = opaque.saturating_sub(1);
                    }
                }
                i += 1;
                continue;
            }
            if opaque > 0 {
                i += 1;
                continue;
            }
            let Some(id) = t.ident() else {
                i += 1;
                continue;
            };
            if tested(t.line) {
                i += 1;
                continue;
            }
            match id {
                "mod"
                    if toks.get(i + 1).and_then(Tok::ident).is_some()
                        && toks.get(i + 2).is_some_and(|t| t.is_punct('{')) =>
                {
                    // Inline module: descend transparently.
                    frames.push(true);
                    i += 3;
                }
                "fn" => {
                    // Skip the whole function (signature has no braces
                    // before the body in this codebase's Rust subset).
                    let mut j = i + 1;
                    while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        j += 1;
                    }
                    i = if toks.get(j).is_some_and(|t| t.is_punct('{')) {
                        skip_delim(&toks, j, '{', '}')
                    } else {
                        j + 1
                    };
                }
                "struct" | "enum" => {
                    let Some((name, end)) = parse_type_def(&toks, i) else {
                        i += 1;
                        continue;
                    };
                    self.types.entry(name.clone()).or_default().push(TypeDef {
                        name,
                        file: rel.to_string(),
                        line: t.line,
                        decl: text(&toks[i..end]),
                    });
                    i = end;
                }
                "impl" => {
                    let line = t.line;
                    match parse_impl(&toks, i) {
                        ImplItem::Other { end } => i = end,
                        ImplItem::Trait {
                            trait_name,
                            type_text,
                            type_head,
                            body,
                            end,
                        } => {
                            if WIRE_TRAITS.contains(&trait_name.as_str()) {
                                self.impls.push(TraitImpl {
                                    trait_name,
                                    type_text,
                                    type_head,
                                    file: rel.to_string(),
                                    line,
                                    body,
                                });
                            }
                            i = end;
                        }
                    }
                }
                "const" => match parse_const(&toks, i) {
                    Some((name, value, end)) => {
                        self.consts.push(ConstDef {
                            name,
                            file: rel.to_string(),
                            line: t.line,
                            value,
                        });
                        i = end;
                    }
                    None => i += 1,
                },
                "macro_rules"
                    if toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                        && toks.get(i + 2).and_then(Tok::ident).is_some() =>
                {
                    let name = toks[i + 2].ident().unwrap_or_default().to_string();
                    let open = i + 3;
                    let Some(TokKind::Punct(d)) = toks.get(open).map(|t| t.kind.clone()) else {
                        i += 3;
                        continue;
                    };
                    let end = skip_delim(&toks, open, d, close_of(d));
                    let body = &toks[open + 1..end.saturating_sub(1)];
                    self.macros.push(MacroDef {
                        name,
                        file: rel.to_string(),
                        line: t.line,
                        body: text(body),
                        emits_wire_impl: emits_wire_impl(body),
                    });
                    i = end;
                }
                _ if toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && toks
                        .get(i + 2)
                        .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{')) =>
                {
                    // Module-level macro invocation: `wire_int!(u8, …);`.
                    let open = i + 2;
                    let Some(TokKind::Punct(d)) = toks.get(open).map(|t| t.kind.clone()) else {
                        i += 2;
                        continue;
                    };
                    let end = skip_delim(&toks, open, d, close_of(d));
                    self.macro_uses.push(MacroUse {
                        name: id.to_string(),
                        file: rel.to_string(),
                        line: t.line,
                        args: text(&toks[open + 1..end.saturating_sub(1)]),
                    });
                    i = end;
                }
                _ => i += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(files: &[(&str, &str)]) -> SymbolIndex {
        let mut idx = SymbolIndex::default();
        for (rel, src) in files {
            idx.add_file(rel, src);
        }
        idx
    }

    #[test]
    fn resolves_impls_to_definitions_across_files() {
        let idx = index_of(&[
            (
                "crates/a/src/types.rs",
                "pub struct Point { pub x: u32, pub y: u32 }\n",
            ),
            (
                "crates/b/src/codec.rs",
                "impl mcim_oracles::wire::Wire for Point {\n\
                 fn put(&self, buf: &mut Vec<u8>) { self.x.put(buf); }\n}\n",
            ),
        ]);
        let defs = &idx.types["Point"];
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].file, "crates/a/src/types.rs");
        assert!(defs[0].decl.contains("x : u32"), "{}", defs[0].decl);
        assert_eq!(idx.impls.len(), 1);
        let imp = &idx.impls[0];
        assert_eq!(imp.trait_name, "Wire");
        assert_eq!(imp.type_head.as_deref(), Some("Point"));
        assert!(imp.body.contains("put ( buf )"), "{}", imp.body);
    }

    #[test]
    fn generic_impl_heads_resolve_and_non_wire_traits_are_ignored() {
        let src = "pub struct FwPartial<Agg, Rep> { agg: Agg, rep: Rep }\n\
                   impl<Agg: WireState, Rep> WireState for FwPartial<Agg, Rep> {\n\
                       fn save(&self, buf: &mut Vec<u8>) {}\n\
                   }\n\
                   impl<Agg: Clone, Rep: Clone> Clone for FwPartial<Agg, Rep> {\n\
                       fn clone(&self) -> Self { todo!() }\n\
                   }\n\
                   impl<M> StageDecode for FwStage<M> where M: Default {\n\
                       fn decode() {}\n\
                   }\n";
        let idx = index_of(&[("crates/a/src/x.rs", src)]);
        let traits: Vec<&str> = idx.impls.iter().map(|i| i.trait_name.as_str()).collect();
        assert_eq!(traits, ["WireState", "StageDecode"], "Clone is not wire");
        assert_eq!(idx.impls[0].type_head.as_deref(), Some("FwPartial"));
        assert_eq!(idx.impls[0].type_text, "FwPartial < Agg , Rep >");
        assert_eq!(idx.impls[1].type_head.as_deref(), Some("FwStage"));
        assert!(
            !idx.impls[1].body.contains("where"),
            "where clause excluded"
        );
    }

    #[test]
    fn tuple_and_primitive_impls_have_no_resolvable_head() {
        let src = "impl<A: Wire, B: Wire> Wire for (A, B) { fn put(&self) {} }\n\
                   impl Wire for u64 { fn put(&self) {} }\n";
        let idx = index_of(&[("crates/a/src/x.rs", src)]);
        assert_eq!(idx.impls[0].type_head, None, "tuple");
        assert_eq!(idx.impls[1].type_head.as_deref(), Some("u64"));
    }

    #[test]
    fn raw_strings_and_comments_mentioning_impls_are_not_impls() {
        let src = "pub fn doc() -> &'static str {\n\
                       r#\"impl Wire for Fake { fn put() {} }\"#\n\
                   }\n\
                   // impl WireState for AlsoFake {}\n\
                   /* impl StageDecode for StillFake {} */\n";
        let idx = index_of(&[("crates/a/src/x.rs", src)]);
        assert!(idx.impls.is_empty(), "{:?}", idx.impls);
    }

    #[test]
    fn cfg_gated_duplicate_definitions_are_all_collected() {
        let src = "#[cfg(feature = \"wide\")]\npub struct Counter { w: u64 }\n\
                   #[cfg(not(feature = \"wide\"))]\npub struct Counter { w: u32 }\n";
        let idx = index_of(&[("crates/a/src/x.rs", src)]);
        let defs = &idx.types["Counter"];
        assert_eq!(defs.len(), 2);
        assert!(defs[0].decl.contains("u64") && defs[1].decl.contains("u32"));
    }

    #[test]
    fn test_regions_and_fn_bodies_are_not_indexed() {
        let src = "pub fn f() { struct Inner { x: u32 } let c = Inner { x: 0 }; }\n\
                   #[cfg(test)]\nmod tests {\n\
                       pub struct Fixture { y: u32 }\n\
                       impl Wire for Fixture { fn put(&self) {} }\n\
                   }\n\
                   pub struct Real { z: u32 }\n";
        let idx = index_of(&[("crates/a/src/x.rs", src)]);
        assert!(!idx.types.contains_key("Inner"), "fn-local type");
        assert!(!idx.types.contains_key("Fixture"), "test type");
        assert!(idx.types.contains_key("Real"));
        assert!(idx.impls.is_empty(), "test impl");
    }

    #[test]
    fn inline_modules_are_transparent() {
        let src = "pub mod inner {\n\
                       pub struct Nested { a: u8 }\n\
                       impl Wire for Nested { fn put(&self) {} }\n\
                   }\n";
        let idx = index_of(&[("crates/a/src/x.rs", src)]);
        assert!(idx.types.contains_key("Nested"));
        assert_eq!(idx.impls.len(), 1);
    }

    #[test]
    fn consts_parse_including_shifts_and_arrays() {
        let src = "pub const PROTOCOL_VERSION: u32 = 2;\n\
                   pub const MAX_FRAME: u32 = 64 << 20;\n\
                   const TABLE: [u8; 3] = [1; 3];\n\
                   pub const fn of(x: u32) -> u32 { x }\n\
                   const TAIL: u8 = 7;\n";
        let idx = index_of(&[("crates/a/src/x.rs", src)]);
        let names: Vec<&str> = idx.consts.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["PROTOCOL_VERSION", "MAX_FRAME", "TABLE", "TAIL"]);
        assert_eq!(idx.consts[0].value, "2");
        assert_eq!(idx.consts[1].value, "64 < < 20");
        assert_eq!(idx.consts[2].value, "[ 1 ; 3 ]");
    }

    #[test]
    fn wire_emitting_macros_and_their_invocations_are_captured() {
        let src = "macro_rules! wire_int {\n\
                       ($($t:ty),*) => {$(\n\
                           impl Wire for $t { fn put(&self, buf: &mut Vec<u8>) {} }\n\
                       )*};\n\
                   }\n\
                   wire_int!(u8, u16, u32, u64);\n\
                   macro_rules! plain { () => {}; }\n\
                   plain!();\n";
        let idx = index_of(&[("crates/a/src/x.rs", src)]);
        assert_eq!(idx.macros.len(), 2);
        assert!(idx.macros[0].emits_wire_impl);
        assert!(!idx.macros[1].emits_wire_impl);
        let wire_uses: Vec<&MacroUse> = idx
            .macro_uses
            .iter()
            .filter(|u| u.name == "wire_int")
            .collect();
        assert_eq!(wire_uses.len(), 1);
        assert_eq!(wire_uses[0].args, "u8 , u16 , u32 , u64");
    }
}
