//! The grandfathering baseline: `lint-baseline.toml`.
//!
//! The baseline freezes pre-existing violations so new ones fail CI while
//! old ones are burned down over time. Policy is **shrink-only**: an entry
//! caps how many findings of one `(rule, file, token)` key may exist. New
//! findings beyond the cap fail; fixing a site makes the entry *stale*
//! (cap above reality), which `--deny-stale` turns into an error so the
//! baseline must shrink in the same PR.
//!
//! Entries are keyed by counts, not line numbers, so unrelated edits that
//! move a grandfathered site around don't churn the file. Every entry
//! must carry a `reason` string — an unexplained allowance is itself a
//! violation of the policy.
//!
//! The format is a deliberately tiny TOML subset (parsed by hand — the
//! workspace builds offline with no registry access):
//!
//! ```toml
//! [[allow]]
//! rule = "panic-freedom"
//! file = "crates/datasets/src/synthetic.rs"
//! token = "expect"
//! count = 2
//! reason = "static literal-parameter constructors; convert to Result"
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::Finding;

/// One grandfathered allowance.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Rule identifier.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Offending token the findings share.
    pub token: String,
    /// Maximum number of such findings allowed in the file.
    pub count: usize,
    /// Why these sites are grandfathered.
    pub reason: String,
}

impl Entry {
    fn key(&self) -> (String, String, String) {
        (self.rule.clone(), self.file.clone(), self.token.clone())
    }
}

/// A parsed baseline file.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Baseline {
    /// All entries, in file order.
    pub entries: Vec<Entry>,
}

/// Parses the tiny TOML subset. Unknown keys, duplicate keys, missing
/// fields, zero counts and empty reasons are all hard errors — a baseline
/// that silently drops an allowance (or silently allows more than
/// intended) defeats its purpose.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut current: Option<BTreeMap<String, String>> = None;

    fn finish(
        fields: BTreeMap<String, String>,
        at: usize,
        entries: &mut Vec<Entry>,
    ) -> Result<(), String> {
        let get = |k: &str| {
            fields
                .get(k)
                .cloned()
                .ok_or_else(|| format!("entry ending near line {at}: missing `{k}`"))
        };
        let count: usize = get("count")?
            .parse()
            .map_err(|_| format!("entry ending near line {at}: `count` is not an integer"))?;
        if count == 0 {
            return Err(format!(
                "entry ending near line {at}: `count = 0` — delete the entry instead"
            ));
        }
        let entry = Entry {
            rule: get("rule")?,
            file: get("file")?,
            token: get("token")?,
            count,
            reason: get("reason")?,
        };
        if entry.reason.trim().is_empty() {
            return Err(format!(
                "entry ending near line {at}: empty `reason` — every allowance must be justified"
            ));
        }
        if entries.iter().any(|e| e.key() == entry.key()) {
            return Err(format!(
                "entry ending near line {at}: duplicate key ({}, {}, {})",
                entry.rule, entry.file, entry.token
            ));
        }
        entries.push(entry);
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(fields) = current.take() {
                finish(fields, lineno, &mut entries)?;
            }
            current = Some(BTreeMap::new());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `key = value`, got `{raw}`"
            ));
        };
        let Some(fields) = current.as_mut() else {
            return Err(format!(
                "line {lineno}: `{key}` outside an [[allow]] entry",
                key = key.trim()
            ));
        };
        let key = key.trim().to_string();
        if !matches!(key.as_str(), "rule" | "file" | "token" | "count" | "reason") {
            return Err(format!("line {lineno}: unknown key `{key}`"));
        }
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .unwrap_or(value);
        if fields.insert(key.clone(), value.to_string()).is_some() {
            return Err(format!("line {lineno}: duplicate key `{key}` in entry"));
        }
    }
    if let Some(fields) = current.take() {
        finish(fields, text.lines().count(), &mut entries)?;
    }
    Ok(Baseline { entries })
}

/// Serializes a baseline back to the canonical file format.
pub fn render(baseline: &Baseline) -> String {
    let mut out = String::from(
        "# mcim-lint baseline — grandfathered findings, shrink-only.\n\
         # Fix a site, then shrink (or delete) its entry in the same change.\n\
         # New findings are NOT covered: only `count` sites per (rule, file,\n\
         # token) are tolerated. Every entry must explain itself in `reason`.\n",
    );
    for e in &baseline.entries {
        let _ = write!(
            out,
            "\n[[allow]]\nrule = \"{}\"\nfile = \"{}\"\ntoken = \"{}\"\ncount = {}\nreason = \"{}\"\n",
            e.rule, e.file, e.token, e.count, e.reason
        );
    }
    out
}

/// The result of matching findings against a baseline.
#[derive(Debug, Default)]
pub struct Matched {
    /// Findings not covered by the baseline — real violations.
    pub violations: Vec<Finding>,
    /// Findings absorbed by baseline entries.
    pub baselined: Vec<Finding>,
    /// Entries whose cap exceeds reality (fixed sites): shrink these.
    pub stale: Vec<(Entry, usize)>,
}

/// Applies the baseline: the first `count` findings per key are absorbed,
/// the rest are violations.
pub fn apply(findings: Vec<Finding>, baseline: &Baseline) -> Matched {
    let mut budget: BTreeMap<(String, String, String), usize> = baseline
        .entries
        .iter()
        .map(|e| (e.key(), e.count))
        .collect();
    let mut matched = Matched::default();
    for f in findings {
        let key = (f.rule.to_string(), f.file.clone(), f.token.clone());
        match budget.get_mut(&key) {
            Some(left) if *left > 0 => {
                *left -= 1;
                matched.baselined.push(f);
            }
            _ => matched.violations.push(f),
        }
    }
    for e in &baseline.entries {
        let left = budget.get(&e.key()).copied().unwrap_or(0);
        if left > 0 {
            matched.stale.push((e.clone(), e.count - left));
        }
    }
    matched
}

/// Shrink-only guard: errors if `current` allows anything `reference`
/// does not (new keys, or a raised `count`). Used by CI against the
/// merge-base copy of the baseline.
pub fn check_shrink(current: &Baseline, reference: &Baseline) -> Result<(), Vec<String>> {
    let ref_counts: BTreeMap<_, _> = reference
        .entries
        .iter()
        .map(|e| (e.key(), e.count))
        .collect();
    let mut grew = Vec::new();
    for e in &current.entries {
        let allowed = ref_counts.get(&e.key()).copied().unwrap_or(0);
        if e.count > allowed {
            grew.push(format!(
                "baseline grew: ({}, {}, {}) allows {} (reference allows {allowed})",
                e.rule, e.file, e.token, e.count
            ));
        }
    }
    if grew.is_empty() {
        Ok(())
    } else {
        Err(grew)
    }
}

/// Describes what a regenerated baseline dropped or shrank relative to
/// `previous` — `--write-baseline` prints these so burn-down progress is
/// visible in CI logs instead of silently disappearing from the file.
pub fn shrink_notes(previous: &Baseline, fresh: &Baseline) -> Vec<String> {
    let fresh_counts: BTreeMap<_, _> = fresh.entries.iter().map(|e| (e.key(), e.count)).collect();
    let mut notes = Vec::new();
    for e in &previous.entries {
        match fresh_counts.get(&e.key()).copied() {
            None => notes.push(format!(
                "dropped ({}, {}, {}): all {} grandfathered site(s) fixed",
                e.rule, e.file, e.token, e.count
            )),
            Some(now) if now < e.count => notes.push(format!(
                "shrunk ({}, {}, {}): {} -> {} site(s)",
                e.rule, e.file, e.token, e.count, now
            )),
            Some(_) => {}
        }
    }
    notes
}

/// Builds a fresh baseline from violations (`--write-baseline`), keeping
/// reasons from `previous` where keys survive.
pub fn from_findings(findings: &[Finding], previous: &Baseline) -> Baseline {
    let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.file.clone(), f.token.clone()))
            .or_insert(0) += 1;
    }
    let entries = counts
        .into_iter()
        .map(|((rule, file, token), count)| {
            let reason = previous
                .entries
                .iter()
                .find(|e| e.rule == rule && e.file == file && e.token == token)
                .map(|e| e.reason.clone())
                .unwrap_or_else(|| "TODO: justify this allowance or fix the sites".to_string());
            Entry {
                rule,
                file,
                token,
                count,
                reason,
            }
        })
        .collect();
    Baseline { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, token: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            col: 1,
            token: token.to_string(),
            message: String::new(),
        }
    }

    fn entry(rule: &str, file: &str, token: &str, count: usize) -> Entry {
        Entry {
            rule: rule.into(),
            file: file.into(),
            token: token.into(),
            count,
            reason: "because".into(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let b = Baseline {
            entries: vec![
                entry("panic-freedom", "crates/a/src/x.rs", "unwrap", 2),
                entry("hashmap-in-wire", "crates/b/src/wire.rs", "HashMap", 1),
            ],
        };
        assert_eq!(parse(&render(&b)).unwrap(), b);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("rule = \"x\"\n").is_err(), "field outside entry");
        assert!(
            parse("[[allow]]\nrule = \"x\"\n").is_err(),
            "missing fields"
        );
        assert!(
            parse("[[allow]]\nrule=\"r\"\nfile=\"f\"\ntoken=\"t\"\ncount=0\nreason=\"x\"\n")
                .is_err(),
            "zero count"
        );
        assert!(
            parse("[[allow]]\nrule=\"r\"\nfile=\"f\"\ntoken=\"t\"\ncount=1\nreason=\"\"\n")
                .is_err(),
            "empty reason"
        );
        assert!(
            parse("[[allow]]\nrule=\"r\"\nbogus=\"b\"\n").is_err(),
            "unknown key"
        );
        let dup = "[[allow]]\nrule=\"r\"\nfile=\"f\"\ntoken=\"t\"\ncount=1\nreason=\"x\"\n\
                   [[allow]]\nrule=\"r\"\nfile=\"f\"\ntoken=\"t\"\ncount=2\nreason=\"y\"\n";
        assert!(parse(dup).is_err(), "duplicate key");
    }

    #[test]
    fn apply_caps_by_count_and_reports_stale() {
        let b = Baseline {
            entries: vec![
                entry("panic-freedom", "f.rs", "unwrap", 2),
                entry("panic-freedom", "g.rs", "expect", 3),
            ],
        };
        let findings = vec![
            finding("panic-freedom", "f.rs", "unwrap"),
            finding("panic-freedom", "f.rs", "unwrap"),
            finding("panic-freedom", "f.rs", "unwrap"), // over cap
            finding("panic-freedom", "g.rs", "expect"), // 2 under cap
            finding("stdout-noise", "f.rs", "println"), // no entry
        ];
        let m = apply(findings, &b);
        assert_eq!(m.violations.len(), 2);
        assert_eq!(m.baselined.len(), 3);
        assert_eq!(m.stale.len(), 1);
        assert_eq!(m.stale[0].1, 1, "one of three expect sites remains");
    }

    #[test]
    fn shrink_guard_rejects_growth_only() {
        let reference = Baseline {
            entries: vec![entry("panic-freedom", "f.rs", "unwrap", 2)],
        };
        let shrunk = Baseline {
            entries: vec![entry("panic-freedom", "f.rs", "unwrap", 1)],
        };
        assert!(check_shrink(&shrunk, &reference).is_ok());
        assert!(check_shrink(&Baseline::default(), &reference).is_ok());
        let raised = Baseline {
            entries: vec![entry("panic-freedom", "f.rs", "unwrap", 3)],
        };
        assert!(check_shrink(&raised, &reference).is_err());
        let new_key = Baseline {
            entries: vec![entry("stdout-noise", "f.rs", "println", 1)],
        };
        assert!(check_shrink(&new_key, &reference).is_err());
    }

    #[test]
    fn write_baseline_groups_and_keeps_reasons() {
        let previous = Baseline {
            entries: vec![Entry {
                reason: "known static constructors".into(),
                ..entry("panic-freedom", "f.rs", "expect", 9)
            }],
        };
        let findings = vec![
            finding("panic-freedom", "f.rs", "expect"),
            finding("panic-freedom", "f.rs", "expect"),
            finding("stdout-noise", "g.rs", "println"),
        ];
        let b = from_findings(&findings, &previous);
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries[0].count, 2);
        assert_eq!(b.entries[0].reason, "known static constructors");
        assert!(b.entries[1].reason.starts_with("TODO"));
    }

    #[test]
    fn shrink_notes_report_dropped_and_shrunk_entries() {
        let previous = Baseline {
            entries: vec![
                entry("panic-freedom", "f.rs", "expect", 6),
                entry("panic-freedom", "g.rs", "unwrap", 2),
                entry("stdout-noise", "h.rs", "println", 1),
            ],
        };
        let fresh = Baseline {
            entries: vec![
                entry("panic-freedom", "f.rs", "expect", 4), // shrunk
                entry("stdout-noise", "h.rs", "println", 1), // unchanged
            ],
        };
        let notes = shrink_notes(&previous, &fresh);
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(notes[0].contains("shrunk") && notes[0].contains("6 -> 4"));
        assert!(notes[1].contains("dropped") && notes[1].contains("g.rs"));
        assert!(shrink_notes(&previous, &previous).is_empty());
    }
}
