//! Golden tests pinning the machine-facing surface of `mcim-lint`: the
//! `--list-rules` inventory and the exact `--format=json` shape CI parses.
//! A change here is an API change for every downstream consumer of the
//! findings artifact — update the README and CI workflow together with it.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Materializes a throwaway workspace under `target/tmp` (inside the repo,
/// never scanned by the self-lint) and returns its root.
fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    for (rel, text) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, text).unwrap();
    }
    root
}

/// Runs the built `mcim-lint` binary and returns (success, stdout, stderr).
fn lint(root: &Path, extra: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcim-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn mcim-lint");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_rules_inventory_is_pinned() {
    let out = Command::new(env!("CARGO_BIN_EXE_mcim-lint"))
        .arg("--list-rules")
        .output()
        .expect("spawn mcim-lint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout,
        "ambient-entropy\nclock-discipline\nhashmap-in-wire\npanic-freedom\nstdout-noise\n\
         sampler-bypass\nrng-discipline\nunsafe-header\nschema-drift\nschema-lock\n\
         protocol-version\npragma-syntax\n",
        "rule inventory changed — update README, CI, and this golden"
    );
}

#[test]
fn clean_workspace_json_is_pinned_exactly() {
    let root = fixture(
        "golden-clean",
        &[(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn ok() {}\n",
        )],
    );
    let (ok, stdout, stderr) = lint(&root, &["--format=json"]);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(
        stdout,
        "{\"ok\":true,\"files_checked\":1,\"violations\":0,\"baselined\":0,\
         \"pragma_allowed\":0,\"schema_entries\":0,\"findings\":[],\"stale_baseline\":[]}\n",
        "JSON envelope changed — CI parses these fields by name"
    );
}

#[test]
fn violation_finding_json_is_pinned_exactly() {
    let root = fixture(
        "golden-violation",
        &[
            (
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\npub mod bad;\n",
            ),
            (
                "crates/demo/src/bad.rs",
                "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            ),
        ],
    );
    let (ok, stdout, _) = lint(&root, &["--format=json"]);
    assert!(!ok, "the unwrap must fail the run");
    let expected_finding = "{\"rule\":\"panic-freedom\",\"file\":\"crates/demo/src/bad.rs\",\
         \"line\":2,\"col\":7,\"token\":\"unwrap\",\"baselined\":false,\
         \"message\":\"`unwrap` can panic; library code must propagate `Error` (or document \
         the infallible pattern with `// mcim-lint: allow(panic-freedom, \u{2026})`)\"}";
    assert_eq!(
        stdout,
        format!(
            "{{\"ok\":false,\"files_checked\":2,\"violations\":1,\"baselined\":0,\
             \"pragma_allowed\":0,\"schema_entries\":0,\"findings\":[{expected_finding}],\
             \"stale_baseline\":[]}}\n"
        ),
        "finding shape changed — CI parses these fields by name"
    );
}

#[test]
fn schema_entries_count_and_lock_finding_appear_in_json() {
    // One wire impl and no lock: schema_entries counts it and the missing
    // lock surfaces as a non-baselineable schema-lock finding.
    let root = fixture(
        "golden-schema",
        &[(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub struct Packet { pub seq: u32 }\n\
             impl Wire for Packet { fn encode(&self) {} }\n",
        )],
    );
    let (ok, stdout, _) = lint(&root, &["--format=json"]);
    assert!(!ok);
    assert!(stdout.contains("\"schema_entries\":1"), "{stdout}");
    assert!(stdout.contains("\"rule\":\"schema-lock\""), "{stdout}");
    // After generating the lock the same tree is clean.
    let (ok, _, stderr) = lint(&root, &["--write-schema-lock"]);
    assert!(ok, "stderr: {stderr}");
    let (ok, stdout, _) = lint(&root, &["--format=json"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
}
