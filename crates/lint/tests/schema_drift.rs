//! End-to-end drift-lock tests against a self-contained fixture workspace:
//! mutating a wire struct must fail the lint until the lock is regenerated,
//! and dist-reachable drift must additionally ride with a
//! `PROTOCOL_VERSION` bump — `--write-schema-lock` refuses it otherwise.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const DEMO_LIB: &str = "#![forbid(unsafe_code)]\n\
    pub struct Packet {\n\
        pub seq: u32,\n\
        pub body: Vec<u8>,\n\
    }\n\
    impl Wire for Packet {\n\
        fn encode(&self, w: &mut Writer) { w.put(self.seq); }\n\
    }\n";

const DIST_PROTO: &str = "pub const PROTOCOL_VERSION: u32 = 1;\n\
    pub const MAX_FRAME: usize = 1024;\n\
    pub const TAG_HELLO: u8 = 1;\n\
    pub enum Frame {\n\
        Hello { version: u32 },\n\
        Done,\n\
    }\n";

fn fixture(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/demo/src")).unwrap();
    fs::create_dir_all(root.join("crates/dist/src")).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    fs::write(root.join("crates/demo/src/lib.rs"), DEMO_LIB).unwrap();
    fs::write(root.join("crates/dist/src/proto.rs"), DIST_PROTO).unwrap();
    root
}

fn lint(root: &Path, extra: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcim-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn mcim-lint");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn edit(root: &Path, rel: &str, from: &str, to: &str) {
    let path = root.join(rel);
    let text = fs::read_to_string(&path).unwrap();
    assert!(
        text.contains(from),
        "fixture drifted: {from:?} not in {rel}"
    );
    fs::write(path, text.replace(from, to)).unwrap();
}

#[test]
fn lock_generation_covers_types_frames_and_consts() {
    let root = fixture("drift-coverage");
    let (ok, _, stderr) = lint(&root, &["--write-schema-lock"]);
    assert!(ok, "stderr: {stderr}");
    let lock = fs::read_to_string(root.join("wire-schema.lock")).unwrap();
    assert!(lock.contains("protocol_version = \"1\""), "{lock}");
    for name in [
        "Packet",
        "Frame",
        "PROTOCOL_VERSION",
        "MAX_FRAME",
        "TAG_HELLO",
    ] {
        assert!(
            lock.contains(&format!("name = \"{name}\"")),
            "{name} missing"
        );
    }
    let (ok, stdout, _) = lint(&root, &[]);
    assert!(ok, "fresh lock must be clean: {stdout}");
}

#[test]
fn wire_struct_field_mutation_fails_until_lock_regenerated() {
    let root = fixture("drift-mutation");
    assert!(lint(&root, &["--write-schema-lock"]).0);
    edit(
        &root,
        "crates/demo/src/lib.rs",
        "pub seq: u32",
        "pub seq: u64",
    );
    let (ok, stdout, _) = lint(&root, &[]);
    assert!(!ok, "field mutation must fail: {stdout}");
    assert!(stdout.contains("schema-drift"), "{stdout}");
    assert!(stdout.contains("Packet"), "{stdout}");
    // Non-dist drift regenerates without ceremony, and the tree is clean.
    let (ok, _, stderr) = lint(&root, &["--write-schema-lock"]);
    assert!(ok, "stderr: {stderr}");
    assert!(lint(&root, &[]).0);
}

#[test]
fn impl_body_change_is_drift_even_when_the_decl_is_not_touched() {
    let root = fixture("drift-impl-body");
    assert!(lint(&root, &["--write-schema-lock"]).0);
    edit(
        &root,
        "crates/demo/src/lib.rs",
        "w.put(self.seq);",
        "w.put(self.seq); w.put(0u8);",
    );
    let (ok, stdout, _) = lint(&root, &[]);
    assert!(!ok, "encode-body change must fail: {stdout}");
    assert!(stdout.contains("schema-drift"), "{stdout}");
}

#[test]
fn dist_frame_drift_demands_a_protocol_version_bump() {
    let root = fixture("drift-dist");
    assert!(lint(&root, &["--write-schema-lock"]).0);
    edit(
        &root,
        "crates/dist/src/proto.rs",
        "Done,",
        "Done,\n        Abort { code: u32 },",
    );
    let (ok, stdout, _) = lint(&root, &[]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("schema-drift"), "{stdout}");
    assert!(stdout.contains("protocol-version"), "{stdout}");
    // Regeneration is refused while the version stands still…
    let (ok, _, stderr) = lint(&root, &["--write-schema-lock"]);
    assert!(!ok, "unbumped dist drift must refuse regeneration");
    assert!(stderr.contains("PROTOCOL_VERSION"), "{stderr}");
    // …and allowed once it is bumped, after which the tree is clean.
    edit(
        &root,
        "crates/dist/src/proto.rs",
        "PROTOCOL_VERSION: u32 = 1",
        "PROTOCOL_VERSION: u32 = 2",
    );
    let (ok, _, stderr) = lint(&root, &["--write-schema-lock"]);
    assert!(ok, "stderr: {stderr}");
    let (ok, stdout, _) = lint(&root, &[]);
    assert!(ok, "{stdout}");
}

#[test]
fn schema_compat_rejects_unbumped_dist_drift_between_locks() {
    let root = fixture("drift-compat");
    assert!(lint(&root, &["--write-schema-lock"]).0);
    let base = root.join("base.lock");
    fs::copy(root.join("wire-schema.lock"), &base).unwrap();
    // Bumped dist drift: compatible.
    edit(
        &root,
        "crates/dist/src/proto.rs",
        "Done,",
        "Done,\n        Abort { code: u32 },",
    );
    edit(
        &root,
        "crates/dist/src/proto.rs",
        "PROTOCOL_VERSION: u32 = 1",
        "PROTOCOL_VERSION: u32 = 2",
    );
    assert!(lint(&root, &["--write-schema-lock"]).0);
    let (ok, _, stderr) = lint(&root, &["--schema-compat", base.to_str().unwrap()]);
    assert!(ok, "bumped drift is compatible; stderr: {stderr}");
    // Tampering the recorded version back recreates unbumped drift.
    edit(
        &root,
        "wire-schema.lock",
        "protocol_version = \"2\"",
        "protocol_version = \"1\"",
    );
    let (ok, _, stderr) = lint(&root, &["--schema-compat", base.to_str().unwrap()]);
    assert!(!ok, "same version with dist drift must fail compat");
    assert!(stderr.contains("error:"), "{stderr}");
}
