//! Deterministic-seed roundtrip properties for every [`Wire`] and
//! [`WireState`] impl in `mcim_oracles::wire`.
//!
//! The property is stronger than decode-equality: **encode → decode →
//! re-encode must reproduce the original bytes exactly**. Byte equality is
//! what the distributed reducer's bit-identity proof leans on (a partial
//! re-serialized by a relaying process must not drift), and it covers
//! values without a usable `==` (NaN payloads survive as bits).
//!
//! The vendored proptest shim draws every case from a deterministic
//! per-case RNG, so failures replay exactly.

use mcim_oracles::wire::{Wire, WireReader, WireState};
use proptest::prelude::*;

/// Encode → decode → re-encode; asserts byte equality, exact consumption,
/// and (via the second encode) that decode rebuilt an equivalent value.
fn wire_bytes_stable<T: Wire>(value: &T) {
    let mut first = Vec::new();
    value.put(&mut first);
    let mut r = WireReader::new(&first);
    let decoded = T::take(&mut r).expect("roundtrip decode");
    r.finish().expect("decode consumes the encoding exactly");
    let mut second = Vec::new();
    decoded.put(&mut second);
    assert_eq!(first, second, "re-encode drifted");
}

/// `save` → `load` into a zeroed clone of the template shape → `save`;
/// asserts byte equality and exact consumption.
fn state_bytes_stable<T: WireState>(value: &T, mut template: T) {
    let mut first = Vec::new();
    value.save(&mut first);
    let mut r = WireReader::new(&first);
    template
        .load(&mut r)
        .expect("load into a matching template");
    r.finish().expect("load consumes the encoding exactly");
    let mut second = Vec::new();
    template.save(&mut second);
    assert_eq!(first, second, "re-save drifted");
}

proptest! {
    /// Fixed-width integers of every supported width.
    #[test]
    fn ints_roundtrip(a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>()) {
        wire_bytes_stable(&a);
        wire_bytes_stable(&b);
        wire_bytes_stable(&c);
        wire_bytes_stable(&d);
    }

    /// Every f64 bit pattern — including NaNs with arbitrary payloads and
    /// both infinities — survives byte-for-byte.
    #[test]
    fn f64_all_bit_patterns_roundtrip(bits in any::<u64>()) {
        wire_bytes_stable(&f64::from_bits(bits));
        wire_bytes_stable(&f64::NAN);
        wire_bytes_stable(&f64::NEG_INFINITY);
    }

    /// Bools and options (both arms).
    #[test]
    fn bool_and_option_roundtrip(flag in any::<bool>(), v in any::<u32>()) {
        wire_bytes_stable(&flag);
        wire_bytes_stable(&if flag { Some(v) } else { None });
        wire_bytes_stable(&Some(v));
        wire_bytes_stable(&None::<u64>);
    }

    /// Sequences, including empty and nested-option elements.
    #[test]
    fn vec_roundtrip(
        v in prop::collection::vec(any::<u32>(), 0..60),
        opts in prop::collection::vec(any::<u16>(), 0..20),
        gaps in prop::collection::vec(any::<bool>(), 0..20),
    ) {
        wire_bytes_stable(&v);
        let mixed: Vec<Option<u16>> = opts
            .iter()
            .zip(gaps.iter().chain(std::iter::repeat(&true)))
            .map(|(&x, &keep)| if keep { Some(x) } else { None })
            .collect();
        wire_bytes_stable(&mixed);
    }

    /// Strings from arbitrary bytes (lossily repaired to valid UTF-8, so
    /// multi-byte sequences and replacement chars both appear).
    #[test]
    fn string_roundtrip(raw in prop::collection::vec(any::<u8>(), 0..48)) {
        wire_bytes_stable(&String::from_utf8_lossy(&raw).into_owned());
    }

    /// Tuples, nested tuples, and tuples of containers.
    #[test]
    fn tuple_roundtrip(a in any::<u32>(), b in any::<u64>(), bits in any::<u64>(), flag in any::<bool>()) {
        wire_bytes_stable(&(a, b));
        wire_bytes_stable(&((a, flag), (f64::from_bits(bits), b)));
        wire_bytes_stable(&(vec![a, a ^ 1], Some(b)));
    }

    /// Accumulator partials: scalar, f64-bit-pattern, counter-block and
    /// tuple state all re-save to identical bytes through a template.
    #[test]
    fn wire_state_roundtrip(
        n in any::<u64>(),
        bits in any::<u64>(),
        counters in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        state_bytes_stable(&n, 0u64);
        state_bytes_stable(&f64::from_bits(bits), 0.0f64);
        state_bytes_stable(&counters, vec![0u64; counters.len()]);
        state_bytes_stable(
            &(counters.clone(), n),
            (vec![0u64; counters.len()], 0u64),
        );
    }

    /// Shape mismatches are rejected, never mis-loaded: a counter block
    /// only loads into a template of the same length.
    #[test]
    fn wire_state_rejects_shape_mismatch(
        counters in prop::collection::vec(any::<u64>(), 1..30),
        grow in 1usize..5,
    ) {
        let mut buf = Vec::new();
        counters.save(&mut buf);
        let mut wrong = vec![0u64; counters.len() + grow];
        prop_assert!(wrong.load(&mut WireReader::new(&buf)).is_err());
    }

    /// Truncating any strict prefix of an encoding errors instead of
    /// panicking or decoding garbage.
    #[test]
    fn truncation_always_errors(v in prop::collection::vec(any::<u32>(), 1..20), cut_frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        v.put(&mut buf);
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        let mut r = WireReader::new(&buf[..cut]);
        match Vec::<u32>::take(&mut r) {
            Err(_) => {}
            // A shorter length prefix can decode fine; then the reader
            // must still hold the bytes the shorter vector didn't claim.
            Ok(shorter) => prop_assert!(shorter.len() < v.len()),
        }
    }
}
