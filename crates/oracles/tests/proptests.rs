//! Property-based tests for the oracle substrate.

use mcim_oracles::{calibrate, hash::SplitMix64, BitVec, Eps, Grr, Oracle, UnaryEncoding};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Calibration exactly inverts the affine expectation map for any valid
    /// (p, q, n, f) configuration.
    #[test]
    fn calibration_inverts_expectation(
        p in 0.02f64..0.99,
        q_frac in 0.01f64..0.95,
        n in 1u32..1_000_000,
        f_frac in 0.0f64..1.0,
    ) {
        let q = p * q_frac; // ensure q < p
        let n = n as f64;
        let f = n * f_frac;
        let count = f * p + (n - f) * q;
        let est = calibrate::unbiased_count(count, n, p, q);
        prop_assert!((est - f).abs() < 1e-6 * n.max(1.0));
    }

    /// Budget splitting always sums back to the original ε.
    #[test]
    fn budget_split_sums(eps in 1e-3f64..10.0, frac in 0.01f64..0.99) {
        let e = Eps::new(eps).unwrap();
        let (a, b) = e.split(frac).unwrap();
        prop_assert!((a.value() + b.value() - eps).abs() < 1e-12);
        prop_assert!(a.value() > 0.0 && b.value() > 0.0);
    }

    /// One-hot vectors have exactly one set bit wherever placed.
    #[test]
    fn one_hot_invariant(len in 1usize..500, pos_frac in 0.0f64..1.0) {
        let pos = ((len as f64 - 1.0) * pos_frac) as usize;
        let v = BitVec::one_hot(len, pos);
        prop_assert_eq!(v.count_ones(), 1);
        prop_assert!(v.get(pos));
    }

    /// `iter_ones` agrees with `get` on arbitrary bit patterns.
    #[test]
    fn iter_ones_matches_get(len in 1usize..300, seed in any::<u64>(), q in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = BitVec::zeros(len);
        v.fill_bernoulli(q, &mut rng);
        let from_iter: Vec<usize> = v.iter_ones().collect();
        let from_get: Vec<usize> = (0..len).filter(|&i| v.get(i)).collect();
        prop_assert_eq!(from_iter, from_get);
        prop_assert_eq!(v.count_ones(), (0..len).filter(|&i| v.get(i)).count());
    }

    /// GRR probabilities are a valid distribution and satisfy the tight LDP bound.
    #[test]
    fn grr_probability_invariants(eps in 0.05f64..8.0, d in 2u32..500) {
        let g = Grr::new(Eps::new(eps).unwrap(), d).unwrap();
        let total = g.p() + (d as f64 - 1.0) * g.q();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(g.p() / g.q() <= eps.exp() * (1.0 + 1e-9));
    }

    /// GRR outputs always stay in the domain.
    #[test]
    fn grr_output_in_domain(eps in 0.1f64..5.0, d in 1u32..100, v_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let g = Grr::new(Eps::new(eps).unwrap(), d).unwrap();
        let v = ((d as f64 - 1.0) * v_frac) as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let out = g.perturb(v, &mut rng).unwrap();
            prop_assert!(out < d);
        }
    }

    /// OUE/SUE both satisfy exactly their nominal ε via the UE bound.
    #[test]
    fn ue_effective_eps_tight(eps in 0.05f64..8.0, d in 1u32..200) {
        let e = Eps::new(eps).unwrap();
        for m in [UnaryEncoding::optimized(e, d).unwrap(), UnaryEncoding::symmetric(e, d).unwrap()] {
            prop_assert!((m.effective_eps() - eps).abs() < 1e-6);
        }
    }

    /// The adaptive oracle follows the published selection rule exactly.
    #[test]
    fn adaptive_selection_rule(eps in 0.05f64..6.0, d in 1u32..10_000) {
        let oracle = Oracle::adaptive(Eps::new(eps).unwrap(), d).unwrap();
        let expect_grr = (d as f64) < 3.0 * eps.exp() + 2.0;
        prop_assert_eq!(oracle.name() == "GRR", expect_grr);
    }

    /// Deterministic shuffle: same seed ⇒ same permutation; output is a permutation.
    #[test]
    fn shuffle_permutation_property(seed in any::<u64>(), len in 0usize..200) {
        let mut a: Vec<u32> = (0..len as u32).collect();
        let mut b: Vec<u32> = (0..len as u32).collect();
        SplitMix64::new(seed).shuffle(&mut a);
        SplitMix64::new(seed).shuffle(&mut b);
        prop_assert_eq!(&a, &b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len as u32).collect::<Vec<_>>());
    }

    /// Aggregator estimates are finite for any report stream.
    #[test]
    fn aggregator_estimates_finite(seed in any::<u64>(), d in 2u32..64, n in 1usize..200) {
        let oracle = Oracle::adaptive(Eps::new(1.0).unwrap(), d).unwrap();
        let mut agg = mcim_oracles::Aggregator::new(&oracle);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let v = (i as u32) % d;
            agg.absorb(&oracle.privatize(v, &mut rng).unwrap()).unwrap();
        }
        for est in agg.estimate() {
            prop_assert!(est.is_finite());
        }
    }
}

proptest! {
    /// The two Bernoulli fillers behind the RNG-contract sampler are
    /// statistically equivalent: for any density `q`, the word-parallel
    /// path and the geometric-skip path both realize per-bit marginal
    /// Bernoulli(q). Contract v2 may therefore pick between them from the
    /// mechanism parameters alone — the choice moves which stream the
    /// bits come from, never their distribution.
    #[test]
    fn wordwise_and_geometric_fillers_share_the_bernoulli_marginal(
        q in 0.005f64..0.6,
        seed in any::<u64>(),
    ) {
        const LEN: usize = 4096;
        const TRIALS: usize = 32;
        let mean_of = |wordwise: bool| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ones = 0u64;
            let mut v = BitVec::zeros(LEN);
            for _ in 0..TRIALS {
                if wordwise {
                    v.fill_bernoulli_wordwise(q, &mut rng);
                } else {
                    v.fill_bernoulli(q, &mut rng);
                }
                ones += v.count_ones() as u64;
            }
            ones as f64 / (LEN * TRIALS) as f64
        };
        let n = (LEN * TRIALS) as f64;
        // Six standard deviations of the empirical mean: a per-case false
        // alarm rate around 1e-9, so the suite stays deterministic-green.
        let tol = 6.0 * (q * (1.0 - q) / n).sqrt();
        let (wordwise, geometric) = (mean_of(true), mean_of(false));
        prop_assert!((wordwise - q).abs() < tol, "wordwise {wordwise} vs q {q}");
        prop_assert!((geometric - q).abs() < tol, "geometric {geometric} vs q {q}");
        prop_assert!((wordwise - geometric).abs() < 2.0 * tol,
            "fillers disagree: {wordwise} vs {geometric} at q {q}");
    }
}

proptest! {
    /// Stochastic rounding reports are always ±1 and calibration maps them
    /// to ±(e^ε+1)/(e^ε−1).
    #[test]
    fn sr_outputs_are_calibrated_bits(eps in 0.1f64..8.0, v in -1.0f64..1.0, seed in any::<u64>()) {
        let m = mcim_oracles::StochasticRounding::new(Eps::new(eps).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let raw = m.privatize(v, &mut rng).unwrap();
            prop_assert!(raw == 1.0 || raw == -1.0);
            let cal = m.calibrate(raw);
            prop_assert!((cal.abs() - (eps.exp() + 1.0) / (eps.exp() - 1.0)).abs() < 1e-9);
        }
    }

    /// Piecewise reports always stay within the mechanism's output bound.
    #[test]
    fn pm_outputs_bounded(eps in 0.1f64..8.0, v in -1.0f64..1.0, seed in any::<u64>()) {
        let m = mcim_oracles::Piecewise::new(Eps::new(eps).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let out = m.privatize(v, &mut rng).unwrap();
            prop_assert!(out.abs() <= m.output_bound() + 1e-9);
            prop_assert!(out.is_finite());
        }
    }

    /// CMS reports have a fixed, domain-independent shape and estimates are
    /// finite for any absorbed stream.
    #[test]
    fn cms_shape_and_finiteness(
        d in 10u32..100_000,
        rows in 1u32..8,
        width in 2u32..128,
        seed in any::<u64>(),
        n in 1usize..100,
    ) {
        let sketch = mcim_oracles::CountMeanSketch::new(
            Eps::new(1.0).unwrap(), d, rows, width, seed,
        ).unwrap();
        let mut agg = mcim_oracles::CmsAggregator::new(&sketch);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let item = (i as u32).wrapping_mul(2_654_435_761) % d;
            let report = sketch.privatize(item, &mut rng).unwrap();
            prop_assert!(report.row < rows);
            prop_assert_eq!(report.bits.len(), width as usize);
            agg.absorb(&report).unwrap();
        }
        prop_assert!(agg.estimate(0).unwrap().is_finite());
        prop_assert!(agg.estimate(d - 1).unwrap().is_finite());
    }
}
