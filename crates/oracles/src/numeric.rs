//! Numerical-value mechanisms: stochastic rounding and the piecewise
//! mechanism.
//!
//! The paper's future work (§IX) names "multi-class item mining on more
//! data types, such as numerical items". These are the two standard
//! single-value LDP primitives for mean estimation over `[-1, 1]`, used by
//! `mcim_core::mean` for the multi-class extension:
//!
//! * [`StochasticRounding`] (Duchi et al.): the value is rounded to ±1 with
//!   value-dependent probability, then kept/flipped à la randomized
//!   response. Output is one bit; unbiased after calibration.
//! * [`Piecewise`] (Wang et al., ICDE 2019): outputs a real number in
//!   `[-s, s]`; lower variance than SR for ε ≳ 1.29.

use rand::Rng;

use crate::{Eps, Error, Result};

/// Stochastic rounding / one-bit mean estimation over `[-1, 1]`.
///
/// Encoding: emit `+1` with probability `(1+v)/2`, else `-1`; the bit is
/// then flipped with the randomized-response probability `1/(e^ε+1)`.
/// Calibration divides by `(e^ε−1)/(e^ε+1)`, making each report an
/// unbiased estimate of `v` with variance ≤ `((e^ε+1)/(e^ε−1))²`.
#[derive(Debug, Clone)]
pub struct StochasticRounding {
    eps: Eps,
    keep: f64,
    scale: f64,
}

impl StochasticRounding {
    /// Creates the mechanism.
    pub fn new(eps: Eps) -> Self {
        let e = eps.exp();
        StochasticRounding {
            eps,
            keep: e / (e + 1.0),
            scale: (e + 1.0) / (e - 1.0),
        }
    }

    /// The privacy budget.
    #[inline]
    pub fn eps(&self) -> Eps {
        self.eps
    }

    /// Privatizes `v ∈ [-1, 1]`; the output is ±1.
    pub fn privatize<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> Result<f64> {
        if !(-1.0..=1.0).contains(&v) || !v.is_finite() {
            return Err(Error::InvalidParameter {
                name: "value",
                constraint: "value must lie in [-1, 1]",
            });
        }
        let rounded = if rng.random_bool((1.0 + v) / 2.0) {
            1.0
        } else {
            -1.0
        };
        let kept = if rng.random_bool(self.keep) {
            rounded
        } else {
            -rounded
        };
        Ok(kept)
    }

    /// Unbiased per-report estimate: `report × (e^ε+1)/(e^ε−1)`.
    #[inline]
    pub fn calibrate(&self, report: f64) -> f64 {
        report * self.scale
    }

    /// Report size in bits.
    #[inline]
    pub fn report_bits(&self) -> usize {
        1
    }

    /// Worst-case variance of a calibrated report (at `v = 0`).
    pub fn variance_bound(&self) -> f64 {
        self.scale * self.scale
    }
}

/// The piecewise mechanism over `[-1, 1]` (already unbiased — no separate
/// calibration step).
#[derive(Debug, Clone)]
pub struct Piecewise {
    eps: Eps,
    /// Output range bound `s = (e^{ε/2}+1)/(e^{ε/2}−1)`.
    s: f64,
}

impl Piecewise {
    /// Creates the mechanism.
    pub fn new(eps: Eps) -> Self {
        let half = (eps.value() / 2.0).exp();
        Piecewise {
            eps,
            s: (half + 1.0) / (half - 1.0),
        }
    }

    /// The privacy budget.
    #[inline]
    pub fn eps(&self) -> Eps {
        self.eps
    }

    /// The output bound `s` (reports lie in `[-s, s]`).
    #[inline]
    pub fn output_bound(&self) -> f64 {
        self.s
    }

    /// Privatizes `v ∈ [-1, 1]`. The output is an unbiased estimate of `v`
    /// supported on `[-s, s]`.
    pub fn privatize<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> Result<f64> {
        if !(-1.0..=1.0).contains(&v) || !v.is_finite() {
            return Err(Error::InvalidParameter {
                name: "value",
                constraint: "value must lie in [-1, 1]",
            });
        }
        let half = (self.eps.value() / 2.0).exp();
        let s = self.s;
        // With probability e^{ε/2}/(e^{ε/2}+1) sample uniformly from the
        // high-density interval [l(v), r(v)]; otherwise uniformly from the
        // complement of [-s, s].
        let l = (s + 1.0) / 2.0 * v - (s - 1.0) / 2.0;
        let r = l + s - 1.0;
        if rng.random_bool(half / (half + 1.0)) {
            Ok(rng.random_range(l..=r))
        } else {
            // Complement has total length (s+1); pick left or right part
            // proportionally to length.
            let left_len = l + s;
            let right_len = s - r;
            let total = left_len + right_len;
            if rng.random_bool((left_len / total).clamp(0.0, 1.0)) {
                Ok(rng.random_range(-s..=l))
            } else {
                Ok(rng.random_range(r..=s))
            }
        }
    }

    /// Report size in bits (a 64-bit float).
    #[inline]
    pub fn report_bits(&self) -> usize {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn sr_rejects_out_of_range() {
        let m = StochasticRounding::new(eps(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.privatize(1.5, &mut rng).is_err());
        assert!(m.privatize(f64::NAN, &mut rng).is_err());
        assert!(m.privatize(-1.0, &mut rng).is_ok());
    }

    #[test]
    fn sr_is_unbiased() {
        let m = StochasticRounding::new(eps(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        for v in [-0.8, -0.2, 0.0, 0.5, 1.0] {
            let n = 200_000;
            let mut sum = 0.0;
            for _ in 0..n {
                sum += m.calibrate(m.privatize(v, &mut rng).unwrap());
            }
            let mean = sum / n as f64;
            assert!((mean - v).abs() < 0.02, "v={v} mean={mean}");
        }
    }

    #[test]
    fn sr_satisfies_ldp() {
        // Two outputs only; worst ratio over inputs must be ≤ e^ε.
        // P(+1 | v) = (1+v)/2·keep + (1−v)/2·(1−keep), extremal at v = ±1.
        let e = 1.3;
        let m = StochasticRounding::new(eps(e));
        let p_plus_given = |v: f64| (1.0 + v) / 2.0 * m.keep + (1.0 - v) / 2.0 * (1.0 - m.keep);
        let worst = p_plus_given(1.0) / p_plus_given(-1.0);
        assert!(worst <= e.exp() * (1.0 + 1e-9), "ratio {worst}");
        assert!(worst >= e.exp() * (1.0 - 1e-9), "SR bound is tight");
    }

    #[test]
    fn pm_is_unbiased_and_bounded() {
        let m = Piecewise::new(eps(2.0));
        let mut rng = StdRng::seed_from_u64(2);
        for v in [-0.9, 0.0, 0.3, 0.9] {
            let n = 200_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let out = m.privatize(v, &mut rng).unwrap();
                assert!(out.abs() <= m.output_bound() + 1e-9, "out {out}");
                sum += out;
            }
            let mean = sum / n as f64;
            assert!((mean - v).abs() < 0.02, "v={v} mean={mean}");
        }
    }

    #[test]
    fn pm_beats_sr_variance_at_high_eps() {
        // The known crossover: PM has lower variance for larger ε.
        let e = eps(3.0);
        let (sr, pm) = (StochasticRounding::new(e), Piecewise::new(e));
        let mut rng = StdRng::seed_from_u64(3);
        let v = 0.2;
        let n = 100_000;
        let var = |outs: Vec<f64>| {
            let mean = outs.iter().sum::<f64>() / outs.len() as f64;
            outs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / outs.len() as f64
        };
        let sr_outs: Vec<f64> = (0..n)
            .map(|_| sr.calibrate(sr.privatize(v, &mut rng).unwrap()))
            .collect();
        let pm_outs: Vec<f64> = (0..n).map(|_| pm.privatize(v, &mut rng).unwrap()).collect();
        assert!(var(pm_outs) < var(sr_outs), "PM should win at ε = 3");
    }

    #[test]
    fn report_sizes() {
        assert_eq!(StochasticRounding::new(eps(1.0)).report_bits(), 1);
        assert_eq!(Piecewise::new(eps(1.0)).report_bits(), 64);
    }
}
