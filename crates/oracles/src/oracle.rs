//! The unified oracle interface and server-side aggregation.
//!
//! The paper's frameworks are generic over "an LDP mechanism" chosen
//! adaptively by domain size (GRR for small domains, OUE for large — Wang et
//! al.'s rule `d < 3e^ε + 2`, quoted verbatim in §VII-D). [`Oracle`] is that
//! closed sum of mechanisms, and [`Aggregator`] is the matching streaming
//! server state: reports are absorbed one by one so the server never holds
//! all raw reports in memory.

use rand::Rng;

use crate::calibrate::unbiased_count;
use crate::colsum::ColumnCounter;
use crate::{parallel, stream, BitVec, Eps, Error, Grr, Olh, OlhReport, Result, UnaryEncoding};

/// A frequency oracle: one of the concrete LDP mechanisms.
#[derive(Debug, Clone)]
pub enum Oracle {
    /// Generalized random response.
    Grr(Grr),
    /// Unary encoding (SUE or OUE).
    Ue(UnaryEncoding),
    /// Optimal local hashing.
    Olh(Olh),
}

/// A single privatized report, matching the oracle that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum Report {
    /// GRR output value.
    Value(u32),
    /// Unary-encoded perturbed bits.
    Bits(BitVec),
    /// OLH seed + perturbed hash.
    Hashed(OlhReport),
}

impl Report {
    /// Communication cost of this report in bits.
    pub fn size_bits(&self) -> usize {
        match self {
            Report::Value(_) => 32,
            Report::Bits(b) => b.len(),
            Report::Hashed(_) => 64 + 32,
        }
    }
}

impl Oracle {
    /// The adaptive mechanism of Wang et al.: GRR iff `d < 3e^ε + 2`,
    /// otherwise OUE. This is the oracle the paper plugs into HEC and PTJ.
    pub fn adaptive(eps: Eps, d: u32) -> Result<Self> {
        if (d as f64) < 3.0 * eps.exp() + 2.0 {
            Ok(Oracle::Grr(Grr::new(eps, d)?))
        } else {
            Ok(Oracle::Ue(UnaryEncoding::optimized(eps, d)?))
        }
    }

    /// Forces GRR.
    pub fn grr(eps: Eps, d: u32) -> Result<Self> {
        Ok(Oracle::Grr(Grr::new(eps, d)?))
    }

    /// Forces OUE.
    pub fn oue(eps: Eps, d: u32) -> Result<Self> {
        Ok(Oracle::Ue(UnaryEncoding::optimized(eps, d)?))
    }

    /// Forces OLH.
    pub fn olh(eps: Eps, d: u32) -> Result<Self> {
        Ok(Oracle::Olh(Olh::new(eps, d)?))
    }

    /// Domain size `d`.
    pub fn domain_size(&self) -> u32 {
        match self {
            Oracle::Grr(m) => m.domain_size(),
            Oracle::Ue(m) => m.domain_size(),
            Oracle::Olh(m) => m.domain_size(),
        }
    }

    /// Probability the true signal survives ("support p").
    pub fn p(&self) -> f64 {
        match self {
            Oracle::Grr(m) => m.p(),
            Oracle::Ue(m) => m.p(),
            Oracle::Olh(m) => m.support_p(),
        }
    }

    /// Probability an unrelated value is supported ("support q").
    pub fn q(&self) -> f64 {
        match self {
            Oracle::Grr(m) => m.q(),
            Oracle::Ue(m) => m.q(),
            Oracle::Olh(m) => m.support_q(),
        }
    }

    /// Per-user report size in bits.
    pub fn report_bits(&self) -> usize {
        match self {
            Oracle::Grr(m) => m.report_bits(),
            Oracle::Ue(m) => m.report_bits(),
            Oracle::Olh(m) => m.report_bits(),
        }
    }

    /// Privatizes a single value.
    pub fn privatize<R: Rng + ?Sized>(&self, v: u32, rng: &mut R) -> Result<Report> {
        match self {
            Oracle::Grr(m) => Ok(Report::Value(m.perturb(v, rng)?)),
            Oracle::Ue(m) => Ok(Report::Bits(m.privatize(v, rng)?)),
            Oracle::Olh(m) => Ok(Report::Hashed(m.privatize(v, rng)?)),
        }
    }

    /// Privatizes a batch of values on up to `threads` workers.
    ///
    /// Values are split into fixed [`parallel::SHARD_SIZE`] shards; shard
    /// `s` is privatized sequentially with the deterministic RNG
    /// [`parallel::shard_rng`]`(base_seed, s)`, and workers write into
    /// preallocated disjoint output slices (no per-shard `Vec`, no result
    /// flattening). The output is a pure function of
    /// `(self, values, base_seed)` — any thread count produces
    /// bit-identical reports.
    ///
    /// Every shard privatizes exactly as a per-report [`Oracle::privatize`]
    /// loop would: under RNG-contract v2 the unary-encoding sampler draws
    /// its noise planes word-parallel for dense `q` on *every* entry point
    /// ([`UnaryEncoding::privatize`] and
    /// [`crate::UnaryEncoding::privatize_into`] consume the RNG stream
    /// identically), so the batch output needs no UE special case to match
    /// the sequential stream bit-for-bit.
    pub fn privatize_batch(
        &self,
        values: &[u32],
        base_seed: u64,
        threads: usize,
    ) -> Result<Vec<Report>> {
        parallel::try_fill_shards(values, threads, |shard, chunk, slots| {
            let mut rng = parallel::shard_rng(base_seed, shard);
            for (&v, slot) in chunk.iter().zip(slots.iter_mut()) {
                *slot = Some(self.privatize(v, &mut rng)?);
            }
            Ok(())
        })
    }

    /// Short name for logs and benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            Oracle::Grr(_) => "GRR",
            Oracle::Ue(m) => match m.kind() {
                crate::ue::UeKind::Optimized => "OUE",
                crate::ue::UeKind::Symmetric => "SUE",
            },
            Oracle::Olh(_) => "OLH",
        }
    }
}

/// Streaming server-side aggregation for one oracle.
///
/// Counts supports per domain value; [`Aggregator::estimate`] applies the
/// unbiased calibration `(c − n·q)/(p − q)`.
#[derive(Debug, Clone)]
pub struct Aggregator {
    oracle: Oracle,
    counts: Vec<u64>,
    n: u64,
}

impl Aggregator {
    /// Creates an empty aggregator for `oracle`.
    pub fn new(oracle: &Oracle) -> Self {
        Aggregator {
            oracle: oracle.clone(),
            counts: vec![0; oracle.domain_size() as usize],
            n: 0,
        }
    }

    /// Absorbs one report.
    pub fn absorb(&mut self, report: &Report) -> Result<()> {
        match (&self.oracle, report) {
            (Oracle::Grr(_), Report::Value(v)) => {
                let idx = *v as usize;
                if idx >= self.counts.len() {
                    return Err(Error::ValueOutOfDomain {
                        value: *v as u64,
                        domain: self.counts.len() as u64,
                    });
                }
                self.counts[idx] += 1;
            }
            (Oracle::Ue(m), Report::Bits(bits)) => {
                if bits.len() != m.domain_size() as usize {
                    return Err(Error::ReportMismatch {
                        expected: "UE bits of the aggregator's domain length",
                    });
                }
                bits.count_ones_into(&mut self.counts);
            }
            (Oracle::Olh(m), Report::Hashed(r)) => {
                // O(d) per report: OLH's documented server cost (with the
                // seed state hoisted out of the domain scan).
                m.support_counts_into(r, &mut self.counts);
            }
            _ => {
                return Err(Error::ReportMismatch {
                    expected: "report variant matching the aggregator's oracle",
                })
            }
        }
        self.n += 1;
        Ok(())
    }

    /// Absorbs a whole block of reports through the word-parallel runtime.
    ///
    /// Unary-encoding reports go through a [`ColumnCounter`] (bit-sliced
    /// vertical popcount) instead of per-bit counter increments; GRR and
    /// OLH reports take their per-report paths. Counts are exactly the
    /// ones `reports.iter().map(|r| self.absorb(r))` would produce.
    ///
    /// If any report is invalid an error is returned and the aggregator is
    /// left partially updated (the run is not transactional).
    pub fn absorb_all<'a, I>(&mut self, reports: I) -> Result<()>
    where
        I: IntoIterator<Item = &'a Report>,
    {
        if let Oracle::Ue(m) = &self.oracle {
            let d = m.domain_size() as usize;
            let mut cc = ColumnCounter::new(d);
            let mut outcome = Ok(());
            for report in reports {
                match report {
                    Report::Bits(bits) if bits.len() == d => cc.add(bits.words()),
                    Report::Bits(_) => {
                        outcome = Err(Error::ReportMismatch {
                            expected: "UE bits of the aggregator's domain length",
                        });
                        break;
                    }
                    _ => {
                        outcome = Err(Error::ReportMismatch {
                            expected: "report variant matching the aggregator's oracle",
                        });
                        break;
                    }
                }
            }
            self.n += cc.rows();
            cc.drain_into(&mut self.counts);
            return outcome;
        }
        if let Oracle::Olh(m) = &self.oracle {
            // OLH blocks scatter four reports' candidate matches per
            // domain scan (hoisted seed states, one counter write per
            // value per quad) — exact u64 sums, identical to the
            // per-report path.
            let iter = reports.into_iter();
            let mut hashed = Vec::with_capacity(iter.size_hint().0);
            let mut outcome = Ok(());
            for report in iter {
                match report {
                    Report::Hashed(r) => hashed.push(*r),
                    _ => {
                        outcome = Err(Error::ReportMismatch {
                            expected: "report variant matching the aggregator's oracle",
                        });
                        break;
                    }
                }
            }
            m.support_counts_block_into(&hashed, &mut self.counts);
            self.n += hashed.len() as u64;
            return outcome;
        }
        for report in reports {
            self.absorb(report)?;
        }
        Ok(())
    }

    /// [`Aggregator::absorb_all`] sharded across up to `threads` workers.
    ///
    /// Each shard aggregates into its own counter block; the per-shard
    /// `u64` sums are then merged in shard order, so the final counts are
    /// bit-identical for every thread count.
    pub fn absorb_batch(&mut self, reports: &[Report], threads: usize) -> Result<()> {
        if threads.max(1) == 1 || reports.len() <= parallel::SHARD_SIZE {
            return self.absorb_all(reports);
        }
        let oracle = self.oracle.clone();
        let shards = parallel::map_shards(reports, threads, |_, chunk| {
            let mut local = Aggregator::new(&oracle);
            local.absorb_all(chunk).map(|()| local)
        });
        for shard in shards {
            self.merge(&shard?)?;
        }
        Ok(())
    }

    /// Absorbs every report pulled from `source` in bounded chunks —
    /// [`Aggregator::absorb_batch`] without the materialized slice.
    ///
    /// Memory stays `O(chunk + threads × shard)` regardless of the stream
    /// length, and the final counts are bit-identical to `absorb_batch`
    /// over the same reports for every chunk size and thread count
    /// (absorption is a counter sum — associative and commutative).
    pub fn absorb_stream<S>(&mut self, source: &mut S, config: stream::StreamConfig) -> Result<()>
    where
        S: stream::ReportSource<Item = Report>,
    {
        let template = Aggregator::new(&self.oracle);
        let merged = stream::absorb_stream_with(
            source,
            config,
            &template,
            |agg: &mut Aggregator, chunk| agg.absorb_all(chunk),
            |a, b| a.merge(b),
        )?;
        self.merge(&merged)
    }

    /// The oracle this aggregator matches.
    #[inline]
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Number of absorbed reports.
    #[inline]
    pub fn report_count(&self) -> u64 {
        self.n
    }

    /// Raw (uncalibrated) support counts.
    pub fn raw_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Unbiased frequency estimates for every domain value.
    pub fn estimate(&self) -> Vec<f64> {
        let n = self.n as f64;
        let (p, q) = (self.oracle.p(), self.oracle.q());
        self.counts
            .iter()
            .map(|&c| unbiased_count(c as f64, n, p, q))
            .collect()
    }

    /// Merges another aggregator over the same oracle (for sharded
    /// aggregation across threads).
    pub fn merge(&mut self, other: &Aggregator) -> Result<()> {
        if self.counts.len() != other.counts.len() {
            return Err(Error::ReportMismatch {
                expected: "aggregator with identical domain",
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
        Ok(())
    }
}

/// Partial state for the distributed reducer: the support counters and the
/// report tally. The oracle configuration never travels — a decoded
/// partial loads into a clone of the stage's template, which rejects
/// mismatched domain sizes.
impl crate::wire::WireState for Aggregator {
    fn save(&self, buf: &mut Vec<u8>) {
        self.counts.save(buf);
        self.n.save(buf);
    }

    fn load(&mut self, r: &mut crate::wire::WireReader<'_>) -> Result<()> {
        self.counts.load(r)?;
        self.n.load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn adaptive_rule_matches_paper() {
        // d < 3e^ε + 2 → GRR, else OUE.
        let e = 1.0f64;
        let threshold = 3.0 * e.exp() + 2.0; // ≈ 10.15
        let small = Oracle::adaptive(eps(e), 10).unwrap();
        let large = Oracle::adaptive(eps(e), 11).unwrap();
        assert_eq!(small.name(), "GRR", "d=10 < {threshold}");
        assert_eq!(large.name(), "OUE", "d=11 > {threshold}");
    }

    #[test]
    fn grr_roundtrip_estimation() {
        let oracle = Oracle::grr(eps(2.0), 6).unwrap();
        let mut agg = Aggregator::new(&oracle);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 30_000;
        for u in 0..n {
            let item = (u % 3) as u32; // uniform over {0,1,2}
            agg.absorb(&oracle.privatize(item, &mut rng).unwrap())
                .unwrap();
        }
        let est = agg.estimate();
        for (v, e) in est.iter().enumerate() {
            let expected = if v < 3 { n as f64 / 3.0 } else { 0.0 };
            assert!((e - expected).abs() < 0.05 * n as f64, "v={v} est={e}");
        }
    }

    #[test]
    fn oue_roundtrip_estimation() {
        let oracle = Oracle::oue(eps(1.0), 128).unwrap();
        let mut agg = Aggregator::new(&oracle);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 30_000;
        for _ in 0..n {
            agg.absorb(&oracle.privatize(100, &mut rng).unwrap())
                .unwrap();
        }
        let est = agg.estimate();
        assert!((est[100] - n as f64).abs() < 0.05 * n as f64);
        assert!(est[0].abs() < 0.05 * n as f64);
    }

    #[test]
    fn olh_roundtrip_estimation() {
        let oracle = Oracle::olh(eps(2.0), 32).unwrap();
        let mut agg = Aggregator::new(&oracle);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 30_000;
        for _ in 0..n {
            agg.absorb(&oracle.privatize(9, &mut rng).unwrap()).unwrap();
        }
        let est = agg.estimate();
        assert!(
            (est[9] - n as f64).abs() < 0.06 * n as f64,
            "est={}",
            est[9]
        );
    }

    #[test]
    fn privatize_batch_is_thread_count_invariant_and_shard_equivalent() {
        for oracle in [
            Oracle::grr(eps(1.0), 6).unwrap(),
            Oracle::oue(eps(1.0), 130).unwrap(),
            Oracle::olh(eps(2.0), 40).unwrap(),
        ] {
            let d = oracle.domain_size();
            let values: Vec<u32> = (0..9000).map(|u| u % d).collect();
            let base = 0xFEED;
            let seq = oracle.privatize_batch(&values, base, 1).unwrap();
            for threads in [2, 4] {
                assert_eq!(
                    oracle.privatize_batch(&values, base, threads).unwrap(),
                    seq,
                    "{} threads={threads}",
                    oracle.name()
                );
            }
            // The documented contract: shard s is privatized sequentially
            // with parallel::shard_rng(base, s) through the plain
            // per-report privatize loop — for every mechanism, including
            // unary encoding (contract v2 shares one sampler stream).
            let mut reference = Vec::new();
            for (s, chunk) in values.chunks(parallel::SHARD_SIZE).enumerate() {
                let mut rng = parallel::shard_rng(base, s as u64);
                for &v in chunk {
                    reference.push(oracle.privatize(v, &mut rng).unwrap());
                }
            }
            assert_eq!(seq, reference, "{}", oracle.name());
        }
    }

    #[test]
    fn privatize_batch_bulk_sampler_matches_oue_rates() {
        // The word-parallel noise plane must reproduce (p, q) exactly like
        // the per-report path: check empirical bit rates on batch output.
        let oracle = Oracle::oue(eps(1.0), 128).unwrap();
        let n = 20_000u32;
        let values: Vec<u32> = (0..n).map(|_| 7).collect();
        let reports = oracle.privatize_batch(&values, 99, 4).unwrap();
        let mut hot = 0usize;
        let mut cold = 0usize;
        for r in &reports {
            let Report::Bits(bits) = r else {
                panic!("OUE emits bit reports")
            };
            hot += usize::from(bits.get(7));
            cold += bits.count_ones() - usize::from(bits.get(7));
        }
        let p_hat = hot as f64 / n as f64;
        let q_hat = cold as f64 / (n as usize * 127) as f64;
        assert!((p_hat - oracle.p()).abs() < 0.02, "p_hat={p_hat}");
        assert!((q_hat - oracle.q()).abs() < 0.005, "q_hat={q_hat}");
    }

    #[test]
    fn absorb_batch_matches_sequential_absorb() {
        for oracle in [
            Oracle::grr(eps(1.0), 6).unwrap(),
            Oracle::oue(eps(1.0), 200).unwrap(),
            Oracle::olh(eps(2.0), 32).unwrap(),
        ] {
            let d = oracle.domain_size();
            let values: Vec<u32> = (0..9000).map(|u| (u * 7) % d).collect();
            let reports = oracle.privatize_batch(&values, 5, 1).unwrap();
            let mut seq = Aggregator::new(&oracle);
            for r in &reports {
                seq.absorb(r).unwrap();
            }
            for threads in [1, 2, 8] {
                let mut batch = Aggregator::new(&oracle);
                batch.absorb_batch(&reports, threads).unwrap();
                assert_eq!(batch.raw_counts(), seq.raw_counts(), "threads={threads}");
                assert_eq!(batch.report_count(), seq.report_count());
                assert_eq!(batch.estimate(), seq.estimate(), "{}", oracle.name());
            }
        }
    }

    #[test]
    fn absorb_all_rejects_bad_reports_in_ue_block() {
        let oracle = Oracle::oue(eps(1.0), 64).unwrap();
        let mut agg = Aggregator::new(&oracle);
        let good = Report::Bits(BitVec::one_hot(64, 3));
        let bad = Report::Bits(BitVec::zeros(63));
        assert!(agg.absorb_all([&good, &bad, &good]).is_err());
        assert!(
            agg.absorb_all([&good, &Report::Value(0)]).is_err(),
            "variant mismatch detected"
        );
    }

    #[test]
    fn mismatched_report_rejected() {
        let oracle = Oracle::grr(eps(1.0), 4).unwrap();
        let mut agg = Aggregator::new(&oracle);
        let err = agg.absorb(&Report::Bits(BitVec::zeros(4))).unwrap_err();
        assert!(matches!(err, Error::ReportMismatch { .. }));
    }

    #[test]
    fn merge_combines_counts() {
        let oracle = Oracle::grr(eps(1.0), 4).unwrap();
        let mut a = Aggregator::new(&oracle);
        let mut b = Aggregator::new(&oracle);
        a.absorb(&Report::Value(1)).unwrap();
        b.absorb(&Report::Value(1)).unwrap();
        b.absorb(&Report::Value(2)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.report_count(), 3);
        assert_eq!(a.raw_counts(), &[0, 2, 1, 0]);
    }

    #[test]
    fn report_sizes() {
        assert_eq!(
            Oracle::oue(eps(1.0), 100).unwrap().report_bits(),
            100,
            "OUE sends one bit per item"
        );
        assert!(Oracle::grr(eps(1.0), 100).unwrap().report_bits() <= 7 + 1);
    }
}
