//! Execution plans: one configurable front-end for every pipeline.
//!
//! The workspace used to expose each pipeline three times —
//! `run`/`run_batch`/`run_stream`, `mine`/`mine_batch`/`mine_stream` —
//! with seeds, thread counts and chunk sizes threaded ad hoc through every
//! signature. This module collapses that surface into three pieces:
//!
//! * [`Exec`] — a declarative **execution plan**: the RNG seed, the worker
//!   budget, the ingestion chunk size and a
//!   [mode](ExecMode) (auto / sequential / batch / stream). Every pipeline
//!   takes one generic `execute`-style entry point that accepts an `Exec`
//!   plus a [`ReportSource`], instead of a method per mode.
//! * [`Stage`] — one bulk privatize+aggregate step expressed as an object
//!   instead of ad-hoc closures: a fold function over shard fragments, a
//!   merge of disjoint-range partials, and (for stages that can cross a
//!   process boundary) a serializable [`StageSpec`] plus wire codecs for
//!   its items and accumulator.
//! * [`Executor`] — the backend that actually drives a stage over a
//!   source. The in-process implementation ([`InProcess`]) wraps the
//!   existing [`fold_stream`] / [`crate::parallel`] machinery; the
//!   `mcim-dist` crate's `Coordinator` implements the same trait by
//!   shipping the stage spec and report chunks to socket-connected worker
//!   processes and merging their serialized partials — without touching
//!   any pipeline caller.
//!
//! ## Mode semantics
//!
//! | mode | machinery | output |
//! |---|---|---|
//! | `Sequential` | sharded deterministic runtime pinned to 1 worker | bit-identical to every other mode |
//! | `Batch` | sharded deterministic runtime, input materialized | bit-identical to every other mode |
//! | `Stream` | sharded deterministic runtime, bounded chunks | bit-identical to every other mode |
//! | `Auto` | resolves to `Stream` | bit-identical to every other mode |
//!
//! Under [RNG-contract v2](RngContract) **every mode is one code path**:
//! the chunked executor over absolute [`parallel::SHARD_SIZE`] shards,
//! each shard privatized with its deterministic
//! [`parallel::shard_rng`]`(stage_seed, shard)` stream. Mode only chooses
//! the resource envelope — `Sequential` pins one worker, `Batch` pulls the
//! whole source into a single chunk, `Stream` holds
//! `O(chunk + threads × shard)` — so seed-equal plans produce bit-identical
//! results in all four modes (including the distributed backend, which
//! replays the same shard streams on worker processes). The historical v1
//! sequential stream (one caller `StdRng` over the whole input) is retired;
//! plans declaring [`RngContract::V1`] are refused with a migration hint.
//!
//! ```
//! use mcim_oracles::exec::Exec;
//!
//! // Deterministic sharded run: 4 workers, 64k-item chunks.
//! let plan = Exec::seeded(7).threads(4).chunk_size(65_536);
//! assert_eq!(plan.resolved_threads(), 4);
//! // threads never changes the output, only the wall clock.
//! ```

use std::fmt;
use std::marker::PhantomData;

use rand::rngs::StdRng;

use crate::parallel;
use crate::stream::{fold_stream, ReportSource, StreamConfig, DEFAULT_CHUNK_ITEMS};
use crate::wire::{StageSpec, Wire, WireReader, WireState};
use crate::Result;

/// How an [`Exec`] plan drives a pipeline. See the [module docs](self) for
/// the semantics table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Pick automatically; resolves to [`ExecMode::Stream`] (bounded
    /// memory, bit-identical to `Batch`).
    #[default]
    Auto,
    /// The sharded runtime pinned to a single worker thread — smallest
    /// footprint, bit-identical to every other mode under contract v2.
    Sequential,
    /// Sharded deterministic runtime over a fully materialized input.
    Batch,
    /// Sharded deterministic runtime over bounded chunks.
    Stream,
}

impl ExecMode {
    /// The concrete mode `Auto` resolves to.
    pub fn resolved(self) -> ExecMode {
        match self {
            ExecMode::Auto => ExecMode::Stream,
            other => other,
        }
    }

    /// Lower-case name used in plan displays and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Auto => "auto",
            ExecMode::Sequential => "sequential",
            ExecMode::Batch => "batch",
            ExecMode::Stream => "stream",
        }
    }
}

/// The versioned contract naming *which* seeded RNG streams the pipelines
/// draw their noise from.
///
/// A contract version pins, for a given `(stage_seed, shard)` pair, the
/// exact sequence of RNG draws every privatization path performs — it is
/// the thing the workspace's bit-identity nets actually test. Bumping it
/// is how seeded outputs are allowed to change: once, versioned, across
/// every execution mode together.
///
/// * **v1** (retired): unary encoding drew its noise planes through the
///   per-report geometric sampler on the sequential path but word-parallel
///   in `privatize_batch`, so the sequential stream was a *different*
///   stream from the sharded ones and pipelines were locked out of the
///   fast sampler. No v1 compatibility path survives; v1 plans are
///   refused with a migration hint.
/// * **v2** (current): every unary-encoding path — sequential, batch,
///   stream, distributed workers and their recovery replays — draws noise
///   planes through the same word-parallel sampler
///   ([`crate::BitVec::fill_bernoulli_wordwise`] above the density
///   cross-over) from the same `(stage_seed, shard)` stream, so all four
///   [`ExecMode`]s are bit-identical to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RngContract {
    /// The retired v1 streams (split sequential/batch sampling).
    V1,
    /// Word-parallel privatization end-to-end; the only supported
    /// contract.
    #[default]
    V2,
}

impl RngContract {
    /// The contract this build implements.
    pub const CURRENT: RngContract = RngContract::V2;
    /// The wire encoding of the current contract (what [`StageSpec`]s and
    /// dist Job frames carry).
    pub const CURRENT_VERSION: u32 = 2;

    /// Numeric version for wire frames and stage specs.
    pub fn version(self) -> u32 {
        match self {
            RngContract::V1 => 1,
            RngContract::V2 => 2,
        }
    }

    /// Lower-case name used in plan displays and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            RngContract::V1 => "v1",
            RngContract::V2 => "v2",
        }
    }

    /// The contract a numeric wire version names, if any.
    pub fn from_version(version: u32) -> Option<RngContract> {
        match version {
            1 => Some(RngContract::V1),
            2 => Some(RngContract::V2),
            _ => None,
        }
    }

    /// `Ok` iff this build can execute the contract. The v1 streams were
    /// deleted with the contract bump, so v1 plans are refused here rather
    /// than silently producing v2 output under a v1 label.
    pub fn validate(self) -> Result<()> {
        match self {
            RngContract::V2 => Ok(()),
            RngContract::V1 => Err(crate::Error::InvalidParameter {
                name: "rng-contract",
                constraint: "contract v1 (split sequential/batch UE sampling) is retired; \
                             re-derive pinned outputs under v2 — see the README section \
                             \"RNG contract\"",
            }),
        }
    }
}

impl fmt::Display for RngContract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative execution plan: seed, worker budget, chunk size and mode.
///
/// Built with a fluent builder; unset knobs resolve lazily (`threads` to
/// [`parallel::configured_threads`], `chunk_size` to
/// [`DEFAULT_CHUNK_ITEMS`]) so a plan constructed once can be reused on
/// machines with different core counts. Outputs of the sharded modes never
/// depend on `threads` or `chunk_size` — both knobs are purely about
/// latency and memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exec {
    mode: ExecMode,
    seed: u64,
    threads: Option<usize>,
    chunk_items: Option<usize>,
    contract: RngContract,
}

impl Default for Exec {
    fn default() -> Self {
        Exec::new()
    }
}

impl Exec {
    /// An [`ExecMode::Auto`] plan with seed 0 and lazily resolved knobs.
    pub fn new() -> Self {
        Exec {
            mode: ExecMode::Auto,
            seed: 0,
            threads: None,
            chunk_items: None,
            contract: RngContract::CURRENT,
        }
    }

    /// [`Exec::new`] with a base seed — the most common construction.
    pub fn seeded(seed: u64) -> Self {
        Exec::new().seed(seed)
    }

    /// A [`ExecMode::Sequential`] plan (historical caller-RNG semantics
    /// under `StdRng::seed_from_u64(seed)`).
    pub fn sequential() -> Self {
        Exec::new().mode(ExecMode::Sequential)
    }

    /// A [`ExecMode::Batch`] plan (sharded runtime, materialized input).
    pub fn batch() -> Self {
        Exec::new().mode(ExecMode::Batch)
    }

    /// A [`ExecMode::Stream`] plan (sharded runtime, bounded chunks).
    pub fn stream() -> Self {
        Exec::new().mode(ExecMode::Stream)
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the base RNG seed (default 0). Sharded modes derive one
    /// deterministic stream per absolute shard from it; sequential mode
    /// seeds its single `StdRng` with it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the worker threads of the sharded modes (default: the
    /// `MCIM_THREADS` environment variable, then the machine's available
    /// parallelism — [`parallel::configured_threads`]). Never changes
    /// outputs.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets the items pulled (and held) per ingestion chunk in
    /// [`ExecMode::Stream`] and [`ExecMode::Sequential`] (default
    /// [`DEFAULT_CHUNK_ITEMS`]). Ignored by `Batch` (whole input). Never
    /// changes outputs.
    pub fn chunk_size(mut self, chunk_items: usize) -> Self {
        self.chunk_items = Some(chunk_items.max(1));
        self
    }

    /// Declares the RNG contract this plan expects (default
    /// [`RngContract::CURRENT`]). Executors refuse to fold under a
    /// contract this build does not implement, so pinned v1 expectations
    /// fail loudly instead of silently reproducing v2 streams.
    pub fn rng_contract(mut self, contract: RngContract) -> Self {
        self.contract = contract;
        self
    }

    /// The declared mode.
    pub fn declared_mode(&self) -> ExecMode {
        self.mode
    }

    /// The concrete mode this plan runs in (`Auto` → `Stream`).
    pub fn resolved_mode(&self) -> ExecMode {
        self.mode.resolved()
    }

    /// Whether this plan runs the historical sequential path.
    pub fn is_sequential(&self) -> bool {
        self.resolved_mode() == ExecMode::Sequential
    }

    /// The base RNG seed.
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// The worker-thread cap this plan resolves to on this machine
    /// (always 1 for sequential plans).
    pub fn resolved_threads(&self) -> usize {
        if self.is_sequential() {
            return 1;
        }
        self.threads.unwrap_or_else(parallel::configured_threads)
    }

    /// The ingestion chunk size this plan resolves to.
    pub fn resolved_chunk_items(&self) -> usize {
        self.chunk_items.unwrap_or(DEFAULT_CHUNK_ITEMS).max(1)
    }

    /// The RNG contract this plan declares.
    pub fn resolved_contract(&self) -> RngContract {
        self.contract
    }

    /// `Ok` iff this build implements the plan's declared contract; the
    /// per-fold gate every executor applies before drawing any noise.
    pub fn validate_contract(&self) -> Result<()> {
        self.contract.validate()
    }

    /// The equivalent [`StreamConfig`] of the sharded modes.
    pub fn stream_config(&self) -> StreamConfig {
        StreamConfig::new(self.resolved_threads()).with_chunk_items(self.resolved_chunk_items())
    }

    /// The in-process [`Executor`] for this plan.
    pub fn in_process(&self) -> InProcess {
        InProcess { plan: *self }
    }
}

impl fmt::Display for Exec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mode={}",
            match self.mode {
                ExecMode::Auto => "stream(auto)".to_string(),
                other => other.name().to_string(),
            }
        )?;
        write!(f, " seed={}", self.seed)?;
        match self.threads {
            Some(t) => write!(f, " threads={t}")?,
            None => write!(f, " threads={}(auto)", self.resolved_threads())?,
        }
        if matches!(
            self.resolved_mode(),
            ExecMode::Stream | ExecMode::Sequential
        ) {
            match self.chunk_items {
                Some(c) => write!(f, " chunk={c}")?,
                None => write!(f, " chunk={}(default)", self.resolved_chunk_items())?,
            }
        }
        write!(f, " contract={}", self.contract)
    }
}

/// One bulk privatize+aggregate step of a pipeline, expressed as an object
/// a backend can drive — and, when [`Stage::spec`] is provided, ship to
/// another process.
///
/// A stage owns everything the fold needs besides the stream itself: the
/// mechanism, candidate index, calibration constants. Its associated types
/// carry the wire bounds the distributed backend needs — [`Wire`] on the
/// items so report chunks can cross a socket, [`WireState`] on the
/// accumulator so partials can come back. In-process execution ignores
/// both bounds; they are satisfied by trivial codecs for every stage in
/// the workspace.
///
/// The template returned by [`Stage::template`] must be a **merge
/// identity** (fresh counters, zero tallies): the executors seed every
/// worker-local accumulator with a clone of it, so any non-identity state
/// would be counted once per worker.
pub trait Stage: Sync {
    /// The stream item this stage consumes.
    type Item: Sync + Wire;
    /// The mergeable accumulator this stage folds into.
    type Acc: Clone + Send + WireState;

    /// A fresh (merge-identity) accumulator.
    fn template(&self) -> Self::Acc;

    /// Processes one shard fragment: a run of consecutive items within a
    /// single absolute shard, starting at stream position `abs`, with the
    /// shard's deterministic RNG positioned exactly where a sequential
    /// shard scan would have it.
    fn fold(
        &self,
        rng: &mut StdRng,
        abs: u64,
        items: &[Self::Item],
        acc: &mut Self::Acc,
    ) -> Result<()>;

    /// Combines two accumulators covering disjoint item ranges. Must be
    /// associative and commutative (counter sums are).
    fn merge(&self, into: &mut Self::Acc, from: &Self::Acc) -> Result<()>;

    /// The serialized descriptor a worker process can rebuild this stage
    /// from, or `None` if the stage only runs in-process (a distributed
    /// backend then falls back to local execution — the shard contract
    /// makes that bit-identical, just not remote).
    fn spec(&self) -> Option<StageSpec> {
        None
    }
}

/// Worker-side reconstruction of a [`Stage`] from its [`StageSpec`].
///
/// Implementations must uphold `Self::decode(spec.payload)` ≡ the stage
/// that produced `spec` — same fold, same merge, same template — so a
/// worker process replays exactly the computation the coordinator would
/// have run locally. The `mcim-dist` crate's registry maps
/// [`StageDecode::KIND`] to a monomorphized job runner per stage type.
pub trait StageDecode: Stage + Sized {
    /// Registry key; must equal the `kind` of every spec this stage emits.
    const KIND: &'static str;

    /// Rebuilds the stage from a spec payload.
    fn decode(payload: &mut WireReader<'_>) -> Result<Self>;
}

/// A [`Stage`] from plain closures — for callers that drive an executor
/// directly (tests, ad-hoc folds) without defining a named stage type.
/// Never distributable ([`Stage::spec`] is `None`).
pub struct FnStage<I, A, F, M> {
    template: A,
    fold: F,
    merge: M,
    _items: PhantomData<fn(&I)>,
}

impl<I, A, F, M> FnStage<I, A, F, M>
where
    I: Sync + Wire,
    A: Clone + Send + Sync + WireState,
    F: Fn(&mut StdRng, u64, &[I], &mut A) -> Result<()> + Sync,
    M: Fn(&mut A, &A) -> Result<()> + Sync,
{
    /// Wraps a template accumulator, a fold closure and a merge closure.
    pub fn new(template: A, fold: F, merge: M) -> Self {
        FnStage {
            template,
            fold,
            merge,
            _items: PhantomData,
        }
    }
}

impl<I, A, F, M> Stage for FnStage<I, A, F, M>
where
    I: Sync + Wire,
    A: Clone + Send + Sync + WireState,
    F: Fn(&mut StdRng, u64, &[I], &mut A) -> Result<()> + Sync,
    M: Fn(&mut A, &A) -> Result<()> + Sync,
{
    type Item = I;
    type Acc = A;

    fn template(&self) -> A {
        self.template.clone()
    }

    fn fold(&self, rng: &mut StdRng, abs: u64, items: &[I], acc: &mut A) -> Result<()> {
        (self.fold)(rng, abs, items, acc)
    }

    fn merge(&self, into: &mut A, from: &A) -> Result<()> {
        (self.merge)(into, from)
    }
}

/// The backend that drives a pipeline's bulk privatize+aggregate stages.
///
/// A stage run is a *fold*: pull items, process each absolute
/// [`parallel::SHARD_SIZE`] shard with its deterministic RNG stream
/// [`parallel::shard_rng`]`(stage_seed, shard)`, and merge the mergeable
/// accumulators. The contract an implementation must uphold so that every
/// backend produces **bit-identical** results:
///
/// * shard boundaries are absolute (item `i` belongs to shard
///   `i / SHARD_SIZE`), never dependent on workers, chunks or nodes;
/// * shard `s` is processed with `shard_rng(stage_seed, s)`, fragments of a
///   split shard continuing the carried RNG state in order;
/// * `merge` is only used to combine accumulators that cover disjoint item
///   ranges (it must be associative and commutative — counter sums are).
///
/// The in-process implementation is [`InProcess`]; the multi-process
/// implementation is the `mcim-dist` crate's `Coordinator`, which streams
/// report chunks to socket-connected worker processes that replay the same
/// per-shard RNG streams over their shard ranges and ship their partials
/// back. Both satisfy the contract by construction, which is what makes
/// this trait the multi-node seam: pipelines written against `Executor`
/// (e.g. `Framework::execute_on`) never change when the backend does.
pub trait Executor {
    /// The plan this executor resolves its knobs from.
    fn plan(&self) -> &Exec;

    /// Folds `source` through `stage` under the shard contract above,
    /// starting from a clone of the stage's template. `stage_seed` is the
    /// base seed of this stage's per-shard RNG streams — explicit (rather
    /// than always the plan seed) because multi-stage pipelines derive one
    /// seed per stage.
    fn fold<S, St>(&self, source: &mut S, stage_seed: u64, stage: &St) -> Result<St::Acc>
    where
        S: ReportSource<Item = St::Item>,
        St: Stage;

    /// Failure accounting for the most recent [`fold`](Executor::fold),
    /// when this backend tracks any — `None` for backends that cannot
    /// lose workers (the in-process executor). Recovery never changes a
    /// fold's *result* (the shard contract makes replays bit-identical),
    /// so this report is the only observable difference between a clean
    /// run and one that survived failures.
    fn last_fold_report(&self) -> Option<FoldReport> {
        None
    }
}

/// Per-fold failure accounting from a distributed [`Executor`] backend:
/// how many workers the fold started with, how many partials were merged,
/// what was lost, and where the orphaned shards were replayed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldReport {
    /// Worker connections at fold start.
    pub workers: usize,
    /// Workers whose primary partial was merged.
    pub workers_used: usize,
    /// Connections lost to transport failures during the fold.
    pub workers_lost: usize,
    /// Clean worker `Err` replies (stage failures, unknown stage kinds,
    /// undecodable partials) — the connection survived, the job did not.
    pub worker_errors: usize,
    /// Replay jobs re-routed to surviving workers.
    pub reroutes: u32,
    /// Shards replayed on surviving workers.
    pub rerouted_shards: u64,
    /// Shards replayed in-process as the last resort.
    pub local_shards: u64,
    /// Whether any part of the fold ran in-process (replayed shards, or
    /// the entire fold once every worker was gone).
    pub local_fallback: bool,
    /// Connect-time retries the backend needed (session-wide, not
    /// per-fold: connections are established once and reused).
    pub connect_retries: u32,
}

impl FoldReport {
    /// Whether the fold needed any recovery at all.
    pub fn degraded(&self) -> bool {
        self.workers_lost > 0 || self.worker_errors > 0 || self.local_fallback
    }

    /// Folds another per-fold report into this one, producing the
    /// session-cumulative view: failure counters add up, while
    /// `workers`, `workers_used` and `connect_retries` track the most
    /// recent fold (they describe state, not events).
    pub fn absorb(&mut self, other: &FoldReport) {
        self.workers = other.workers;
        self.workers_used = other.workers_used;
        self.connect_retries = other.connect_retries;
        self.workers_lost += other.workers_lost;
        self.worker_errors += other.worker_errors;
        self.reroutes += other.reroutes;
        self.rerouted_shards += other.rerouted_shards;
        self.local_shards += other.local_shards;
        self.local_fallback |= other.local_fallback;
    }
}

impl fmt::Display for FoldReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workers={} used={} lost={} errors={} reroutes={} rerouted_shards={} local_shards={}",
            self.workers,
            self.workers_used,
            self.workers_lost,
            self.worker_errors,
            self.reroutes,
            self.rerouted_shards,
            self.local_shards,
        )?;
        if self.local_fallback {
            write!(f, " local_fallback")?;
        }
        if self.connect_retries > 0 {
            write!(f, " connect_retries={}", self.connect_retries)?;
        }
        Ok(())
    }
}

/// The in-process [`Executor`]: scoped worker threads over this process's
/// cores, backed by [`fold_stream`] (which in turn reuses the
/// [`parallel`] shard runtime for full shards).
#[derive(Debug, Clone, Copy)]
pub struct InProcess {
    plan: Exec,
}

impl InProcess {
    /// An in-process executor for `plan` (equivalent to
    /// [`Exec::in_process`]).
    pub fn new(plan: &Exec) -> Self {
        InProcess { plan: *plan }
    }
}

impl Executor for InProcess {
    fn plan(&self) -> &Exec {
        &self.plan
    }

    fn fold<S, St>(&self, source: &mut S, stage_seed: u64, stage: &St) -> Result<St::Acc>
    where
        S: ReportSource<Item = St::Item>,
        St: Stage,
    {
        self.plan.validate_contract()?;
        let mut config = self.plan.stream_config();
        if self.plan.resolved_mode() == ExecMode::Batch {
            // Batch mode materializes: one chunk spanning the whole
            // (sized) source. Chunking never changes the result, only the
            // memory.
            config.chunk_items = source
                .size_hint()
                .and_then(|n| usize::try_from(n).ok())
                .unwrap_or(DEFAULT_CHUNK_ITEMS)
                .max(1);
        }
        // Per-stage wall time, labeled by the stage's registry kind
        // (ad-hoc `FnStage` folds have no spec and share one label).
        let span = mcim_obs::span_with(|| {
            let kind = stage.spec().map_or("adhoc", |spec| spec.kind);
            mcim_obs::labeled("mcim_stage_duration_seconds", &[("stage", kind)])
        });
        let acc = fold_stream(
            source,
            config,
            stage_seed,
            &stage.template(),
            |rng, abs, items, acc| stage.fold(rng, abs, items, acc),
            |a, b| stage.merge(a, b),
        )?;
        span.finish();
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SliceSource;
    use rand::RngCore;

    #[test]
    fn builder_and_resolution() {
        let plan = Exec::seeded(9).threads(3).chunk_size(100);
        assert_eq!(plan.base_seed(), 9);
        assert_eq!(plan.declared_mode(), ExecMode::Auto);
        assert_eq!(plan.resolved_mode(), ExecMode::Stream);
        assert_eq!(plan.resolved_threads(), 3);
        assert_eq!(plan.resolved_chunk_items(), 100);
        assert!(!plan.is_sequential());

        let seq = Exec::sequential().seed(1).threads(8);
        assert!(seq.is_sequential());
        assert_eq!(seq.resolved_threads(), 1, "sequential is single-threaded");

        // Zero clamps.
        let clamped = Exec::new().threads(0).chunk_size(0);
        assert_eq!(clamped.resolved_threads(), 1);
        assert_eq!(clamped.resolved_chunk_items(), 1);

        assert_eq!(Exec::default(), Exec::new());
        assert_eq!(ExecMode::Auto.resolved(), ExecMode::Stream);
        assert_eq!(ExecMode::Batch.resolved(), ExecMode::Batch);
    }

    /// Unset knobs resolve lazily: `threads` honors the `MCIM_THREADS`
    /// environment (the CI matrix sets it) falling back to the machine's
    /// parallelism, `chunk_size` falls back to the default chunk — and the
    /// explicit setters always win over both.
    #[test]
    fn lazy_knob_resolution_matches_environment() {
        let unset = Exec::new();
        assert_eq!(
            unset.resolved_threads(),
            parallel::configured_threads(),
            "unset threads resolve to MCIM_THREADS / available parallelism"
        );
        assert_eq!(unset.resolved_chunk_items(), DEFAULT_CHUNK_ITEMS);
        if let Ok(v) = std::env::var("MCIM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                assert_eq!(unset.resolved_threads(), n.max(1));
            }
        }
        // Explicit settings shadow the environment.
        assert_eq!(Exec::new().threads(3).resolved_threads(), 3);
        assert_eq!(Exec::new().chunk_size(99).resolved_chunk_items(), 99);
    }

    #[test]
    fn display_names_the_resolved_plan() {
        let shown = Exec::seeded(5).threads(2).chunk_size(64).to_string();
        assert!(shown.contains("mode=stream(auto)"), "{shown}");
        assert!(shown.contains("seed=5"), "{shown}");
        assert!(shown.contains("threads=2"), "{shown}");
        assert!(shown.contains("chunk=64"), "{shown}");
        assert!(shown.contains("contract=v2"), "{shown}");
        let batch = Exec::batch().to_string();
        assert!(batch.contains("mode=batch"), "{batch}");
        assert!(!batch.contains("chunk="), "batch hides the chunk: {batch}");
        assert!(batch.contains("contract=v2"), "{batch}");
    }

    /// Unset knobs display their lazily resolved values tagged as such, so
    /// `--verbose` output always names the effective configuration.
    #[test]
    fn display_marks_lazily_resolved_knobs() {
        let auto = Exec::seeded(1).to_string();
        assert!(
            auto.contains(&format!("threads={}(auto)", parallel::configured_threads())),
            "{auto}"
        );
        assert!(
            auto.contains(&format!("chunk={DEFAULT_CHUNK_ITEMS}(default)")),
            "{auto}"
        );
        let seq = Exec::sequential().to_string();
        assert!(seq.contains("mode=sequential"), "{seq}");
        assert!(seq.contains("threads=1(auto)"), "sequential pins 1: {seq}");
        assert!(
            seq.contains("chunk="),
            "sequential chunk-streams under v2: {seq}"
        );
        assert!(seq.contains("contract=v2"), "{seq}");
        let explicit = Exec::stream().threads(7).to_string();
        assert!(explicit.contains("threads=7"), "{explicit}");
        assert!(!explicit.contains("threads=7(auto)"), "{explicit}");
    }

    #[test]
    fn rng_contract_versions_round_trip() {
        assert_eq!(RngContract::CURRENT, RngContract::V2);
        assert_eq!(RngContract::CURRENT.version(), RngContract::CURRENT_VERSION);
        for contract in [RngContract::V1, RngContract::V2] {
            assert_eq!(
                RngContract::from_version(contract.version()),
                Some(contract)
            );
        }
        assert_eq!(RngContract::from_version(0), None);
        assert_eq!(RngContract::from_version(3), None);
        assert_eq!(RngContract::V1.name(), "v1");
        assert_eq!(RngContract::V2.to_string(), "v2");
        assert_eq!(Exec::new().resolved_contract(), RngContract::V2);
    }

    #[test]
    fn v1_plans_are_refused_with_a_migration_hint() {
        let plan = Exec::seeded(3).rng_contract(RngContract::V1);
        let err = plan.validate_contract().unwrap_err();
        let crate::Error::InvalidParameter { name, constraint } = &err else {
            panic!("expected InvalidParameter, got {err:?}");
        };
        assert_eq!(*name, "rng-contract");
        assert!(constraint.contains("v2"), "{constraint}");
        assert!(constraint.contains("RNG contract"), "{constraint}");

        // The gate fires on the executor, before any noise is drawn.
        let stage = sum_mix_stage();
        let folded = plan
            .in_process()
            .fold(&mut SliceSource::new(&[1u32, 2, 3]), 7, &stage);
        assert_eq!(folded.unwrap_err(), err);
        // Current-contract plans pass.
        Exec::seeded(3).validate_contract().unwrap();
    }

    #[allow(clippy::type_complexity)]
    fn sum_mix_stage() -> FnStage<
        u32,
        (u64, u64),
        impl Fn(&mut StdRng, u64, &[u32], &mut (u64, u64)) -> Result<()> + Sync,
        impl Fn(&mut (u64, u64), &(u64, u64)) -> Result<()> + Sync,
    > {
        FnStage::new(
            (0u64, 0u64),
            |rng, _abs, chunk: &[u32], acc: &mut (u64, u64)| {
                for &v in chunk {
                    acc.0 += v as u64;
                    acc.1 = acc.1.wrapping_add(rng.next_u64() ^ v as u64);
                }
                Ok(())
            },
            |a, b| {
                a.0 += b.0;
                a.1 = a.1.wrapping_add(b.1);
                Ok(())
            },
        )
    }

    /// The shard contract: sequential, batch and stream plans fold
    /// bit-identically, for every chunk size, and a sized batch fold
    /// materializes whole.
    #[test]
    fn in_process_fold_is_mode_and_chunk_invariant() {
        let items: Vec<u32> = (0..3 * parallel::SHARD_SIZE as u32 + 500).collect();
        let stage = sum_mix_stage();
        let fold = |plan: Exec| {
            plan.in_process()
                .fold(&mut SliceSource::new(&items), 77, &stage)
                .unwrap()
        };
        let reference = fold(Exec::batch().threads(1));
        for plan in [
            Exec::batch().threads(4),
            Exec::sequential(),
            Exec::sequential().chunk_size(parallel::SHARD_SIZE + 1),
            Exec::stream().threads(1),
            Exec::stream()
                .threads(4)
                .chunk_size(parallel::SHARD_SIZE - 1),
            Exec::new().threads(2).chunk_size(999),
        ] {
            assert_eq!(fold(plan), reference, "{plan}");
        }
    }

    #[test]
    fn fn_stages_are_not_distributable() {
        let stage = sum_mix_stage();
        assert!(stage.spec().is_none(), "closure stages carry no spec");
        assert_eq!(stage.template(), (0, 0));
    }

    #[test]
    fn in_process_reports_no_fold_accounting() {
        assert_eq!(Exec::batch().in_process().last_fold_report(), None);
    }

    #[test]
    fn fold_report_accumulates_and_displays() {
        let clean = FoldReport {
            workers: 4,
            workers_used: 4,
            ..FoldReport::default()
        };
        assert!(!clean.degraded());
        let recovered = FoldReport {
            workers: 4,
            workers_used: 3,
            workers_lost: 1,
            reroutes: 1,
            rerouted_shards: 5,
            ..FoldReport::default()
        };
        assert!(recovered.degraded());
        let shown = recovered.to_string();
        assert!(shown.contains("lost=1"), "{shown}");
        assert!(shown.contains("rerouted_shards=5"), "{shown}");
        assert!(!shown.contains("local_fallback"), "{shown}");

        let mut session = FoldReport::default();
        session.absorb(&recovered);
        session.absorb(&FoldReport {
            workers: 3,
            workers_used: 3,
            local_shards: 2,
            local_fallback: true,
            ..FoldReport::default()
        });
        assert_eq!(session.workers, 3, "state fields track the latest fold");
        assert_eq!(session.workers_lost, 1, "event counters accumulate");
        assert_eq!(session.rerouted_shards, 5);
        assert_eq!(session.local_shards, 2);
        assert!(session.local_fallback);
        assert!(session.to_string().contains("local_fallback"));
    }
}
