//! Seeded hashing and a deterministic RNG.
//!
//! Two consumers need *stable, seed-reproducible* randomness:
//!
//! * OLH hashes each item through a per-user seeded hash function;
//! * the paper's shuffling scheme (§VI-B, Fig. 4) sends users a 64-bit seed
//!   per iteration from which they reconstruct the server's candidate
//!   shuffle locally. User and server must agree bit-for-bit, so the shuffle
//!   cannot depend on `rand`'s internals; it uses our own [`SplitMix64`].
//!
//! `splitmix64` is the finalizer from Steele et al., "Fast Splittable
//! Pseudorandom Number Generators" (OOPSLA 2014): a cheap, well-distributed
//! 64-bit mixer.

/// One round of the splitmix64 output mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes `value` under `seed` into the range `[0, range)`.
///
/// Used by OLH (`range = g`) and by bucket assignment in the top-k shuffling
/// scheme. `range` must be non-zero.
#[inline]
pub fn seeded_hash(seed: u64, value: u64, range: u64) -> u64 {
    seeded_hash_from_state(seeded_hash_state(seed), value, range)
}

/// Pre-mixes `seed` into the per-seed hash state.
///
/// The first of [`seeded_hash`]'s two mixing rounds depends only on the
/// seed; blocked aggregation (hashing one report's seed against a whole
/// candidate set) hoists it with this function and finishes each candidate
/// with [`seeded_hash_from_state`], halving the mixing work per candidate.
#[inline]
pub fn seeded_hash_state(seed: u64) -> u64 {
    splitmix64(seed ^ 0x51_7C_C1_B7_27_22_0A_95)
}

/// Completes [`seeded_hash`] from a pre-mixed [`seeded_hash_state`].
#[inline]
pub fn seeded_hash_from_state(state: u64, value: u64, range: u64) -> u64 {
    debug_assert!(range > 0, "hash range must be non-zero");
    // Second mixing round decorrelates seed state and value cheaply.
    let h = splitmix64(state ^ value);
    // Lemire's multiply-shift maps uniformly into [0, range) without modulo
    // bias beyond 2^-64.
    ((h as u128 * range as u128) >> 64) as u64
}

/// A tiny deterministic RNG (splitmix64 stream) for reproducible shuffles.
///
/// Not a `rand::RngCore` implementation on purpose: its byte-for-byte output
/// is part of the client/server protocol (both sides replay the same
/// shuffle), so it must never change out from under us via a dependency
/// upgrade.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire reduction.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fisher–Yates shuffle of `slice`, fully determined by the seed.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_golden_values_are_protocol_constants() {
        // The shuffle protocol replays these on both client and server; a
        // change here is a silent wire-protocol break. Reference values from
        // the splitmix64 reference implementation (Steele et al.).
        assert_eq!(splitmix64(0x0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(0x1), 0x910a_2dec_8902_5cc1);
        assert_eq!(splitmix64(0xDEAD_BEEF), 0x4adf_b90f_68c9_eb9b);
        // And the stream form used by shuffles.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn shuffle_golden_permutation() {
        // Protocol stability for the Fisher–Yates order itself.
        let mut v: Vec<u32> = (0..8).collect();
        SplitMix64::new(12345).shuffle(&mut v);
        assert_eq!(v, vec![3, 4, 6, 2, 5, 0, 7, 1]);
    }

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Adjacent inputs should differ in many bits (avalanche sanity).
        let d = (splitmix64(12345) ^ splitmix64(12346)).count_ones();
        assert!(d > 16, "only {d} differing bits");
    }

    #[test]
    fn prehashed_state_matches_direct_hash() {
        // The split form is the same function — OLH support counting relies
        // on the equality, and the golden values above pin the direct form.
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let state = seeded_hash_state(seed);
            for value in 0..64u64 {
                for range in [2u64, 3, 17, 1 << 40] {
                    assert_eq!(
                        seeded_hash_from_state(state, value, range),
                        seeded_hash(seed, value, range)
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_hash_respects_range() {
        for range in [1u64, 2, 7, 64, 1000] {
            for v in 0..200u64 {
                let h = seeded_hash(99, v, range);
                assert!(h < range);
            }
        }
    }

    #[test]
    fn seeded_hash_is_roughly_uniform() {
        let range = 10u64;
        let mut counts = [0usize; 10];
        let n = 100_000u64;
        for v in 0..n {
            counts[seeded_hash(7, v, range) as usize] += 1;
        }
        let expected = n as f64 / range as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket {bucket} count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let range = 16u64;
        let mut same = 0;
        let n = 10_000;
        for v in 0..n {
            if seeded_hash(1, v, range) == seeded_hash(2, v, range) {
                same += 1;
            }
        }
        // Expect ~n/16 collisions between independent hashes.
        let expected = n as f64 / range as f64;
        assert!((same as f64 - expected).abs() < expected * 0.3);
    }

    #[test]
    fn shuffle_is_seed_deterministic_and_permutes() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        SplitMix64::new(5).shuffle(&mut a);
        SplitMix64::new(5).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let mut c: Vec<u32> = (0..100).collect();
        SplitMix64::new(6).shuffle(&mut c);
        assert_ne!(a, c, "different seeds should give different shuffles");
    }

    #[test]
    fn shuffle_is_roughly_unbiased() {
        // Position of element 0 after shuffling should be uniform.
        let mut counts = [0usize; 8];
        for seed in 0..8000u64 {
            let mut v: Vec<u8> = (0..8).collect();
            SplitMix64::new(seed).shuffle(&mut v);
            let pos = v.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 1000.0).abs() < 150.0, "position count {c}");
        }
    }

    #[test]
    fn next_below_bounds() {
        let mut rng = SplitMix64::new(3);
        for bound in [1u64, 2, 3, 100] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }
}
