//! Bounded-memory streaming ingestion.
//!
//! The batch runtime ([`crate::parallel`]) requires fully materialized
//! input slices: `absorb_batch` takes a `&[Report]`, which at paper scale
//! (5–9M users × a kilobit per unary report) costs hundreds of megabytes
//! before aggregation even starts. This module replaces the materialized
//! slice with a **pull-based source** ([`ReportSource`]) and a chunked
//! executor ([`fold_stream`]) that holds only
//!
//! * one reusable input buffer of `chunk_items` items, and
//! * one in-flight accumulator clone per worker,
//!
//! i.e. `O(chunk + threads × shard)` memory instead of `O(n)`.
//!
//! ## Bit-identical to the batch APIs
//!
//! The executor assigns every pulled item its **absolute stream index**,
//! so shard boundaries land exactly where the batch runtime would put them
//! regardless of the chunk size. Shard `s` is always processed with the
//! deterministic RNG [`shard_rng`]`(base_seed, s)`; when a chunk boundary
//! splits a shard, the partially-advanced RNG is carried to the next chunk
//! and the shard's remaining items continue the same stream. Consequently
//! `fold_stream` produces bit-identical results to the corresponding
//! `*_batch` call for **every** chunk size and thread count, provided the
//! fold function is prefix-composable (processing a shard in two fragments
//! with a carried RNG equals processing it at once — true for every
//! privatize+absorb loop in this workspace) and the merge is commutative
//! and associative (true for counter sums and [`super::parallel`]-style
//! accumulators).
//!
//! ## RNG-contract v2: one sampler stream for every mode
//!
//! The workspace's seeded outputs are governed by a versioned **RNG
//! contract** ([`crate::exec::RngContract`]); this section is the v2
//! specification.
//!
//! 1. **Shard streams.** Item `i` belongs to absolute shard
//!    `i / `[`SHARD_SIZE`]; shard `s` is processed with
//!    [`shard_rng`]`(stage_seed, s)`. The derivation (splitmix64 over a
//!    salted shard index, seeding a `StdRng`) is unchanged from v1.
//!    Fragments of a split shard continue the carried RNG state in order,
//!    including on distributed workers and their recovery replays.
//! 2. **One sampler per draw, everywhere.** Unary-encoding noise planes
//!    are drawn through the contract-v2 plane sampler
//!    (`UnaryEncoding::fill_plane`): word-parallel
//!    ([`crate::BitVec::fill_bernoulli_wordwise`] — 64 lanes per RNG word,
//!    no `ln` per set bit) whenever the plane probability is at least
//!    `UnaryEncoding::WORDWISE_MIN_Q`, geometric skipping below it. The
//!    branch depends only on mechanism parameters, never on the execution
//!    mode, so `privatize`, `privatize_into` and `perturb_bits` consume
//!    the RNG stream identically wherever they run.
//! 3. **Consequence.** Sequential, batch, stream and distributed execution
//!    are one code path differing only in resource envelope, and their
//!    outputs are bit-identical per `(stage_seed, threads, chunk,
//!    workers)` — the committed determinism / `Exec`-equivalence / chaos
//!    nets pin exactly this.
//!
//! Under v1, the sequential path privatized through a per-report
//! geometric sampler while `privatize_batch` went word-parallel: two
//! streams for the same seed, and the fast sampler locked out of every
//! pipeline the equivalence nets pinned. The v2 bump changed all seeded
//! estimates once (versioned, re-baselined) in exchange for the
//! word-parallel sampler end-to-end; v1 plans are refused, not emulated.

use rand::rngs::StdRng;

use crate::parallel::{shard_rng, SHARD_SIZE};
use crate::{Error, Result};

/// Default chunk size: 16 shards (65 536 items). Large enough to keep all
/// workers busy per pull, small enough that even kilobit unary reports stay
/// in the tens of megabytes.
pub const DEFAULT_CHUNK_ITEMS: usize = 16 * SHARD_SIZE;

/// A pull-based supplier of stream items (raw values, label-item pairs, or
/// already privatized reports).
///
/// Implementations exist for in-memory slices ([`SliceSource`]), for
/// NDJSON / CSV files and synthetic generators (`mcim-datasets`), and are
/// trivial to add for sockets or queues: the executor only ever asks for
/// "up to `max` more items".
pub trait ReportSource {
    /// The item type this source yields.
    type Item;

    /// Appends up to `max` items to `buf`, returning how many were
    /// appended. Returning `0` signals exhaustion; the executor may call
    /// `fill` several times per chunk, so partial fills are fine.
    fn fill(&mut self, buf: &mut Vec<Self::Item>, max: usize) -> Result<usize>;

    /// Total number of items this source will yield, when known up front.
    /// Round-splitting consumers (PEM) require a sized source.
    fn size_hint(&self) -> Option<u64> {
        None
    }

    /// Un-consumes the `n` most recently yielded items, so subsequent
    /// [`fill`](ReportSource::fill) calls yield them again —
    /// **byte-for-byte identical** to the first pass.
    ///
    /// Returns `Ok(true)` when the source rewound, `Ok(false)` when it
    /// cannot (the default — one-shot sources like sockets or queues).
    /// The distributed reducer uses this capability to *replay* a dead
    /// worker's shard ranges: a rewound source re-yields the same items,
    /// and the shard contract pins every shard's RNG stream to its
    /// absolute index rather than its host, so the re-routed fold is
    /// bit-identical to the unfailed one.
    ///
    /// Implementations must either restore the stream position exactly
    /// `n` items back or report `Ok(false)`; rewinding to any *other*
    /// position would silently corrupt a replayed fold. `n` larger than
    /// the number of items already yielded is an error. Wrappers forward
    /// the call ([`Take`] adds the `n` items back to its own budget),
    /// which keeps the capability intact through the view types the
    /// round-based miners build mid-stream.
    fn rewind(&mut self, n: u64) -> Result<bool> {
        let _ = n;
        Ok(false)
    }
}

/// Every `&mut` to a source is itself a source — lets `execute`-style
/// entry points take `impl ReportSource` by value while callers keep
/// ownership (pass `&mut source`) when they need the source afterwards.
impl<S: ReportSource + ?Sized> ReportSource for &mut S {
    type Item = S::Item;

    fn fill(&mut self, buf: &mut Vec<Self::Item>, max: usize) -> Result<usize> {
        (**self).fill(buf, max)
    }

    fn size_hint(&self) -> Option<u64> {
        (**self).size_hint()
    }

    // Forwarded explicitly: the default body would report `Ok(false)` and
    // silently strip the rewind capability from any source passed by
    // reference, which is exactly how the executors receive them.
    fn rewind(&mut self, n: u64) -> Result<bool> {
        (**self).rewind(n)
    }
}

/// Drains `source` to exhaustion into a fresh `Vec` — the materialization
/// step of sequential-mode execution and of pipelines that must revisit
/// their input (multi-round top-k mining).
pub fn drain_source<S: ReportSource>(source: &mut S) -> Result<Vec<S::Item>> {
    // size_hint is advisory; clamp the upfront allocation so a
    // misreporting source cannot reserve unbounded memory before the
    // first fill.
    let hint = source
        .size_hint()
        .and_then(|n| usize::try_from(n).ok())
        .unwrap_or(0);
    let mut items = Vec::with_capacity(hint.min(4 * DEFAULT_CHUNK_ITEMS));
    loop {
        if source.fill(&mut items, DEFAULT_CHUNK_ITEMS)? == 0 {
            break;
        }
    }
    Ok(items)
}

/// An in-memory slice as a stream source (items are cloned out).
#[derive(Debug)]
pub struct SliceSource<'a, T> {
    items: &'a [T],
    pos: usize,
}

impl<'a, T> SliceSource<'a, T> {
    /// Wraps a slice.
    pub fn new(items: &'a [T]) -> Self {
        SliceSource { items, pos: 0 }
    }
}

impl<T: Clone> ReportSource for SliceSource<'_, T> {
    type Item = T;

    fn fill(&mut self, buf: &mut Vec<T>, max: usize) -> Result<usize> {
        let take = max.min(self.items.len() - self.pos);
        buf.extend_from_slice(&self.items[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }

    fn size_hint(&self) -> Option<u64> {
        Some((self.items.len() - self.pos) as u64)
    }

    fn rewind(&mut self, n: u64) -> Result<bool> {
        match usize::try_from(n).ok().filter(|&back| back <= self.pos) {
            Some(back) => {
                self.pos -= back;
                Ok(true)
            }
            None => Err(Error::Source {
                message: format!("rewind({n}) exceeds the {} items already yielded", self.pos),
            }),
        }
    }
}

/// A borrowed view of another source limited to `remaining` items — how
/// round-based miners carve per-round user groups out of one stream.
#[derive(Debug)]
pub struct Take<'s, S> {
    source: &'s mut S,
    remaining: u64,
    taken: u64,
}

impl<'s, S: ReportSource> Take<'s, S> {
    /// Limits `source` to at most `limit` further items.
    pub fn new(source: &'s mut S, limit: u64) -> Self {
        Take {
            source,
            remaining: limit,
            taken: 0,
        }
    }
}

impl<S: ReportSource> ReportSource for Take<'_, S> {
    type Item = S::Item;

    fn fill(&mut self, buf: &mut Vec<S::Item>, max: usize) -> Result<usize> {
        let max = max.min(usize::try_from(self.remaining).unwrap_or(usize::MAX));
        if max == 0 {
            return Ok(0);
        }
        let got = self.source.fill(buf, max)?;
        self.remaining -= got as u64;
        self.taken += got as u64;
        Ok(got)
    }

    fn size_hint(&self) -> Option<u64> {
        self.source.size_hint().map(|n| n.min(self.remaining))
    }

    // A relative rewind composes through mid-stream views: un-consuming
    // the underlying source restores exactly this view's items (they were
    // the most recent ones pulled), so the budget gets them back. An
    // absolute "rewind to start" could not be forwarded this way — it
    // would replay items that belong to earlier rounds' views.
    fn rewind(&mut self, n: u64) -> Result<bool> {
        if n > self.taken {
            return Err(Error::Source {
                message: format!(
                    "rewind({n}) exceeds the {} items this view yielded",
                    self.taken
                ),
            });
        }
        if !self.source.rewind(n)? {
            return Ok(false);
        }
        self.remaining += n;
        self.taken -= n;
        Ok(true)
    }
}

/// Execution parameters for the streaming executor.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Items pulled (and held in memory) per chunk. Clamped to ≥ 1.
    pub chunk_items: usize,
    /// Worker thread cap for full shards within a chunk. Clamped to ≥ 1.
    pub threads: usize,
}

impl StreamConfig {
    /// Default chunk size ([`DEFAULT_CHUNK_ITEMS`]) with `threads` workers.
    pub fn new(threads: usize) -> Self {
        StreamConfig {
            chunk_items: DEFAULT_CHUNK_ITEMS,
            threads,
        }
    }

    /// Overrides the chunk size.
    pub fn with_chunk_items(mut self, chunk_items: usize) -> Self {
        self.chunk_items = chunk_items;
        self
    }
}

/// Drains `source` in bounded chunks, folding every item into an
/// accumulator with shard-deterministic RNG streams.
///
/// `f(rng, abs_index, items, acc)` processes one shard *fragment*: a run
/// of consecutive items that all belong to the same absolute shard,
/// starting at stream position `abs_index`. The RNG is positioned exactly
/// where a batch run would have it: fresh [`shard_rng`]`(base_seed, s)` at
/// a shard's first item, carried state mid-shard. Fragments of distinct
/// shards run on up to `threads` workers, each folding into its own clone
/// of `template`; partials are combined with `merge`.
///
/// Memory: one `chunk_items` input buffer plus `threads` accumulator
/// clones — independent of the stream length.
pub fn fold_stream<S, A, F, M>(
    source: &mut S,
    config: StreamConfig,
    base_seed: u64,
    template: &A,
    f: F,
    merge: M,
) -> Result<A>
where
    S: ReportSource,
    S::Item: Sync,
    A: Clone + Send,
    F: Fn(&mut StdRng, u64, &[S::Item], &mut A) -> Result<()> + Sync,
    M: Fn(&mut A, &A) -> Result<()>,
{
    let chunk_items = config.chunk_items.max(1);
    let threads = config.threads.max(1);
    let mut acc = template.clone();
    let mut buf: Vec<S::Item> = Vec::with_capacity(chunk_items);
    let mut abs: u64 = 0;
    // RNG of the shard currently split across chunk boundaries.
    let mut carry: Option<StdRng> = None;
    // Telemetry: locals accumulate for free and flush once at the end,
    // so the instrumented loop costs nothing beyond three integer adds.
    let obs_span = mcim_obs::span("mcim_fold_duration_seconds");
    let (mut obs_chunks, mut obs_reports, mut obs_fragments) = (0u64, 0u64, 0u64);

    loop {
        buf.clear();
        loop {
            let want = chunk_items - buf.len();
            if want == 0 || source.fill(&mut buf, want)? == 0 {
                break;
            }
        }
        if buf.is_empty() {
            break;
        }
        obs_chunks += 1;
        obs_reports += buf.len() as u64;

        // Head fragment: finish the shard the previous chunk started.
        let mut offset = 0usize;
        let into_shard = (abs % SHARD_SIZE as u64) as usize;
        if into_shard != 0 {
            obs_fragments += 1;
            let head = (SHARD_SIZE - into_shard).min(buf.len());
            let mut rng = carry
                .take()
                // mcim-lint: allow(panic-freedom, invariant: carry is set whenever abs stops mid-shard, restored below)
                .expect("mid-shard position implies a carried RNG");
            f(&mut rng, abs, &buf[..head], &mut acc)?;
            if into_shard + head < SHARD_SIZE {
                carry = Some(rng); // chunk ended inside the same shard
            }
            offset = head;
        }

        // Whole shards, fanned out across workers.
        let body = &buf[offset..];
        let full = body.len() / SHARD_SIZE * SHARD_SIZE;
        let first_shard = (abs + offset as u64) / SHARD_SIZE as u64;
        if full > 0 {
            let shards: Vec<&[S::Item]> = body[..full].chunks(SHARD_SIZE).collect();
            obs_fragments += shards.len() as u64;
            if threads <= 1 || shards.len() <= 1 {
                for (i, chunk) in shards.iter().enumerate() {
                    let s = first_shard + i as u64;
                    let mut rng = shard_rng(base_seed, s);
                    f(&mut rng, s * SHARD_SIZE as u64, chunk, &mut acc)?;
                }
            } else {
                let workers = threads.min(shards.len());
                let partials = std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(workers);
                    for range in crate::parallel::ranges(shards.len(), workers) {
                        let shards = &shards;
                        let f = &f;
                        let mut local = template.clone();
                        handles.push(scope.spawn(move || -> Result<A> {
                            for i in range {
                                let s = first_shard + i as u64;
                                let mut rng = shard_rng(base_seed, s);
                                f(&mut rng, s * SHARD_SIZE as u64, shards[i], &mut local)?;
                            }
                            Ok(local)
                        }));
                    }
                    handles
                        .into_iter()
                        // mcim-lint: allow(panic-freedom, join only fails if a worker panicked; re-raising that panic is the scoped-thread idiom)
                        .map(|h| h.join().expect("stream worker panicked"))
                        .collect::<Vec<_>>()
                });
                for partial in partials {
                    merge(&mut acc, &partial?)?;
                }
            }
        }

        // Tail fragment: start a new shard and carry its RNG.
        let tail = offset + full;
        if tail < buf.len() {
            obs_fragments += 1;
            let s = (abs + tail as u64) / SHARD_SIZE as u64;
            let mut rng = shard_rng(base_seed, s);
            f(&mut rng, abs + tail as u64, &buf[tail..], &mut acc)?;
            carry = Some(rng);
        }

        abs += buf.len() as u64;
    }
    if mcim_obs::enabled() {
        mcim_obs::counter_add("mcim_folds_total", 1);
        mcim_obs::counter_add("mcim_fold_chunks_total", obs_chunks);
        mcim_obs::counter_add("mcim_fold_reports_total", obs_reports);
        mcim_obs::counter_add("mcim_fold_shard_fragments_total", obs_fragments);
    }
    obs_span.finish();
    Ok(acc)
}

/// [`fold_stream`] for pure server-side absorption (no RNG): drains a
/// source of already privatized reports into per-worker accumulators. The
/// backbone of every aggregator's `absorb_stream`.
pub fn absorb_stream_with<S, A, F, M>(
    source: &mut S,
    config: StreamConfig,
    template: &A,
    absorb: F,
    merge: M,
) -> Result<A>
where
    S: ReportSource,
    S::Item: Sync,
    A: Clone + Send,
    F: Fn(&mut A, &[S::Item]) -> Result<()> + Sync,
    M: Fn(&mut A, &A) -> Result<()>,
{
    fold_stream(
        source,
        config,
        0, // RNG stream unused by pure absorption
        template,
        |_rng, _abs, items, acc| absorb(acc, items),
        merge,
    )
}

/// The size a sized source must declare; errors otherwise. Used by
/// round-splitting consumers (PEM) that need the total count up front.
pub fn required_len<S: ReportSource>(source: &S) -> Result<u64> {
    source.size_hint().ok_or(Error::InvalidParameter {
        name: "source",
        constraint: "round-splitting streams require a sized source (size_hint)",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    /// A source that drips items in fixed dribbles to exercise partial
    /// fills (the executor must keep pulling until its chunk is full).
    struct Dribble {
        next: u32,
        n: u32,
        per_call: usize,
    }

    impl ReportSource for Dribble {
        type Item = u32;
        fn fill(&mut self, buf: &mut Vec<u32>, max: usize) -> Result<usize> {
            let take = max.min(self.per_call).min((self.n - self.next) as usize);
            for _ in 0..take {
                buf.push(self.next);
                self.next += 1;
            }
            Ok(take)
        }
        fn size_hint(&self) -> Option<u64> {
            Some((self.n - self.next) as u64)
        }
    }

    /// Reference: the batch-style fold (map_shards semantics) the stream
    /// must reproduce bit-for-bit.
    fn batch_reference(items: &[u32], base_seed: u64) -> (u64, u64) {
        let mut sum = 0u64;
        let mut rng_mix = 0u64;
        for (s, chunk) in items.chunks(SHARD_SIZE).enumerate() {
            let mut rng = shard_rng(base_seed, s as u64);
            for &v in chunk {
                sum += v as u64;
                rng_mix = rng_mix.wrapping_add(rng.next_u64() ^ v as u64);
            }
        }
        (sum, rng_mix)
    }

    fn stream_fold(items: &[u32], chunk: usize, threads: usize, base_seed: u64) -> (u64, u64) {
        let mut source = SliceSource::new(items);
        fold_stream(
            &mut source,
            StreamConfig {
                chunk_items: chunk,
                threads,
            },
            base_seed,
            &(0u64, 0u64),
            |rng, _abs, items, acc| {
                for &v in items {
                    acc.0 += v as u64;
                    acc.1 = acc.1.wrapping_add(rng.next_u64() ^ v as u64);
                }
                Ok(())
            },
            |a, b| {
                a.0 += b.0;
                a.1 = a.1.wrapping_add(b.1);
                Ok(())
            },
        )
        .unwrap()
    }

    #[test]
    fn chunk_boundaries_never_change_the_result() {
        let n = 2 * SHARD_SIZE + 777;
        let items: Vec<u32> = (0..n as u32).collect();
        let expected = batch_reference(&items, 42);
        for chunk in [1, SHARD_SIZE - 1, SHARD_SIZE, SHARD_SIZE + 1, n] {
            for threads in [1, 4] {
                assert_eq!(
                    stream_fold(&items, chunk, threads, 42),
                    expected,
                    "chunk={chunk} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn partial_fills_are_replenished() {
        let n = SHARD_SIZE as u32 + 300;
        let items: Vec<u32> = (0..n).collect();
        let expected = batch_reference(&items, 7);
        let mut source = Dribble {
            next: 0,
            n,
            per_call: 17,
        };
        let got = fold_stream(
            &mut source,
            StreamConfig {
                chunk_items: 1000,
                threads: 2,
            },
            7,
            &(0u64, 0u64),
            |rng, _abs, items, acc| {
                for &v in items {
                    acc.0 += v as u64;
                    acc.1 = acc.1.wrapping_add(rng.next_u64() ^ v as u64);
                }
                Ok(())
            },
            |a, b| {
                a.0 += b.0;
                a.1 = a.1.wrapping_add(b.1);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn abs_indices_cover_the_stream_exactly_once() {
        let n = 3 * SHARD_SIZE + 5;
        let items: Vec<u32> = (0..n as u32).collect();
        for chunk in [SHARD_SIZE - 3, 2 * SHARD_SIZE + 1] {
            let mut source = SliceSource::new(&items);
            let spans = fold_stream(
                &mut source,
                StreamConfig {
                    chunk_items: chunk,
                    threads: 1,
                },
                0,
                &Vec::<(u64, u64)>::new(),
                |_rng, abs, items, acc| {
                    acc.push((abs, abs + items.len() as u64));
                    Ok(())
                },
                |a, b| {
                    a.extend_from_slice(b);
                    Ok(())
                },
            )
            .unwrap();
            let mut sorted = spans.clone();
            sorted.sort_unstable();
            let mut next = 0u64;
            for (start, end) in sorted {
                assert_eq!(start, next, "chunk={chunk}");
                assert!(end > start);
                // No fragment may straddle a shard boundary.
                assert!(
                    start / SHARD_SIZE as u64 == (end - 1) / SHARD_SIZE as u64,
                    "fragment {start}..{end} crosses a shard boundary"
                );
                next = end;
            }
            assert_eq!(next, n as u64);
        }
    }

    #[test]
    fn take_limits_and_resumes() {
        let items: Vec<u32> = (0..100).collect();
        let mut source = SliceSource::new(&items);
        let mut buf = Vec::new();
        {
            let mut take = Take::new(&mut source, 30);
            assert_eq!(take.size_hint(), Some(30));
            while take.fill(&mut buf, 7).unwrap() > 0 {}
        }
        assert_eq!(buf.len(), 30);
        assert_eq!(buf.last(), Some(&29));
        // The underlying source resumes where the take stopped.
        buf.clear();
        source.fill(&mut buf, 5).unwrap();
        assert_eq!(buf, vec![30, 31, 32, 33, 34]);
    }

    #[test]
    fn empty_source_yields_template() {
        let items: Vec<u32> = Vec::new();
        let mut source = SliceSource::new(&items);
        let out = fold_stream(
            &mut source,
            StreamConfig::new(4),
            1,
            &123u64,
            |_, _, _, _| Ok(()),
            |_, _| Ok(()),
        )
        .unwrap();
        assert_eq!(out, 123);
    }

    #[test]
    fn drain_source_and_mut_blanket_impl() {
        let items: Vec<u32> = (0..100).collect();
        let mut source = SliceSource::new(&items);
        // A &mut source is a source; draining through it consumes the
        // underlying one.
        let first: Vec<u32> = {
            let mut view = Take::new(&mut source, 40);
            drain_source(&mut &mut view).unwrap()
        };
        assert_eq!(first, (0..40).collect::<Vec<u32>>());
        assert_eq!(drain_source(&mut source).unwrap().len(), 60);
        assert_eq!(drain_source(&mut source).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn required_len_errors_on_unsized_sources() {
        struct Unsized;
        impl ReportSource for Unsized {
            type Item = u32;
            fn fill(&mut self, _: &mut Vec<u32>, _: usize) -> Result<usize> {
                Ok(0)
            }
        }
        assert!(required_len(&Unsized).is_err());
        assert_eq!(required_len(&SliceSource::new(&[1u32, 2])).unwrap(), 2);
    }

    #[test]
    fn rewind_defaults_to_unsupported() {
        let mut dribble = Dribble {
            next: 0,
            n: 10,
            per_call: 10,
        };
        drain_source(&mut dribble).unwrap();
        assert!(!dribble.rewind(3).unwrap());
        // The blanket &mut impl forwards rather than re-defaulting.
        let mut source = SliceSource::new(&[1u32, 2, 3]);
        drain_source(&mut source).unwrap();
        let mut view: &mut SliceSource<'_, u32> = &mut source;
        assert!(ReportSource::rewind(&mut view, 2).unwrap());
        assert_eq!(drain_source(&mut source).unwrap(), vec![2, 3]);
    }

    #[test]
    fn slice_rewind_replays_identically() {
        let items: Vec<u32> = (0..300).collect();
        let mut source = SliceSource::new(&items);
        let mut buf = Vec::new();
        source.fill(&mut buf, 200).unwrap();
        assert!(source.rewind(150).unwrap());
        assert_eq!(source.size_hint(), Some(250));
        let mut again = Vec::new();
        source.fill(&mut again, 250).unwrap();
        assert_eq!(again, (50..300).collect::<Vec<u32>>());
        assert!(source.rewind(301).is_err());
    }

    #[test]
    fn take_rewind_restores_only_its_own_budget() {
        let items: Vec<u32> = (0..100).collect();
        let mut source = SliceSource::new(&items);
        // First round consumes 0..40 through its own view.
        drain_source(&mut Take::new(&mut source, 40)).unwrap();
        // Second round: consume 30, rewind 20, re-drain — the view must
        // hand back exactly its own items, never round one's.
        let mut view = Take::new(&mut source, 30);
        let mut buf = Vec::new();
        view.fill(&mut buf, 30).unwrap();
        assert!(view.rewind(20).unwrap());
        assert!(view.rewind(31).is_err(), "cannot rewind past this view");
        assert_eq!(
            drain_source(&mut view).unwrap(),
            (50..70).collect::<Vec<u32>>()
        );
        // The underlying source continues where round two's budget ended.
        assert_eq!(
            drain_source(&mut source).unwrap(),
            (70..100).collect::<Vec<u32>>()
        );
    }
}
