//! Sharded, deterministic data-parallel execution.
//!
//! The server-side pipelines are embarrassingly parallel over user reports,
//! but naïve multi-threading would make estimates depend on the thread
//! count (RNG streams and merge order would shift). This module pins both
//! down:
//!
//! * work is split into **fixed-size shards** ([`SHARD_SIZE`] items) that
//!   depend only on the input, never on the worker count;
//! * every shard derives its own RNG stream from `(base_seed, shard
//!   index)` via the protocol-stable [`splitmix64`] mixer ([`shard_rng`]);
//! * shard results are returned **in shard order** and all aggregation
//!   state merged from shards is additive (`u64` counter sums), which is
//!   associative.
//!
//! Consequently `threads = N` produces bit-identical output to
//! `threads = 1` for every batch API built on [`map_shards`] — the
//! property the `MCIM_THREADS` CI matrix locks in.
//!
//! ## Scheduling
//!
//! Workers own **contiguous shard ranges** (static partitioning) and write
//! into **preallocated disjoint output slices**. The first version of this
//! module used an atomic work-stealing cursor with one `Mutex<Option<T>>`
//! slot per shard; profiling the privatize path showed the per-shard
//! output `Vec` allocations and slot locking serialized workers on the
//! allocator and made the batch runtime *slower* than the sequential path
//! (`oue_privatize_batch_tn_vs_seq: 0.92` in the PR-2 baseline). Shards
//! are uniform-cost, so static ranges lose nothing to stealing and need no
//! synchronization beyond the scoped join.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hash::splitmix64;

/// Items per shard. Fixed so that shard boundaries — and therefore every
/// per-shard RNG stream — are independent of the worker count.
pub const SHARD_SIZE: usize = 4096;

/// Domain-separation salt for shard seed derivation.
const SHARD_SALT: u64 = 0x5AAD_C0DE_0B5E_55ED;

/// Number of worker threads to use when the caller does not specify:
/// the `MCIM_THREADS` environment variable if set (values `< 1` clamp to
/// 1), otherwise [`std::thread::available_parallelism`].
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("MCIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The seed of shard `shard`'s RNG stream under `base_seed`.
///
/// Mixed through [`splitmix64`] twice with a salt so that consecutive base
/// seeds and consecutive shard indices both land on decorrelated streams.
///
/// This derivation is part of the workspace RNG contract
/// ([`crate::exec::RngContract`]) and is identical under v1 and v2: the
/// v2 bump changed *what* each shard's RNG is asked to sample (one shared
/// plane sampler on every path), never *which* RNG a shard gets.
#[inline]
pub fn shard_seed(base_seed: u64, shard: u64) -> u64 {
    splitmix64(base_seed.wrapping_add(splitmix64(shard ^ SHARD_SALT)))
}

/// The deterministic RNG for shard `shard` under `base_seed`.
#[inline]
pub fn shard_rng(base_seed: u64, shard: u64) -> StdRng {
    StdRng::seed_from_u64(shard_seed(base_seed, shard))
}

/// Contiguous task ranges assigning `n` tasks to at most `workers` workers
/// as evenly as possible (the first `n % workers` ranges get one extra).
pub(crate) fn ranges(n: usize, workers: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    let workers = workers.max(1).min(n.max(1));
    let base = n / workers;
    let extra = n % workers;
    let mut start = 0usize;
    (0..workers).map(move |w| {
        let len = base + usize::from(w < extra);
        let r = start..start + len;
        start += len;
        r
    })
}

/// Splits `items` into [`SHARD_SIZE`]-sized shards and maps `f` over them
/// on up to `threads` workers, returning per-shard results in shard order.
///
/// `f` receives `(shard_index, shard_items)`. Workers own contiguous shard
/// ranges and write results into preallocated disjoint output slices, so
/// the parallel path takes no locks and performs no per-shard allocation.
/// Because shard boundaries and shard indices are fixed, the result vector
/// — and anything deterministically derived from it, like merged counter
/// sums — does not depend on `threads`.
pub fn map_shards<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(u64, &[I]) -> T + Sync,
{
    let shards: Vec<&[I]> = items.chunks(SHARD_SIZE).collect();
    map_each(&shards, threads, |i, s| f(i as u64, s))
}

/// One-output-per-input sharded execution into a preallocated buffer: the
/// shape of every batch privatization.
///
/// `f` receives `(shard_index, shard_items, shard_output)` where
/// `shard_output` is the shard's disjoint slice of the preallocated output
/// (same length as `shard_items`) and must fill every slot with `Some`.
/// Workers own contiguous shard ranges; there is no per-shard `Vec`, no
/// result flattening and no locking — the fix for the PR-2 privatize
/// regression. Fails with the first error in shard order; output slots are
/// discarded on error.
pub fn try_fill_shards<I, T, E, F>(
    items: &[I],
    threads: usize,
    f: F,
) -> std::result::Result<Vec<T>, E>
where
    I: Sync,
    T: Send,
    E: Send,
    F: Fn(u64, &[I], &mut [Option<T>]) -> std::result::Result<(), E> + Sync,
{
    let mut out: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    let n_shards = items.len().div_ceil(SHARD_SIZE);
    let workers = threads.max(1).min(n_shards.max(1));
    if workers <= 1 {
        for (i, (chunk, slots)) in items
            .chunks(SHARD_SIZE)
            .zip(out.chunks_mut(SHARD_SIZE))
            .enumerate()
        {
            f(i as u64, chunk, slots)?;
        }
    } else {
        let worker_results = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut rest: &mut [Option<T>] = &mut out;
            for range in ranges(n_shards, workers) {
                let item_start = range.start * SHARD_SIZE;
                let item_end = (range.end * SHARD_SIZE).min(items.len());
                let (mine, tail) = rest.split_at_mut(item_end - item_start);
                rest = tail;
                let f = &f;
                let worker_items = &items[item_start..item_end];
                handles.push(scope.spawn(move || -> std::result::Result<(), E> {
                    for ((chunk, slots), shard) in worker_items
                        .chunks(SHARD_SIZE)
                        .zip(mine.chunks_mut(SHARD_SIZE))
                        .zip(range)
                    {
                        f(shard as u64, chunk, slots)?;
                    }
                    Ok(())
                }));
            }
            handles
                .into_iter()
                // mcim-lint: allow(panic-freedom, join only fails if a worker panicked; re-raising that panic is the scoped-thread idiom)
                .map(|h| h.join().expect("shard worker panicked"))
                .collect::<Vec<_>>()
        });
        for r in worker_results {
            r?;
        }
    }
    Ok(out
        .into_iter()
        // mcim-lint: allow(panic-freedom, infallible: the scope above filled every slot of `out` before returning)
        .map(|s| s.expect("every output slot filled"))
        .collect())
}

/// Maps `f` over individual items (not shards) on up to `threads` workers,
/// returning results in item order. For coarse tasks — e.g. the per-class
/// final mining rounds, whose cohorts are often smaller than one shard and
/// would otherwise run single-threaded. Workers own contiguous item ranges
/// (deterministic output for every thread count, given `f` deterministic in
/// its arguments).
pub fn map_each<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let mut out: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<T>] = &mut out;
        for range in ranges(items.len(), workers) {
            let (mine, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let f = &f;
            scope.spawn(move || {
                for (slot, i) in mine.iter_mut().zip(range) {
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    });
    out.into_iter()
        // mcim-lint: allow(panic-freedom, infallible: the scope above filled every slot of `out` before returning)
        .map(|s| s.expect("every item slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn shard_results_are_thread_count_invariant() {
        let items: Vec<u32> = (0..3 * SHARD_SIZE as u32 + 17).collect();
        let run = |threads| {
            map_shards(&items, threads, |shard, chunk| {
                let mut rng = shard_rng(99, shard);
                chunk
                    .iter()
                    .fold(0u64, |acc, &x| acc.wrapping_add(x as u64 ^ rng.next_u64()))
            })
        };
        let seq = run(1);
        assert_eq!(seq.len(), 4, "fixed shard size decides the shard count");
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn shards_cover_items_in_order() {
        let items: Vec<usize> = (0..SHARD_SIZE + 5).collect();
        let spans = map_shards(&items, 4, |shard, chunk| {
            (shard, chunk[0], chunk[chunk.len() - 1])
        });
        assert_eq!(
            spans,
            vec![(0, 0, SHARD_SIZE - 1), (1, SHARD_SIZE, SHARD_SIZE + 4)]
        );
    }

    #[test]
    fn empty_input_yields_no_shards() {
        let out: Vec<u64> = map_shards(&[] as &[u32], 8, |_, _| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn ranges_partition_exactly() {
        for n in [0usize, 1, 2, 5, 7, 16, 100] {
            for workers in [1usize, 2, 3, 8, 200] {
                let rs: Vec<_> = ranges(n, workers).collect();
                let mut next = 0usize;
                for r in &rs {
                    assert_eq!(r.start, next, "n={n} workers={workers}");
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} workers={workers}");
                let (min, max) = rs.iter().fold((usize::MAX, 0), |(lo, hi), r| {
                    (lo.min(r.len()), hi.max(r.len()))
                });
                assert!(
                    n == 0 || max - min <= 1,
                    "uneven split: n={n} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn try_fill_shards_fills_every_slot_in_order() {
        let items: Vec<u32> = (0..2 * SHARD_SIZE as u32 + 100).collect();
        for threads in [1, 2, 8] {
            let out: Vec<u64> = try_fill_shards(&items, threads, |shard, chunk, slots| {
                for (&v, slot) in chunk.iter().zip(slots.iter_mut()) {
                    *slot = Some(v as u64 + shard * 1_000_000);
                }
                Ok::<(), ()>(())
            })
            .unwrap();
            assert_eq!(out.len(), items.len());
            assert_eq!(out[0], 0);
            assert_eq!(out[SHARD_SIZE], SHARD_SIZE as u64 + 1_000_000);
            assert_eq!(
                out[2 * SHARD_SIZE + 99],
                (2 * SHARD_SIZE + 99) as u64 + 2_000_000
            );
        }
    }

    #[test]
    fn try_fill_shards_surfaces_first_shard_error() {
        let items: Vec<u32> = (0..3 * SHARD_SIZE as u32).collect();
        for threads in [1, 4] {
            let err = try_fill_shards(&items, threads, |shard, _chunk, slots| {
                if shard >= 1 {
                    return Err(shard);
                }
                for slot in slots.iter_mut() {
                    *slot = Some(0u8);
                }
                Ok(())
            })
            .unwrap_err();
            assert_eq!(err, 1, "threads={threads}");
        }
    }

    #[test]
    fn map_each_is_thread_count_invariant() {
        let items: Vec<u32> = (0..37).collect();
        let seq = map_each(&items, 1, |i, &x| (i as u32) * 1000 + x);
        for threads in [2, 5, 64] {
            assert_eq!(
                map_each(&items, threads, |i, &x| (i as u32) * 1000 + x),
                seq
            );
        }
        let empty: Vec<u64> = map_each(&[] as &[u32], 4, |_, _| 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn shard_seeds_are_decorrelated() {
        // Adjacent shards and adjacent base seeds must not collide.
        let mut seen = std::collections::HashSet::new();
        for base in 0..8u64 {
            for shard in 0..64u64 {
                assert!(seen.insert(shard_seed(base, shard)), "collision");
            }
        }
        // And the streams actually differ.
        let a = shard_rng(1, 0).next_u64();
        let b = shard_rng(1, 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
