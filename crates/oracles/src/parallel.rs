//! Sharded, deterministic data-parallel execution.
//!
//! The server-side pipelines are embarrassingly parallel over user reports,
//! but naïve multi-threading would make estimates depend on the thread
//! count (RNG streams and merge order would shift). This module pins both
//! down:
//!
//! * work is split into **fixed-size shards** ([`SHARD_SIZE`] items) that
//!   depend only on the input, never on the worker count;
//! * every shard derives its own RNG stream from `(base_seed, shard
//!   index)` via the protocol-stable [`splitmix64`] mixer ([`shard_rng`]);
//! * shard results are returned **in shard order** and all aggregation
//!   state merged from shards is additive (`u64` counter sums), which is
//!   associative.
//!
//! Consequently `threads = N` produces bit-identical output to
//! `threads = 1` for every batch API built on [`map_shards`] — the
//! property the `MCIM_THREADS` CI matrix locks in.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hash::splitmix64;

/// Items per shard. Fixed so that shard boundaries — and therefore every
/// per-shard RNG stream — are independent of the worker count.
pub const SHARD_SIZE: usize = 4096;

/// Domain-separation salt for shard seed derivation.
const SHARD_SALT: u64 = 0x5AAD_C0DE_0B5E_55ED;

/// Number of worker threads to use when the caller does not specify:
/// the `MCIM_THREADS` environment variable if set (values `< 1` clamp to
/// 1), otherwise [`std::thread::available_parallelism`].
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("MCIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The seed of shard `shard`'s RNG stream under `base_seed`.
///
/// Mixed through [`splitmix64`] twice with a salt so that consecutive base
/// seeds and consecutive shard indices both land on decorrelated streams.
#[inline]
pub fn shard_seed(base_seed: u64, shard: u64) -> u64 {
    splitmix64(base_seed.wrapping_add(splitmix64(shard ^ SHARD_SALT)))
}

/// The deterministic RNG for shard `shard` under `base_seed`.
#[inline]
pub fn shard_rng(base_seed: u64, shard: u64) -> StdRng {
    StdRng::seed_from_u64(shard_seed(base_seed, shard))
}

/// Splits `items` into [`SHARD_SIZE`]-sized shards and maps `f` over them
/// on up to `threads` workers, returning per-shard results in shard order.
///
/// `f` receives `(shard_index, shard_items)`. Scheduling is work-stealing
/// (an atomic cursor), but because shard boundaries and shard indices are
/// fixed, the result vector — and anything deterministically derived from
/// it, like merged counter sums — does not depend on `threads`.
pub fn map_shards<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(u64, &[I]) -> T + Sync,
{
    let shards: Vec<&[I]> = items.chunks(SHARD_SIZE).collect();
    let workers = threads.max(1).min(shards.len());
    if workers <= 1 {
        return shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| f(i as u64, s))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        shards.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= shards.len() {
                    break;
                }
                let value = f(i as u64, shards[i]);
                *slots[i].lock().expect("shard slot lock") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("shard slot lock")
                .expect("every shard slot filled")
        })
        .collect()
}

/// [`map_shards`] for the ubiquitous fallible batch shape: each shard
/// produces a `Result<Vec<T>>` (e.g. privatized reports) and the per-shard
/// batches are flattened in shard order, failing on the first shard error.
pub fn try_flat_map_shards<I, T, E, F>(
    items: &[I],
    threads: usize,
    f: F,
) -> std::result::Result<Vec<T>, E>
where
    I: Sync,
    T: Send,
    E: Send,
    F: Fn(u64, &[I]) -> std::result::Result<Vec<T>, E> + Sync,
{
    let shards = map_shards(items, threads, f);
    let mut out = Vec::with_capacity(items.len());
    for shard in shards {
        out.extend(shard?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn shard_results_are_thread_count_invariant() {
        let items: Vec<u32> = (0..3 * SHARD_SIZE as u32 + 17).collect();
        let run = |threads| {
            map_shards(&items, threads, |shard, chunk| {
                let mut rng = shard_rng(99, shard);
                chunk
                    .iter()
                    .fold(0u64, |acc, &x| acc.wrapping_add(x as u64 ^ rng.next_u64()))
            })
        };
        let seq = run(1);
        assert_eq!(seq.len(), 4, "fixed shard size decides the shard count");
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn shards_cover_items_in_order() {
        let items: Vec<usize> = (0..SHARD_SIZE + 5).collect();
        let spans = map_shards(&items, 4, |shard, chunk| {
            (shard, chunk[0], chunk[chunk.len() - 1])
        });
        assert_eq!(
            spans,
            vec![(0, 0, SHARD_SIZE - 1), (1, SHARD_SIZE, SHARD_SIZE + 4)]
        );
    }

    #[test]
    fn empty_input_yields_no_shards() {
        let out: Vec<u64> = map_shards(&[] as &[u32], 8, |_, _| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn shard_seeds_are_decorrelated() {
        // Adjacent shards and adjacent base seeds must not collide.
        let mut seen = std::collections::HashSet::new();
        for base in 0..8u64 {
            for shard in 0..64u64 {
                assert!(seen.insert(shard_seed(base, shard)), "collision");
            }
        }
        // And the streams actually differ.
        let a = shard_rng(1, 0).next_u64();
        let b = shard_rng(1, 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
