//! Optimal Local Hashing (OLH).
//!
//! Each user hashes their item into a small domain `g = ⌊e^ε⌋ + 1` with a
//! per-user seed, then runs GRR(ε) over the hashed domain and reports
//! `(seed, perturbed hash)`. Server-side, value `v` is *supported* by a
//! report whenever `hash(seed, v) == reported`, which happens with
//! probability `p* = p` for the true value and `q* = 1/g` for others (the
//! flipped-hash mass collapses to `1/g` in expectation).
//!
//! OLH matches OUE's variance with `O(log d)`-bit reports; the paper cites
//! it as the other state-of-the-art oracle (§VIII). The paper's experiments
//! use OUE/GRR, so OLH here serves the related-work comparison benches.

use rand::Rng;

use crate::hash::{seeded_hash, seeded_hash_from_state, seeded_hash_state};
use crate::{Eps, Error, Grr, Result};

/// A single OLH report: the user's hash seed and the GRR-perturbed hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OlhReport {
    /// Per-user hash seed (public).
    pub seed: u64,
    /// GRR-perturbed hash value in `[0, g)`.
    pub value: u32,
}

/// The Optimal Local Hashing mechanism over the domain `[0, d)`.
#[derive(Debug, Clone)]
pub struct Olh {
    d: u32,
    g: u32,
    inner: Grr,
}

impl Olh {
    /// Creates an OLH mechanism with the optimal hash range `g = ⌊e^ε⌋+1`.
    pub fn new(eps: Eps, d: u32) -> Result<Self> {
        if d == 0 {
            return Err(Error::EmptyDomain);
        }
        // Guard the cast: beyond ~2^31, g stops mattering and GRR would be
        // chosen by the adaptive rule anyway.
        let g = (eps.exp().floor() as u64 + 1).min(u32::MAX as u64) as u32;
        let g = g.max(2);
        Ok(Olh {
            d,
            g,
            inner: Grr::new(eps, g)?,
        })
    }

    /// Item domain size.
    #[inline]
    pub fn domain_size(&self) -> u32 {
        self.d
    }

    /// Hash range `g`.
    #[inline]
    pub fn g(&self) -> u32 {
        self.g
    }

    /// Probability a report supports its own true value.
    #[inline]
    pub fn support_p(&self) -> f64 {
        self.inner.p()
    }

    /// Probability a report supports an unrelated value.
    #[inline]
    pub fn support_q(&self) -> f64 {
        1.0 / self.g as f64
    }

    /// Report size in bits: 64-bit seed + hashed value.
    #[inline]
    pub fn report_bits(&self) -> usize {
        64 + (32 - (self.g - 1).leading_zeros()).max(1) as usize
    }

    /// Privatizes item `v` with a fresh random seed.
    pub fn privatize<R: Rng + ?Sized>(&self, v: u32, rng: &mut R) -> Result<OlhReport> {
        if v >= self.d {
            return Err(Error::ValueOutOfDomain {
                value: v as u64,
                domain: self.d as u64,
            });
        }
        let seed: u64 = rng.random();
        let hashed = seeded_hash(seed, v as u64, self.g as u64) as u32;
        Ok(OlhReport {
            seed,
            value: self.inner.perturb(hashed, rng)?,
        })
    }

    /// Whether `report` supports domain value `v`.
    #[inline]
    pub fn supports(&self, report: &OlhReport, v: u32) -> bool {
        seeded_hash(report.seed, v as u64, self.g as u64) as u32 == report.value
    }

    /// Adds `report`'s support over the full domain into `counts[v]`,
    /// hoisting the per-seed hash state out of the candidate scan (the
    /// blocked aggregation path — half the mixing work of calling
    /// [`Olh::supports`] per value).
    ///
    /// # Panics
    /// Panics if `counts.len() != d`.
    pub fn support_counts_into(&self, report: &OlhReport, counts: &mut [u64]) {
        assert_eq!(
            counts.len(),
            self.d as usize,
            "counts slice must cover the item domain"
        );
        let state = seeded_hash_state(report.seed);
        let g = self.g as u64;
        let target = report.value as u64;
        for (v, c) in counts.iter_mut().enumerate() {
            *c += u64::from(seeded_hash_from_state(state, v as u64, g) == target);
        }
    }

    /// Adds a whole block of reports' support over the full domain into
    /// `counts` — [`Olh::support_counts_into`] with the per-report seed
    /// states hoisted four at a time.
    ///
    /// Each pass pre-mixes four reports' seed states and perturbed-hash
    /// targets into registers ("hash each seed once into its `g`-bucket
    /// scatter state") and then scans the domain once, scattering all four
    /// reports' candidate matches per value with a single counter
    /// read-modify-write. The four hash chains are independent, so the
    /// scan runs at mixer throughput instead of one
    /// load→hash→compare→store round-trip per (report, value) pair, and
    /// `counts` traffic drops 4×. Totals are exact `u64` sums — identical
    /// to absorbing the reports one by one in any order.
    ///
    /// # Panics
    /// Panics if `counts.len() != d`.
    pub fn support_counts_block_into(&self, reports: &[OlhReport], counts: &mut [u64]) {
        assert_eq!(
            counts.len(),
            self.d as usize,
            "counts slice must cover the item domain"
        );
        let g = self.g as u64;
        let mut quads = reports.chunks_exact(4);
        for quad in &mut quads {
            let (s0, t0) = (seeded_hash_state(quad[0].seed), quad[0].value as u64);
            let (s1, t1) = (seeded_hash_state(quad[1].seed), quad[1].value as u64);
            let (s2, t2) = (seeded_hash_state(quad[2].seed), quad[2].value as u64);
            let (s3, t3) = (seeded_hash_state(quad[3].seed), quad[3].value as u64);
            for (v, c) in counts.iter_mut().enumerate() {
                let v = v as u64;
                *c += u64::from(seeded_hash_from_state(s0, v, g) == t0)
                    + u64::from(seeded_hash_from_state(s1, v, g) == t1)
                    + u64::from(seeded_hash_from_state(s2, v, g) == t2)
                    + u64::from(seeded_hash_from_state(s3, v, g) == t3);
            }
        }
        for report in quads.remainder() {
            self.support_counts_into(report, counts);
        }
    }

    /// Support counts of a block of reports over an explicit candidate set:
    /// `counts[i]` = number of reports supporting `candidates[i]`. Reports
    /// are scanned once each with a pre-mixed seed state, so the cost is
    /// `O(|reports|·|candidates|)` single-round hashes instead of
    /// re-deriving the seed state per (report, candidate) pair.
    pub fn support_counts(&self, reports: &[OlhReport], candidates: &[u32]) -> Vec<u64> {
        let g = self.g as u64;
        let mut counts = vec![0u64; candidates.len()];
        for report in reports {
            let state = seeded_hash_state(report.seed);
            let target = report.value as u64;
            for (&v, c) in candidates.iter().zip(counts.iter_mut()) {
                *c += u64::from(seeded_hash_from_state(state, v as u64, g) == target);
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn g_matches_formula() {
        assert_eq!(Olh::new(eps(1.0), 100).unwrap().g(), 3); // floor(e)+1
        assert_eq!(Olh::new(eps(2.0), 100).unwrap().g(), 8); // floor(e²)+1
    }

    #[test]
    fn support_probabilities_empirical() {
        let m = Olh::new(eps(1.0), 50).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mut own = 0usize;
        let mut other = 0usize;
        for _ in 0..n {
            let r = m.privatize(7, &mut rng).unwrap();
            if m.supports(&r, 7) {
                own += 1;
            }
            if m.supports(&r, 8) {
                other += 1;
            }
        }
        let own_rate = own as f64 / n as f64;
        let other_rate = other as f64 / n as f64;
        assert!(
            (own_rate - m.support_p()).abs() < 0.01,
            "own {own_rate} vs p* {}",
            m.support_p()
        );
        assert!(
            (other_rate - m.support_q()).abs() < 0.01,
            "other {other_rate} vs q* {}",
            m.support_q()
        );
    }

    #[test]
    fn unbiased_estimate_end_to_end() {
        use crate::calibrate::unbiased_count;
        let d = 20u32;
        let m = Olh::new(eps(2.0), d).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 40_000usize;
        // 70% hold item 2, 30% item 9.
        let mut support = vec![0f64; d as usize];
        for u in 0..n {
            let item = if u % 10 < 7 { 2 } else { 9 };
            let r = m.privatize(item, &mut rng).unwrap();
            for v in 0..d {
                if m.supports(&r, v) {
                    support[v as usize] += 1.0;
                }
            }
        }
        let est2 = unbiased_count(support[2], n as f64, m.support_p(), m.support_q());
        let est9 = unbiased_count(support[9], n as f64, m.support_p(), m.support_q());
        assert!(
            (est2 - 0.7 * n as f64).abs() < 0.05 * n as f64,
            "est2={est2}"
        );
        assert!(
            (est9 - 0.3 * n as f64).abs() < 0.05 * n as f64,
            "est9={est9}"
        );
    }

    #[test]
    fn blocked_support_counting_matches_supports() {
        let m = Olh::new(eps(1.5), 40).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let reports: Vec<OlhReport> = (0..200)
            .map(|v| m.privatize(v % 40, &mut rng).unwrap())
            .collect();
        // Reference: the per-pair `supports` scan.
        let mut expect = vec![0u64; 40];
        for r in &reports {
            for v in 0..40u32 {
                if m.supports(r, v) {
                    expect[v as usize] += 1;
                }
            }
        }
        // Full-domain blocked path.
        let mut got = vec![0u64; 40];
        for r in &reports {
            m.support_counts_into(r, &mut got);
        }
        assert_eq!(got, expect);
        // Four-wide scatter path, at block sizes exercising both the quad
        // loop and the remainder tail.
        for take in [0usize, 1, 3, 4, 5, 199, 200] {
            let mut block = vec![0u64; 40];
            m.support_counts_block_into(&reports[..take], &mut block);
            let mut reference = vec![0u64; 40];
            for r in &reports[..take] {
                m.support_counts_into(r, &mut reference);
            }
            assert_eq!(block, reference, "block of {take}");
        }
        // Candidate-set blocked path over a subset.
        let cands: Vec<u32> = vec![0, 7, 13, 39];
        let sub = m.support_counts(&reports, &cands);
        for (i, &v) in cands.iter().enumerate() {
            assert_eq!(sub[i], expect[v as usize], "candidate {v}");
        }
    }

    #[test]
    fn rejects_out_of_domain() {
        let m = Olh::new(eps(1.0), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.privatize(4, &mut rng).is_err());
    }

    #[test]
    fn report_bits_accounting() {
        let m = Olh::new(eps(1.0), 1000).unwrap(); // g = 3 → 2 bits + 64 seed
        assert_eq!(m.report_bits(), 66);
    }
}
