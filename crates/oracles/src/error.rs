//! Error type shared by the oracle substrate and the layers above it.

use std::fmt;
use std::sync::Arc;

/// Errors produced while constructing or running LDP mechanisms.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Error {
    /// A privacy budget was not a finite positive number.
    InvalidBudget(f64),
    /// A domain was empty or otherwise unusable.
    EmptyDomain,
    /// An input value fell outside the mechanism's domain.
    ValueOutOfDomain {
        /// The offending value.
        value: u64,
        /// The (exclusive) domain size.
        domain: u64,
    },
    /// A report was fed to an aggregator built for a different mechanism or
    /// domain size.
    ReportMismatch {
        /// What the aggregator expected (mechanism / length description).
        expected: &'static str,
    },
    /// A configuration parameter was out of range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A streaming source failed to produce items (I/O or parse failure).
    Source {
        /// What went wrong, including the position (file, line) if known.
        message: String,
    },
    /// The distributed reducer's transport failed: socket I/O, a
    /// truncated/oversized/malformed frame, or a worker that vanished
    /// mid-fold. Chains the underlying [`std::io::Error`] as its
    /// [`source`](std::error::Error::source).
    Transport {
        /// What the reducer was doing when the transport failed.
        context: String,
        /// The underlying I/O error (`Arc` keeps the enum cloneable).
        source: Arc<std::io::Error>,
    },
    /// The distributed reducer lost workers mid-fold and could not
    /// recover the orphaned shard assignments — typically because the
    /// report source cannot [`rewind`](crate::stream::ReportSource::rewind),
    /// so the lost shards cannot be replayed anywhere. Chains the worker
    /// failure that exhausted recovery as its
    /// [`source`](std::error::Error::source).
    Unrecoverable {
        /// What recovery was attempted and why it was impossible.
        context: String,
        /// The failure that made recovery necessary (boxed: the enum
        /// stays small and cloneable).
        cause: Box<Error>,
    },
}

impl Error {
    /// A [`Error::Transport`] from an I/O error and a short description of
    /// the operation that failed.
    pub fn transport(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Transport {
            context: context.into(),
            source: Arc::new(source),
        }
    }

    /// A [`Error::Transport`] for a protocol violation (malformed frame,
    /// bad shard routing, …) with no lower-level I/O cause.
    pub fn protocol(context: impl Into<String>) -> Self {
        Error::transport(
            context,
            std::io::Error::new(std::io::ErrorKind::InvalidData, "protocol violation"),
        )
    }

    /// An [`Error::Unrecoverable`] from a description of the failed
    /// recovery and the error that triggered it.
    pub fn unrecoverable(context: impl Into<String>, cause: Error) -> Self {
        Error::Unrecoverable {
            context: context.into(),
            cause: Box::new(cause),
        }
    }
}

impl PartialEq for Error {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Error::InvalidBudget(a), Error::InvalidBudget(b)) => a == b,
            (Error::EmptyDomain, Error::EmptyDomain) => true,
            (
                Error::ValueOutOfDomain {
                    value: v1,
                    domain: d1,
                },
                Error::ValueOutOfDomain {
                    value: v2,
                    domain: d2,
                },
            ) => v1 == v2 && d1 == d2,
            (Error::ReportMismatch { expected: a }, Error::ReportMismatch { expected: b }) => {
                a == b
            }
            (
                Error::InvalidParameter {
                    name: n1,
                    constraint: c1,
                },
                Error::InvalidParameter {
                    name: n2,
                    constraint: c2,
                },
            ) => n1 == n2 && c1 == c2,
            (Error::Source { message: a }, Error::Source { message: b }) => a == b,
            // io::Error is not PartialEq; compare the stable parts.
            (
                Error::Transport {
                    context: c1,
                    source: s1,
                },
                Error::Transport {
                    context: c2,
                    source: s2,
                },
            ) => c1 == c2 && s1.kind() == s2.kind(),
            (
                Error::Unrecoverable {
                    context: c1,
                    cause: e1,
                },
                Error::Unrecoverable {
                    context: c2,
                    cause: e2,
                },
            ) => c1 == c2 && e1 == e2,
            _ => false,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidBudget(eps) => {
                write!(
                    f,
                    "privacy budget must be a finite positive number, got {eps}"
                )
            }
            Error::EmptyDomain => write!(f, "domain must contain at least one value"),
            Error::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} outside domain [0, {domain})")
            }
            Error::ReportMismatch { expected } => {
                write!(f, "report does not match aggregator (expected {expected})")
            }
            Error::InvalidParameter { name, constraint } => {
                write!(f, "parameter `{name}` violates constraint: {constraint}")
            }
            Error::Source { message } => write!(f, "stream source failed: {message}"),
            Error::Transport { context, source } => {
                write!(f, "distributed transport failed while {context}: {source}")
            }
            Error::Unrecoverable { context, cause } => {
                write!(
                    f,
                    "distributed fold failed without recovery ({context}): {cause}"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Transport { source, .. } => Some(source.as_ref()),
            Error::Unrecoverable { cause, .. } => Some(cause.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            Error::InvalidBudget(-1.0).to_string(),
            Error::EmptyDomain.to_string(),
            Error::ValueOutOfDomain {
                value: 9,
                domain: 4,
            }
            .to_string(),
            Error::ReportMismatch {
                expected: "OUE bits of length 5",
            }
            .to_string(),
            Error::InvalidParameter {
                name: "k",
                constraint: "k >= 1",
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("-1"));
        assert!(msgs[2].contains("9") && msgs[2].contains("4"));
        assert!(msgs[3].contains("OUE"));
        assert!(msgs[4].contains("k"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::EmptyDomain);
    }

    #[test]
    fn transport_chains_the_io_source() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "cut off");
        let err = Error::transport("reading a partial", io);
        let shown = err.to_string();
        assert!(shown.contains("reading a partial"), "{shown}");
        assert!(shown.contains("cut off"), "{shown}");
        let source = err.source().expect("io source is chained");
        assert!(source.to_string().contains("cut off"));
        // Other variants chain nothing.
        assert!(Error::EmptyDomain.source().is_none());
    }

    #[test]
    fn transport_equality_compares_context_and_kind() {
        let a = Error::transport(
            "x",
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "one"),
        );
        let b = Error::transport(
            "x",
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "two"),
        );
        let c = Error::transport(
            "y",
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "one"),
        );
        assert_eq!(a, b, "same context + kind compare equal");
        assert_ne!(a, c);
        assert_ne!(a, Error::EmptyDomain);
        // The protocol shorthand is InvalidData-kinded.
        assert!(matches!(
            Error::protocol("bad frame"),
            Error::Transport { .. }
        ));
    }

    #[test]
    fn unrecoverable_chains_its_cause() {
        use std::error::Error as _;
        let cause = Error::transport(
            "collecting partials",
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "worker vanished"),
        );
        let err = Error::unrecoverable(
            "2 shard assignments lost and the source cannot rewind",
            cause.clone(),
        );
        let shown = err.to_string();
        assert!(shown.contains("cannot rewind"), "{shown}");
        assert!(shown.contains("worker vanished"), "{shown}");
        assert_eq!(
            err.source().expect("cause is chained").to_string(),
            cause.to_string()
        );
        assert_eq!(
            err,
            Error::unrecoverable(
                "2 shard assignments lost and the source cannot rewind",
                cause.clone()
            )
        );
        assert_ne!(err, Error::unrecoverable("other context", cause));
    }
}
