//! Error type shared by the oracle substrate and the layers above it.

use std::fmt;

/// Errors produced while constructing or running LDP mechanisms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A privacy budget was not a finite positive number.
    InvalidBudget(f64),
    /// A domain was empty or otherwise unusable.
    EmptyDomain,
    /// An input value fell outside the mechanism's domain.
    ValueOutOfDomain {
        /// The offending value.
        value: u64,
        /// The (exclusive) domain size.
        domain: u64,
    },
    /// A report was fed to an aggregator built for a different mechanism or
    /// domain size.
    ReportMismatch {
        /// What the aggregator expected (mechanism / length description).
        expected: &'static str,
    },
    /// A configuration parameter was out of range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A streaming source failed to produce items (I/O or parse failure).
    Source {
        /// What went wrong, including the position (file, line) if known.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidBudget(eps) => {
                write!(
                    f,
                    "privacy budget must be a finite positive number, got {eps}"
                )
            }
            Error::EmptyDomain => write!(f, "domain must contain at least one value"),
            Error::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} outside domain [0, {domain})")
            }
            Error::ReportMismatch { expected } => {
                write!(f, "report does not match aggregator (expected {expected})")
            }
            Error::InvalidParameter { name, constraint } => {
                write!(f, "parameter `{name}` violates constraint: {constraint}")
            }
            Error::Source { message } => write!(f, "stream source failed: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            Error::InvalidBudget(-1.0).to_string(),
            Error::EmptyDomain.to_string(),
            Error::ValueOutOfDomain {
                value: 9,
                domain: 4,
            }
            .to_string(),
            Error::ReportMismatch {
                expected: "OUE bits of length 5",
            }
            .to_string(),
            Error::InvalidParameter {
                name: "k",
                constraint: "k >= 1",
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("-1"));
        assert!(msgs[2].contains("9") && msgs[2].contains("4"));
        assert!(msgs[3].contains("OUE"));
        assert!(msgs[4].contains("k"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::EmptyDomain);
    }
}
