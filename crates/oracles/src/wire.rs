//! Byte-level codecs for the distributed reducer.
//!
//! A distributed [`Executor`](crate::exec::Executor) backend has to move
//! three kinds of data between coordinator and worker processes:
//!
//! * **stage descriptors** — enough configuration to reconstruct a fold
//!   stage (mechanism parameters, candidate sets) in another process,
//! * **stream items** — the raw per-user inputs a fold consumes
//!   (label-item pairs, candidate indices), and
//! * **accumulator partials** — the mergeable state a worker ships back
//!   (counter vectors, report tallies).
//!
//! This module defines the traits for all three, deliberately hand-rolled
//! (no serde — the build environment vendors its dependencies) and
//! deliberately boring: little-endian fixed-width integers, `u32` length
//! prefixes, no varints, no framing. Framing (length-prefixed messages over
//! a socket) lives in the `mcim-dist` crate; these codecs only define the
//! *payload* bytes, so they can be unit-tested without any I/O.
//!
//! Decoding is fail-fast: every read is bounds-checked against the buffer
//! and a truncated or over-long payload surfaces as
//! [`Error::Transport`] — a malformed frame must never panic or silently
//! mis-aggregate.
//!
//! Two traits split the two decode shapes:
//!
//! * [`Wire`] — self-contained values (items, stage parameters): decode
//!   constructs the value from bytes alone.
//! * [`WireState`] — accumulator partials: decode loads state **into a
//!   clone of the stage's template**, so mechanism configuration (domain
//!   sizes, probabilities) never travels with every partial and shape
//!   mismatches are detected against the template.

use crate::{Error, Result};

/// A bounds-checked cursor over a received payload.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a payload buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(truncated());
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Errors unless the payload was consumed exactly — trailing garbage in
    /// a frame means the two sides disagree about the codec.
    pub fn finish(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(Error::protocol(format!(
                "decoding a payload ({} trailing bytes)",
                self.remaining()
            )))
        }
    }
}

fn truncated() -> Error {
    Error::transport(
        "decoding a payload",
        std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "payload truncated"),
    )
}

/// A self-contained value with a stable byte encoding: stream items and
/// stage parameters.
///
/// `put` followed by `take` must round-trip exactly; `take` must reject
/// (never panic on) truncated or malformed bytes.
pub trait Wire: Sized {
    /// Appends this value's encoding to `buf`.
    fn put(&self, buf: &mut Vec<u8>);

    /// Decodes one value from the reader.
    fn take(r: &mut WireReader<'_>) -> Result<Self>;
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn put(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn take(r: &mut WireReader<'_>) -> Result<Self> {
                let bytes = r.take_bytes(std::mem::size_of::<$t>())?;
                // take_bytes returned exactly size_of bytes, so the
                // conversion cannot fail; map it anyway — decode paths
                // must be statically panic-free.
                let sized = bytes.try_into().map_err(|_| truncated())?;
                Ok(<$t>::from_le_bytes(sized))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64);

impl Wire for f64 {
    fn put(&self, buf: &mut Vec<u8>) {
        self.to_bits().put(buf);
    }
    fn take(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(f64::from_bits(u64::take(r)?))
    }
}

impl Wire for bool {
    fn put(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn take(r: &mut WireReader<'_>) -> Result<Self> {
        match u8::take(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::protocol(format!(
                "decoding a bool (byte {other} is neither 0 nor 1)"
            ))),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.put(buf);
            }
        }
    }
    fn take(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match bool::take(r)? {
            false => None,
            true => Some(T::take(r)?),
        })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).put(buf);
        for v in self {
            v.put(buf);
        }
    }
    fn take(r: &mut WireReader<'_>) -> Result<Self> {
        let len = u32::take(r)? as usize;
        // Every element costs at least one byte, so a length beyond the
        // remaining payload is malformed — reject before allocating.
        if len > r.remaining() {
            return Err(Error::protocol(format!(
                "decoding a sequence (declares {len} elements, {} bytes remain)",
                r.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::take(r)?);
        }
        Ok(out)
    }
}

impl Wire for String {
    fn put(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).put(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn take(r: &mut WireReader<'_>) -> Result<Self> {
        let len = u32::take(r)? as usize;
        let bytes = r.take_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::protocol("decoding a string (invalid UTF-8)"))
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, buf: &mut Vec<u8>) {
        self.0.put(buf);
        self.1.put(buf);
    }
    fn take(r: &mut WireReader<'_>) -> Result<Self> {
        Ok((A::take(r)?, B::take(r)?))
    }
}

/// Mergeable accumulator state that can cross a process boundary.
///
/// `save` writes only the *mutable* state (counters, tallies); `load`
/// overwrites the state of `self` — a clone of the stage's template — with
/// the decoded bytes, erroring on any shape mismatch. Mechanism
/// configuration is reconstructed from the stage descriptor on the far
/// side, never re-shipped with every partial.
pub trait WireState {
    /// Appends this accumulator's mergeable state to `buf`.
    fn save(&self, buf: &mut Vec<u8>);

    /// Overwrites `self`'s state with the decoded bytes.
    fn load(&mut self, r: &mut WireReader<'_>) -> Result<()>;
}

impl WireState for u64 {
    fn save(&self, buf: &mut Vec<u8>) {
        self.put(buf);
    }
    fn load(&mut self, r: &mut WireReader<'_>) -> Result<()> {
        *self = u64::take(r)?;
        Ok(())
    }
}

impl WireState for f64 {
    fn save(&self, buf: &mut Vec<u8>) {
        self.put(buf);
    }
    fn load(&mut self, r: &mut WireReader<'_>) -> Result<()> {
        *self = f64::take(r)?;
        Ok(())
    }
}

/// Fixed-shape counter blocks: the element count is part of the template's
/// shape, so a partial with a different length is rejected.
impl WireState for Vec<u64> {
    fn save(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).put(buf);
        for v in self {
            v.put(buf);
        }
    }
    fn load(&mut self, r: &mut WireReader<'_>) -> Result<()> {
        let len = u32::take(r)? as usize;
        if len != self.len() {
            return Err(Error::ReportMismatch {
                expected: "partial counter block of the template's length",
            });
        }
        for v in self.iter_mut() {
            *v = u64::take(r)?;
        }
        Ok(())
    }
}

impl<A: WireState, B: WireState> WireState for (A, B) {
    fn save(&self, buf: &mut Vec<u8>) {
        self.0.save(buf);
        self.1.save(buf);
    }
    fn load(&mut self, r: &mut WireReader<'_>) -> Result<()> {
        self.0.load(r)?;
        self.1.load(r)
    }
}

/// A serialized stage descriptor: the registry key plus the parameter
/// payload a worker needs to reconstruct the fold stage.
///
/// Returned by [`Stage::spec`](crate::exec::Stage::spec); decoded by the
/// matching [`StageDecode`](crate::exec::StageDecode) implementation on
/// the worker side.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Registry key naming the stage implementation (e.g.
    /// `"fw/pts-cp"`). Must be unique across the workspace.
    pub kind: &'static str,
    /// Encoded stage parameters ([`Wire`] values).
    pub payload: Vec<u8>,
    /// The [`RngContract`](crate::exec::RngContract) version
    /// ([`version()`](crate::exec::RngContract::version)) the emitting
    /// coordinator folds under. Travels in the dist Job frame so a worker
    /// on a different contract refuses the job instead of silently folding
    /// a different stream.
    pub contract: u32,
}

impl StageSpec {
    /// Builds a spec from a kind and an encoding closure, stamped with the
    /// current build's RNG contract.
    pub fn new(kind: &'static str, encode: impl FnOnce(&mut Vec<u8>)) -> Self {
        let mut payload = Vec::new();
        encode(&mut payload);
        StageSpec {
            kind,
            payload,
            contract: crate::exec::RngContract::CURRENT_VERSION,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.put(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(T::take(&mut r).unwrap(), v);
        r.finish().unwrap();
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(0xA5u8);
        round_trip(54321u16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-1.25f64);
        round_trip(f64::NAN.to_bits()); // NaN bits survive as u64
        round_trip(true);
        round_trip(false);
        round_trip(Some(7u32));
        round_trip(None::<u32>);
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip("héllo".to_string());
        round_trip((3u32, Some(9u64)));
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut buf = Vec::new();
        0xAABBCCDDu32.put(&mut buf);
        for cut in 0..4 {
            let mut r = WireReader::new(&buf[..cut]);
            let err = u32::take(&mut r).unwrap_err();
            assert!(matches!(err, Error::Transport { .. }), "cut={cut}: {err}");
        }
    }

    #[test]
    fn oversized_sequence_length_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        u32::MAX.put(&mut buf); // claims 4 billion elements, provides zero
        let mut r = WireReader::new(&buf);
        let err = Vec::<u64>::take(&mut r).unwrap_err();
        assert!(matches!(err, Error::Transport { .. }), "{err}");
    }

    #[test]
    fn bool_and_string_reject_malformed_bytes() {
        let mut r = WireReader::new(&[2u8]);
        assert!(bool::take(&mut r).is_err());
        let mut buf = Vec::new();
        2u32.put(&mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
        assert!(String::take(&mut WireReader::new(&buf)).is_err());
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut buf = Vec::new();
        1u8.put(&mut buf);
        2u8.put(&mut buf);
        let mut r = WireReader::new(&buf);
        u8::take(&mut r).unwrap();
        assert!(r.finish().is_err());
        u8::take(&mut r).unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn counter_state_loads_into_matching_shape_only() {
        let state = vec![5u64, 6, 7];
        let mut buf = Vec::new();
        state.save(&mut buf);
        let mut same = vec![0u64; 3];
        same.load(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(same, state);
        let mut wrong = vec![0u64; 4];
        let err = wrong.load(&mut WireReader::new(&buf)).unwrap_err();
        assert!(matches!(err, Error::ReportMismatch { .. }), "{err}");
    }

    #[test]
    fn tuple_state_round_trips() {
        let partial = (vec![1u64, 2], 9u64);
        let mut buf = Vec::new();
        partial.save(&mut buf);
        let mut out = (vec![0u64, 0], 0u64);
        out.load(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(out, partial);
    }

    #[test]
    fn stage_spec_builder() {
        let spec = StageSpec::new("test/x", |buf| {
            7u32.put(buf);
        });
        assert_eq!(spec.kind, "test/x");
        assert_eq!(u32::take(&mut WireReader::new(&spec.payload)).unwrap(), 7);
        assert_eq!(
            spec.contract,
            crate::exec::RngContract::CURRENT_VERSION,
            "specs are stamped with the build's contract"
        );
    }
}
