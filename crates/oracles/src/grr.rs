//! Generalized Random Response (GRR), a.k.a. k-RR / direct encoding.
//!
//! Given an item `v` from a domain of size `d` and budget ε (§II-B):
//!
//! ```text
//! Pr[GRR(v) = v]  = p = e^ε / (e^ε + d − 1)
//! Pr[GRR(v) = v′] = q = 1   / (e^ε + d − 1)   for every v′ ≠ v
//! ```
//!
//! GRR transmits `⌈log₂ d⌉` bits and beats unary encoding when the domain is
//! small (`d < 3e^ε + 2`, the adaptive rule). The paper uses GRR for *label*
//! perturbation in the PTS framework and inside correlated perturbation.

use rand::Rng;

use crate::{Eps, Error, Result};

/// The Generalized Random Response mechanism over the domain `[0, d)`.
#[derive(Debug, Clone)]
pub struct Grr {
    d: u32,
    eps: Eps,
    p: f64,
    q: f64,
}

impl Grr {
    /// Creates a GRR mechanism for domain size `d ≥ 1`.
    ///
    /// With `d == 1` the output is constant (and trivially private).
    pub fn new(eps: Eps, d: u32) -> Result<Self> {
        if d == 0 {
            return Err(Error::EmptyDomain);
        }
        let e = eps.exp();
        let denom = e + d as f64 - 1.0;
        Ok(Grr {
            d,
            eps,
            p: e / denom,
            q: 1.0 / denom,
        })
    }

    /// Domain size.
    #[inline]
    pub fn domain_size(&self) -> u32 {
        self.d
    }

    /// Probability of keeping the true value.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of reporting any particular other value.
    #[inline]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The privacy budget this mechanism satisfies.
    #[inline]
    pub fn eps(&self) -> Eps {
        self.eps
    }

    /// Report size in bits (communication accounting).
    #[inline]
    pub fn report_bits(&self) -> usize {
        (32 - (self.d.max(1) - 1).leading_zeros()).max(1) as usize
    }

    /// Perturbs `v`, keeping it with probability `p` and otherwise replacing
    /// it with a uniform draw from the *other* `d − 1` values.
    pub fn perturb<R: Rng + ?Sized>(&self, v: u32, rng: &mut R) -> Result<u32> {
        if v >= self.d {
            return Err(Error::ValueOutOfDomain {
                value: v as u64,
                domain: self.d as u64,
            });
        }
        if self.d == 1 {
            return Ok(0);
        }
        if rng.random_bool(self.p) {
            Ok(v)
        } else {
            // Uniform over the d−1 values ≠ v: draw in [0, d−1) and skip v.
            let r = rng.random_range(0..self.d - 1);
            Ok(if r >= v { r + 1 } else { r })
        }
    }

    /// Exact probability that input `v` produces output `out` — used by the
    /// privacy-enumeration tests and the analysis module.
    pub fn response_probability(&self, v: u32, out: u32) -> f64 {
        if self.d == 1 {
            return 1.0;
        }
        if v == out {
            self.p
        } else {
            self.q
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn probabilities_sum_to_one() {
        let g = Grr::new(eps(1.3), 17).unwrap();
        let total = g.p() + 16.0 * g.q();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn satisfies_ldp_ratio() {
        for (e, d) in [(0.5, 4u32), (1.0, 10), (4.0, 100)] {
            let g = Grr::new(eps(e), d).unwrap();
            // Worst case ratio over outputs for any pair of inputs is p/q.
            assert!(g.p() / g.q() <= e.exp() * (1.0 + 1e-12));
            assert!(
                (g.p() / g.q() - e.exp()).abs() < 1e-9,
                "GRR should be tight"
            );
        }
    }

    #[test]
    fn rejects_empty_domain_and_oob_values() {
        assert!(Grr::new(eps(1.0), 0).is_err());
        let g = Grr::new(eps(1.0), 5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(g.perturb(5, &mut rng).is_err());
        assert!(g.perturb(4, &mut rng).is_ok());
    }

    #[test]
    fn singleton_domain_is_constant() {
        let g = Grr::new(eps(1.0), 1).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(g.perturb(0, &mut rng).unwrap(), 0);
    }

    #[test]
    fn empirical_distribution_matches_p_q() {
        let g = Grr::new(eps(2.0), 8).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mut counts = [0u32; 8];
        for _ in 0..n {
            counts[g.perturb(3, &mut rng).unwrap() as usize] += 1;
        }
        let kept = counts[3] as f64 / n as f64;
        assert!((kept - g.p()).abs() < 0.005, "kept={kept} p={}", g.p());
        for (v, &c) in counts.iter().enumerate() {
            if v != 3 {
                let rate = c as f64 / n as f64;
                assert!(
                    (rate - g.q()).abs() < 0.005,
                    "v={v} rate={rate} q={}",
                    g.q()
                );
            }
        }
    }

    #[test]
    fn flip_is_uniform_over_other_values() {
        // Condition on "value changed": every other value equally likely.
        let g = Grr::new(eps(0.1), 5).unwrap(); // low eps → mostly flips
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[g.perturb(2, &mut rng).unwrap() as usize] += 1;
        }
        let others: Vec<u32> = (0..5).filter(|&v| v != 2).map(|v| counts[v]).collect();
        let mean = others.iter().sum::<u32>() as f64 / 4.0;
        for &c in &others {
            assert!((c as f64 - mean).abs() < mean * 0.05);
        }
    }

    #[test]
    fn report_bits_counts_domain_width() {
        assert_eq!(Grr::new(eps(1.0), 2).unwrap().report_bits(), 1);
        assert_eq!(Grr::new(eps(1.0), 3).unwrap().report_bits(), 2);
        assert_eq!(Grr::new(eps(1.0), 256).unwrap().report_bits(), 8);
        assert_eq!(Grr::new(eps(1.0), 257).unwrap().report_bits(), 9);
    }

    #[test]
    fn response_probability_enumerates_exactly() {
        let g = Grr::new(eps(1.0), 4).unwrap();
        for v in 0..4 {
            let total: f64 = (0..4).map(|o| g.response_probability(v, o)).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }
}
