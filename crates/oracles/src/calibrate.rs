//! Unbiased count calibration and analytic variances.
//!
//! Every LDP frequency oracle in this workspace reports with two
//! probabilities: `p` — the probability the *true* signal survives — and `q`
//! — the probability any *other* value is reported (GRR) or any other bit is
//! set (UE). The observed count of value `v` over `n` users then has
//! expectation `f(v)·p + (n − f(v))·q`, and the standard unbiased estimator
//! inverts that affine map (Wang et al., USENIX Security '17):
//!
//! ```text
//! f̂(v) = (c̃(v) − n·q) / (p − q)
//! ```
//!
//! The multi-class estimators of the paper (Eqs. 4 and 6) are built from
//! repeated applications of this primitive; they live in `mcim-core`.

/// Unbiased frequency estimate from an observed count.
///
/// `count` is the raw aggregated count of the value, `n` the number of
/// reports, `p`/`q` the mechanism's keep/flip probabilities.
///
/// Returns `NaN` if `p == q` (a degenerate mechanism that carries no
/// signal); callers constructing mechanisms through this crate can never
/// trigger that.
#[inline]
pub fn unbiased_count(count: f64, n: f64, p: f64, q: f64) -> f64 {
    (count - n * q) / (p - q)
}

/// Variance of the unbiased estimator for a value with true frequency `f`
/// among `n` reports (exact, from the Binomial mixture):
///
/// ```text
/// Var[f̂] = [f·p(1−p) + (n−f)·q(1−q)] / (p−q)²
/// ```
#[inline]
pub fn estimator_variance(f: f64, n: f64, p: f64, q: f64) -> f64 {
    (f * p * (1.0 - p) + (n - f) * q * (1.0 - q)) / ((p - q) * (p - q))
}

/// Approximate variance for a rare value (`f ≈ 0`), the form usually quoted
/// when comparing mechanisms (e.g. OUE's `4e^ε/(e^ε−1)²·n`).
#[inline]
pub fn estimator_variance_rare(n: f64, p: f64, q: f64) -> f64 {
    estimator_variance(0.0, n, p, q)
}

/// Clamps estimated frequencies to the feasible range `[0, n]`.
///
/// The unbiased estimator can go negative (or exceed `n`) through noise;
/// ranking tasks keep the raw value, but user-facing frequency tables
/// usually want the projection.
#[inline]
pub fn clamp_frequency(est: f64, n: f64) -> f64 {
    est.clamp(0.0, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_inverts_expectation() {
        let (p, q) = (0.75, 0.25);
        let n = 1000.0;
        for f in [0.0, 100.0, 999.0] {
            let expected_count = f * p + (n - f) * q;
            let est = unbiased_count(expected_count, n, p, q);
            assert!((est - f).abs() < 1e-9, "f={f} est={est}");
        }
    }

    #[test]
    fn variance_is_positive_and_scales_with_n() {
        let v1 = estimator_variance(10.0, 1000.0, 0.5, 0.2);
        let v2 = estimator_variance(10.0, 2000.0, 0.5, 0.2);
        assert!(v1 > 0.0);
        assert!(v2 > v1);
    }

    #[test]
    fn rare_variance_matches_oue_closed_form() {
        // For OUE: p = 1/2, q = 1/(e^ε+1) ⇒ Var ≈ n·4e^ε/(e^ε−1)².
        let eps: f64 = 1.0;
        let e = eps.exp();
        let (p, q) = (0.5, 1.0 / (e + 1.0));
        let n = 10_000.0;
        let closed = n * 4.0 * e / ((e - 1.0) * (e - 1.0));
        let ours = estimator_variance_rare(n, p, q);
        assert!(
            (ours - closed).abs() / closed < 1e-12,
            "ours={ours} closed={closed}"
        );
    }

    #[test]
    fn clamp_restricts_range() {
        assert_eq!(clamp_frequency(-5.0, 100.0), 0.0);
        assert_eq!(clamp_frequency(42.0, 100.0), 42.0);
        assert_eq!(clamp_frequency(142.0, 100.0), 100.0);
    }
}
