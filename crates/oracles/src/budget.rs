//! Validated privacy budgets.
//!
//! The paper splits a total budget ε into ε₁ (label perturbation) and ε₂
//! (item perturbation) with ε = ε₁ + ε₂ (sequential composition, §IV-B).
//! [`Eps`] makes that explicit and keeps "budget is finite and positive" a
//! type-level invariant so mechanisms never have to re-validate.

use crate::{Error, Result};

/// A validated ε-LDP privacy budget (finite, strictly positive).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Eps(f64);

impl Eps {
    /// Creates a budget, rejecting non-finite or non-positive values.
    pub fn new(eps: f64) -> Result<Self> {
        if eps.is_finite() && eps > 0.0 {
            Ok(Eps(eps))
        } else {
            Err(Error::InvalidBudget(eps))
        }
    }

    /// The raw ε value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// `e^ε`, used pervasively in perturbation probabilities.
    #[inline]
    pub fn exp(self) -> f64 {
        self.0.exp()
    }

    /// Splits the budget into `(frac·ε, (1−frac)·ε)` for sequential
    /// composition. `frac` must lie strictly inside `(0, 1)`.
    ///
    /// This is the paper's ε = ε₁ + ε₂ split; Fig. 11 sweeps `frac`.
    pub fn split(self, frac: f64) -> Result<(Eps, Eps)> {
        if !(frac.is_finite() && frac > 0.0 && frac < 1.0) {
            return Err(Error::InvalidParameter {
                name: "frac",
                constraint: "0 < frac < 1",
            });
        }
        Ok((Eps(self.0 * frac), Eps(self.0 * (1.0 - frac))))
    }

    /// Splits the budget evenly, the paper's default (ε₁ = ε₂ = ε/2).
    pub fn halve(self) -> (Eps, Eps) {
        // Bit-identical to `split(0.5)` (0.5 and 1.0 − 0.5 are exact),
        // without routing through its fallible range check.
        (Eps(self.0 * 0.5), Eps(self.0 * 0.5))
    }

    /// Sum of two budgets (sequential composition in reverse).
    pub fn compose(self, other: Eps) -> Eps {
        Eps(self.0 + other.0)
    }
}

impl std::fmt::Display for Eps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_budgets() {
        assert!(Eps::new(0.0).is_err());
        assert!(Eps::new(-1.0).is_err());
        assert!(Eps::new(f64::NAN).is_err());
        assert!(Eps::new(f64::INFINITY).is_err());
        assert!(Eps::new(1e-9).is_ok());
    }

    #[test]
    fn split_sums_to_total() {
        let eps = Eps::new(3.0).unwrap();
        let (a, b) = eps.split(0.3).unwrap();
        assert!((a.value() + b.value() - 3.0).abs() < 1e-12);
        assert!((a.value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn split_rejects_degenerate_fractions() {
        let eps = Eps::new(1.0).unwrap();
        assert!(eps.split(0.0).is_err());
        assert!(eps.split(1.0).is_err());
        assert!(eps.split(-0.5).is_err());
        assert!(eps.split(f64::NAN).is_err());
    }

    #[test]
    fn halve_is_even() {
        let (a, b) = Eps::new(4.0).unwrap().halve();
        assert_eq!(a.value(), 2.0);
        assert_eq!(b.value(), 2.0);
    }

    #[test]
    fn compose_adds() {
        let a = Eps::new(1.5).unwrap();
        let b = Eps::new(0.5).unwrap();
        assert_eq!(a.compose(b).value(), 2.0);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Eps::new(2.0).unwrap().to_string(), "ε=2");
    }
}
