//! Count-mean sketch for frequency estimation over huge domains.
//!
//! The paper's introduction cites Apple's deployment ("Apple uses HCMS
//! mechanism to gather emoji usage statistics"). This module implements the
//! non-Hadamard *Count-Mean Sketch* (CMS) from the same Apple paper
//! (*Learning with Privacy at Scale*, 2017): each user samples one of `m`
//! hash functions, hashes her item into a width-`w` one-hot vector,
//! perturbs it with symmetric unary encoding, and reports
//! `(row index, w bits)` — `O(w)` bits regardless of the item domain size.
//!
//! Server-side, the sketch matrix accumulates calibrated cell estimates;
//! `estimate(item)` averages the item's cell across rows and removes the
//! `N/w` collision bias. Collisions make CMS biased low-variance rather
//! than exactly unbiased — the classic sketch trade-off; the tests document
//! the accuracy envelope.

use rand::Rng;

use crate::hash::seeded_hash;
use crate::{BitVec, Eps, Error, Result, UnaryEncoding};

/// A count-mean-sketch mechanism over item domain `[0, d)`.
#[derive(Debug, Clone)]
pub struct CountMeanSketch {
    d: u32,
    width: u32,
    rows: u32,
    /// Per-row hash seeds (public).
    seeds: Vec<u64>,
    ue: UnaryEncoding,
}

/// A CMS report: the sampled row and the perturbed one-hot row vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CmsReport {
    /// Which hash row the user sampled.
    pub row: u32,
    /// SUE-perturbed `width`-bit vector.
    pub bits: BitVec,
}

impl CmsReport {
    /// Communication cost in bits.
    pub fn size_bits(&self) -> usize {
        32 + self.bits.len()
    }
}

impl CountMeanSketch {
    /// Creates a sketch with `rows × width` cells. `width` should be large
    /// enough that collisions stay rare for the heavy items (`width ≫ k`).
    pub fn new(eps: Eps, d: u32, rows: u32, width: u32, seed: u64) -> Result<Self> {
        if d == 0 || rows == 0 || width < 2 {
            return Err(Error::InvalidParameter {
                name: "sketch shape",
                constraint: "d ≥ 1, rows ≥ 1, width ≥ 2",
            });
        }
        Ok(CountMeanSketch {
            d,
            width,
            rows,
            seeds: (0..rows as u64)
                .map(|r| seed ^ (r.wrapping_mul(0x9E37_79B9)))
                .collect(),
            ue: UnaryEncoding::symmetric(eps, width)?,
        })
    }

    /// Item domain size.
    #[inline]
    pub fn domain_size(&self) -> u32 {
        self.d
    }

    /// Sketch width `w`.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of hash rows `m`.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Report size in bits — independent of `d`.
    #[inline]
    pub fn report_bits(&self) -> usize {
        32 + self.width as usize
    }

    /// The cell an item hashes to in a row.
    #[inline]
    fn cell(&self, row: u32, item: u32) -> u32 {
        seeded_hash(self.seeds[row as usize], item as u64, self.width as u64) as u32
    }

    /// Privatizes one item: samples a row, hashes, perturbs.
    pub fn privatize<R: Rng + ?Sized>(&self, item: u32, rng: &mut R) -> Result<CmsReport> {
        if item >= self.d {
            return Err(Error::ValueOutOfDomain {
                value: item as u64,
                domain: self.d as u64,
            });
        }
        let row = rng.random_range(0..self.rows);
        let cell = self.cell(row, item);
        Ok(CmsReport {
            row,
            bits: self.ue.privatize(cell, rng)?,
        })
    }
}

/// Server-side sketch accumulation.
#[derive(Debug, Clone)]
pub struct CmsAggregator {
    sketch: CountMeanSketch,
    /// Raw bit counts per (row, cell).
    counts: Vec<u64>,
    /// Reports per row.
    row_totals: Vec<u64>,
    n: u64,
}

impl CmsAggregator {
    /// Creates an empty aggregator matching `sketch`.
    pub fn new(sketch: &CountMeanSketch) -> Self {
        CmsAggregator {
            counts: vec![0; (sketch.rows * sketch.width) as usize],
            row_totals: vec![0; sketch.rows as usize],
            sketch: sketch.clone(),
            n: 0,
        }
    }

    /// Absorbs one report.
    pub fn absorb(&mut self, report: &CmsReport) -> Result<()> {
        if report.row >= self.sketch.rows || report.bits.len() != self.sketch.width as usize {
            return Err(Error::ReportMismatch {
                expected: "CMS report matching the sketch shape",
            });
        }
        let base = (report.row * self.sketch.width) as usize;
        for i in report.bits.iter_ones() {
            self.counts[base + i] += 1;
        }
        self.row_totals[report.row as usize] += 1;
        self.n += 1;
        Ok(())
    }

    /// Number of absorbed reports.
    #[inline]
    pub fn report_count(&self) -> u64 {
        self.n
    }

    /// Estimates the frequency of `item`: the mean over rows of the
    /// calibrated cell count (scaled to the full population), minus the
    /// uniform collision bias `N/w`, rescaled by `w/(w−1)` so that a
    /// collision-free item is estimated without bias.
    pub fn estimate(&self, item: u32) -> Result<f64> {
        if item >= self.sketch.d {
            return Err(Error::ValueOutOfDomain {
                value: item as u64,
                domain: self.sketch.d as u64,
            });
        }
        Ok(self.estimate_in_domain(item))
    }

    /// [`estimate`](Self::estimate) after the domain check: `item` must be
    /// `< d` (private — the bound is enforced by both public callers).
    fn estimate_in_domain(&self, item: u32) -> f64 {
        let (p, q) = (self.sketch.ue.p(), self.sketch.ue.q());
        let w = self.sketch.width as f64;
        let mut acc = 0.0;
        let mut rows_used = 0u32;
        for row in 0..self.sketch.rows {
            let total = self.row_totals[row as usize] as f64;
            if total == 0.0 {
                continue;
            }
            let cell = self.sketch.cell(row, item);
            let raw = self.counts[(row * self.sketch.width + cell) as usize] as f64;
            // De-bias the SUE bit counts, scale the row's sample up to N.
            let debiased = (raw - total * q) / (p - q);
            acc += debiased * (self.n as f64 / total);
            rows_used += 1;
        }
        if rows_used == 0 {
            return 0.0;
        }
        let mean = acc / rows_used as f64;
        w / (w - 1.0) * (mean - self.n as f64 / w)
    }

    /// Estimates every item in `[0, d)` — O(d·rows).
    pub fn estimate_all(&self) -> Vec<f64> {
        (0..self.sketch.d)
            .map(|i| self.estimate_in_domain(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn shape_validation() {
        assert!(CountMeanSketch::new(eps(1.0), 0, 4, 64, 1).is_err());
        assert!(CountMeanSketch::new(eps(1.0), 100, 0, 64, 1).is_err());
        assert!(CountMeanSketch::new(eps(1.0), 100, 4, 1, 1).is_err());
        assert!(CountMeanSketch::new(eps(1.0), 100, 4, 64, 1).is_ok());
    }

    #[test]
    fn report_size_is_domain_independent() {
        let small = CountMeanSketch::new(eps(1.0), 100, 4, 128, 1).unwrap();
        let huge = CountMeanSketch::new(eps(1.0), 1_000_000, 4, 128, 1).unwrap();
        assert_eq!(small.report_bits(), huge.report_bits());
        assert_eq!(huge.report_bits(), 32 + 128);
    }

    #[test]
    fn estimates_recover_heavy_hitters_over_large_domain() {
        // Domain 100k, sketch 8 × 256: heavy items recovered within ~5% N.
        let d = 100_000u32;
        let sketch = CountMeanSketch::new(eps(2.0), d, 8, 256, 7).unwrap();
        let mut agg = CmsAggregator::new(&sketch);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 60_000;
        for u in 0..n {
            // 40% item 77777, 30% item 3, rest spread.
            let item = match u % 10 {
                0..=3 => 77_777,
                4..=6 => 3,
                _ => 1_000 + (u % 5_000) as u32,
            };
            agg.absorb(&sketch.privatize(item, &mut rng).unwrap())
                .unwrap();
        }
        let est_hot = agg.estimate(77_777).unwrap();
        let est_warm = agg.estimate(3).unwrap();
        let est_cold = agg.estimate(99_999).unwrap();
        let n = n as f64;
        assert!((est_hot - 0.4 * n).abs() < 0.06 * n, "hot {est_hot}");
        assert!((est_warm - 0.3 * n).abs() < 0.06 * n, "warm {est_warm}");
        assert!(est_cold.abs() < 0.06 * n, "cold {est_cold}");
        assert!(
            est_hot > est_warm && est_warm > est_cold,
            "ordering preserved"
        );
    }

    #[test]
    fn absorb_validates_shape() {
        let sketch = CountMeanSketch::new(eps(1.0), 100, 4, 64, 1).unwrap();
        let mut agg = CmsAggregator::new(&sketch);
        assert!(agg
            .absorb(&CmsReport {
                row: 4,
                bits: BitVec::zeros(64)
            })
            .is_err());
        assert!(agg
            .absorb(&CmsReport {
                row: 0,
                bits: BitVec::zeros(63)
            })
            .is_err());
    }

    #[test]
    fn empty_aggregator_estimates_zero() {
        let sketch = CountMeanSketch::new(eps(1.0), 100, 4, 64, 1).unwrap();
        let agg = CmsAggregator::new(&sketch);
        assert_eq!(agg.estimate(5).unwrap(), 0.0);
    }

    #[test]
    fn privacy_is_inherited_from_sue() {
        // The report is (public row choice, SUE(ε) vector); privacy reduces
        // to SUE's bound, which ue.rs verifies by enumeration. Here we
        // check the mechanism wires the right ε through.
        let sketch = CountMeanSketch::new(eps(1.7), 100, 4, 64, 1).unwrap();
        assert!((sketch.ue.effective_eps() - 1.7).abs() < 1e-9);
    }
}
