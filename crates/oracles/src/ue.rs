//! Unary encoding (one-hot) mechanisms: SUE and OUE.
//!
//! An item `v ∈ [0, d)` is encoded as a `d`-bit one-hot vector; each bit is
//! flipped independently (§II-B):
//!
//! ```text
//! Pr[B′[i] = 1] = p  if B[i] = 1
//! Pr[B′[i] = 1] = q  if B[i] = 0
//! ```
//!
//! * **Symmetric UE (SUE / basic RAPPOR)**: `p = e^{ε/2}/(e^{ε/2}+1)`,
//!   `q = 1 − p`.
//! * **Optimized UE (OUE)**: `p = 1/2`, `q = 1/(e^ε+1)` — minimizes the
//!   estimator variance for rare values (Wang et al.).
//!
//! Both satisfy ε-LDP with `ε = ln[p(1−q) / ((1−p)q)]` (Theorem 1 of the
//! paper, which re-uses this bound for validity perturbation).

use rand::Rng;

use crate::{BitVec, Eps, Error, Result};

/// Which UE parameterization to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UeKind {
    /// Symmetric flip probabilities (`p + q = 1`).
    Symmetric,
    /// Optimized-for-variance probabilities (`p = 1/2`).
    Optimized,
}

/// A unary-encoding mechanism over the domain `[0, d)`.
#[derive(Debug, Clone)]
pub struct UnaryEncoding {
    d: u32,
    eps: Eps,
    kind: UeKind,
    p: f64,
    q: f64,
}

impl UnaryEncoding {
    /// Creates an **OUE** mechanism (`p = 1/2`, `q = 1/(e^ε+1)`).
    pub fn optimized(eps: Eps, d: u32) -> Result<Self> {
        if d == 0 {
            return Err(Error::EmptyDomain);
        }
        Ok(UnaryEncoding {
            d,
            eps,
            kind: UeKind::Optimized,
            p: 0.5,
            q: 1.0 / (eps.exp() + 1.0),
        })
    }

    /// Creates a **SUE** mechanism (`p = e^{ε/2}/(e^{ε/2}+1)`, `q = 1 − p`).
    pub fn symmetric(eps: Eps, d: u32) -> Result<Self> {
        if d == 0 {
            return Err(Error::EmptyDomain);
        }
        let half = (eps.value() / 2.0).exp();
        let p = half / (half + 1.0);
        Ok(UnaryEncoding {
            d,
            eps,
            kind: UeKind::Symmetric,
            p,
            q: 1.0 - p,
        })
    }

    /// Domain size.
    #[inline]
    pub fn domain_size(&self) -> u32 {
        self.d
    }

    /// Probability a set bit stays set.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability a clear bit becomes set.
    #[inline]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The nominal privacy budget.
    #[inline]
    pub fn eps(&self) -> Eps {
        self.eps
    }

    /// Which parameterization this mechanism uses.
    #[inline]
    pub fn kind(&self) -> UeKind {
        self.kind
    }

    /// The exact ε this mechanism satisfies: `ln[p(1−q)/((1−p)q)]`.
    pub fn effective_eps(&self) -> f64 {
        ((self.p * (1.0 - self.q)) / ((1.0 - self.p) * self.q)).ln()
    }

    /// Report size in bits.
    #[inline]
    pub fn report_bits(&self) -> usize {
        self.d as usize
    }

    /// Fills `out` with an i.i.d. Bernoulli(`prob`) plane — **the**
    /// RNG-contract v2 sampler every UE path shares.
    ///
    /// Word-parallel ([`BitVec::fill_bernoulli_wordwise`]) when `prob` is
    /// dense enough for the bit-sliced sampler to beat geometric skipping,
    /// geometric ([`BitVec::fill_bernoulli`]) below
    /// [`UnaryEncoding::WORDWISE_MIN_Q`]. Because the cross-over depends
    /// only on `prob` (a mechanism parameter, never on data), every
    /// execution mode picks the same branch and consumes the RNG stream
    /// identically — this is what keeps sequential, batch, stream and
    /// distributed outputs bit-identical under contract v2.
    #[inline]
    fn fill_plane<R: Rng + ?Sized>(&self, prob: f64, out: &mut BitVec, rng: &mut R) {
        if prob >= Self::WORDWISE_MIN_Q {
            out.fill_bernoulli_wordwise(prob, rng);
        } else {
            out.fill_bernoulli(prob, rng);
        }
    }

    /// Encodes and perturbs item `v`.
    ///
    /// Draws its Bernoulli(`q`) noise plane through the shared contract-v2
    /// sampler, so a per-report loop over `privatize` consumes the RNG
    /// stream exactly like [`UnaryEncoding::privatize_into`] — the batch,
    /// stream and distributed paths reproduce this output bit-for-bit from
    /// the same `(stage_seed, shard)` stream.
    pub fn privatize<R: Rng + ?Sized>(&self, v: u32, rng: &mut R) -> Result<BitVec> {
        if v >= self.d {
            return Err(Error::ValueOutOfDomain {
                value: v as u64,
                domain: self.d as u64,
            });
        }
        let mut bits = BitVec::zeros(self.d as usize);
        self.fill_plane(self.q, &mut bits, rng);
        bits.set(v as usize, rng.random_bool(self.p));
        Ok(bits)
    }

    /// Encodes and perturbs item `v` into `out`, reusing its allocation.
    ///
    /// This is the allocation-free twin of [`UnaryEncoding::privatize`]:
    /// both draw the Bernoulli(`q`) noise plane through the same
    /// contract-v2 sampler (word-parallel for dense `q` — no `ln` per set
    /// bit, ~8 RNG words per 64 output bits; geometric skipping below
    /// [`UnaryEncoding::WORDWISE_MIN_Q`]), then one `p` draw for the hot
    /// bit. Identical inputs and RNG state produce identical outputs *and*
    /// identical post-call RNG states on either entry point.
    ///
    /// `out` is resized (reallocated) only when its length differs from
    /// `d`; streaming absorbers reuse one scratch report per worker and
    /// privatize with zero steady-state allocation.
    pub fn privatize_into<R: Rng + ?Sized>(
        &self,
        v: u32,
        rng: &mut R,
        out: &mut BitVec,
    ) -> Result<()> {
        if v >= self.d {
            return Err(Error::ValueOutOfDomain {
                value: v as u64,
                domain: self.d as u64,
            });
        }
        if out.len() != self.d as usize {
            *out = BitVec::zeros(self.d as usize);
        }
        self.fill_plane(self.q, out, rng);
        out.set(v as usize, rng.random_bool(self.p));
        Ok(())
    }

    /// Probability threshold above which the contract-v2 plane sampler
    /// goes word-parallel. Geometric skipping costs ~`64·q` draws + `ln`s
    /// per word; the bit-sliced sampler a flat ~8 words. The cross-over
    /// (with `ln` ≈ 2 word-draws of work) sits near `q ≈ 0.04`; 1/16 keeps
    /// a margin for the cheap-`ln` case.
    pub const WORDWISE_MIN_Q: f64 = 1.0 / 16.0;

    /// Perturbs an *already encoded* bit vector of length `d`.
    ///
    /// Needed by layers that encode specially (the paper's validity
    /// perturbation encodes invalid items on an extra flag bit and then
    /// applies exactly this bit-flipping step).
    ///
    /// The Bernoulli(`q`) noise plane comes from the shared contract-v2
    /// sampler (word-parallel for dense `q`, geometric below
    /// [`UnaryEncoding::WORDWISE_MIN_Q`]). Set bits get one draw each
    /// while the encoding is sparse (the one-hot case), and a contract-v2
    /// Bernoulli(`p`) mask once the per-bit draws would cost more than
    /// sampling the mask — so the RNG cost is `O(d·min(q + p, q + 1 − p))`
    /// draws even for dense inputs, never a per-bit loop over the whole
    /// domain. The sparse/dense branch depends only on the encoding and
    /// the mechanism parameters, so identical inputs consume the RNG
    /// stream identically in every execution mode.
    pub fn perturb_bits<R: Rng + ?Sized>(&self, encoded: &BitVec, rng: &mut R) -> Result<BitVec> {
        if encoded.len() != self.d as usize {
            return Err(Error::ReportMismatch {
                expected: "bit vector of the mechanism's domain length",
            });
        }
        let mut out = BitVec::zeros(encoded.len());
        self.fill_plane(self.q, &mut out, rng);
        let ones = encoded.count_ones();
        // The mask samples ~len·min(p, 1−p) effective density; the
        // per-bit path draws exactly `ones`.
        let mask_cost = encoded.len() as f64 * self.p.min(1.0 - self.p);
        if (ones as f64) <= mask_cost {
            for i in encoded.iter_ones() {
                out.set(i, rng.random_bool(self.p));
            }
        } else {
            let mut keep = BitVec::zeros(encoded.len());
            if self.p <= 0.5 {
                self.fill_plane(self.p, &mut keep, rng);
            } else {
                // Sample the (rarer) drops and complement.
                self.fill_plane(1.0 - self.p, &mut keep, rng);
                keep.toggle_all();
            }
            out.merge_masked(encoded, &keep);
        }
        Ok(out)
    }

    /// Exact probability of producing output vector `out` from input item
    /// `v` — for privacy-enumeration tests (small `d` only: O(d) here, the
    /// caller enumerates `2^d` outputs).
    pub fn response_probability(&self, v: u32, out: &BitVec) -> f64 {
        assert_eq!(out.len(), self.d as usize);
        let mut prob = 1.0;
        for i in 0..self.d as usize {
            let bit = out.get(i);
            let keep_prob = if i == v as usize { self.p } else { self.q };
            prob *= if bit { keep_prob } else { 1.0 - keep_prob };
        }
        prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    #[test]
    fn oue_parameters() {
        let m = UnaryEncoding::optimized(eps(1.0), 10).unwrap();
        assert_eq!(m.p(), 0.5);
        assert!((m.q() - 1.0 / (1f64.exp() + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn sue_parameters_are_symmetric() {
        let m = UnaryEncoding::symmetric(eps(2.0), 10).unwrap();
        assert!((m.p() + m.q() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn effective_eps_matches_nominal() {
        for e in [0.5, 1.0, 2.0, 4.0] {
            for m in [
                UnaryEncoding::optimized(eps(e), 5).unwrap(),
                UnaryEncoding::symmetric(eps(e), 5).unwrap(),
            ] {
                assert!(
                    (m.effective_eps() - e).abs() < 1e-9,
                    "kind {:?} e={e} got {}",
                    m.kind(),
                    m.effective_eps()
                );
            }
        }
    }

    #[test]
    fn privatize_rejects_out_of_domain() {
        let m = UnaryEncoding::optimized(eps(1.0), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.privatize(4, &mut rng).is_err());
    }

    #[test]
    fn privatize_bit_rates() {
        let m = UnaryEncoding::optimized(eps(1.0), 64).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut set_true = 0usize;
        let mut set_false = 0usize;
        for _ in 0..n {
            let bits = m.privatize(7, &mut rng).unwrap();
            if bits.get(7) {
                set_true += 1;
            }
            set_false += bits.count_ones() - usize::from(bits.get(7));
        }
        let p_hat = set_true as f64 / n as f64;
        let q_hat = set_false as f64 / (n * 63) as f64;
        assert!((p_hat - m.p()).abs() < 0.02, "p_hat={p_hat}");
        assert!((q_hat - m.q()).abs() < 0.005, "q_hat={q_hat}");
    }

    #[test]
    fn privatize_and_privatize_into_share_one_rng_stream() {
        // The RNG-contract v2 invariant: both entry points draw through
        // the same plane sampler, so equal seeds give equal outputs AND
        // equal post-call RNG states — on either side of the
        // WORDWISE_MIN_Q cross-over.
        for m in [
            UnaryEncoding::optimized(eps(1.0), 96).unwrap(), // dense q
            UnaryEncoding::symmetric(eps(0.5), 96).unwrap(), // dense q
            UnaryEncoding::optimized(eps(6.0), 96).unwrap(), // sparse q
        ] {
            let mut a = StdRng::seed_from_u64(77);
            let mut b = StdRng::seed_from_u64(77);
            let mut out = BitVec::zeros(96);
            for v in 0..200u32 {
                let bits = m.privatize(v % 96, &mut a).unwrap();
                m.privatize_into(v % 96, &mut b, &mut out).unwrap();
                assert_eq!(bits, out, "kind {:?} v={v}", m.kind());
            }
            assert_eq!(
                a.random::<u64>(),
                b.random::<u64>(),
                "RNG states diverged for kind {:?}",
                m.kind()
            );
        }
    }

    #[test]
    fn perturb_bits_matches_privatize_distribution() {
        let m = UnaryEncoding::optimized(eps(1.0), 16).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let encoded = BitVec::one_hot(16, 3);
        let n = 20_000;
        let mut kept = 0;
        for _ in 0..n {
            if m.perturb_bits(&encoded, &mut rng).unwrap().get(3) {
                kept += 1;
            }
        }
        assert!((kept as f64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn perturb_bits_dense_encoding_matches_rates() {
        // An all-ones encoding forces the word-parallel mask path; bit-set
        // rates must still be exactly p.
        for e in [0.5, 4.0] {
            // SUE: p > 1/2 exercises the complement branch; OUE: p = 1/2.
            for m in [
                UnaryEncoding::symmetric(eps(e), 256).unwrap(),
                UnaryEncoding::optimized(eps(e), 256).unwrap(),
            ] {
                let mut rng = StdRng::seed_from_u64(31);
                let mut encoded = BitVec::zeros(256);
                for i in 0..256 {
                    encoded.set(i, true);
                }
                let trials = 400;
                let mut set = 0usize;
                for _ in 0..trials {
                    set += m.perturb_bits(&encoded, &mut rng).unwrap().count_ones();
                }
                let rate = set as f64 / (trials * 256) as f64;
                assert!(
                    (rate - m.p()).abs() < 0.01,
                    "kind {:?} ε={e}: rate {rate} vs p {}",
                    m.kind(),
                    m.p()
                );
            }
        }
    }

    #[test]
    fn perturb_bits_length_checked() {
        let m = UnaryEncoding::optimized(eps(1.0), 16).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(m.perturb_bits(&BitVec::zeros(8), &mut rng).is_err());
    }

    #[test]
    fn response_probabilities_sum_to_one_small_domain() {
        // Enumerate all 2^4 outputs for d = 4.
        let m = UnaryEncoding::optimized(eps(1.0), 4).unwrap();
        for v in 0..4u32 {
            let mut total = 0.0;
            for mask in 0..16u32 {
                let mut out = BitVec::zeros(4);
                for i in 0..4 {
                    if (mask >> i) & 1 == 1 {
                        out.set(i, true);
                    }
                }
                total += m.response_probability(v, &out);
            }
            assert!((total - 1.0).abs() < 1e-12, "v={v} total={total}");
        }
    }

    #[test]
    fn ldp_bound_by_enumeration() {
        // max over outputs of P(out|v)/P(out|v') must be ≤ e^ε.
        let e = 1.2;
        let m = UnaryEncoding::optimized(eps(e), 4).unwrap();
        let mut worst: f64 = 0.0;
        for v1 in 0..4u32 {
            for v2 in 0..4u32 {
                for mask in 0..16u32 {
                    let mut out = BitVec::zeros(4);
                    for i in 0..4 {
                        if (mask >> i) & 1 == 1 {
                            out.set(i, true);
                        }
                    }
                    let r = m.response_probability(v1, &out) / m.response_probability(v2, &out);
                    worst = worst.max(r);
                }
            }
        }
        assert!(worst <= e.exp() * (1.0 + 1e-9), "worst ratio {worst}");
        assert!(worst >= e.exp() * (1.0 - 1e-9), "bound should be tight");
    }
}
