//! Packed bit vectors used as unary-encoding reports.
//!
//! Unary-encoding mechanisms (SUE/OUE, and the paper's validity
//! perturbation) transmit one bit per domain value, so reports for realistic
//! domains (hundreds to tens of thousands of items) dominate both memory and
//! aggregation time. [`BitVec`] packs bits into `u64` words and provides the
//! two hot operations:
//!
//! * [`BitVec::fill_bernoulli`] — set every bit independently with
//!   probability `q` using *geometric skipping*: instead of `len` Bernoulli
//!   draws it draws one geometric gap per set bit, i.e. `O(len·q)` RNG calls.
//!   For OUE at ε = 4, that is ~55× fewer draws.
//! * [`BitVec::iter_ones`] — word-at-a-time iteration over set bits for
//!   server-side aggregation.

use rand::Rng;

/// A fixed-length packed bit vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a vector with exactly one bit set at `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= len`.
    pub fn one_hot(len: usize, pos: usize) -> Self {
        let mut v = Self::zeros(len);
        v.set(pos, true);
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.bit(i)
    }

    /// Reads bit `i` with a single word access and no length assert — for
    /// hot paths (e.g. validity-flag checks) that already validated the
    /// report length. Still memory-safe: the word index is bounds-checked
    /// by the slice.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Raw word view (low bit of `words[0]` is bit 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Increments `counts[i]` for every set bit `i`, scanning word-at-a-time
    /// so aggregation hot loops never take [`BitVec::get`]'s per-bit bounds
    /// check.
    ///
    /// `counts` may be shorter than the vector when the caller knows the
    /// tail columns are clear (e.g. a validity-perturbation report whose
    /// flag bit was already checked).
    ///
    /// # Panics
    /// Panics if any **set** bit's index is `>= counts.len()`.
    pub fn count_ones_into(&self, counts: &mut [u64]) {
        let mut chunks = counts.chunks_mut(64);
        for &word in &self.words {
            let chunk = chunks.next();
            if word == 0 {
                continue;
            }
            let Some(chunk) = chunk else {
                // mcim-lint: allow(panic-freedom, the documented # Panics contract for out-of-range set bits)
                panic!(
                    "set bit beyond counts length {} (vector holds {} bits)",
                    counts.len(),
                    self.len
                );
            };
            let mut bits = word;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                assert!(
                    j < chunk.len(),
                    "set bit beyond counts length {} (vector holds {} bits)",
                    counts.len(),
                    self.len
                );
                chunk[j] += 1;
                bits &= bits - 1; // clear lowest set bit
            }
        }
    }

    /// Replaces the bits selected by `mask` with the corresponding bits of
    /// `src`: `self = (self & !mask) | (src & mask)`, word-parallel.
    ///
    /// # Panics
    /// Panics if the three vectors have different lengths.
    pub fn merge_masked(&mut self, mask: &BitVec, src: &BitVec) {
        assert!(
            self.len == mask.len && self.len == src.len,
            "merge_masked length mismatch ({} / {} / {})",
            self.len,
            mask.len,
            src.len
        );
        for ((w, &m), &s) in self.words.iter_mut().zip(&mask.words).zip(&src.words) {
            *w = (*w & !m) | (s & m);
        }
    }

    /// Flips every bit (padding bits beyond `len` stay clear).
    pub fn toggle_all(&mut self) {
        for (idx, w) in self.words.iter_mut().enumerate() {
            let remaining = self.len - idx * 64;
            let live = if remaining >= 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            };
            *w = !*w & live;
        }
    }

    /// Sets every bit independently to 1 with probability `q`, sampling
    /// **64 lanes at a time** instead of per-set-bit geometric gaps.
    ///
    /// Each lane's bit is `[U < q]` for an independent uniform `U ∈ [0, 1)`.
    /// The comparison is evaluated bit-sliced: walking `q`'s binary
    /// expansion MSB-first with one random word per step, a lane is decided
    /// `U < q` at the first position where `U`'s bit is 0 and `q`'s bit is
    /// 1, decided `U ≥ q` where `U`'s bit is 1 and `q`'s bit is 0, and
    /// stays undecided while the prefixes agree. Lanes still undecided when
    /// `q`'s (finite, `f64`) expansion ends have matched every 1-bit of `q`
    /// and are therefore `≥ q`. The result is **exactly** Bernoulli(`q`) —
    /// no truncation bias — because the loop only terminates once every
    /// lane is decided or `q`'s expansion is exhausted.
    ///
    /// The undecided mask halves in expectation every step, so the expected
    /// RNG cost is ~`log₂ 64 + 2 ≈ 8` words per output word *independent of
    /// `q`*, with no `ln` evaluations. Geometric skipping
    /// ([`BitVec::fill_bernoulli`]) costs one `f64` draw **and one `ln`**
    /// per set bit, i.e. `O(64·q)` per word — cheaper only for sparse fills
    /// (small `q`). Batch privatization picks between the two by `q`; both
    /// are exact, they only consume the RNG stream differently.
    pub fn fill_bernoulli_wordwise<R: Rng + ?Sized>(&mut self, q: f64, rng: &mut R) {
        if self.len == 0 || q <= 0.0 || q >= 1.0 {
            // Degenerate probabilities: delegate for the constant fills.
            self.fill_bernoulli(q.clamp(0.0, 1.0), rng);
            return;
        }
        let n_words = self.words.len();
        for (idx, w) in self.words.iter_mut().enumerate() {
            let live = if idx + 1 < n_words || self.len % 64 == 0 {
                u64::MAX
            } else {
                (1u64 << (self.len % 64)) - 1
            };
            let mut result = 0u64;
            let mut undecided = live;
            // Walk q's binary expansion: doubling an f64 < 1 and
            // subtracting 1 from a value in [1, 2) are both exact, so `x`
            // enumerates the expansion bit-for-bit and reaches 0 after
            // finitely many steps.
            let mut x = q;
            while undecided != 0 && x > 0.0 {
                x *= 2.0;
                let q_bit = x >= 1.0;
                if q_bit {
                    x -= 1.0;
                }
                let r = rng.next_u64();
                if q_bit {
                    result |= undecided & !r;
                    undecided &= r;
                } else {
                    undecided &= !r;
                }
            }
            *w = result;
        }
    }

    /// Sets every bit independently to 1 with probability `q`.
    ///
    /// Existing contents are overwritten. Uses geometric skipping: the gap
    /// between consecutive set bits under i.i.d. Bernoulli(q) is geometric,
    /// so we sample gaps directly with one `f64` draw per set bit.
    pub fn fill_bernoulli<R: Rng + ?Sized>(&mut self, q: f64, rng: &mut R) {
        for w in &mut self.words {
            *w = 0;
        }
        if self.len == 0 || q <= 0.0 {
            return;
        }
        if q >= 1.0 {
            for (idx, w) in self.words.iter_mut().enumerate() {
                let remaining = self.len - idx * 64;
                *w = if remaining >= 64 {
                    u64::MAX
                } else {
                    (1u64 << remaining) - 1
                };
            }
            return;
        }
        // ln(1-q) is strictly negative here.
        let log1mq = (-q).ln_1p();
        let mut i = 0usize;
        loop {
            // gap ~ Geometric(q): number of zeros before the next one.
            let u: f64 = rng.random::<f64>();
            // Guard against u == 0 producing ln(0) = -inf (gap = +inf, ends fill).
            let gap = if u <= f64::MIN_POSITIVE {
                self.len // effectively "no more ones"
            } else {
                let g = (u.ln() / log1mq).floor();
                if g >= self.len as f64 {
                    self.len
                } else {
                    g as usize
                }
            };
            i = match i.checked_add(gap) {
                Some(next) if next < self.len => next,
                _ => break,
            };
            self.words[i / 64] |= 1u64 << (i % 64);
            i += 1;
            if i >= self.len {
                break;
            }
        }
    }
}

/// Iterator over set-bit indices of a [`BitVec`].
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_empty_of_ones() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.iter_ones().count(), 0);
    }

    #[test]
    fn one_hot_round_trip() {
        for len in [1usize, 63, 64, 65, 129] {
            for pos in [0, len / 2, len - 1] {
                let v = BitVec::one_hot(len, pos);
                assert_eq!(v.count_ones(), 1);
                assert!(v.get(pos));
                assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![pos]);
            }
        }
    }

    #[test]
    fn set_and_clear() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(64, true);
        v.set(99, true);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 64, 99]);
        v.set(64, false);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 99]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn fill_bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = BitVec::zeros(200);
        v.fill_bernoulli(0.0, &mut rng);
        assert_eq!(v.count_ones(), 0);
        v.fill_bernoulli(1.0, &mut rng);
        assert_eq!(v.count_ones(), 200);
        // Padding bits in the last word must stay clear so count_ones is exact.
        assert_eq!(v.words().last().unwrap().count_ones(), 200 - 3 * 64);
        v.fill_bernoulli(0.0, &mut rng);
        assert_eq!(v.count_ones(), 0, "refill overwrites previous contents");
    }

    #[test]
    fn fill_bernoulli_mean_matches_q() {
        let mut rng = StdRng::seed_from_u64(42);
        for q in [0.01, 0.1, 0.3, 0.5, 0.9] {
            let len = 10_000;
            let trials = 50;
            let mut total = 0usize;
            let mut v = BitVec::zeros(len);
            for _ in 0..trials {
                v.fill_bernoulli(q, &mut rng);
                total += v.count_ones();
            }
            let mean = total as f64 / (trials * len) as f64;
            // Binomial std for the pooled mean is sqrt(q(1-q)/(trials*len)) < 0.0011.
            assert!(
                (mean - q).abs() < 0.01,
                "q={q}: empirical mean {mean} too far off"
            );
        }
    }

    #[test]
    fn fill_bernoulli_wordwise_extremes_and_padding() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v = BitVec::zeros(200);
        v.fill_bernoulli_wordwise(0.0, &mut rng);
        assert_eq!(v.count_ones(), 0);
        v.fill_bernoulli_wordwise(1.0, &mut rng);
        assert_eq!(v.count_ones(), 200);
        // Padding bits beyond len must stay clear for every q.
        v.fill_bernoulli_wordwise(0.7, &mut rng);
        assert_eq!(v.words().last().unwrap() >> (200 - 3 * 64), 0);
        v.fill_bernoulli_wordwise(0.3, &mut rng);
        assert!(v.count_ones() <= 200);
    }

    #[test]
    fn fill_bernoulli_wordwise_mean_matches_q() {
        let mut rng = StdRng::seed_from_u64(17);
        // Includes dyadic q (0.5, 0.25: shortest expansions) and the OUE
        // values the batch privatizer actually uses.
        for q in [0.01, 0.1, 0.25, 1.0 / (1f64.exp() + 1.0), 0.5, 0.9] {
            let len = 10_000;
            let trials = 50;
            let mut total = 0usize;
            let mut v = BitVec::zeros(len);
            for _ in 0..trials {
                v.fill_bernoulli_wordwise(q, &mut rng);
                total += v.count_ones();
            }
            let mean = total as f64 / (trials * len) as f64;
            assert!(
                (mean - q).abs() < 0.01,
                "q={q}: empirical mean {mean} too far off"
            );
        }
    }

    #[test]
    fn fill_bernoulli_wordwise_is_unclustered() {
        // Bit-sliced sampling must still produce independent-looking bits,
        // both within a word and across the word boundary.
        let mut rng = StdRng::seed_from_u64(23);
        let q = 0.3;
        let len = 20_000;
        let mut v = BitVec::zeros(len);
        let mut pairs = 0usize;
        let mut boundary_pairs = 0usize;
        let mut boundary_n = 0usize;
        let trials = 20;
        for _ in 0..trials {
            v.fill_bernoulli_wordwise(q, &mut rng);
            for i in 0..len - 1 {
                if v.get(i) && v.get(i + 1) {
                    pairs += 1;
                    if i % 64 == 63 {
                        boundary_pairs += 1;
                    }
                }
                if i % 64 == 63 {
                    boundary_n += 1;
                }
            }
        }
        let rate = pairs as f64 / (trials * (len - 1)) as f64;
        assert!(
            (rate - q * q).abs() < 0.01,
            "pair rate {rate} vs q²={}",
            q * q
        );
        let boundary_rate = boundary_pairs as f64 / boundary_n as f64;
        assert!(
            (boundary_rate - q * q).abs() < 0.03,
            "word-boundary pair rate {boundary_rate} vs q²={}",
            q * q
        );
    }

    #[test]
    fn fill_bernoulli_is_unclustered() {
        // Geometric skipping must produce independent-looking bits: adjacent
        // pairs should both be set with probability ~q².
        let mut rng = StdRng::seed_from_u64(7);
        let q = 0.3;
        let len = 20_000;
        let mut v = BitVec::zeros(len);
        let mut pairs = 0usize;
        let trials = 20;
        for _ in 0..trials {
            v.fill_bernoulli(q, &mut rng);
            for i in 0..len - 1 {
                if v.get(i) && v.get(i + 1) {
                    pairs += 1;
                }
            }
        }
        let rate = pairs as f64 / (trials * (len - 1)) as f64;
        assert!(
            (rate - q * q).abs() < 0.01,
            "pair rate {rate} vs q²={}",
            q * q
        );
    }

    #[test]
    fn count_ones_into_matches_iter_ones() {
        let mut rng = StdRng::seed_from_u64(11);
        for len in [1usize, 64, 65, 200] {
            let mut v = BitVec::zeros(len);
            v.fill_bernoulli(0.4, &mut rng);
            let mut fast = vec![0u64; len + 3]; // longer slice is allowed
            v.count_ones_into(&mut fast);
            let mut slow = vec![0u64; len + 3];
            for i in v.iter_ones() {
                slow[i] += 1;
            }
            assert_eq!(fast, slow, "len={len}");
        }
    }

    #[test]
    fn count_ones_into_allows_clear_tail_columns() {
        // Flag-style layout: 65 bits, counts only cover the first 64, and
        // the tail bit is clear — allowed.
        let mut v = BitVec::zeros(65);
        v.set(63, true);
        let mut counts = [0u64; 64];
        v.count_ones_into(&mut counts);
        assert_eq!(counts[63], 1);
    }

    #[test]
    #[should_panic(expected = "set bit beyond counts length")]
    fn count_ones_into_rejects_set_bit_past_slice() {
        let mut v = BitVec::zeros(65);
        v.set(64, true);
        v.count_ones_into(&mut [0u64; 64]);
    }

    #[test]
    #[should_panic(expected = "set bit beyond counts length")]
    fn count_ones_into_rejects_set_bit_past_partial_chunk() {
        // counts ends mid-word: a set bit just past it must still panic.
        let mut v = BitVec::zeros(40);
        v.set(39, true);
        v.count_ones_into(&mut [0u64; 39]);
    }

    #[test]
    fn merge_masked_selects_per_bit() {
        let len = 130;
        let mut rng = StdRng::seed_from_u64(5);
        let mut dst = BitVec::zeros(len);
        let mut mask = BitVec::zeros(len);
        let mut src = BitVec::zeros(len);
        dst.fill_bernoulli(0.5, &mut rng);
        mask.fill_bernoulli(0.5, &mut rng);
        src.fill_bernoulli(0.5, &mut rng);
        let expect: Vec<bool> = (0..len)
            .map(|i| if mask.get(i) { src.get(i) } else { dst.get(i) })
            .collect();
        dst.merge_masked(&mask, &src);
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(dst.get(i), e, "bit {i}");
        }
    }

    #[test]
    fn toggle_all_keeps_padding_clear() {
        let mut v = BitVec::zeros(70);
        v.set(3, true);
        v.toggle_all();
        assert_eq!(v.count_ones(), 69);
        assert!(!v.get(3));
        v.toggle_all();
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let mut v = BitVec::zeros(256);
        let positions = [0usize, 1, 63, 64, 127, 128, 200, 255];
        for &p in &positions {
            v.set(p, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), positions);
    }
}
