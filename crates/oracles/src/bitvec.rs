//! Packed bit vectors used as unary-encoding reports.
//!
//! Unary-encoding mechanisms (SUE/OUE, and the paper's validity
//! perturbation) transmit one bit per domain value, so reports for realistic
//! domains (hundreds to tens of thousands of items) dominate both memory and
//! aggregation time. [`BitVec`] packs bits into `u64` words and provides the
//! two hot operations:
//!
//! * [`BitVec::fill_bernoulli`] — set every bit independently with
//!   probability `q` using *geometric skipping*: instead of `len` Bernoulli
//!   draws it draws one geometric gap per set bit, i.e. `O(len·q)` RNG calls.
//!   For OUE at ε = 4, that is ~55× fewer draws.
//! * [`BitVec::iter_ones`] — word-at-a-time iteration over set bits for
//!   server-side aggregation.

use rand::Rng;

/// A fixed-length packed bit vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a vector with exactly one bit set at `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= len`.
    pub fn one_hot(len: usize, pos: usize) -> Self {
        let mut v = Self::zeros(len);
        v.set(pos, true);
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Raw word view (low bit of `words[0]` is bit 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sets every bit independently to 1 with probability `q`.
    ///
    /// Existing contents are overwritten. Uses geometric skipping: the gap
    /// between consecutive set bits under i.i.d. Bernoulli(q) is geometric,
    /// so we sample gaps directly with one `f64` draw per set bit.
    pub fn fill_bernoulli<R: Rng + ?Sized>(&mut self, q: f64, rng: &mut R) {
        for w in &mut self.words {
            *w = 0;
        }
        if self.len == 0 || q <= 0.0 {
            return;
        }
        if q >= 1.0 {
            for (idx, w) in self.words.iter_mut().enumerate() {
                let remaining = self.len - idx * 64;
                *w = if remaining >= 64 {
                    u64::MAX
                } else {
                    (1u64 << remaining) - 1
                };
            }
            return;
        }
        // ln(1-q) is strictly negative here.
        let log1mq = (-q).ln_1p();
        let mut i = 0usize;
        loop {
            // gap ~ Geometric(q): number of zeros before the next one.
            let u: f64 = rng.random::<f64>();
            // Guard against u == 0 producing ln(0) = -inf (gap = +inf, ends fill).
            let gap = if u <= f64::MIN_POSITIVE {
                self.len // effectively "no more ones"
            } else {
                let g = (u.ln() / log1mq).floor();
                if g >= self.len as f64 {
                    self.len
                } else {
                    g as usize
                }
            };
            i = match i.checked_add(gap) {
                Some(next) if next < self.len => next,
                _ => break,
            };
            self.words[i / 64] |= 1u64 << (i % 64);
            i += 1;
            if i >= self.len {
                break;
            }
        }
    }
}

/// Iterator over set-bit indices of a [`BitVec`].
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_empty_of_ones() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.iter_ones().count(), 0);
    }

    #[test]
    fn one_hot_round_trip() {
        for len in [1usize, 63, 64, 65, 129] {
            for pos in [0, len / 2, len - 1] {
                let v = BitVec::one_hot(len, pos);
                assert_eq!(v.count_ones(), 1);
                assert!(v.get(pos));
                assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![pos]);
            }
        }
    }

    #[test]
    fn set_and_clear() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(64, true);
        v.set(99, true);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 64, 99]);
        v.set(64, false);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 99]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn fill_bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = BitVec::zeros(200);
        v.fill_bernoulli(0.0, &mut rng);
        assert_eq!(v.count_ones(), 0);
        v.fill_bernoulli(1.0, &mut rng);
        assert_eq!(v.count_ones(), 200);
        // Padding bits in the last word must stay clear so count_ones is exact.
        assert_eq!(v.words().last().unwrap().count_ones(), 200 - 3 * 64);
        v.fill_bernoulli(0.0, &mut rng);
        assert_eq!(v.count_ones(), 0, "refill overwrites previous contents");
    }

    #[test]
    fn fill_bernoulli_mean_matches_q() {
        let mut rng = StdRng::seed_from_u64(42);
        for q in [0.01, 0.1, 0.3, 0.5, 0.9] {
            let len = 10_000;
            let trials = 50;
            let mut total = 0usize;
            let mut v = BitVec::zeros(len);
            for _ in 0..trials {
                v.fill_bernoulli(q, &mut rng);
                total += v.count_ones();
            }
            let mean = total as f64 / (trials * len) as f64;
            // Binomial std for the pooled mean is sqrt(q(1-q)/(trials*len)) < 0.0011.
            assert!(
                (mean - q).abs() < 0.01,
                "q={q}: empirical mean {mean} too far off"
            );
        }
    }

    #[test]
    fn fill_bernoulli_is_unclustered() {
        // Geometric skipping must produce independent-looking bits: adjacent
        // pairs should both be set with probability ~q².
        let mut rng = StdRng::seed_from_u64(7);
        let q = 0.3;
        let len = 20_000;
        let mut v = BitVec::zeros(len);
        let mut pairs = 0usize;
        let trials = 20;
        for _ in 0..trials {
            v.fill_bernoulli(q, &mut rng);
            for i in 0..len - 1 {
                if v.get(i) && v.get(i + 1) {
                    pairs += 1;
                }
            }
        }
        let rate = pairs as f64 / (trials * (len - 1)) as f64;
        assert!(
            (rate - q * q).abs() < 0.01,
            "pair rate {rate} vs q²={}",
            q * q
        );
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let mut v = BitVec::zeros(256);
        let positions = [0usize, 1, 63, 64, 127, 128, 200, 255];
        for &p in &positions {
            v.set(p, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), positions);
    }
}
