//! # mcim-oracles
//!
//! Frequency-oracle substrate for *Multi-class Item Mining under Local
//! Differential Privacy* (ICDE 2025).
//!
//! This crate provides the single-value LDP mechanisms the paper builds on
//! (§II-B and the references therein), implemented from scratch:
//!
//! * [`Grr`] — Generalized Random Response over a categorical domain.
//! * [`UnaryEncoding`] — unary (one-hot) encoding with symmetric (SUE) or
//!   optimized (OUE) flip probabilities.
//! * [`Olh`] — Optimal Local Hashing.
//! * [`Oracle::adaptive`] — the adaptive GRR/OUE selection rule of Wang et
//!   al. (USENIX Security '17), used throughout the paper's experiments.
//!
//! plus the shared plumbing every layer above needs:
//!
//! * [`Eps`] — validated privacy budgets with splitting (sequential
//!   composition),
//! * [`BitVec`] — packed bit vectors with geometric-skipping Bernoulli fill,
//! * [`hash`] — seeded `splitmix64`-based hashing and a deterministic
//!   [`hash::SplitMix64`] RNG used for reproducible shuffles,
//! * [`calibrate`] — unbiased count calibration and analytic variances,
//! * [`colsum`] — word-parallel (bit-sliced) column sums for batch
//!   aggregation of unary-encoding reports,
//! * [`parallel`] — fixed-size sharding with deterministic per-shard RNG
//!   streams: `threads = N` is bit-identical to `threads = 1`,
//! * [`stream`] — bounded-memory chunked ingestion over pull-based
//!   [`stream::ReportSource`]s, bit-identical to the batch APIs for every
//!   chunk size and thread count,
//! * [`exec`] — declarative [`Exec`] execution plans (seed / threads /
//!   chunk / mode), serializable [`exec::Stage`] fold objects, and the
//!   [`Executor`] backend trait every pipeline's `execute` entry point
//!   runs on ([`InProcess`] here; the multi-process `Coordinator` in
//!   `mcim-dist`),
//! * [`wire`] — hand-rolled byte codecs ([`wire::Wire`] items,
//!   [`wire::WireState`] accumulator partials, [`wire::StageSpec`] stage
//!   descriptors) the distributed reducer moves between processes.
//!
//! ## Example
//!
//! ```
//! use mcim_oracles::{Eps, Oracle, Aggregator};
//! use rand::SeedableRng;
//!
//! let eps = Eps::new(1.0).unwrap();
//! let d = 64;
//! let oracle = Oracle::adaptive(eps, d).unwrap(); // picks OUE here
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // 10_000 users, 60% hold item 3, the rest item 11.
//! let mut agg = Aggregator::new(&oracle);
//! for u in 0..10_000u32 {
//!     let item = if u % 5 < 3 { 3 } else { 11 };
//!     agg.absorb(&oracle.privatize(item, &mut rng).unwrap()).unwrap();
//! }
//! let est = agg.estimate();
//! assert!((est[3] - 6000.0).abs() < 500.0);
//! assert!((est[11] - 4000.0).abs() < 500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod budget;
mod error;
mod grr;
mod numeric;
mod olh;
mod oracle;
mod sketch;
mod ue;

pub mod calibrate;
pub mod colsum;
pub mod exec;
pub mod hash;
pub mod parallel;
pub mod stream;
pub mod wire;

pub use bitvec::BitVec;
pub use budget::Eps;
pub use colsum::ColumnCounter;
pub use error::Error;
pub use exec::{Exec, ExecMode, Executor, FoldReport, InProcess};
pub use grr::Grr;
pub use numeric::{Piecewise, StochasticRounding};
pub use olh::{Olh, OlhReport};
pub use oracle::{Aggregator, Oracle, Report};
pub use sketch::{CmsAggregator, CmsReport, CountMeanSketch};
pub use ue::UnaryEncoding;

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;
