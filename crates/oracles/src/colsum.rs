//! Word-parallel vertical popcount column sums.
//!
//! Every unary-encoding aggregator in the workspace reduces a stream of
//! packed bit-vector reports to one counter per domain value. The obvious
//! loop — scan each report's set bits and increment `counts[i]` — touches
//! `O(len·q)` scattered counters per report. [`ColumnCounter`] instead
//! treats a block of reports as a bit matrix and adds whole 64-bit words at
//! a time with a *bit-sliced* (carry-save) adder: plane `p` holds bit `p`
//! of 64 independent per-column counters, so adding one report costs a
//! handful of XOR/AND ops per word regardless of how many bits are set.
//!
//! Counters are [`PLANES`] bits wide; after [`ColumnCounter::MAX_BLOCK`]
//! rows the planes are transposed ("flushed") into the wide `u64` totals.
//! The amortized flush cost is ~2 ops per word-row, so the per-report cost
//! is `O(len/64)` word operations — for OUE at `d = 1024`, ε = 1 this
//! replaces ~276 scattered increments with ~16 word additions.
//!
//! The counter is purely data-parallel state: shard a report stream across
//! threads, give each shard its own `ColumnCounter`, and add the per-shard
//! totals — `u64` sums are associative, so the result is bit-identical to
//! sequential aggregation in any merge order.

use crate::BitVec;

/// Bit width of the in-flight per-column counters (one plane per bit).
const PLANES: usize = 8;

/// Accumulates per-column (per-bit-position) counts over a stream of
/// equal-length packed bit rows.
#[derive(Debug, Clone)]
pub struct ColumnCounter {
    /// Bits per row.
    len: usize,
    /// Words per row.
    cols: usize,
    /// Bit-sliced pending counters, layout `[col * PLANES + plane]`.
    planes: Vec<u64>,
    /// Rows added since the last flush (kept `< MAX_BLOCK`… `== MAX_BLOCK`
    /// triggers a flush on the next add).
    pending: u32,
    /// Flushed wide totals, one per column.
    totals: Vec<u64>,
    /// Total rows ever added.
    rows: u64,
}

impl ColumnCounter {
    /// Rows a block of bit-sliced counters can hold before flushing.
    pub const MAX_BLOCK: u32 = (1 << PLANES) - 1;

    /// Creates a counter for rows of `len` bits.
    pub fn new(len: usize) -> Self {
        let cols = len.div_ceil(64);
        ColumnCounter {
            len,
            cols,
            planes: vec![0; cols * PLANES],
            pending: 0,
            totals: vec![0; len],
            rows: 0,
        }
    }

    /// Bits per row.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether rows have zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total rows added so far.
    #[inline]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Adds one row given as packed words (low bit of `words[0]` is column
    /// 0). Bits beyond `len` must be zero — [`BitVec`] maintains exactly
    /// that invariant.
    ///
    /// The hot loop is 4-way unrolled: four word-columns ripple their
    /// carries through the planes as independent chains per pass, so the
    /// adder is bound by instruction throughput instead of the
    /// load→xor→store latency of one chain at a time (a single chain's
    /// early exit saved plane work but serialized every word on its
    /// predecessor's carry test).
    ///
    /// # Panics
    /// Panics if `words.len()` does not match the row width.
    pub fn add(&mut self, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.cols,
            "row has {} words, counter expects {}",
            words.len(),
            self.cols
        );
        if self.pending == Self::MAX_BLOCK {
            self.flush();
        }
        let mut quads = words.chunks_exact(4);
        let mut plane_quads = self.planes.chunks_exact_mut(4 * PLANES);
        for (quad, lanes) in (&mut quads).zip(&mut plane_quads) {
            let (mut c0, mut c1, mut c2, mut c3) = (quad[0], quad[1], quad[2], quad[3]);
            if c0 | c1 | c2 | c3 == 0 {
                continue;
            }
            let (l0, rest) = lanes.split_at_mut(PLANES);
            let (l1, rest) = rest.split_at_mut(PLANES);
            let (l2, l3) = rest.split_at_mut(PLANES);
            for p in 0..PLANES {
                // Shared early exit: carry chains are short (the joint
                // chain ends when the longest of the four does).
                if c0 | c1 | c2 | c3 == 0 {
                    break;
                }
                let s0 = l0[p] ^ c0;
                c0 &= l0[p];
                l0[p] = s0;
                let s1 = l1[p] ^ c1;
                c1 &= l1[p];
                l1[p] = s1;
                let s2 = l2[p] ^ c2;
                c2 &= l2[p];
                l2[p] = s2;
                let s3 = l3[p] ^ c3;
                c3 &= l3[p];
                l3[p] = s3;
            }
            // No carry survives the last plane: counters max out at
            // MAX_BLOCK rows and we flushed above.
            debug_assert_eq!(c0 | c1 | c2 | c3, 0, "bit-sliced counter overflow");
        }
        // Remainder columns (row width not a multiple of 256 bits) keep the
        // scalar chain.
        let rem_start = self.cols / 4 * 4;
        for (col, &word) in quads.remainder().iter().enumerate() {
            let mut carry = word;
            if carry == 0 {
                continue;
            }
            let col = rem_start + col;
            let lanes = &mut self.planes[col * PLANES..(col + 1) * PLANES];
            for lane in lanes {
                let sum = *lane ^ carry;
                carry &= *lane;
                *lane = sum;
                if carry == 0 {
                    break;
                }
            }
            debug_assert_eq!(carry, 0, "bit-sliced counter overflow");
        }
        self.pending += 1;
        self.rows += 1;
    }

    /// Adds one [`BitVec`] row.
    ///
    /// # Panics
    /// Panics if `bits.len()` differs from the counter's row width.
    #[inline]
    pub fn add_bits(&mut self, bits: &BitVec) {
        assert_eq!(bits.len(), self.len, "row length mismatch");
        self.add(bits.words());
    }

    /// Transposes the pending bit-sliced block into the wide totals.
    fn flush(&mut self) {
        if self.pending == 0 {
            return;
        }
        for col in 0..self.cols {
            let lanes = &self.planes[col * PLANES..(col + 1) * PLANES];
            if lanes.iter().all(|&l| l == 0) {
                continue;
            }
            let limit = 64.min(self.len - col * 64);
            let out = &mut self.totals[col * 64..col * 64 + limit];
            for (j, total) in out.iter_mut().enumerate() {
                let mut c = 0u64;
                for (p, &lane) in lanes.iter().enumerate() {
                    c |= ((lane >> j) & 1) << p;
                }
                *total += c;
            }
        }
        self.planes.fill(0);
        self.pending = 0;
    }

    /// Flushes and adds the first `out.len()` column totals into `out`,
    /// then resets the counter (totals and row count) for reuse.
    ///
    /// Taking a prefix is deliberate: validity-perturbation reports carry
    /// `d + 1` columns but only the `d` item columns feed item counters.
    ///
    /// # Panics
    /// Panics if `out` is wider than the rows.
    pub fn drain_into(&mut self, out: &mut [u64]) {
        assert!(
            out.len() <= self.len,
            "output width {} exceeds row width {}",
            out.len(),
            self.len
        );
        self.flush();
        for (o, &t) in out.iter_mut().zip(&self.totals) {
            *o += t;
        }
        self.totals.fill(0);
        self.rows = 0;
    }

    /// Flushes and returns a copy of all column totals (test/debug helper;
    /// hot paths use [`ColumnCounter::drain_into`]).
    pub fn totals(&mut self) -> Vec<u64> {
        self.flush();
        self.totals.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference: per-bit scatter increments.
    fn reference_counts(rows: &[BitVec], len: usize) -> Vec<u64> {
        let mut counts = vec![0u64; len];
        for row in rows {
            for i in row.iter_ones() {
                counts[i] += 1;
            }
        }
        counts
    }

    #[test]
    fn matches_reference_on_random_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        // Lengths straddling both the 4-word unrolled path (≥ 256 bits)
        // and the scalar remainder (width % 256 ≠ 0).
        for len in [1usize, 63, 64, 65, 130, 257, 320, 1024] {
            for q in [0.05, 0.5, 0.95] {
                let rows: Vec<BitVec> = (0..300)
                    .map(|_| {
                        let mut b = BitVec::zeros(len);
                        b.fill_bernoulli(q, &mut rng);
                        b
                    })
                    .collect();
                let mut cc = ColumnCounter::new(len);
                for r in &rows {
                    cc.add_bits(r);
                }
                assert_eq!(cc.rows(), 300);
                assert_eq!(cc.totals(), reference_counts(&rows, len), "len={len} q={q}");
            }
        }
    }

    #[test]
    fn survives_many_flush_cycles() {
        // > MAX_BLOCK rows of all-ones: every column counts every row.
        let len = 70;
        let mut ones = BitVec::zeros(len);
        for i in 0..len {
            ones.set(i, true);
        }
        let n = 3 * ColumnCounter::MAX_BLOCK as u64 + 17;
        let mut cc = ColumnCounter::new(len);
        for _ in 0..n {
            cc.add_bits(&ones);
        }
        assert!(cc.totals().iter().all(|&c| c == n));
    }

    #[test]
    fn drain_into_takes_prefix_and_resets() {
        let mut cc = ColumnCounter::new(5);
        cc.add_bits(&BitVec::one_hot(5, 4));
        cc.add_bits(&BitVec::one_hot(5, 0));
        let mut out = vec![10u64; 4]; // one column short: flag-style prefix
        cc.drain_into(&mut out);
        assert_eq!(out, vec![11, 10, 10, 10], "flag column 4 excluded");
        assert_eq!(cc.rows(), 0, "drain resets the row count");
        // Counter is reusable after a drain.
        cc.add_bits(&BitVec::one_hot(5, 1));
        assert_eq!(cc.totals(), vec![0, 1, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn rejects_mismatched_word_width() {
        ColumnCounter::new(65).add(&[0u64]);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn rejects_mismatched_bit_length() {
        ColumnCounter::new(64).add_bits(&BitVec::zeros(63));
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut cc = ColumnCounter::new(0);
        cc.add(&[]);
        assert!(cc.is_empty());
        assert_eq!(cc.totals(), Vec::<u64>::new());
    }
}
