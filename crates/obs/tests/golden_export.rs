//! Golden exports: the Prometheus text exposition and the JSON envelope
//! are pinned **byte for byte** (the same discipline as the lint crate's
//! `golden_json.rs`). Monitoring configs, scrapers and the CI validation
//! step parse these exact shapes; any change here is a consumer-visible
//! format change and must be deliberate.
//!
//! The fixture registry is local — no global state, no clocks — so the
//! goldens are stable under any test ordering or parallelism.

use mcim_obs::{labeled, parse_prometheus, Registry, DURATION_BUCKET_BOUNDS_MICROS};

/// A small registry exercising every export shape: plain and labeled
/// counters, a gauge, and a histogram with observations landing in
/// distinct buckets (150 µs, 2.5 s) plus one overflow (11 s).
fn fixture() -> Registry {
    let r = Registry::new();
    r.counter_add("mcim_folds_total", 3);
    r.counter_add(
        &labeled("mcim_pipeline_runs_total", &[("pipeline", "PTS-CP")]),
        1,
    );
    r.gauge_set("mcim_dist_workers", 2);
    let key = labeled("mcim_stage_duration_seconds", &[("stage", "ue")]);
    r.observe_duration_micros(&key, 150);
    r.observe_duration_micros(&key, 2_500_000);
    r.observe_duration_micros(&key, 11_000_000);
    r
}

const GOLDEN_PROMETHEUS: &str = "\
# TYPE mcim_folds_total counter
mcim_folds_total 3
# TYPE mcim_pipeline_runs_total counter
mcim_pipeline_runs_total{pipeline=\"PTS-CP\"} 1
# TYPE mcim_dist_workers gauge
mcim_dist_workers 2
# TYPE mcim_stage_duration_seconds histogram
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.000100\"} 0
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.000250\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.000500\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.001000\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.002500\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.005000\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.010000\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.025000\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.050000\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.100000\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.250000\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"0.500000\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"1.000000\"} 1
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"2.500000\"} 2
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"5.000000\"} 2
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"10.000000\"} 2
mcim_stage_duration_seconds_bucket{stage=\"ue\",le=\"+Inf\"} 3
mcim_stage_duration_seconds_sum{stage=\"ue\"} 13.500150
mcim_stage_duration_seconds_count{stage=\"ue\"} 3
";

const GOLDEN_JSON: &str = concat!(
    "{\"mcim_obs\":1,",
    "\"counters\":{\"mcim_folds_total\":3,",
    "\"mcim_pipeline_runs_total{pipeline=\\\"PTS-CP\\\"}\":1},",
    "\"gauges\":{\"mcim_dist_workers\":2},",
    "\"histograms\":{\"mcim_stage_duration_seconds{stage=\\\"ue\\\"}\":{",
    "\"bounds_micros\":[100,250,500,1000,2500,5000,10000,25000,50000,100000,",
    "250000,500000,1000000,2500000,5000000,10000000],",
    "\"buckets\":[0,1,0,0,0,0,0,0,0,0,0,0,0,1,0,0,1],",
    "\"sum_micros\":13500150,\"count\":3}}}\n",
);

#[test]
fn prometheus_exposition_is_pinned_exactly() {
    assert_eq!(fixture().snapshot().to_prometheus(), GOLDEN_PROMETHEUS);
}

#[test]
fn json_envelope_is_pinned_exactly() {
    assert_eq!(fixture().snapshot().to_json(), GOLDEN_JSON);
}

#[test]
fn golden_prometheus_round_trips_through_the_strict_parser() {
    let samples = parse_prometheus(GOLDEN_PROMETHEUS).expect("golden must parse");
    // 3 scalar samples + 17 buckets + sum + count.
    assert_eq!(
        samples.len(),
        3 + DURATION_BUCKET_BOUNDS_MICROS.len() + 1 + 2
    );
    assert!(samples.iter().any(
        |s| s.name == "mcim_stage_duration_seconds_bucket" && s.labels.contains("le=\"+Inf\"")
    ));
    // The histogram's cumulative counts are monotone.
    let buckets: Vec<f64> = samples
        .iter()
        .filter(|s| s.name == "mcim_stage_duration_seconds_bucket")
        .map(|s| s.value.parse().unwrap())
        .collect();
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
}

#[test]
fn bucket_boundaries_are_pinned() {
    // The exported `le` edges derive from these micros; changing them
    // changes every dashboard — pin the layout.
    assert_eq!(
        DURATION_BUCKET_BOUNDS_MICROS,
        [
            100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
            1_000_000, 2_500_000, 5_000_000, 10_000_000,
        ]
    );
}
