//! The clock seam: every span duration in the workspace is read through
//! the [`Clock`] trait, never from `std::time` directly.
//!
//! This file is the **single lint-sanctioned home for `Instant::now`**
//! (`mcim-lint`'s `clock-discipline` rule): tools and pipelines time
//! spans through [`MonotonicClock`], tests inject a [`ManualClock`] and
//! advance it by hand, and no other library file may read a wall or
//! monotonic clock at all. Keeping the read behind one trait is what
//! lets the telemetry layer exist inside a bit-reproducible system —
//! durations are observable, but nothing downstream of a clock read can
//! feed back into pipeline output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic microsecond source.
///
/// Implementations must be monotonic per instance (later calls return
/// `>=` earlier calls); the absolute origin is arbitrary.
pub trait Clock: Send + Sync {
    /// Microseconds since this clock's (arbitrary) origin.
    fn now_micros(&self) -> u64;
}

/// The real monotonic clock, for tools and long-running processes.
///
/// Lazily anchors an [`Instant`] origin on first read so the type stays
/// `const`-constructible (a process-wide `static` needs that).
pub struct MonotonicClock {
    origin: OnceLock<Instant>,
}

impl MonotonicClock {
    /// A clock whose origin is its first `now_micros` call.
    pub const fn new() -> Self {
        Self {
            origin: OnceLock::new(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        // The one sanctioned monotonic-clock read in library code; see
        // the module docs and mcim-lint's `clock-discipline` rule.
        #[allow(clippy::disallowed_methods)]
        let origin = self.origin.get_or_init(Instant::now);
        u64::try_from(origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic tests: time moves only when
/// the test says so, making span durations (and therefore histogram
/// contents) exactly reproducible.
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at 0 µs.
    pub const fn new() -> Self {
        Self {
            micros: AtomicU64::new(0),
        }
    }

    /// Advances the clock by `micros` microseconds.
    pub fn advance_micros(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute microsecond value.
    pub fn set_micros(&self, micros: u64) {
        self.micros.store(micros, Ordering::Relaxed);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_by_hand() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance_micros(150);
        assert_eq!(c.now_micros(), 150);
        c.set_micros(42);
        assert_eq!(c.now_micros(), 42);
    }
}
