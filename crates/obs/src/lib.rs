//! # mcim-obs
//!
//! Deterministic telemetry for the multi-class LDP workspace: a
//! process-wide metrics registry (atomic counters, gauges, fixed-bucket
//! histograms, snapshotted into `BTreeMap` order), stage/fold span
//! timing behind an injectable [`Clock`], and Prometheus/JSON export.
//!
//! The layer is built so observation can never perturb results:
//!
//! * **Off by default, no-ops when off.** The global recording calls
//!   ([`counter_add`], [`span`], …) do nothing until
//!   [`set_enabled`]`(true)`; built with `--no-default-features` they
//!   compile to empty bodies. Pipeline output is bit-identical with
//!   metrics on or off either way — nothing downstream of a counter or a
//!   clock read feeds back into an estimate.
//! * **One clock seam.** Span durations come from the process clock
//!   ([`MonotonicClock`] by default, a [`ManualClock`] injected via
//!   [`set_clock`] in tests). `crates/obs/src/clock.rs` is the single
//!   lint-sanctioned home for `Instant::now` (`mcim-lint`'s
//!   `clock-discipline` rule).
//! * **Deterministic snapshots.** Two identical runs produce identical
//!   [`Snapshot`]s modulo timing fields
//!   ([`Snapshot::without_timing`] strips exactly those), and identical
//!   snapshots export to byte-identical Prometheus text
//!   ([`Snapshot::to_prometheus`]) and JSON ([`Snapshot::to_json`]).
//!
//! Instrumented metric families (see the README "Observability"
//! section): `mcim_fold_*` / `mcim_stage_duration_seconds` from the
//! in-process executor, `mcim_pipeline_*` / `mcim_pem_rounds_total` from
//! the framework and top-k layers, and `mcim_dist_*` from the
//! distributed reducer (per-worker byte/frame/round-trip counters plus
//! the absorbed `FoldReport`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod export;
mod registry;

use std::sync::Mutex;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use export::{parse_prometheus, Sample};
pub use registry::{
    labeled, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot,
    DURATION_BUCKET_BOUNDS_MICROS,
};

/// The process-wide registry behind the free functions below.
static GLOBAL: Registry = Registry::new();

#[cfg(feature = "enabled")]
static ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// The injected clock; `None` means the built-in monotonic clock.
static CLOCK: Mutex<Option<&'static dyn Clock>> = Mutex::new(None);
static DEFAULT_CLOCK: MonotonicClock = MonotonicClock::new();

/// The process-wide registry. Recording through it directly bypasses the
/// [`enabled`] gate — instrumentation sites should use the free
/// functions; exporters and tests may read it at will.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Turns global metric recording on or off (off at process start).
/// A no-op build (`--no-default-features`) ignores this entirely.
#[cfg(feature = "enabled")]
pub fn set_enabled(on: bool) {
    ENABLED.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// See the other cfg arm.
#[cfg(not(feature = "enabled"))]
pub fn set_enabled(_on: bool) {}

/// Whether global recording is currently on. Constant `false` in a
/// no-op build, letting the optimizer delete gated recording blocks.
#[cfg(feature = "enabled")]
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(std::sync::atomic::Ordering::Relaxed)
}

/// See the other cfg arm.
#[cfg(not(feature = "enabled"))]
#[inline]
pub const fn enabled() -> bool {
    false
}

/// Injects the span clock — [`ManualClock`] in tests makes every span
/// duration exactly reproducible. Applies process-wide.
pub fn set_clock(clock: &'static dyn Clock) {
    *CLOCK.lock().unwrap_or_else(|p| p.into_inner()) = Some(clock);
}

/// The current time in microseconds from the injected (or default
/// monotonic) clock.
pub fn now_micros() -> u64 {
    let guard = CLOCK.lock().unwrap_or_else(|p| p.into_inner());
    match *guard {
        Some(clock) => clock.now_micros(),
        None => DEFAULT_CLOCK.now_micros(),
    }
}

/// Adds `n` to the global counter `key` (no-op when disabled).
#[inline]
pub fn counter_add(key: &str, n: u64) {
    if enabled() {
        GLOBAL.counter_add(key, n);
    }
}

/// Sets the global gauge `key` (no-op when disabled).
#[inline]
pub fn gauge_set(key: &str, v: i64) {
    if enabled() {
        GLOBAL.gauge_set(key, v);
    }
}

/// Observes a duration into the global histogram `key` (no-op when
/// disabled).
#[inline]
pub fn observe_duration_micros(key: &str, micros: u64) {
    if enabled() {
        GLOBAL.observe_duration_micros(key, micros);
    }
}

/// Snapshot of the global registry (empty while nothing was recorded).
pub fn snapshot() -> Snapshot {
    GLOBAL.snapshot()
}

/// Clears the global registry (CLI/test run boundaries).
pub fn reset() {
    GLOBAL.reset();
}

/// A timed span over the global registry and clock. Obtain with
/// [`span`]; [`Span::finish`] observes the elapsed duration into the
/// span's histogram. When recording is disabled the span is inert and
/// reads no clock.
#[must_use = "a span only records when finished"]
pub struct Span {
    key: Option<String>,
    start: u64,
}

/// Starts a span named by a rendered metric key (use [`labeled`] for
/// labels). No-op (and no clock read) when disabled.
pub fn span(key: impl Into<String>) -> Span {
    if enabled() {
        Span {
            key: Some(key.into()),
            start: now_micros(),
        }
    } else {
        Span {
            key: None,
            start: 0,
        }
    }
}

/// [`span`], but the key is only rendered when recording is enabled —
/// the idiom for labeled spans whose key needs a `format!`/[`labeled`]
/// allocation the disabled path must not pay.
pub fn span_with(key: impl FnOnce() -> String) -> Span {
    if enabled() {
        Span {
            key: Some(key()),
            start: now_micros(),
        }
    } else {
        Span {
            key: None,
            start: 0,
        }
    }
}

impl Span {
    /// Ends the span, observing its duration. Inert spans do nothing.
    pub fn finish(self) {
        if let Some(key) = self.key {
            let elapsed = now_micros().saturating_sub(self.start);
            GLOBAL.observe_duration_micros(&key, elapsed);
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // The global registry, toggle and clock are process-wide; every test
    // touching them serializes here.
    static GLOBAL_STATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recording_is_invisible() {
        let _guard = GLOBAL_STATE.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(false);
        counter_add("c", 3);
        gauge_set("g", 1);
        observe_duration_micros("d", 5);
        span("s").finish();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn enabled_recording_lands_in_the_global_snapshot() {
        let _guard = GLOBAL_STATE.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(true);
        counter_add("c_total", 3);
        counter_add("c_total", 1);
        gauge_set("g", -2);
        let s = snapshot();
        set_enabled(false);
        reset();
        assert_eq!(s.counters["c_total"], 4);
        assert_eq!(s.gauges["g"], -2);
    }

    #[test]
    fn spans_use_the_injected_clock() {
        let _guard = GLOBAL_STATE.lock().unwrap_or_else(|p| p.into_inner());
        static MANUAL: ManualClock = ManualClock::new();
        reset();
        set_clock(&MANUAL);
        set_enabled(true);
        let span = span(labeled("stage_d", &[("stage", "t")]));
        MANUAL.advance_micros(150);
        span.finish();
        let s = snapshot();
        set_enabled(false);
        reset();
        let h = &s.histograms["stage_d{stage=\"t\"}"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 150);
    }
}
