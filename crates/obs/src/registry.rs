//! The metrics registry: atomic counters, gauges and fixed-bucket
//! histograms keyed by rendered metric keys (`name` or
//! `name{label="value"}`), snapshotted into deterministic `BTreeMap`
//! order.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are lock-free once
//! registered; the registry's `Mutex`-guarded maps are touched only at
//! registration and snapshot time. A poisoned map lock is recovered (a
//! panicking *reader* cannot corrupt counter state), so the telemetry
//! layer itself never panics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// The fixed duration bucket boundaries, in microseconds (100 µs … 10 s,
/// roughly logarithmic). All span histograms share these bounds, so any
/// two snapshots — and the golden export tests — agree on bucket layout.
pub const DURATION_BUCKET_BOUNDS_MICROS: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations (microseconds for
/// span durations). `bounds` are inclusive upper bounds; one implicit
/// `+Inf` bucket catches the overflow.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        Self {
            bounds,
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket upper bounds this histogram was registered with.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    fn snap(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds; `buckets` has one extra `+Inf` slot.
    pub bounds: &'static [u64],
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

/// All metrics at one instant, in deterministic `BTreeMap` order. Keys
/// are rendered metric keys (`name` or `name{label="value"}`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// This snapshot with every timing-derived field zeroed: histogram
    /// sums and bucket distributions are wall-clock artifacts, while
    /// counters, gauges and histogram *counts* are pure functions of the
    /// work done. Two identical runs must agree exactly on this view.
    pub fn without_timing(&self) -> Snapshot {
        let mut out = self.clone();
        for h in out.histograms.values_mut() {
            h.sum = 0;
            for b in &mut h.buckets {
                *b = 0;
            }
        }
        out
    }

    /// Whether any metric is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// A metrics registry: three keyed maps handing out shared atomic
/// handles. One process-wide instance lives behind
/// [`crate::global`]; tests may build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicked holder can only have been mid-registration or
    // mid-snapshot; the maps' Arc values are always structurally valid.
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter registered under `key`, created at zero on first use.
    pub fn counter(&self, key: &str) -> Arc<Counter> {
        Arc::clone(locked(&self.counters).entry(key.to_string()).or_default())
    }

    /// The gauge registered under `key`, created at zero on first use.
    pub fn gauge(&self, key: &str) -> Arc<Gauge> {
        Arc::clone(locked(&self.gauges).entry(key.to_string()).or_default())
    }

    /// The histogram registered under `key`. `bounds` applies on first
    /// registration; later callers receive the existing histogram (and
    /// its original bounds) regardless of what they pass.
    pub fn histogram(&self, key: &str, bounds: &'static [u64]) -> Arc<Histogram> {
        Arc::clone(
            locked(&self.histograms)
                .entry(key.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Convenience: `counter(key).add(n)`.
    pub fn counter_add(&self, key: &str, n: u64) {
        self.counter(key).add(n);
    }

    /// Convenience: `gauge(key).set(v)`.
    pub fn gauge_set(&self, key: &str, v: i64) {
        self.gauge(key).set(v);
    }

    /// Convenience: observe a span duration into the shared
    /// [`DURATION_BUCKET_BOUNDS_MICROS`] layout.
    pub fn observe_duration_micros(&self, key: &str, micros: u64) {
        self.histogram(key, DURATION_BUCKET_BOUNDS_MICROS)
            .observe(micros);
    }

    /// A deterministic snapshot of everything registered.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: locked(&self.counters)
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: locked(&self.gauges)
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: locked(&self.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), h.snap()))
                .collect(),
        }
    }

    /// Drops every registered metric. Outstanding handles keep working
    /// but no longer appear in snapshots.
    pub fn reset(&self) {
        locked(&self.counters).clear();
        locked(&self.gauges).clear();
        locked(&self.histograms).clear();
    }
}

/// Renders `name{label="value",…}` — the registry's key syntax, shared
/// by every instrumentation site so label order is fixed at the call
/// site, not discovered at export time.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        r.counter("a_total").add(2);
        r.counter("a_total").inc();
        r.gauge("g").set(-4);
        r.gauge("g").add(1);
        let s = r.snapshot();
        assert_eq!(s.counters["a_total"], 3);
        assert_eq!(s.gauges["g"], -3);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let r = Registry::new();
        let h = r.histogram("d", &[10, 100]);
        h.observe(5); // <= 10
        h.observe(10); // <= 10 (inclusive upper bound)
        h.observe(50); // <= 100
        h.observe(1000); // +Inf
        let s = r.snapshot();
        let hs = &s.histograms["d"];
        assert_eq!(hs.buckets, vec![2, 1, 1]);
        assert_eq!(hs.sum, 1065);
        assert_eq!(hs.count, 4);
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        r.counter("m{w=\"1\"}").inc();
        let snap = r.snapshot();
        let keys: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(keys, ["a", "m{w=\"1\"}", "z"]);
    }

    #[test]
    fn without_timing_zeroes_durations_only() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.observe_duration_micros("d", 333);
        let a = r.snapshot().without_timing();
        assert_eq!(a.counters["c"], 7);
        assert_eq!(a.histograms["d"].count, 1);
        assert_eq!(a.histograms["d"].sum, 0);
        assert!(a.histograms["d"].buckets.iter().all(|&b| b == 0));
    }

    #[test]
    fn labeled_renders_prometheus_key_syntax() {
        assert_eq!(labeled("n", &[]), "n");
        assert_eq!(
            labeled("n", &[("worker", "0"), ("stage", "fw")]),
            "n{worker=\"0\",stage=\"fw\"}"
        );
    }

    #[test]
    fn reset_clears_but_handles_survive() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        r.reset();
        assert!(r.snapshot().is_empty());
        c.inc(); // must not panic; just invisible now
        assert_eq!(c.get(), 2);
    }
}
