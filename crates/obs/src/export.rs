//! Snapshot export: Prometheus text exposition, a hand-rolled JSON
//! envelope, the CLI's `--verbose` summary table — and the golden
//! parser CI uses to validate emitted exposition files.
//!
//! All rendering is pure integer formatting (durations are microsecond
//! `u64`s rendered as fixed-point seconds), so identical snapshots
//! always produce byte-identical output — the property the golden tests
//! pin.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::{HistogramSnapshot, Snapshot};

/// Renders `micros` as a fixed-point seconds literal (`0.000150`).
fn fmt_seconds(micros: u64) -> String {
    format!("{}.{:06}", micros / 1_000_000, micros % 1_000_000)
}

/// Splits a rendered metric key into `(family, label_block)` where
/// `label_block` includes its braces (`{worker="0"}`) or is empty.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    }
}

/// Inserts `extra` (e.g. `le="+Inf"`) into a label block, creating one
/// if the key had none.
fn with_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        // split_key only returns non-empty label blocks ending in '}';
        // the fallback keeps this infallible without a panic path.
        let body = labels.strip_suffix('}').unwrap_or(labels);
        format!("{body},{extra}}}")
    }
}

fn families<V>(map: &BTreeMap<String, V>) -> BTreeMap<&str, Vec<(&str, &V)>> {
    let mut out: BTreeMap<&str, Vec<(&str, &V)>> = BTreeMap::new();
    for (key, v) in map {
        let (family, labels) = split_key(key);
        out.entry(family).or_default().push((labels, v));
    }
    out
}

impl Snapshot {
    /// Prometheus text exposition (version 0.0.4): one `# TYPE` line per
    /// metric family, histogram `_bucket`/`_sum`/`_count` expansion with
    /// `le` upper bounds rendered as fixed-point seconds.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (family, entries) in families(&self.counters) {
            let _ = writeln!(out, "# TYPE {family} counter");
            for (labels, v) in entries {
                let _ = writeln!(out, "{family}{labels} {v}");
            }
        }
        for (family, entries) in families(&self.gauges) {
            let _ = writeln!(out, "# TYPE {family} gauge");
            for (labels, v) in entries {
                let _ = writeln!(out, "{family}{labels} {v}");
            }
        }
        for (family, entries) in families(&self.histograms) {
            let _ = writeln!(out, "# TYPE {family} histogram");
            for (labels, h) in entries {
                let mut cumulative = 0u64;
                for (i, bucket) in h.buckets.iter().enumerate() {
                    cumulative += bucket;
                    let le = match h.bounds.get(i) {
                        Some(&b) => fmt_seconds(b),
                        None => "+Inf".to_string(),
                    };
                    let lb = with_label(labels, &format!("le=\"{le}\""));
                    let _ = writeln!(out, "{family}_bucket{lb} {cumulative}");
                }
                let _ = writeln!(out, "{family}_sum{labels} {}", fmt_seconds(h.sum));
                let _ = writeln!(out, "{family}_count{labels} {}", h.count);
            }
        }
        out
    }

    /// The hand-rolled JSON envelope: one line, deterministic key order,
    /// microsecond-integer histogram fields (no float formatting).
    pub fn to_json(&self) -> String {
        fn json_str(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn join(items: Vec<String>) -> String {
            items.join(",")
        }
        let counters = join(
            self.counters
                .iter()
                .map(|(k, v)| format!("{}:{v}", json_str(k)))
                .collect(),
        );
        let gauges = join(
            self.gauges
                .iter()
                .map(|(k, v)| format!("{}:{v}", json_str(k)))
                .collect(),
        );
        let hist = |h: &HistogramSnapshot| {
            format!(
                "{{\"bounds_micros\":[{}],\"buckets\":[{}],\"sum_micros\":{},\"count\":{}}}",
                join(h.bounds.iter().map(u64::to_string).collect()),
                join(h.buckets.iter().map(u64::to_string).collect()),
                h.sum,
                h.count
            )
        };
        let histograms = join(
            self.histograms
                .iter()
                .map(|(k, h)| format!("{}:{}", json_str(k), hist(h)))
                .collect(),
        );
        format!(
            "{{\"mcim_obs\":1,\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\
             \"histograms\":{{{histograms}}}}}\n"
        )
    }

    /// The `--verbose` summary table: one aligned `key value` row per
    /// metric, histograms condensed to `count=N sum=S.SSSSSSs`.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (k, v) in &self.counters {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, v) in &self.gauges {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, h) in &self.histograms {
            rows.push((
                k.clone(),
                format!("count={} sum={}s", h.count, fmt_seconds(h.sum)),
            ));
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(6).max(6);
        let mut out = format!("{:width$}  value\n", "metric");
        for (k, v) in rows {
            let _ = writeln!(out, "{k:width$}  {v}");
        }
        out
    }
}

/// One sample line of a Prometheus exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric name (with histogram suffix if any).
    pub name: String,
    /// The raw label block, braces included; empty when unlabeled.
    pub labels: String,
    /// The value, verbatim.
    pub value: String,
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_labels(block: &str) -> bool {
    let Some(body) = block.strip_prefix('{').and_then(|b| b.strip_suffix('}')) else {
        return false;
    };
    body.split(',').all(|pair| {
        pair.split_once("=\"").is_some_and(|(k, v)| {
            valid_name(k) && v.ends_with('"') && !v[..v.len() - 1].contains('"')
        })
    })
}

/// The golden parser: validates a Prometheus text exposition and returns
/// its samples. Every `# TYPE` family must be one of
/// `counter`/`gauge`/`histogram`, every sample line must parse as
/// `name[{labels}] value` with a numeric value, and every sample's
/// family must have been typed first. Errors name the offending line.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let parts: Vec<&str> = comment.split_whitespace().collect();
            match parts.as_slice() {
                ["TYPE", family, kind] => {
                    if !valid_name(family) {
                        return Err(format!("line {lineno}: bad family name `{family}`"));
                    }
                    if !matches!(*kind, "counter" | "gauge" | "histogram") {
                        return Err(format!("line {lineno}: unknown metric type `{kind}`"));
                    }
                    typed.insert(family.to_string(), kind.to_string());
                }
                ["HELP", ..] => {}
                _ => return Err(format!("line {lineno}: unparseable comment `{line}`")),
            }
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {lineno}: no value in `{line}`"));
        };
        let (name, labels) = match key.find('{') {
            Some(i) => (&key[..i], &key[i..]),
            None => (key, ""),
        };
        if !valid_name(name) {
            return Err(format!("line {lineno}: bad metric name `{name}`"));
        }
        if !labels.is_empty() && !valid_labels(labels) {
            return Err(format!("line {lineno}: bad label block `{labels}`"));
        }
        let numeric = value == "+Inf"
            || value
                .strip_prefix('-')
                .unwrap_or(value)
                .chars()
                .all(|c| c.is_ascii_digit() || c == '.');
        if !numeric || value.is_empty() {
            return Err(format!("line {lineno}: non-numeric value `{value}`"));
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        if !typed.contains_key(family) {
            return Err(format!("line {lineno}: sample `{name}` has no # TYPE line"));
        }
        samples.push(Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value: value.to_string(),
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter_add("mcim_folds_total", 2);
        r.counter_add("mcim_dist_tx_bytes_total{worker=\"0\"}", 640);
        r.gauge_set("mcim_dist_workers", 4);
        r.histogram("mcim_stage_duration_seconds{stage=\"fw\"}", &[100, 1000])
            .observe(150);
        r
    }

    #[test]
    fn prometheus_exposition_round_trips_through_the_parser() {
        let text = sample_registry().snapshot().to_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.name == "mcim_folds_total" && s.value == "2"));
        assert!(samples
            .iter()
            .any(|s| s.name == "mcim_stage_duration_seconds_bucket"
                && s.labels.contains("le=\"+Inf\"")));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("# TYPE x widget\nx 1\n").is_err());
        assert!(parse_prometheus("x 1\n").is_err(), "untyped sample");
        assert!(parse_prometheus("# TYPE x counter\nx one\n").is_err());
        assert!(parse_prometheus("# TYPE x counter\nx{bad} 1\n").is_err());
        assert!(parse_prometheus("# bogus comment\n").is_err());
    }

    #[test]
    fn fixed_point_seconds_never_use_float_formatting() {
        assert_eq!(fmt_seconds(0), "0.000000");
        assert_eq!(fmt_seconds(150), "0.000150");
        assert_eq!(fmt_seconds(2_500_000), "2.500000");
    }

    #[test]
    fn json_envelope_is_single_line_and_ordered() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.ends_with('}') || json.ends_with("}\n"));
        assert_eq!(json.lines().count(), 1);
        let dist = json.find("mcim_dist_tx_bytes_total").unwrap();
        let folds = json.find("mcim_folds_total").unwrap();
        assert!(dist < folds, "BTreeMap order in the envelope");
        assert!(json.contains("\"bounds_micros\":[100,1000]"));
    }

    #[test]
    fn table_rows_align_and_cover_all_kinds() {
        let table = sample_registry().snapshot().render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 1 + 4, "header + 4 metrics");
        assert!(lines[0].starts_with("metric"));
        assert!(table.contains("mcim_dist_workers"));
        assert!(table.contains("count=1 sum=0.000150s"));
    }
}
