//! Scale-aware dataset construction and shared top-k evaluation used by the
//! figure/table benchmark targets.

use mcim_datasets::{anime_like, jd_like, Dataset, RealConfig, SynLargeConfig};
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::SliceSource;
use mcim_topk::{execute, TopKConfig, TopKMethod};

use crate::{mean, run_trials, Scale};

/// The Anime-like workload (Fig. 7a/b, Table III, Fig. 12).
pub fn anime(scale: Scale) -> Dataset {
    let config = match scale {
        Scale::Small => RealConfig {
            users: 200_000,
            items: 4096,
            seed: 0xA117E,
        },
        Scale::Paper => RealConfig {
            users: 7_000_000,
            items: 14_000,
            seed: 0xA117E,
        },
    };
    anime_like(config)
}

/// The JD-like workload (Fig. 7c/d, Fig. 8, Fig. 9, Fig. 12).
pub fn jd(scale: Scale) -> Dataset {
    let config = match scale {
        Scale::Small => RealConfig {
            users: 300_000,
            items: 2048,
            seed: 0x1D,
        },
        Scale::Paper => RealConfig {
            users: 9_000_000,
            items: 28_000,
            seed: 0x1D,
        },
    };
    jd_like(config)
}

/// SYN3/SYN4 configuration for a class count (Fig. 10, Fig. 11).
pub fn syn_config(scale: Scale, classes: u32) -> SynLargeConfig {
    match scale {
        Scale::Small => SynLargeConfig {
            classes,
            items: 2048,
            users: 200_000,
            seed: 0x5E3D,
        },
        Scale::Paper => SynLargeConfig {
            classes,
            items: 20_000,
            users: 5_000_000,
            seed: 0x5E3D,
        },
    }
}

/// Mean F1 and NCR of a mining method over trials (averaged across classes
/// within each trial, then across trials — the paper's aggregation).
#[derive(Debug, Clone, Copy)]
pub struct TopKScores {
    /// Mean F1 across classes and trials.
    pub f1: f64,
    /// Mean NCR across classes and trials.
    pub ncr: f64,
}

/// Evaluates one method on one dataset.
pub fn evaluate_topk(
    method: TopKMethod,
    config: TopKConfig,
    ds: &Dataset,
    truth: &[Vec<u32>],
    trials: usize,
    seed_base: u64,
) -> TopKScores {
    let per_trial = run_trials(trials, |trial| {
        let plan = Exec::sequential().seed(seed_base ^ (trial.wrapping_mul(0x9E37)));
        let result = execute(
            method,
            config,
            ds.domains,
            &plan,
            SliceSource::new(&ds.pairs),
        )
        .expect("mining failed");
        let classes = ds.domains.classes() as usize;
        let f1 = (0..classes)
            .map(|c| mcim_metrics::f1_at_k(&result.per_class[c], &truth[c]))
            .sum::<f64>()
            / classes as f64;
        let ncr = (0..classes)
            .map(|c| mcim_metrics::ncr_at_k(&result.per_class[c], &truth[c]))
            .sum::<f64>()
            / classes as f64;
        (f1, ncr)
    });
    TopKScores {
        f1: mean(&per_trial.iter().map(|x| x.0).collect::<Vec<_>>()),
        ncr: mean(&per_trial.iter().map(|x| x.1).collect::<Vec<_>>()),
    }
}
