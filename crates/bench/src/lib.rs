//! # mcim-bench
//!
//! Shared harness for the benchmark targets that regenerate every table and
//! figure of the paper's evaluation section (§VII). Each target in
//! `benches/` prints the paper-style rows/series and writes a CSV under
//! `results/`.
//!
//! ## Scaling
//!
//! Paper-scale workloads (5–9M users, 14k–28k items, 20 trials) exceed a CI
//! time budget; every target therefore reads:
//!
//! * `MCIM_SCALE` — `small` (default) or `paper`,
//! * `MCIM_TRIALS` — trial-count override.
//!
//! EXPERIMENTS.md records the shape comparison at the default scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod workloads;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Workload scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop/CI scale (default): minutes per target.
    Small,
    /// The paper's full sizes: hours per target.
    Paper,
}

/// Environment-driven benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchEnv {
    /// Selected workload scale.
    pub scale: Scale,
    /// Number of trials to average (paper: 20).
    pub trials: usize,
}

impl BenchEnv {
    /// Reads `MCIM_SCALE` / `MCIM_TRIALS`, with `default_trials` used for
    /// the small scale (paper scale defaults to the paper's 20 trials).
    pub fn from_env(default_trials: usize) -> Self {
        let scale = match std::env::var("MCIM_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") | Ok("full") => Scale::Paper,
            _ => Scale::Small,
        };
        let trials = std::env::var("MCIM_TRIALS")
            .ok()
            .and_then(|t| t.parse().ok())
            .unwrap_or(match scale {
                Scale::Small => default_trials,
                Scale::Paper => 20,
            });
        BenchEnv { scale, trials }
    }

    /// Announces the configuration on stdout.
    pub fn announce(&self, bench: &str) {
        println!(
            "== {bench} | scale={:?} trials={} (set MCIM_SCALE=paper / MCIM_TRIALS=n to change) ==",
            self.scale, self.trials
        );
    }
}

/// A printable, CSV-dumpable results table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table. `name` becomes the CSV file stem.
    pub fn new(name: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table and writes `results/<name>.csv` (see
    /// [`results_dir`]), creating the directory on first run.
    pub fn print_and_save(&self) -> io::Result<PathBuf> {
        println!("{}", self.render());
        let path = self.save_csv(&results_dir())?;
        println!("[saved {}]\n", path.display());
        Ok(path)
    }

    /// Writes `<dir>/<name>.csv`, creating `dir` (and parents) if absent.
    pub fn save_csv(&self, dir: &std::path::Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("creating results dir {}: {e}", dir.display()),
            )
        })?;
        let path = dir.join(format!("{}.csv", self.name));
        fs::write(&path, self.to_csv())
            .map_err(|e| io::Error::new(e.kind(), format!("writing {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Renders the table as RFC-4180-style CSV.
    pub fn to_csv(&self) -> String {
        let mut csv = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            csv,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                csv,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        csv
    }
}

/// Where CSVs land: `MCIM_RESULTS` if set, otherwise the repo root's
/// `results/` directory (resolved lexically from this crate's location so
/// the path is identical no matter which directory the target is run from).
pub fn results_dir() -> PathBuf {
    results_dir_from(std::env::var_os("MCIM_RESULTS"))
}

/// [`results_dir`] with the override injected — testable without mutating
/// process-global environment.
fn results_dir_from(env_override: Option<std::ffi::OsString>) -> PathBuf {
    if let Some(dir) = env_override {
        return PathBuf::from(dir);
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    // crates/bench -> repo root, without leaving ".." components in the
    // path benches print and error messages show.
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(|root| root.join("results"))
        .unwrap_or_else(|| manifest.join("results"))
}

/// Runs `trials` independent jobs (seeded 0..trials) across threads and
/// collects the results in trial order.
pub fn run_trials<T, F>(trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(trials.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let done: Vec<std::sync::Mutex<Option<T>>> =
        (0..trials).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let value = f(i as u64);
                *done[i].lock().expect("slot lock") = Some(value);
            });
        }
    });
    done.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("lock")
                .expect("every trial slot filled")
        })
        .collect()
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Formats a float compactly for table cells.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_to_small() {
        let env = BenchEnv::from_env(5);
        assert_eq!(env.scale, Scale::Small);
        assert!(env.trials >= 1);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("test", &["a", "long_header"]);
        t.push(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long_header"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("test", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn run_trials_returns_in_order() {
        let out = run_trials(16, |seed| seed * 2);
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn save_csv_creates_missing_directory() {
        let dir = std::env::temp_dir().join(format!(
            "mcim_bench_save_csv_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let nested = dir.join("results");
        let _ = fs::remove_dir_all(&dir);
        assert!(!nested.exists(), "fresh temp dir");

        let mut t = Table::new("first_run", &["a", "b"]);
        t.push(vec!["1".into(), "x,y".into()]);
        let path = t.save_csv(&nested).expect("first run must create the dir");
        let written = fs::read_to_string(&path).unwrap();
        assert_eq!(written, "a,b\n1,\"x,y\"\n", "quoted CSV cell");

        // Second run overwrites without error.
        t.save_csv(&nested).expect("existing dir is fine too");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn to_csv_escapes_quotes() {
        let mut t = Table::new("esc", &["h"]);
        t.push(vec!["say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "h\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn results_dir_has_no_dotdot_components() {
        let dir = results_dir_from(None);
        assert!(
            dir.components()
                .all(|c| c != std::path::Component::ParentDir),
            "normalized: {}",
            dir.display()
        );
        assert!(dir.ends_with("results"));
        assert_eq!(
            results_dir_from(Some("/tmp/override".into())),
            PathBuf::from("/tmp/override"),
            "env override wins"
        );
    }

    #[test]
    fn mean_and_fmt() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(12345.0).contains('e'));
        assert_eq!(fmt(0.5), "0.500");
    }
}
