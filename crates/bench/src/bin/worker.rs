//! A minimal distributed-reducer worker for the `dist_reduce` bench slice:
//! `mcim worker` without the rest of the CLI. Accepts the same
//! `worker --listen <addr> --once` shape `spawn_local_workers` drives.

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:0".to_string();
    let mut once = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "worker" => {}
            "--listen" => match iter.next() {
                Some(addr) => listen = addr.clone(),
                None => {
                    eprintln!("--listen needs an address");
                    return std::process::ExitCode::FAILURE;
                }
            },
            "--once" => once = true,
            other => {
                eprintln!("unknown argument {other:?}");
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    match mcim_dist::worker_main(&listen, once) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker failed: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}
