//! **Table III** — ablation study of the optimizations on the Anime-like
//! workload (k = 20, ε = 5): the PTJ row {baseline, +VP, +Shuffling, all}
//! and the PTS row {baseline, +Global, +VP, +Shuffling, all}.
//!
//! Run: `cargo bench -p mcim-bench --bench table3_ablation`

use mcim_bench::workloads::{anime, evaluate_topk};
use mcim_bench::{fmt, BenchEnv, Table};
use mcim_oracles::Eps;
use mcim_topk::{TopKConfig, TopKMethod};

fn main() {
    let env = BenchEnv::from_env(5);
    env.announce("Table III: ablation on PTJ and PTS (Anime-like, k = 20, eps = 5)");
    let k = 20;
    let ds = anime(env.scale);
    let truth = ds.true_top_k(k);
    let config = TopKConfig::new(k, Eps::new(5.0).unwrap());

    let mut ptj_table = Table::new(
        "table3_ablation_ptj",
        &[
            "metric",
            "PTJ (Baseline)",
            "VP",
            "Shuffling",
            "All optimizations",
        ],
    );
    let ptj_scores: Vec<_> = TopKMethod::table3_ptj_set()
        .iter()
        .map(|m| evaluate_topk(*m, config, &ds, &truth, env.trials, 0x7AB3))
        .collect();
    ptj_table.push(
        std::iter::once("F1".to_string())
            .chain(ptj_scores.iter().map(|s| fmt(s.f1)))
            .collect(),
    );
    ptj_table.push(
        std::iter::once("NCR".to_string())
            .chain(ptj_scores.iter().map(|s| fmt(s.ncr)))
            .collect(),
    );
    ptj_table.print_and_save().expect("write results");

    let mut pts_table = Table::new(
        "table3_ablation_pts",
        &[
            "metric",
            "PTS (Baseline)",
            "Global",
            "VP",
            "Shuffling",
            "All optimizations",
        ],
    );
    let pts_scores: Vec<_> = TopKMethod::table3_pts_set()
        .iter()
        .map(|m| evaluate_topk(*m, config, &ds, &truth, env.trials, 0x7AB3 ^ 0x5))
        .collect();
    pts_table.push(
        std::iter::once("F1".to_string())
            .chain(pts_scores.iter().map(|s| fmt(s.f1)))
            .collect(),
    );
    pts_table.push(
        std::iter::once("NCR".to_string())
            .chain(pts_scores.iter().map(|s| fmt(s.ncr)))
            .collect(),
    );
    pts_table.print_and_save().expect("write results");
    println!(
        "Expected shape (paper Table III): every optimization lifts its\n\
         baseline; combining all of them gives the largest improvement,\n\
         most pronounced on the PTS row."
    );
}
