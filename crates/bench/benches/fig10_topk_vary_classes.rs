//! **Fig. 10** — F1 and NCR vs the number of classes on SYN3 (with
//! globally frequent items) and SYN4 (without), ε = 4, k = 20, classes ∈
//! {10, 20, 30, 40, 50}.
//!
//! Run: `cargo bench -p mcim-bench --bench fig10_topk_vary_classes`

use mcim_bench::workloads::{evaluate_topk, syn_config};
use mcim_bench::{fmt, BenchEnv, Table};
use mcim_datasets::{syn3, syn4};
use mcim_oracles::Eps;
use mcim_topk::{TopKConfig, TopKMethod};

fn main() {
    let env = BenchEnv::from_env(2);
    env.announce("Fig. 10: top-k mining vs class count (SYN3/SYN4, eps = 4, k = 20)");
    let k = 20;
    let methods = TopKMethod::fig7_set();
    let class_counts = [10u32, 20, 30, 40, 50];
    type Generator = fn(mcim_datasets::SynLargeConfig) -> mcim_datasets::Dataset;
    for (name, generator) in [
        ("fig10ab_syn3", syn3 as Generator),
        ("fig10cd_syn4", syn4 as Generator),
    ] {
        let mut f1_table = Table::new(
            format!("{name}_f1"),
            &[
                "classes",
                "HEC",
                "PTJ",
                "PTJ-Shuffling+VP",
                "PTS",
                "PTS-Shuffling+VP+CP",
            ],
        );
        let mut ncr_table = Table::new(
            format!("{name}_ncr"),
            &[
                "classes",
                "HEC",
                "PTJ",
                "PTJ-Shuffling+VP",
                "PTS",
                "PTS-Shuffling+VP+CP",
            ],
        );
        for &classes in &class_counts {
            let ds = generator(syn_config(env.scale, classes));
            let truth = ds.true_top_k(k);
            let config = TopKConfig::new(k, Eps::new(4.0).unwrap());
            let mut f1_row = vec![format!("{classes}")];
            let mut ncr_row = vec![format!("{classes}")];
            for method in methods {
                let scores = evaluate_topk(
                    method,
                    config,
                    &ds,
                    &truth,
                    env.trials,
                    0xF1610 ^ classes as u64,
                );
                f1_row.push(fmt(scores.f1));
                ncr_row.push(fmt(scores.ncr));
            }
            f1_table.push(f1_row);
            ncr_table.push(ncr_row);
        }
        println!("dataset: {name}");
        f1_table.print_and_save().expect("write results");
        ncr_table.print_and_save().expect("write results");
    }
    println!(
        "Expected shape (paper Fig. 10): utility falls as classes grow for\n\
         every method; optimized methods stay above their baselines; the\n\
         PTS family degrades much more on SYN4 (no global items to exploit)\n\
         while PTJ behaves similarly on both."
    );
}
