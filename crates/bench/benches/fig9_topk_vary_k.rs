//! **Fig. 9** — F1 and NCR vs k on the JD-like workload (ε = 4,
//! k ∈ {10, 20, 30, 40, 50}).
//!
//! Run: `cargo bench -p mcim-bench --bench fig9_topk_vary_k`

use mcim_bench::workloads::{evaluate_topk, jd};
use mcim_bench::{fmt, BenchEnv, Table};
use mcim_oracles::Eps;
use mcim_topk::{TopKConfig, TopKMethod};

fn main() {
    let env = BenchEnv::from_env(3);
    env.announce("Fig. 9: top-k mining vs k (JD-like, eps = 4)");
    let ds = jd(env.scale);
    let methods = TopKMethod::fig7_set();
    let mut f1_table = Table::new(
        "fig9_jd_f1_vs_k",
        &[
            "k",
            "HEC",
            "PTJ",
            "PTJ-Shuffling+VP",
            "PTS",
            "PTS-Shuffling+VP+CP",
        ],
    );
    let mut ncr_table = Table::new(
        "fig9_jd_ncr_vs_k",
        &[
            "k",
            "HEC",
            "PTJ",
            "PTJ-Shuffling+VP",
            "PTS",
            "PTS-Shuffling+VP+CP",
        ],
    );
    for k in [10usize, 20, 30, 40, 50] {
        let truth = ds.true_top_k(k);
        let config = TopKConfig::new(k, Eps::new(4.0).unwrap());
        let mut f1_row = vec![format!("{k}")];
        let mut ncr_row = vec![format!("{k}")];
        for method in methods {
            let scores = evaluate_topk(method, config, &ds, &truth, env.trials, 0xF169 ^ k as u64);
            f1_row.push(fmt(scores.f1));
            ncr_row.push(fmt(scores.ncr));
        }
        f1_table.push(f1_row);
        ncr_table.push(ncr_row);
    }
    f1_table.print_and_save().expect("write results");
    ncr_table.print_and_save().expect("write results");
    println!(
        "Expected shape (paper Fig. 9): PTS utility falls as k grows (tail\n\
         items get harder); PTJ improves or holds with k as its candidate\n\
         set of joint pairs grows."
    );
}
