//! **Table II** — measured communication, time and space of the top-k
//! mining methods, next to the paper's asymptotic expressions.
//!
//! We report per-user uplink bits, per-user downlink (broadcast) bits,
//! end-to-end wall-clock time, and the candidate-state space, for the
//! baseline frameworks (PEM-based) and the optimized (†) methods.
//!
//! Run: `cargo bench -p mcim-bench --bench table2_complexity`

// Timing tool: measuring wall-clock time is this target's whole job
// (mcim-lint classifies benches as Tool; clippy needs the explicit allow).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use mcim_bench::workloads::jd;
use mcim_bench::{fmt, BenchEnv, Table};
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::SliceSource;
use mcim_oracles::Eps;
use mcim_topk::{execute, TopKConfig, TopKMethod};

fn main() {
    let env = BenchEnv::from_env(1);
    env.announce("Table II: complexity of top-k methods (JD-like, eps = 4, k = 20)");
    let ds = jd(env.scale);
    let k = 20;
    let config = TopKConfig::new(k, Eps::new(4.0).unwrap());
    println!(
        "workload: N = {}, c = {}, d = {}\n",
        ds.len(),
        ds.domains.classes(),
        ds.domains.items()
    );

    let mut table = Table::new(
        "table2_complexity",
        &[
            "method",
            "uplink bits/user",
            "downlink bits/user",
            "wall-clock s",
            "paper comm (user)",
        ],
    );
    let rows: [(TopKMethod, &str); 5] = [
        (TopKMethod::Hec, "O(2^m k log d)"),
        (
            TopKMethod::PtsPem {
                validity: false,
                global: false,
            },
            "O(2^m k log d)",
        ),
        (TopKMethod::PtjPem { validity: false }, "O(2^m c k log cd)"),
        (TopKMethod::PtjShuffled { validity: true }, "O(ck) (PTJ†)"),
        (
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true,
            },
            "O(ck) (PTS†)",
        ),
    ];
    for (method, asymptotic) in rows {
        let plan = Exec::sequential().seed(0x7AB2);
        let start = Instant::now();
        let result = execute(
            method,
            config,
            ds.domains,
            &plan,
            SliceSource::new(&ds.pairs),
        )
        .expect("mine");
        let elapsed = start.elapsed().as_secs_f64();
        table.push(vec![
            method.name(),
            fmt(result.comm.bits_per_user()),
            fmt(result.broadcast_bits_per_user),
            fmt(elapsed),
            asymptotic.to_string(),
        ]);
    }
    table.print_and_save().expect("write results");

    println!("Frequency-estimation frameworks (per-user report size):\n");
    let mut freq_table = Table::new(
        "table2_frequency_comm",
        &["framework", "bits/user", "paper comm"],
    );
    let eps = Eps::new(1.0).unwrap();
    let sample: Vec<mcim_core::LabelItem> = ds.pairs.iter().take(2_000).copied().collect();
    for fw in mcim_core::Framework::fig6_set() {
        let plan = Exec::sequential().seed(1);
        let result = fw
            .execute(eps, ds.domains, &plan, SliceSource::new(&sample))
            .expect("run");
        let asymptotic = match fw.name() {
            "PTJ" => "O(cd)",
            _ => "O(d)",
        };
        freq_table.push(vec![
            fw.name().to_string(),
            fmt(result.comm.bits_per_user()),
            asymptotic.to_string(),
        ]);
    }
    freq_table.print_and_save().expect("write results");
    println!(
        "Expected shape (paper Table II + §V-C): PTJ pays ~c× the per-user\n\
         uplink of PTS/HEC; the optimized (†) methods replace candidate\n\
         broadcasts with O(seeds + bucket states) downlink."
    );
}
