//! **Design ablation (DESIGN.md §4)** — the two forms of Algorithm 2's
//! noise test, on SYN3 with growing class counts (ε = 4, k = 20).
//!
//! The paper's printed test `|D_C| > b·|D'_C|` never trips for uniform
//! classes, so the final CP round runs even when the routed groups are
//! almost pure label-flip noise (valid fraction p₁ → 0); the intent-based
//! noise-to-valid test falls back to VP there. This bench documents why the
//! library defaults to the latter.
//!
//! Run: `cargo bench -p mcim-bench --bench ablation_noise_test`

use mcim_bench::workloads::{evaluate_topk, syn_config};
use mcim_bench::{fmt, BenchEnv, Table};
use mcim_datasets::syn3;
use mcim_oracles::Eps;
use mcim_topk::{NoiseTest, TopKConfig, TopKMethod};

fn main() {
    let env = BenchEnv::from_env(2);
    env.announce("Ablation: Algorithm 2 noise-test variants (SYN3, eps = 4, k = 20)");
    let k = 20;
    let method = TopKMethod::PtsShuffled {
        validity: true,
        global: true,
        correlated: true,
    };
    let baseline = TopKMethod::PtsPem {
        validity: false,
        global: false,
    };
    let mut table = Table::new(
        "ablation_noise_test_f1",
        &[
            "classes",
            "PTS baseline",
            "CP w/ paper ratio test",
            "CP w/ noise-to-valid test",
        ],
    );
    for classes in [5u32, 10, 20, 50] {
        let ds = syn3(syn_config(env.scale, classes));
        let truth = ds.true_top_k(k);
        let mut row = vec![format!("{classes}")];
        let base = evaluate_topk(
            baseline,
            TopKConfig::new(k, Eps::new(4.0).unwrap()),
            &ds,
            &truth,
            env.trials,
            0xAB1A,
        );
        row.push(fmt(base.f1));
        for test in [NoiseTest::PaperRatio, NoiseTest::NoiseToValid] {
            let mut config = TopKConfig::new(k, Eps::new(4.0).unwrap());
            config.noise_test = test;
            let scores = evaluate_topk(method, config, &ds, &truth, env.trials, 0xAB1A);
            row.push(fmt(scores.f1));
        }
        table.push(row);
    }
    table.print_and_save().expect("write results");
    println!(
        "Expected shape: the two tests agree at few classes (both run CP);\n\
         at ≥ 20 uniform classes the printed test keeps CP alive on ~90%-noise\n\
         groups and falls below the baseline, while the noise-to-valid test\n\
         falls back to VP and stays at or above it."
    );
}
