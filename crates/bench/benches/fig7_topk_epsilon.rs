//! **Fig. 7** — top-k mining utility (F1 and NCR) vs privacy budget on the
//! Anime-like and JD-like workloads, k = 20, ε ∈ {2, 4, 6, 8}, the five
//! methods of the paper's legend.
//!
//! Run: `cargo bench -p mcim-bench --bench fig7_topk_epsilon`

use mcim_bench::workloads::{anime, evaluate_topk, jd};
use mcim_bench::{fmt, BenchEnv, Table};
use mcim_oracles::Eps;
use mcim_topk::{TopKConfig, TopKMethod};

fn main() {
    let env = BenchEnv::from_env(3);
    env.announce("Fig. 7: top-k mining vs eps (Anime-like, JD-like, k = 20)");
    let k = 20;
    let methods = TopKMethod::fig7_set();
    let datasets = [
        ("fig7ab_anime", anime(env.scale)),
        ("fig7cd_jd", jd(env.scale)),
    ];
    for (name, ds) in &datasets {
        let truth = ds.true_top_k(k);
        let mut f1_table = Table::new(
            format!("{name}_f1"),
            &[
                "eps",
                "HEC",
                "PTJ",
                "PTJ-Shuffling+VP",
                "PTS",
                "PTS-Shuffling+VP+CP",
            ],
        );
        let mut ncr_table = Table::new(
            format!("{name}_ncr"),
            &[
                "eps",
                "HEC",
                "PTJ",
                "PTJ-Shuffling+VP",
                "PTS",
                "PTS-Shuffling+VP+CP",
            ],
        );
        for eps_v in [2.0, 4.0, 6.0, 8.0] {
            let config = TopKConfig::new(k, Eps::new(eps_v).unwrap());
            let mut f1_row = vec![format!("{eps_v}")];
            let mut ncr_row = vec![format!("{eps_v}")];
            for method in methods {
                let scores = evaluate_topk(
                    method,
                    config,
                    ds,
                    &truth,
                    env.trials,
                    0xF167 ^ (eps_v * 1000.0) as u64,
                );
                f1_row.push(fmt(scores.f1));
                ncr_row.push(fmt(scores.ncr));
            }
            f1_table.push(f1_row);
            ncr_table.push(ncr_row);
        }
        println!(
            "dataset: {} (N = {}, d = {})",
            ds.name,
            ds.len(),
            ds.domains.items()
        );
        f1_table.print_and_save().expect("write results");
        ncr_table.print_and_save().expect("write results");
    }
    println!(
        "Expected shape (paper Fig. 7): every method improves with ε; the\n\
         optimized methods beat their own baselines (PTJ-Shuffling+VP > PTJ,\n\
         PTS-Shuffling+VP+CP > PTS), with the PTS family gaining the most."
    );
}
