//! **Fig. 8** — per-class F1 on the JD-like workload (ε = 8, k = 20).
//!
//! The JD classes are heavily imbalanced (850k/4M/3M/314k/170k proportions);
//! the paper's observation: classes 2-3 (large) are easy for everyone,
//! classes 4-5 (tiny) defeat PTJ — which cannot exploit globally frequent
//! items — while the optimized PTS still produces results there.
//!
//! Run: `cargo bench -p mcim-bench --bench fig8_topk_per_class`

use mcim_bench::workloads::jd;
use mcim_bench::{fmt, mean, run_trials, BenchEnv, Table};
use mcim_metrics::f1_at_k;
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::SliceSource;
use mcim_oracles::Eps;
use mcim_topk::{execute, TopKConfig, TopKMethod};

fn main() {
    let env = BenchEnv::from_env(3);
    env.announce("Fig. 8: per-class F1 on JD-like (eps = 8, k = 20)");
    let k = 20;
    let ds = jd(env.scale);
    let truth = ds.true_top_k(k);
    let config = TopKConfig::new(k, Eps::new(8.0).unwrap());
    let sizes = ds.class_sizes();
    println!(
        "class sizes: {:?} (paper: 850k/4m/3m/314k/170k proportions)\n",
        sizes
    );

    let mut table = Table::new(
        "fig8_jd_per_class_f1",
        &[
            "class",
            "size",
            "HEC",
            "PTJ",
            "PTJ-Shuffling+VP",
            "PTS",
            "PTS-Shuffling+VP+CP",
        ],
    );
    let methods = TopKMethod::fig7_set();
    // per_class_scores[method][class]
    let mut per_class_scores = vec![vec![0.0f64; 5]; methods.len()];
    for (mi, method) in methods.iter().enumerate() {
        let trial_scores = run_trials(env.trials, |trial| {
            let plan = Exec::sequential().seed(0xF168 ^ (trial * 31));
            let result = execute(
                *method,
                config,
                ds.domains,
                &plan,
                SliceSource::new(&ds.pairs),
            )
            .expect("mine");
            (0..5)
                .map(|c| f1_at_k(&result.per_class[c], &truth[c]))
                .collect::<Vec<f64>>()
        });
        for c in 0..5 {
            per_class_scores[mi][c] = mean(&trial_scores.iter().map(|t| t[c]).collect::<Vec<_>>());
        }
    }
    for c in 0..5usize {
        let mut row = vec![format!("{}", c + 1), format!("{}", sizes[c])];
        for scores in &per_class_scores {
            row.push(fmt(scores[c]));
        }
        table.push(row);
    }
    table.print_and_save().expect("write results");
    println!(
        "Expected shape (paper Fig. 8): large classes 2-3 score highest for\n\
         all methods; on the tiny classes 4-5 PTJ collapses while the\n\
         PTS-based optimized method retains utility via global candidates."
    );
}
