//! Criterion end-to-end benchmarks: full frequency-estimation pipelines
//! (client privatization + server aggregation + calibration).
//!
//! Run: `cargo bench -p mcim-bench --bench pipeline_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use mcim_core::{Domains, Framework, LabelItem};
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::SliceSource;
use mcim_oracles::Eps;

fn bench_frameworks(c: &mut Criterion) {
    let domains = Domains::new(4, 256).unwrap();
    let data: Vec<LabelItem> = (0..20_000)
        .map(|u| LabelItem::new(u % 4, (u * 31) % 256))
        .collect();
    let eps = Eps::new(2.0).unwrap();
    let mut group = c.benchmark_group("frequency_pipeline_n20k_c4_d256");
    group.sample_size(10);
    let plan = Exec::sequential().seed(9);
    for fw in Framework::fig6_set() {
        group.bench_function(fw.name(), |b| {
            b.iter(|| {
                fw.execute(eps, domains, &plan, SliceSource::new(&data))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frameworks);
criterion_main!(benches);
