//! **Fig. 5** — empirical variance analysis of the PTS and PTS-CP
//! estimators on SYN1/SYN2 at ε = 1.
//!
//! * Fig. 5(a): vary the label-item correlation strength (PMI) at fixed
//!   class size `n` and item total `f(I)` (SYN1) — variance barely moves,
//!   because `n` and `N` dominate Eq. (5).
//! * Fig. 5(b): vary the class size `n` at fixed `f(C,I)` (SYN2) —
//!   variance grows linearly with `n`.
//!
//! Run: `cargo bench -p mcim-bench --bench fig5_variance`

use mcim_bench::{fmt, run_trials, BenchEnv, Scale, Table};
use mcim_core::{Framework, FrequencyTable};
use mcim_datasets::{syn1, syn2};
use mcim_metrics::{pmi, RunningMoments};
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::SliceSource;
use mcim_oracles::Eps;

fn empirical_variance(
    framework: Framework,
    ds: &mcim_datasets::Dataset,
    truth: &FrequencyTable,
    targets: &[(u32, u32)],
    trials: usize,
) -> Vec<f64> {
    let eps = Eps::new(1.0).unwrap();
    let per_trial: Vec<Vec<f64>> = run_trials(trials, |trial| {
        let plan = Exec::sequential().seed(0xF165 ^ trial);
        let result = framework
            .execute(eps, ds.domains, &plan, SliceSource::new(&ds.pairs))
            .expect("framework run");
        targets
            .iter()
            .map(|&(c, i)| result.table.get(c, i))
            .collect()
    });
    targets
        .iter()
        .enumerate()
        .map(|(idx, &(c, i))| {
            let mut rm = RunningMoments::new();
            for t in &per_trial {
                rm.push(t[idx]);
            }
            // The paper's estimator: Var = (1/t)·Σ(f̂ − f)².
            rm.mse_about(truth.get(c, i))
        })
        .collect()
}

fn main() {
    let env = BenchEnv::from_env(100);
    env.announce("Fig. 5: empirical variance (SYN1/SYN2, eps = 1)");
    let scale = match env.scale {
        Scale::Small => 0.03,
        Scale::Paper => 1.0,
    };

    // ---- Fig. 5(a): SYN1, varying f(C,I) (and hence PMI) in class 0. ----
    let ds = syn1(scale, 0x51);
    let truth = ds.ground_truth();
    let n_total: f64 = ds.len() as f64;
    let n_class = truth.class_total(0);
    let targets: Vec<(u32, u32)> = (0..4).map(|i| (0u32, i)).collect();
    let pts = empirical_variance(
        Framework::Pts { label_frac: 0.5 },
        &ds,
        &truth,
        &targets,
        env.trials,
    );
    let cp = empirical_variance(
        Framework::PtsCp { label_frac: 0.5 },
        &ds,
        &truth,
        &targets,
        env.trials,
    );
    let mut table = Table::new(
        "fig5a_variance_vs_pmi",
        &["f(C,I)", "PMI", "Var PTS", "Var PTS-CP"],
    );
    let mut order: Vec<usize> = (0..targets.len()).collect();
    order.sort_by(|&a, &b| {
        truth
            .get(0, targets[a].1)
            .partial_cmp(&truth.get(0, targets[b].1))
            .unwrap()
    });
    for idx in order {
        let (c, i) = targets[idx];
        let f = truth.get(c, i);
        let p = pmi(f, n_class, truth.item_total(i), n_total);
        table.push(vec![fmt(f), fmt(p), fmt(pts[idx]), fmt(cp[idx])]);
    }
    table.print_and_save().expect("write results");
    println!("Expected shape: variance roughly flat in PMI (class size and N dominate).\n");

    // ---- Fig. 5(b): SYN2, varying class size n at fixed f(C,I). ---------
    let ds = syn2(scale, 0x52);
    let truth = ds.ground_truth();
    let targets: Vec<(u32, u32)> = (0..4).map(|c| (c, 0u32)).collect();
    let pts = empirical_variance(
        Framework::Pts { label_frac: 0.5 },
        &ds,
        &truth,
        &targets,
        env.trials,
    );
    let cp = empirical_variance(
        Framework::PtsCp { label_frac: 0.5 },
        &ds,
        &truth,
        &targets,
        env.trials,
    );
    let mut table = Table::new("fig5b_variance_vs_n", &["n", "Var PTS", "Var PTS-CP"]);
    for (idx, &(c, _)) in targets.iter().enumerate() {
        table.push(vec![fmt(truth.class_total(c)), fmt(pts[idx]), fmt(cp[idx])]);
    }
    table.print_and_save().expect("write results");
    println!("Expected shape: variance grows with n; PTS-CP sits below PTS.");
}
