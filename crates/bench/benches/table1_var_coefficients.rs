//! **Table I** — coefficients of `f(C,I)`, `n`, `N` in the CP variance
//! Eq. (5), evaluated for ε ∈ {0.5, …, 4} with c = 4 classes (the SYN1
//! configuration). Prints our exact evaluation next to the paper's
//! published row for comparison.
//!
//! Run: `cargo bench -p mcim-bench --bench table1_var_coefficients`

use mcim_bench::{fmt, Table};
use mcim_core::analysis::table1_coefficients;
use mcim_oracles::Eps;

/// The paper's published Table I values (for the side-by-side view).
const PAPER: [(f64, f64, f64, f64); 8] = [
    (0.5, 87.4, 213.8, 441.8),
    (1.0, 32.9, 58.9, 53.3),
    (1.5, 17.1, 22.8, 12.0),
    (2.0, 10.3, 10.5, 3.6),
    (2.5, 6.8, 5.4, 1.3),
    (3.0, 4.9, 3.0, 0.5),
    (3.5, 3.7, 1.8, 0.2),
    (4.0, 2.9, 1.1, 0.1),
];

fn main() {
    println!("Table I: coefficients of variables in Var[f̂(C,I)] (c = 4)\n");
    let mut table = Table::new(
        "table1_var_coefficients",
        &[
            "eps",
            "f(C,I) ours",
            "f(C,I) paper",
            "n ours",
            "n paper",
            "N ours",
            "N paper",
        ],
    );
    for &(eps, f_paper, n_paper, nn_paper) in &PAPER {
        let c = table1_coefficients(Eps::new(eps).unwrap(), 4).expect("valid configuration");
        table.push(vec![
            format!("{eps}"),
            fmt(c.f_coef),
            format!("{f_paper}"),
            fmt(c.n_coef),
            format!("{n_paper}"),
            fmt(c.n_total_coef),
            format!("{nn_paper}"),
        ]);
    }
    table.print_and_save().expect("write results");
    println!(
        "Note: the `n` column matches the paper to display precision; the\n\
         f(C,I) and N columns deviate ~10-40% because Eq. (5) omits the\n\
         f̃–n̂ covariance the paper's numerical estimate appears to include\n\
         (DESIGN.md §4). All coefficients fall sharply with ε, reproducing\n\
         the paper's qualitative conclusion."
    );
}
