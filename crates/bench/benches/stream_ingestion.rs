//! Streaming ingestion: a paper-scale (default 5M-user) run under a fixed
//! RSS budget, against the materialized batch path.
//!
//! Three phases, run low-memory-first so the `VmHWM` high-water mark
//! cleanly attributes the RSS jump to materialization:
//!
//! 1. `absorb_stream` — 5M OUE reports (`d = 1024`, ~136 B each ≈ 680 MB
//!    if materialized) privatized on the fly and absorbed through the
//!    bounded-memory chunked runtime: memory stays `O(chunk)`.
//! 2. `run_stream` — the PTS-CP pipeline end-to-end from a synthetic pair
//!    generator (no input `Vec` at all).
//! 3. `absorb_batch` — the PR-2 path at `min(n, 500k)` reports, fully
//!    materialized, to show the per-report RSS cost streaming avoids.
//!
//! Prints a table, saves `results/stream_ingestion.csv` and the
//! machine-readable `results/BENCH_stream_ingestion.json` the CI uploads.
//!
//! Run: `cargo bench -p mcim-bench --bench stream_ingestion`
//! (`MCIM_BENCH_N` shrinks the workload; CI uses a small N.)

// Timing tool: measuring wall-clock time is this target's whole job
// (mcim-lint classifies benches as Tool; clippy needs the explicit allow).
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::time::Instant;

use mcim_bench::{results_dir, Table};
use mcim_core::{Domains, Framework};
use mcim_datasets::{SyntheticPairSource, SyntheticSourceConfig};
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::{ReportSource, StreamConfig};
use mcim_oracles::{parallel, Aggregator, Eps, Oracle, Report, Result};

const D: u32 = 1024;

/// Peak resident set size (VmHWM) in MiB, from `/proc/self/status`.
/// Returns 0.0 where procfs is unavailable.
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            if let Some(kb) = rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse::<f64>().ok())
            {
                return kb / 1024.0;
            }
        }
    }
    0.0
}

/// Privatizes OUE reports on the fly through the bulk sampler — the
/// "reports arriving from the network" simulation. Memory cost: none
/// beyond the pull buffer.
struct OueReportSource {
    oracle: Oracle,
    next_seed: u64,
    emitted: u64,
    remaining: u64,
}

impl ReportSource for OueReportSource {
    type Item = Report;
    fn fill(&mut self, buf: &mut Vec<Report>, max: usize) -> Result<usize> {
        let take = (self.remaining).min(max as u64) as usize;
        if take == 0 {
            return Ok(0);
        }
        let values: Vec<u32> = (0..take)
            .map(|i| (self.emitted + i as u64) as u32 % D)
            .collect();
        buf.extend(self.oracle.privatize_batch(&values, self.next_seed, 1)?);
        self.next_seed = self.next_seed.wrapping_add(1);
        self.emitted += take as u64;
        self.remaining -= take as u64;
        Ok(take)
    }
    fn size_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

struct Phase {
    name: &'static str,
    users: u64,
    ms: f64,
    reports_per_sec: f64,
    peak_rss_mib_after: f64,
}

fn main() {
    let n: u64 = std::env::var("MCIM_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000_000);
    let chunk: usize = std::env::var("MCIM_CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16 * parallel::SHARD_SIZE);
    let threads = parallel::configured_threads();
    let eps = Eps::new(1.0).unwrap();
    let config = StreamConfig::new(threads).with_chunk_items(chunk);
    let rss_baseline = peak_rss_mib();
    println!(
        "== stream_ingestion | n={n} d={D} chunk={chunk} threads={threads} baseline_rss={rss_baseline:.0}MiB =="
    );

    // Record the whole run: every phase pays the (noise-level) metrics
    // tax uniformly, and the fold/stage counters land in the JSON
    // artifact under `obs` alongside the wall-clock numbers.
    mcim_obs::reset();
    mcim_obs::set_enabled(true);

    let mut phases: Vec<Phase> = Vec::new();
    let mut record = |name: &'static str, users: u64, start: Instant| {
        let ms = start.elapsed().as_secs_f64() * 1e3;
        phases.push(Phase {
            name,
            users,
            ms,
            reports_per_sec: users as f64 / (ms / 1e3),
            peak_rss_mib_after: peak_rss_mib(),
        });
    };

    // Phase 1: stream-absorb n OUE reports with bounded memory.
    let oracle = Oracle::oue(eps, D).unwrap();
    let mut agg = Aggregator::new(&oracle);
    let mut source = OueReportSource {
        oracle: oracle.clone(),
        next_seed: 1,
        emitted: 0,
        remaining: n,
    };
    let start = Instant::now();
    agg.absorb_stream(&mut source, config).unwrap();
    record("oue_absorb_stream", n, start);
    assert_eq!(agg.report_count(), n);
    std::hint::black_box(agg.raw_counts().iter().sum::<u64>());

    // Phase 2: the PTS-CP pipeline end-to-end from a generator source.
    let n_freq = n.min(1_000_000);
    let domains = Domains::new(8, D).unwrap();
    let mut pairs = SyntheticPairSource::new(SyntheticSourceConfig {
        classes: 8,
        items: D,
        users: n_freq,
        zipf_s: 1.5,
        seed: 2,
    });
    let plan = Exec::stream().seed(3).threads(threads).chunk_size(chunk);
    let start = Instant::now();
    let result = Framework::PtsCp { label_frac: 0.5 }
        .execute(eps, domains, &plan, &mut pairs)
        .unwrap();
    record("pts_cp_run_stream", n_freq, start);
    std::hint::black_box(result.table.get(0, 0));

    // Phase 3: the materialized batch path (the memory cost streaming
    // avoids) at a size that still fits CI.
    let n_batch = n.min(500_000);
    let values: Vec<u32> = (0..n_batch).map(|u| u as u32 % D).collect();
    let start = Instant::now();
    let reports = oracle.privatize_batch(&values, 4, threads).unwrap();
    let mut agg = Aggregator::new(&oracle);
    agg.absorb_batch(&reports, threads).unwrap();
    record("oue_materialized_batch", n_batch, start);
    std::hint::black_box(agg.raw_counts().iter().sum::<u64>());
    let report_bytes: usize = reports.iter().map(|r| r.size_bits() / 8 + 56).sum();
    drop(reports);

    mcim_obs::set_enabled(false);
    let obs_snapshot = mcim_obs::snapshot();
    mcim_obs::reset();

    // ------------------------------------------------------- results ----
    let mut table = Table::new(
        "stream_ingestion",
        &["phase", "users", "ms", "reports_per_sec", "peak_rss_mib"],
    );
    for p in &phases {
        table.push(vec![
            p.name.to_string(),
            p.users.to_string(),
            format!("{:.0}", p.ms),
            format!("{:.0}", p.reports_per_sec),
            format!("{:.0}", p.peak_rss_mib_after),
        ]);
    }
    table.print_and_save().expect("saving CSV");

    let stream_delta = phases[0].peak_rss_mib_after - rss_baseline;
    let batch_delta = phases[2].peak_rss_mib_after - phases[1].peak_rss_mib_after;
    println!(
        "stream absorbed {n} reports within +{stream_delta:.0} MiB of RSS; \
         materializing {n_batch} reports (~{:.0} MiB of report heap) grew peak RSS by +{batch_delta:.0} MiB",
        report_bytes as f64 / (1024.0 * 1024.0)
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"stream_ingestion\",");
    let _ = writeln!(
        json,
        "  \"config\": {{ \"n\": {n}, \"d\": {D}, \"chunk_items\": {chunk}, \"threads\": {threads}, \"baseline_rss_mib\": {rss_baseline:.1} }},"
    );
    let _ = writeln!(json, "  \"phases\": [");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"users\": {}, \"ms\": {:.1}, \"reports_per_sec\": {:.0}, \"peak_rss_mib\": {:.1} }}{comma}",
            p.name, p.users, p.ms, p.reports_per_sec, p.peak_rss_mib_after
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"stream_rss_delta_mib\": {stream_delta:.1},");
    let _ = writeln!(
        json,
        "  \"materialized_report_heap_mib\": {:.1},",
        report_bytes as f64 / (1024.0 * 1024.0)
    );
    let _ = writeln!(json, "  \"obs\": {}", obs_snapshot.to_json().trim_end());
    let _ = writeln!(json, "}}");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("BENCH_stream_ingestion.json");
    std::fs::write(&path, json).expect("writing JSON baseline");
    println!("[saved {}]", path.display());
}
