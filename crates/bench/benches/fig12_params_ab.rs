//! **Fig. 12** — sensitivity to the sample fraction `a` (Algorithm 1) and
//! noise threshold `b` (Algorithm 2) of the optimized PTS scheme on the
//! Anime-like and JD-like workloads (ε = 4, k = 20).
//!
//! Run: `cargo bench -p mcim-bench --bench fig12_params_ab`

use mcim_bench::workloads::{anime, evaluate_topk, jd};
use mcim_bench::{fmt, BenchEnv, Table};
use mcim_oracles::Eps;
use mcim_topk::{TopKConfig, TopKMethod};

fn main() {
    let env = BenchEnv::from_env(3);
    env.announce("Fig. 12: parameters a and b (Anime-like, JD-like, eps = 4, k = 20)");
    let k = 20;
    let method = TopKMethod::PtsShuffled {
        validity: true,
        global: true,
        correlated: true,
    };
    let datasets = [("anime", anime(env.scale)), ("jd", jd(env.scale))];

    // ---- Fig. 12(a,b): varying a. --------------------------------------
    let mut a_table = Table::new("fig12ab_param_a_f1", &["a", "Anime", "JD"]);
    for a in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut row = vec![format!("{a}")];
        for (_, ds) in &datasets {
            let truth = ds.true_top_k(k);
            let mut config = TopKConfig::new(k, Eps::new(4.0).unwrap());
            config.sample_frac = a;
            let scores = evaluate_topk(
                method,
                config,
                ds,
                &truth,
                env.trials,
                0xF1612 ^ (a * 100.0) as u64,
            );
            row.push(fmt(scores.f1));
        }
        a_table.push(row);
    }
    a_table.print_and_save().expect("write results");

    // ---- Fig. 12(c,d): varying b. --------------------------------------
    let mut b_table = Table::new("fig12cd_param_b_f1", &["b", "Anime", "JD"]);
    for b in [1.5, 2.0, 2.5, 3.0, 3.5, 4.0] {
        let mut row = vec![format!("{b}")];
        for (_, ds) in &datasets {
            let truth = ds.true_top_k(k);
            let mut config = TopKConfig::new(k, Eps::new(4.0).unwrap());
            config.noise_factor = b;
            let scores = evaluate_topk(
                method,
                config,
                ds,
                &truth,
                env.trials,
                0xF1612 ^ 0xB ^ (b * 100.0) as u64,
            );
            row.push(fmt(scores.f1));
        }
        b_table.push(row);
    }
    b_table.print_and_save().expect("write results");
    println!(
        "Expected shape (paper Fig. 12): both parameters are dataset-dependent\n\
         but flat; a = 0.2 and b = 2 are reasonable defaults."
    );
}
