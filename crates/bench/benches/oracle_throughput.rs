//! Oracle privatize/aggregate throughput: the batch runtime versus the
//! seed's per-report paths, at the acceptance workload `d = 1024`,
//! `n = 100_000`, ε = 1.
//!
//! Three aggregation implementations are raced for OUE-style bit reports:
//!
//! * `per_bit` — the naive loop (`get(i)` over the whole domain),
//! * `iter_ones` — the seed's per-set-bit counter increments,
//! * `colsum` — the word-parallel bit-sliced column sums, single-threaded
//!   and sharded across `MCIM_THREADS` workers.
//!
//! An `exec_modes` slice additionally races the three `Exec` plan modes
//! (sequential / batch / stream) of one full frequency pipeline at
//! `d = 1024`, `n = 1M` (`MCIM_BENCH_EXEC_N` overrides), so the dispatch
//! layer's overhead is tracked in `BENCH_oracle_throughput.json`: batch
//! and stream must stay within noise of each other, and on multi-core
//! machines both must keep their multiple over sequential (the JSON's
//! `cores` field records the machine's real parallelism — on one core
//! the three modes are expected to tie).
//!
//! A `dist_reduce` slice then races the same pipeline on the
//! multi-process distributed reducer with 1, 2 and 4 locally spawned
//! worker processes (loopback TCP, real `mcim-dist` Worker runtime):
//! `dist_reduce_w1` vs `exec_plan_stream_tn` prices the protocol tax,
//! `dist_reduce_w4_vs_w1` the multi-process scaling — all bit-identical
//! outputs by the executor contract.
//!
//! Prints a table, saves `results/oracle_throughput.csv`, and emits the
//! machine-readable baseline `results/BENCH_oracle_throughput.json` that
//! the CI uploads so later PRs can track the perf trajectory.
//!
//! Run: `cargo bench -p mcim-bench --bench oracle_throughput`
//! (`MCIM_BENCH_N` shrinks the workload for smoke tests.)

// Timing tool: measuring wall-clock time is this target's whole job
// (mcim-lint classifies benches as Tool; clippy needs the explicit allow).
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::time::Instant;

use mcim_bench::{results_dir, Table};
use mcim_core::{
    CorrelatedPerturbation, CpAggregator, Domains, Framework, LabelItem, ValidityInput,
    ValidityPerturbation, VpAggregator,
};
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::SliceSource;
use mcim_oracles::{parallel, Aggregator, Eps, Oracle, Report};

const D: u32 = 1024;
const EPS: f64 = 1.0;

struct Scenario {
    name: &'static str,
    /// Best-of-trials wall time in milliseconds.
    ms: f64,
    /// Reports per second implied by `ms`.
    reports_per_sec: f64,
}

/// Best-of-`trials` wall time of `f`, in milliseconds. `f` must return
/// something data-dependent so the work cannot be optimized away.
fn time<T: std::fmt::Debug>(trials: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("at least one trial"))
}

fn scenario(name: &'static str, n: usize, trials: usize, f: impl FnMut() -> u64) -> Scenario {
    let mut f = f;
    let (ms, checksum) = time(trials, &mut f);
    // Keep the checksum alive (and visible when scenarios disagree).
    std::hint::black_box(checksum);
    Scenario {
        name,
        ms,
        reports_per_sec: n as f64 / (ms / 1e3),
    }
}

fn main() {
    let n: usize = std::env::var("MCIM_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let trials: usize = std::env::var("MCIM_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads = parallel::configured_threads();
    let eps = Eps::new(EPS).unwrap();
    println!("== oracle_throughput | d={D} n={n} eps={EPS} threads={threads} trials={trials} ==");

    let mut scenarios: Vec<Scenario> = Vec::new();

    // ---------------------------------------------------------- OUE ----
    let oue = Oracle::oue(eps, D).unwrap();
    let values: Vec<u32> = (0..n as u32).map(|u| u % D).collect();
    scenarios.push(scenario("oue_privatize_seq", n, trials, || {
        // The seed path: one report at a time from a single RNG stream.
        let mut rng = parallel::shard_rng(1, 0);
        let mut acc = 0u64;
        for &v in &values {
            if let Report::Bits(b) = oue.privatize(v, &mut rng).unwrap() {
                acc = acc.wrapping_add(b.count_ones() as u64);
            }
        }
        acc
    }));
    scenarios.push(scenario("oue_privatize_batch_t1", n, trials, || {
        oue.privatize_batch(&values, 1, 1).unwrap().len() as u64
    }));
    scenarios.push(scenario("oue_privatize_batch_tn", n, trials, || {
        oue.privatize_batch(&values, 1, threads).unwrap().len() as u64
    }));

    let reports = oue.privatize_batch(&values, 2, threads).unwrap();
    let bit_reports: Vec<&mcim_oracles::BitVec> = reports
        .iter()
        .map(|r| match r {
            Report::Bits(b) => b,
            _ => unreachable!("OUE emits bit reports"),
        })
        .collect();

    scenarios.push(scenario("oue_aggregate_per_bit", n, trials, || {
        // Naive per-bit scan: the path the column sums replace.
        let mut counts = vec![0u64; D as usize];
        for bits in &bit_reports {
            for (i, c) in counts.iter_mut().enumerate() {
                *c += u64::from(bits.get(i));
            }
        }
        counts.iter().sum()
    }));
    scenarios.push(scenario("oue_aggregate_iter_ones", n, trials, || {
        // The seed's absorb loop: per-set-bit scattered increments.
        let mut counts = vec![0u64; D as usize];
        for bits in &bit_reports {
            for i in bits.iter_ones() {
                counts[i] += 1;
            }
        }
        counts.iter().sum()
    }));
    scenarios.push(scenario("oue_aggregate_colsum_t1", n, trials, || {
        let mut agg = Aggregator::new(&oue);
        agg.absorb_batch(&reports, 1).unwrap();
        agg.raw_counts().iter().sum()
    }));
    scenarios.push(scenario("oue_aggregate_colsum_tn", n, trials, || {
        let mut agg = Aggregator::new(&oue);
        agg.absorb_batch(&reports, threads).unwrap();
        agg.raw_counts().iter().sum()
    }));

    // ----------------------------------------------------------- VP ----
    let vp = ValidityPerturbation::new(eps, D).unwrap();
    let vp_inputs: Vec<ValidityInput> = (0..n as u32)
        .map(|u| {
            if u % 5 == 0 {
                ValidityInput::Invalid
            } else {
                ValidityInput::Valid(u % D)
            }
        })
        .collect();
    let vp_reports = vp.privatize_batch(&vp_inputs, 3, threads).unwrap();
    scenarios.push(scenario("vp_aggregate_absorb", n, trials, || {
        let mut agg = VpAggregator::new(&vp);
        for r in &vp_reports {
            agg.absorb(r).unwrap();
        }
        agg.raw_counts().iter().sum()
    }));
    scenarios.push(scenario("vp_aggregate_colsum_tn", n, trials, || {
        let mut agg = VpAggregator::new(&vp);
        agg.absorb_batch(&vp_reports, threads).unwrap();
        agg.raw_counts().iter().sum()
    }));

    // ----------------------------------------------------------- CP ----
    let domains = Domains::new(8, D).unwrap();
    let cp = CorrelatedPerturbation::with_total(Eps::new(2.0).unwrap(), domains).unwrap();
    let cp_pairs: Vec<LabelItem> = (0..n as u32)
        .map(|u| LabelItem::new(u % 8, (u * 13) % D))
        .collect();
    let cp_reports = cp.privatize_batch(&cp_pairs, 4, threads).unwrap();
    scenarios.push(scenario("cp_aggregate_absorb", n, trials, || {
        let mut agg = CpAggregator::new(&cp);
        for r in &cp_reports {
            agg.absorb(r).unwrap();
        }
        agg.report_count()
    }));
    scenarios.push(scenario("cp_aggregate_colsum_tn", n, trials, || {
        let mut agg = CpAggregator::new(&cp);
        agg.absorb_batch(&cp_reports, threads).unwrap();
        agg.report_count()
    }));

    // ---------------------------------------------------------- OLH ----
    // O(n·d) hashing dominates; keep the report count in check.
    let olh_n = (n / 10).max(1);
    let olh = Oracle::olh(Eps::new(2.0).unwrap(), D).unwrap();
    let olh_values: Vec<u32> = (0..olh_n as u32).map(|u| u % D).collect();
    let olh_reports = olh.privatize_batch(&olh_values, 5, threads).unwrap();
    let olh_mech = match &olh {
        Oracle::Olh(m) => m.clone(),
        _ => unreachable!(),
    };
    scenarios.push(scenario("olh_aggregate_per_pair", olh_n, trials, || {
        // The seed path: re-derive the seed state for every (report, value).
        let mut counts = vec![0u64; D as usize];
        for r in &olh_reports {
            if let Report::Hashed(h) = r {
                for v in 0..D {
                    if olh_mech.supports(h, v) {
                        counts[v as usize] += 1;
                    }
                }
            }
        }
        counts.iter().sum()
    }));
    scenarios.push(scenario("olh_aggregate_blocked_tn", olh_n, trials, || {
        let mut agg = Aggregator::new(&olh);
        agg.absorb_batch(&olh_reports, threads).unwrap();
        agg.raw_counts().iter().sum()
    }));
    // The candidate-set entry point (PEM-style aggregation over an explicit
    // candidate list, here the full domain).
    let hashed: Vec<mcim_oracles::OlhReport> = olh_reports
        .iter()
        .map(|r| match r {
            Report::Hashed(h) => *h,
            _ => unreachable!("OLH emits hashed reports"),
        })
        .collect();
    let candidates: Vec<u32> = (0..D).collect();
    scenarios.push(scenario(
        "olh_aggregate_candidate_set",
        olh_n,
        trials,
        || olh_mech.support_counts(&hashed, &candidates).iter().sum(),
    ));

    // ------------------------------------------------- exec dispatch ----
    // The `Exec` plan layer must cost nothing measurable over driving the
    // sharded machinery directly: race the three plan modes of one full
    // frequency pipeline (PTS: GRR label + OUE item per user) end to end.
    let exec_n: usize = std::env::var("MCIM_BENCH_EXEC_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| (10 * n).min(1_000_000));
    let exec_domains = Domains::new(8, D).unwrap();
    let exec_pairs: Vec<LabelItem> = (0..exec_n as u32)
        .map(|u| LabelItem::new(u % 8, (u * 13) % D))
        .collect();
    let exec_fw = Framework::Pts { label_frac: 0.5 };
    let run_plan = |plan: &Exec| {
        let result = exec_fw
            .execute(eps, exec_domains, plan, SliceSource::new(&exec_pairs))
            .unwrap();
        result.comm.total_report_bits ^ result.table.get(0, 0).to_bits()
    };
    scenarios.push(scenario("exec_plan_sequential", exec_n, trials, || {
        run_plan(&Exec::sequential().seed(6))
    }));
    scenarios.push(scenario("exec_plan_batch_tn", exec_n, trials, || {
        run_plan(&Exec::batch().seed(6).threads(threads))
    }));
    scenarios.push(scenario("exec_plan_stream_tn", exec_n, trials, || {
        run_plan(&Exec::stream().seed(6).threads(threads))
    }));

    // ---------------------------------------------------- metrics tax ----
    // The same batch pipeline with the global `mcim_obs` registry
    // recording. Disabled (every scenario above), each instrumentation
    // site folds to one relaxed atomic load, so the plain scenarios
    // already price the off path; enabled it must stay within noise —
    // the JSON's `metrics_overhead_batch_tn` is the enabled/disabled
    // wall-time ratio (acceptance gate: ≤ 1.03). The snapshot recorded
    // here is embedded in the JSON artifact under `obs`.
    mcim_obs::reset();
    mcim_obs::set_enabled(true);
    scenarios.push(scenario(
        "exec_plan_batch_tn_metrics",
        exec_n,
        trials,
        || run_plan(&Exec::batch().seed(6).threads(threads)),
    ));
    mcim_obs::set_enabled(false);
    let obs_snapshot = mcim_obs::snapshot();
    mcim_obs::reset();

    // ------------------------------------------------- dist reduce ----
    // The distributed reducer racing the in-process executor on the same
    // PTS pipeline: 1/2/4 locally spawned worker *processes* (loopback
    // TCP, the real `Worker` runtime via the mcim-bench-worker bin).
    // Workers fold their shard ranges single-threaded, so the scaling
    // story is worker count, not threads; `dist_reduce_w1` vs
    // `exec_plan_stream_tn` is the protocol's serialization+socket tax.
    let worker_bin = std::path::Path::new(env!("CARGO_BIN_EXE_mcim-bench-worker"));
    for workers in [1usize, 2, 4] {
        let name: &'static str = match workers {
            1 => "dist_reduce_w1",
            2 => "dist_reduce_w2",
            _ => "dist_reduce_w4",
        };
        // Spawn/connect once per worker count; the timed closure measures
        // the fold itself (serialization, sockets, worker compute), not
        // process startup.
        let spawned =
            mcim_dist::spawn_local_workers(worker_bin, workers).expect("spawning workers");
        let plan = Exec::seeded(6).threads(threads);
        let coordinator =
            mcim_dist::Coordinator::connect(&plan, &spawned.addrs).expect("connecting");
        scenarios.push(scenario(name, exec_n, trials, || {
            let result = exec_fw
                .execute_on(
                    &coordinator,
                    eps,
                    exec_domains,
                    SliceSource::new(&exec_pairs),
                )
                .unwrap();
            result.comm.total_report_bits ^ result.table.get(0, 0).to_bits()
        }));
        drop(coordinator);
        drop(spawned);
    }

    // ------------------------------------------------------- results ----
    let mut table = Table::new("oracle_throughput", &["scenario", "ms", "reports_per_sec"]);
    for s in &scenarios {
        table.push(vec![
            s.name.to_string(),
            format!("{:.2}", s.ms),
            format!("{:.0}", s.reports_per_sec),
        ]);
    }
    table.print_and_save().expect("saving CSV");

    let ms_of = |name: &str| {
        scenarios
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.ms)
            .expect("scenario present")
    };
    let speedups = [
        (
            "oue_colsum_t1_vs_per_bit",
            ms_of("oue_aggregate_per_bit") / ms_of("oue_aggregate_colsum_t1"),
        ),
        (
            "oue_colsum_t1_vs_iter_ones",
            ms_of("oue_aggregate_iter_ones") / ms_of("oue_aggregate_colsum_t1"),
        ),
        (
            "oue_colsum_tn_vs_per_bit",
            ms_of("oue_aggregate_per_bit") / ms_of("oue_aggregate_colsum_tn"),
        ),
        (
            "vp_colsum_tn_vs_absorb",
            ms_of("vp_aggregate_absorb") / ms_of("vp_aggregate_colsum_tn"),
        ),
        (
            "cp_colsum_tn_vs_absorb",
            ms_of("cp_aggregate_absorb") / ms_of("cp_aggregate_colsum_tn"),
        ),
        (
            "olh_blocked_tn_vs_per_pair",
            ms_of("olh_aggregate_per_pair") / ms_of("olh_aggregate_blocked_tn"),
        ),
        (
            "oue_privatize_batch_tn_vs_seq",
            ms_of("oue_privatize_seq") / ms_of("oue_privatize_batch_tn"),
        ),
        (
            "exec_plan_batch_tn_vs_sequential",
            ms_of("exec_plan_sequential") / ms_of("exec_plan_batch_tn"),
        ),
        (
            "exec_plan_stream_tn_vs_batch_tn",
            ms_of("exec_plan_batch_tn") / ms_of("exec_plan_stream_tn"),
        ),
        (
            "dist_reduce_w4_vs_w1",
            ms_of("dist_reduce_w1") / ms_of("dist_reduce_w4"),
        ),
        (
            "dist_reduce_w4_vs_stream_tn",
            ms_of("exec_plan_stream_tn") / ms_of("dist_reduce_w4"),
        ),
    ];
    println!("speedups:");
    for (name, x) in &speedups {
        println!("  {name:>32}  {x:.2}x");
    }
    let metrics_overhead = ms_of("exec_plan_batch_tn_metrics") / ms_of("exec_plan_batch_tn");
    println!("metrics overhead (exec_plan_batch_tn, enabled/disabled): {metrics_overhead:.3}x");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"oracle_throughput\",");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let _ = writeln!(
        json,
        "  \"config\": {{ \"d\": {D}, \"n\": {n}, \"exec_n\": {exec_n}, \"eps\": {EPS}, \"threads\": {threads}, \"cores\": {cores}, \"trials\": {trials} }},"
    );
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, s) in scenarios.iter().enumerate() {
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"ms\": {:.3}, \"reports_per_sec\": {:.0} }}{comma}",
            s.name, s.ms, s.reports_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    for (i, (name, x)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {x:.2}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"metrics_overhead_batch_tn\": {metrics_overhead:.3},"
    );
    let _ = writeln!(json, "  \"obs\": {}", obs_snapshot.to_json().trim_end());
    let _ = writeln!(json, "}}");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("BENCH_oracle_throughput.json");
    std::fs::write(&path, json).expect("writing JSON baseline");
    println!("[saved {}]", path.display());
}
