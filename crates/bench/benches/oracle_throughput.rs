//! Criterion micro-benchmarks: privatize/aggregate throughput of the
//! frequency oracles and the paper's two perturbation mechanisms.
//!
//! Run: `cargo bench -p mcim-bench --bench oracle_throughput`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mcim_core::{
    CorrelatedPerturbation, CpAggregator, Domains, LabelItem, ValidityInput, ValidityPerturbation,
    VpAggregator,
};
use mcim_oracles::{Aggregator, Eps, Oracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_privatize(c: &mut Criterion) {
    let eps = Eps::new(1.0).unwrap();
    let d = 1024u32;
    let mut group = c.benchmark_group("privatize_d1024_eps1");
    for (name, oracle) in [
        ("grr", Oracle::grr(eps, d).unwrap()),
        ("oue", Oracle::oue(eps, d).unwrap()),
        ("olh", Oracle::olh(eps, d).unwrap()),
    ] {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| oracle.privatize(512, &mut rng).unwrap())
        });
    }
    group.bench_function("vp", |b| {
        let vp = ValidityPerturbation::new(eps, d).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| vp.privatize(ValidityInput::Valid(512), &mut rng).unwrap())
    });
    group.bench_function("cp", |b| {
        let cp =
            CorrelatedPerturbation::with_total(Eps::new(2.0).unwrap(), Domains::new(8, d).unwrap())
                .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| cp.privatize(LabelItem::new(3, 512), &mut rng).unwrap())
    });
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let eps = Eps::new(1.0).unwrap();
    let d = 1024u32;
    let mut group = c.benchmark_group("absorb_d1024_eps1");
    let oue = Oracle::oue(eps, d).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let oue_report = oue.privatize(512, &mut rng).unwrap();
    group.bench_function("oue", |b| {
        b.iter_batched(
            || Aggregator::new(&oue),
            |mut agg| agg.absorb(&oue_report).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let vp = ValidityPerturbation::new(eps, d).unwrap();
    let vp_report = vp.privatize(ValidityInput::Valid(512), &mut rng).unwrap();
    group.bench_function("vp", |b| {
        b.iter_batched(
            || VpAggregator::new(&vp),
            |mut agg| agg.absorb(&vp_report).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let cp =
        CorrelatedPerturbation::with_total(Eps::new(2.0).unwrap(), Domains::new(8, d).unwrap())
            .unwrap();
    let cp_report = cp.privatize(LabelItem::new(3, 512), &mut rng).unwrap();
    group.bench_function("cp", |b| {
        b.iter_batched(
            || CpAggregator::new(&cp),
            |mut agg| agg.absorb(&cp_report).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_privatize, bench_aggregate
}
criterion_main!(benches);
