//! **Fig. 6** — multi-class frequency-estimation RMSE on the Diabetes-like
//! and Heart-Disease-like workloads, ε ∈ {0.5, …, 4}, frameworks HEC / PTJ
//! / PTS / PTS-CP.
//!
//! The paper's setup: users are partitioned by feature; each group mines
//! its feature's label-value pairs; we report the RMSE pooled over all
//! `(C, I)` cells of all groups.
//!
//! Run: `cargo bench -p mcim-bench --bench fig6_frequency_rmse`

use mcim_bench::{fmt, mean, run_trials, BenchEnv, Scale, Table};
use mcim_core::Framework;
use mcim_datasets::{diabetes_like, heart_like, GroupedDataset, RealConfig};
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::SliceSource;
use mcim_oracles::Eps;

/// Pooled RMSE over every (class, item) cell of every feature group.
fn pooled_rmse(framework: Framework, eps: Eps, ds: &GroupedDataset, seed: u64) -> f64 {
    let mut sum_sq = 0.0;
    let mut cells = 0usize;
    for (g, group) in ds.groups.iter().enumerate() {
        let truth = group.ground_truth();
        let plan = Exec::sequential().seed(seed.wrapping_add(g as u64));
        let result = framework
            .execute(eps, group.domains, &plan, SliceSource::new(&group.pairs))
            .expect("framework run");
        for (est, tru) in result.table.values().iter().zip(truth.values()) {
            sum_sq += (est - tru) * (est - tru);
        }
        cells += truth.values().len();
    }
    (sum_sq / cells as f64).sqrt()
}

fn main() {
    let env = BenchEnv::from_env(5);
    env.announce("Fig. 6: frequency-estimation RMSE (Diabetes-like, Heart-like)");
    let users = match env.scale {
        Scale::Small => 100_000,
        Scale::Paper => 100_000, // the real dataset's size — already modest
    };
    let heart_users = match env.scale {
        Scale::Small => 253_680,
        Scale::Paper => 253_680,
    };
    let datasets = [
        (
            "fig6a_diabetes_rmse",
            diabetes_like(RealConfig {
                users,
                items: 0,
                seed: 0xD1AB,
            }),
        ),
        (
            "fig6b_heart_rmse",
            heart_like(RealConfig {
                users: heart_users,
                items: 0,
                seed: 0x4EA7,
            }),
        ),
    ];
    let frameworks = Framework::fig6_set();
    for (name, ds) in &datasets {
        let mut table = Table::new(*name, &["eps", "HEC", "PTJ", "PTS", "PTS-CP"]);
        for eps_v in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0] {
            let eps = Eps::new(eps_v).unwrap();
            let mut row = vec![format!("{eps_v}")];
            for fw in frameworks {
                let rmses = run_trials(env.trials, |trial| {
                    pooled_rmse(
                        fw,
                        eps,
                        ds,
                        0xF166 ^ (trial * 7919) ^ (eps_v * 100.0) as u64,
                    )
                });
                row.push(fmt(mean(&rmses)));
            }
            table.push(row);
        }
        println!(
            "dataset: {} ({} users over {} feature groups)",
            ds.name,
            ds.len(),
            ds.groups.len()
        );
        table.print_and_save().expect("write results");
    }
    println!(
        "Expected shape (paper Fig. 6): HEC worst by an order of magnitude;\n\
         PTS-CP below PTS especially at small ε; PTJ best or tied at larger ε."
    );
}
