//! **Fig. 11** — privacy-budget allocation: F1 of the optimized PTS scheme
//! on SYN4 with 5/10/20 classes as the label share p = ε₁/ε sweeps 0.1–0.9
//! (ε = 4, k = 20).
//!
//! Run: `cargo bench -p mcim-bench --bench fig11_budget_allocation`

use mcim_bench::workloads::{evaluate_topk, syn_config};
use mcim_bench::{fmt, BenchEnv, Table};
use mcim_datasets::syn4;
use mcim_oracles::Eps;
use mcim_topk::{TopKConfig, TopKMethod};

fn main() {
    let env = BenchEnv::from_env(2);
    env.announce("Fig. 11: budget allocation p = eps1/eps (SYN4, eps = 4, k = 20)");
    let k = 20;
    let method = TopKMethod::PtsShuffled {
        validity: true,
        global: true,
        correlated: true,
    };
    let mut table = Table::new(
        "fig11_budget_allocation_f1",
        &["p", "5 classes", "10 classes", "20 classes"],
    );
    let datasets: Vec<_> = [5u32, 10, 20]
        .iter()
        .map(|&c| {
            let ds = syn4(syn_config(env.scale, c));
            let truth = ds.true_top_k(k);
            (ds, truth)
        })
        .collect();
    for p in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let mut row = vec![format!("{p}")];
        for (ds, truth) in &datasets {
            let mut config = TopKConfig::new(k, Eps::new(4.0).unwrap());
            config.label_frac = p;
            let scores = evaluate_topk(
                method,
                config,
                ds,
                truth,
                env.trials,
                0xF1611 ^ (p * 100.0) as u64,
            );
            row.push(fmt(scores.f1));
        }
        table.push(row);
    }
    table.print_and_save().expect("write results");
    println!(
        "Expected shape (paper Fig. 11): F1 rises then falls with p; the\n\
         optimum sits in 0.4-0.6 and is flat enough that p = 0.5 is a safe\n\
         default."
    );
}
