//! Byte/frame accounting wrappers for worker connections — the
//! observability seam of the wire layer.
//!
//! [`CountingReader`]/[`CountingWriter`] wrap one side of a TCP
//! connection and tally bytes and *completed frames* per direction into a
//! shared [`IoStats`] (every frame starts with a little-endian `u32`
//! length prefix — see the [`proto`](super) module docs). Unlike the
//! chaos seam's `FaultReader`/`FaultWriter`, nothing here clamps or
//! perturbs I/O: reads and writes pass through at full size and the
//! frame scan walks whatever span the call moved, so the wrappers are
//! free to sit under `BufReader`/`BufWriter` on the hot path. Frames and
//! bytes on the wire are identical with or without the wrappers — they
//! observe the conversation, never shape it.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative per-connection I/O tallies, shared between the two
/// directions' wrappers (and readable while they are in use). `tx` is
/// coordinator→worker, `rx` is worker→coordinator.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Bytes written to the peer.
    pub tx_bytes: AtomicU64,
    /// Bytes read from the peer.
    pub rx_bytes: AtomicU64,
    /// Whole frames written to the peer.
    pub tx_frames: AtomicU64,
    /// Whole frames read from the peer.
    pub rx_frames: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed tallies.
    pub fn new() -> Self {
        IoStats::default()
    }
}

/// Tracks progress through the frame layout (`u32` length prefix, then
/// `len` body bytes) across arbitrary-size I/O calls. The chaos seam's
/// scan clamps each call to one boundary; this one instead walks any
/// span and reports how many frames it closed, so it never constrains
/// the I/O size above it.
#[derive(Debug)]
struct FrameCount {
    header: [u8; 4],
    have: usize,
    body_left: u64,
}

impl FrameCount {
    fn new() -> Self {
        FrameCount {
            header: [0; 4],
            have: 0,
            body_left: 0,
        }
    }

    /// Advances over `bytes` (any length, any alignment); returns how
    /// many frames those bytes completed.
    fn advance(&mut self, mut bytes: &[u8]) -> u64 {
        let mut completed = 0u64;
        while !bytes.is_empty() {
            if self.body_left > 0 {
                let take =
                    usize::try_from(self.body_left.min(bytes.len() as u64)).unwrap_or(bytes.len());
                self.body_left -= take as u64;
                bytes = &bytes[take..];
                if self.body_left == 0 {
                    completed += 1;
                }
            } else {
                let take = (4 - self.have).min(bytes.len());
                self.header[self.have..self.have + take].copy_from_slice(&bytes[..take]);
                self.have += take;
                bytes = &bytes[take..];
                if self.have == 4 {
                    self.have = 0;
                    self.body_left = u64::from(u32::from_le_bytes(self.header));
                    if self.body_left == 0 {
                        // Malformed (the codec rejects zero-length
                        // frames), but the scan must still terminate it.
                        completed += 1;
                    }
                }
            }
        }
        completed
    }
}

/// The counted read half: passes reads through `R` verbatim while
/// tallying `rx_bytes`/`rx_frames` into the shared [`IoStats`].
#[derive(Debug)]
pub struct CountingReader<R> {
    inner: R,
    stats: std::sync::Arc<IoStats>,
    scan: FrameCount,
}

impl<R: Read> CountingReader<R> {
    /// Wraps `inner`, tallying into `stats`.
    pub fn new(inner: R, stats: std::sync::Arc<IoStats>) -> Self {
        CountingReader {
            inner,
            stats,
            scan: FrameCount::new(),
        }
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n > 0 {
            self.stats.rx_bytes.fetch_add(n as u64, Ordering::Relaxed);
            let frames = self.scan.advance(&buf[..n]);
            if frames > 0 {
                self.stats.rx_frames.fetch_add(frames, Ordering::Relaxed);
            }
        }
        Ok(n)
    }
}

/// The counted write half: passes writes through `W` verbatim while
/// tallying `tx_bytes`/`tx_frames` into the shared [`IoStats`].
#[derive(Debug)]
pub struct CountingWriter<W> {
    inner: W,
    stats: std::sync::Arc<IoStats>,
    scan: FrameCount,
}

impl<W: Write> CountingWriter<W> {
    /// Wraps `inner`, tallying into `stats`.
    pub fn new(inner: W, stats: std::sync::Arc<IoStats>) -> Self {
        CountingWriter {
            inner,
            stats,
            scan: FrameCount::new(),
        }
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        if n > 0 {
            self.stats.tx_bytes.fetch_add(n as u64, Ordering::Relaxed);
            let frames = self.scan.advance(&buf[..n]);
            if frames > 0 {
                self.stats.tx_frames.fetch_add(frames, Ordering::Relaxed);
            }
        }
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// One frame with body length `n`, as bytes.
    fn frame(n: u32) -> Vec<u8> {
        let mut out = n.to_le_bytes().to_vec();
        out.extend(vec![0xABu8; n as usize]);
        out
    }

    #[test]
    fn frame_count_handles_arbitrary_spans() {
        let mut scan = FrameCount::new();
        let mut bytes = frame(3);
        bytes.extend(frame(1));
        bytes.extend(frame(2));
        // Whole burst at once: three frames.
        assert_eq!(scan.advance(&bytes), 3);
        // Byte-by-byte: same three frames.
        let mut one_by_one = 0;
        for b in &bytes {
            one_by_one += scan.advance(std::slice::from_ref(b));
        }
        assert_eq!(one_by_one, 3);
        // Split mid-prefix and mid-body: nothing completes until the
        // first body's last byte arrives, then the rest close at once.
        assert_eq!(scan.advance(&bytes[..2]), 0);
        assert_eq!(scan.advance(&bytes[2..6]), 0);
        assert_eq!(scan.advance(&bytes[6..]), 3);
    }

    #[test]
    fn zero_length_frames_terminate_the_count() {
        let mut scan = FrameCount::new();
        assert_eq!(scan.advance(&[0, 0, 0, 0]), 1);
        assert_eq!(scan.advance(&frame(1)), 1);
    }

    #[test]
    fn wrappers_tally_bytes_and_frames() {
        let stats = Arc::new(IoStats::new());
        let mut sink = Vec::new();
        {
            let mut w = CountingWriter::new(&mut sink, Arc::clone(&stats));
            w.write_all(&frame(5)).unwrap();
            w.write_all(&frame(2)).unwrap();
            w.flush().unwrap();
        }
        assert_eq!(stats.tx_bytes.load(Ordering::Relaxed), 9 + 6);
        assert_eq!(stats.tx_frames.load(Ordering::Relaxed), 2);

        let mut r = CountingReader::new(&sink[..], Arc::clone(&stats));
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, sink);
        assert_eq!(stats.rx_bytes.load(Ordering::Relaxed), 15);
        assert_eq!(stats.rx_frames.load(Ordering::Relaxed), 2);
    }
}
