//! Scripted fault injection for the wire protocol — the chaos-test seam.
//!
//! The chaos suite (`crates/dist/tests/chaos.rs`) needs workers that die,
//! stall, truncate or delay at *exact* points in the conversation, not at
//! whatever byte a kill signal happens to land on. [`scripted`] wraps one
//! side of a TCP connection in a [`FaultReader`]/[`FaultWriter`] pair that
//! tracks frame boundaries (every frame starts with a little-endian `u32`
//! length prefix — see the [`proto`](super) module docs) and triggers its
//! [`FaultPlan`]'s faults deterministically: "after reading 3 frames",
//! "inside the body of outgoing frame 1", and so on.
//!
//! To keep frame counting exact, each `read`/`write` call is clamped so it
//! never crosses a boundary of the frame state machine (length prefix,
//! then body). Callers buffer anyway, so the extra calls cost nothing.
//!
//! This module is compiled unconditionally (no cargo feature) so
//! integration tests in other crates can drive it, but nothing in the
//! production paths constructs a [`FaultPlan`]: the plain
//! [`read_frame`](super::read_frame)/[`write_frame`](super::write_frame)
//! codecs never route through it.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// One scripted failure. Frame indices are 0-based and counted per
/// direction on the wrapped side: `DieAfterReadingFrames(2)` on a worker
/// means "after consuming Hello and Job" while its written frames count
/// the handshake reply as 0 and the first `Partial`/`Err` as 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Close the socket abruptly once `n` whole frames have been read —
    /// the peer sees EOF / a reset mid-conversation.
    DieAfterReadingFrames(u64),
    /// Close the socket partway through reading frame `index`: its length
    /// prefix is consumed, its body is abandoned.
    DieInsideFrame {
        /// 0-based index of the incoming frame to die inside.
        index: u64,
    },
    /// Stop consuming input once `frames` frames have been read, hold the
    /// socket open for `hold_millis`, then close it — a hung peer, held
    /// long enough for the other side's read deadline to fire first (the
    /// bound keeps test threads from leaking forever).
    StallAfterReadingFrames {
        /// Frames to read before stalling.
        frames: u64,
        /// How long to hold the socket open before closing it.
        hold_millis: u64,
    },
    /// Write only the first `keep_bytes` bytes (counted from the length
    /// prefix) of outgoing frame `index`, then close — a truncated reply.
    TruncateWrittenFrame {
        /// 0-based index of the outgoing frame to truncate.
        index: u64,
        /// Bytes of the frame to let through before closing.
        keep_bytes: u64,
    },
    /// Sleep `millis` before starting each outgoing frame from `from_index`
    /// onward — a slow peer (with a read deadline on the other side, a
    /// too-slow reply becomes a `Transport` error there).
    DelayWrittenFrames {
        /// First outgoing frame to delay.
        from_index: u64,
        /// Sleep before each delayed frame.
        millis: u64,
    },
}

/// An ordered script of [`Fault`]s applied to one wrapped connection.
/// Faults are independent; each fires when its own condition is met. An
/// empty plan is a faithful pass-through (a healthy peer).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan — a healthy peer.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault to the script.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }
}

/// Tracks progress through the frame layout (`u32` length prefix, then
/// `len` body bytes) so I/O can be clamped to boundary-respecting steps.
#[derive(Debug)]
struct FrameScan {
    header: [u8; 4],
    have: usize,
    body_left: u64,
    into_frame: u64,
}

impl FrameScan {
    fn new() -> Self {
        FrameScan {
            header: [0; 4],
            have: 0,
            body_left: 0,
            into_frame: 0,
        }
    }

    /// Whether the scan is inside a frame's body (prefix consumed).
    fn in_body(&self) -> bool {
        self.body_left > 0
    }

    /// Bytes already transferred of the current frame (prefix + body).
    fn offset_into_frame(&self) -> u64 {
        self.into_frame
    }

    /// Bytes until the next boundary event (end of prefix or end of
    /// body) — I/O calls are clamped to this so `advance` sees at most
    /// one boundary per call.
    fn step_limit(&self) -> usize {
        if self.body_left > 0 {
            usize::try_from(self.body_left).unwrap_or(usize::MAX)
        } else {
            4 - self.have
        }
    }

    /// Advances over `bytes` (at most `step_limit` of them); returns
    /// `true` when those bytes completed a frame.
    fn advance(&mut self, bytes: &[u8]) -> bool {
        self.into_frame += bytes.len() as u64;
        if self.body_left > 0 {
            self.body_left -= bytes.len() as u64;
            if self.body_left == 0 {
                self.into_frame = 0;
                return true;
            }
            return false;
        }
        for &b in bytes {
            self.header[self.have] = b;
            self.have += 1;
        }
        if self.have == 4 {
            self.have = 0;
            self.body_left = u64::from(u32::from_le_bytes(self.header));
            if self.body_left == 0 {
                // A zero-length frame is malformed (the codec rejects it),
                // but the scan must still terminate it.
                self.into_frame = 0;
                return true;
            }
        }
        false
    }
}

#[derive(Debug)]
struct Shared {
    /// Owned duplicate of the socket, kept to shut *both* directions down
    /// when a fault fires (a died peer stops reading and writing at once).
    stream: TcpStream,
    plan: FaultPlan,
    read_scan: FrameScan,
    read_frames: u64,
    write_scan: FrameScan,
    write_frames: u64,
    closed: bool,
}

impl Shared {
    fn close(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        self.closed = true;
    }
}

fn lock(shared: &Arc<Mutex<Shared>>) -> MutexGuard<'_, Shared> {
    shared.lock().unwrap_or_else(PoisonError::into_inner)
}

fn closed_err() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        "fault plan closed the connection",
    )
}

/// The read half of a fault-scripted connection.
#[derive(Debug)]
pub struct FaultReader {
    inner: TcpStream,
    shared: Arc<Mutex<Shared>>,
}

/// The write half of a fault-scripted connection.
#[derive(Debug)]
pub struct FaultWriter {
    inner: TcpStream,
    shared: Arc<Mutex<Shared>>,
}

/// Wraps `stream` in a reader/writer pair that executes `plan`. The two
/// halves share the frame counters, so a read-side fault (a "death") also
/// kills the write side, as a dead process would.
pub fn scripted(stream: TcpStream, plan: FaultPlan) -> std::io::Result<(FaultReader, FaultWriter)> {
    let read_half = stream.try_clone()?;
    let write_half = stream.try_clone()?;
    let shared = Arc::new(Mutex::new(Shared {
        stream,
        plan,
        read_scan: FrameScan::new(),
        read_frames: 0,
        write_scan: FrameScan::new(),
        write_frames: 0,
        closed: false,
    }));
    Ok((
        FaultReader {
            inner: read_half,
            shared: Arc::clone(&shared),
        },
        FaultWriter {
            inner: write_half,
            shared,
        },
    ))
}

impl Read for FaultReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut shared = lock(&self.shared);
        if shared.closed {
            return Ok(0);
        }
        for i in 0..shared.plan.faults.len() {
            match shared.plan.faults[i] {
                Fault::DieAfterReadingFrames(n) if shared.read_frames >= n => {
                    shared.close();
                    return Ok(0);
                }
                Fault::DieInsideFrame { index }
                    if shared.read_frames == index && shared.read_scan.in_body() =>
                {
                    shared.close();
                    return Ok(0);
                }
                Fault::StallAfterReadingFrames {
                    frames,
                    hold_millis,
                } if shared.read_frames >= frames => {
                    // Release the lock while stalling so the writer half
                    // observes `closed` promptly afterwards.
                    drop(shared);
                    std::thread::sleep(Duration::from_millis(hold_millis));
                    lock(&self.shared).close();
                    return Ok(0);
                }
                _ => {}
            }
        }
        let limit = shared.read_scan.step_limit().min(buf.len());
        drop(shared);
        let n = self.inner.read(&mut buf[..limit])?;
        let mut shared = lock(&self.shared);
        if n > 0 && shared.read_scan.advance(&buf[..n]) {
            shared.read_frames += 1;
        }
        Ok(n)
    }
}

impl Write for FaultWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut shared = lock(&self.shared);
        if shared.closed {
            return Err(closed_err());
        }
        let frame = shared.write_frames;
        let offset = shared.write_scan.offset_into_frame();
        let mut limit = shared.write_scan.step_limit().min(buf.len());
        for i in 0..shared.plan.faults.len() {
            match shared.plan.faults[i] {
                Fault::TruncateWrittenFrame { index, keep_bytes } if frame == index => {
                    if offset >= keep_bytes {
                        shared.close();
                        return Err(closed_err());
                    }
                    let room = usize::try_from(keep_bytes - offset).unwrap_or(usize::MAX);
                    limit = limit.min(room);
                }
                Fault::DelayWrittenFrames { from_index, millis }
                    if frame >= from_index && offset == 0 =>
                {
                    drop(shared);
                    std::thread::sleep(Duration::from_millis(millis));
                    shared = lock(&self.shared);
                    if shared.closed {
                        return Err(closed_err());
                    }
                }
                _ => {}
            }
        }
        drop(shared);
        let n = self.inner.write(&buf[..limit])?;
        let mut shared = lock(&self.shared);
        if n > 0 && shared.write_scan.advance(&buf[..n]) {
            shared.write_frames += 1;
        }
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if lock(&self.shared).closed {
            return Err(closed_err());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_scan_counts_boundaries_exactly() {
        let mut scan = FrameScan::new();
        // Frame of body length 3: prefix must be consumable byte-by-byte.
        assert_eq!(scan.step_limit(), 4);
        assert!(!scan.advance(&[3]));
        assert_eq!(scan.step_limit(), 3);
        assert!(!scan.advance(&[0, 0, 0]));
        assert!(scan.in_body());
        assert_eq!(scan.step_limit(), 3);
        assert_eq!(scan.offset_into_frame(), 4);
        assert!(!scan.advance(&[0xAA, 0xBB]));
        assert!(scan.advance(&[0xCC]), "last body byte completes the frame");
        assert!(!scan.in_body());
        assert_eq!(scan.offset_into_frame(), 0);
        // Next frame starts fresh at its prefix.
        assert_eq!(scan.step_limit(), 4);
        assert!(!scan.advance(&[1, 0, 0, 0]));
        assert!(scan.advance(&[0x7F]));
    }

    #[test]
    fn zero_length_frames_terminate_the_scan() {
        let mut scan = FrameScan::new();
        assert!(scan.advance(&[0, 0, 0, 0]), "malformed but terminated");
        assert_eq!(scan.step_limit(), 4);
    }

    #[test]
    fn faults_compose_in_one_plan() {
        let plan = FaultPlan::new()
            .with(Fault::DelayWrittenFrames {
                from_index: 1,
                millis: 5,
            })
            .with(Fault::DieAfterReadingFrames(3));
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan, plan.clone());
        assert_ne!(plan, FaultPlan::new());
    }
}
