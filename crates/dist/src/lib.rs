//! # mcim-dist
//!
//! Multi-process distributed reducer for *Multi-class Item Mining under
//! Local Differential Privacy*: a socket-backed
//! [`Executor`](mcim_oracles::exec::Executor) backend that shards the
//! pipelines' bulk privatize+aggregate stages across worker processes.
//!
//! The paper's protocols are embarrassingly parallel over user reports,
//! and PR 4 left exactly one seam for scaling past a single process: the
//! `Executor` trait with its absolute-shard / per-shard-RNG / associative-
//! merge contract. This crate implements the second backend:
//!
//! * [`proto`] — a hand-rolled, length-prefixed binary wire protocol
//!   carrying the stage spec, absolute shard assignments, report chunks
//!   and serialized accumulator partials,
//! * [`Worker`] — the worker-process loop: rebuild the stage from its
//!   [`StageSpec`](mcim_oracles::wire::StageSpec) via the [`Registry`],
//!   replay the same SplitMix64-derived per-shard RNG streams the
//!   in-process executor uses, fold the owned shard ranges, ship the
//!   partial back,
//! * [`Coordinator`] — the `Executor` implementation: stream the
//!   [`ReportSource`](mcim_oracles::stream::ReportSource) out over TCP,
//!   merge partials in shard order.
//!
//! Because both backends honor the same shard contract,
//! `Framework::execute_on`, `PemEngine::execute_round_on`,
//! `Pem::execute_on` and `mcim_topk::execute_on` produce **bit-identical**
//! results on a `Coordinator` as on
//! [`InProcess`](mcim_oracles::exec::InProcess) — for every worker count,
//! thread count and chunk size. The workspace's distributed equivalence
//! matrix (`crates/cli/tests/dist_equivalence.rs`, run in CI with 1, 2 and
//! 4 spawned workers) locks that in.
//!
//! ## Fault tolerance: the re-route invariant
//!
//! The same shard contract that makes results placement-independent makes
//! them **failure-independent**: a shard's fold depends only on
//! `(stage_seed, shard, items)`, never on which process folds it. So when
//! a worker dies mid-fold (socket error, kill, hang past
//! [`DistConfig::io_timeout`]) or refuses a job, the [`Coordinator`]
//! [`rewind`](mcim_oracles::stream::ReportSource::rewind)s the source and
//! replays *only the lost shard assignment* on a surviving worker — or
//! in-process as the last resort — and the fold's result is bit-identical
//! to the unfailed run. The chaos suite (`crates/dist/tests/chaos.rs`)
//! asserts exactly that, killing workers at scripted frame boundaries via
//! the [`proto::fault`] seam. Recovery requires a rewindable source
//! (`SliceSource`, the dataset file/synthetic sources, and `Take` views of
//! them all are); a non-rewindable source fails the fold with
//! [`Unrecoverable`](mcim_oracles::Error::Unrecoverable) instead of
//! returning partial data. Per-fold failure accounting is reported through
//! [`Executor::last_fold_report`](mcim_oracles::exec::Executor::last_fold_report)
//! and [`Coordinator::session_report`].
//!
//! ## Lint-enforced determinism
//!
//! The wire paths in this crate (`proto.rs`, `coord.rs`, `worker.rs`) are
//! **statically enforced deterministic** by the workspace's invariant
//! checker (`cargo run -p mcim-lint`, see the README's "Static analysis"
//! section): hashed containers (`HashMap`/`HashSet` iterate in a
//! per-process random order), ambient entropy (`thread_rng`,
//! `SystemTime::now`, `Instant::now`) and panicking shortcuts
//! (`unwrap`/`expect`/`panic!`) are all banned here, so nothing
//! order-dependent or process-local can leak into an encoded frame and a
//! malformed frame can never crash a worker. Lookup tables use ordered
//! containers (the [`Registry`] is a `BTreeMap`); the
//! encode → decode → re-encode byte-identity of every frame is
//! property-tested in `tests/proto_roundtrip.rs`.
//!
//! ## Quick start
//!
//! ```text
//! # terminal 1 and 2: workers
//! mcim worker --listen 127.0.0.1:7001
//! mcim worker --listen 127.0.0.1:7002
//!
//! # terminal 3: any freq/topk run, distributed
//! mcim freq --input pairs.csv --eps 2.0 --dist 127.0.0.1:7001,127.0.0.1:7002
//! # or let the CLI spawn+reap local workers:
//! mcim freq --input pairs.csv --eps 2.0 --dist-spawn 4
//! ```
//!
//! Library-side:
//!
//! ```no_run
//! use mcim_core::{Domains, Framework};
//! use mcim_dist::Coordinator;
//! use mcim_oracles::exec::Exec;
//! use mcim_oracles::stream::SliceSource;
//! use mcim_oracles::Eps;
//!
//! let plan = Exec::seeded(7);
//! let coordinator = Coordinator::connect(&plan, &["127.0.0.1:7001", "127.0.0.1:7002"])?;
//! let domains = Domains::new(4, 1024)?;
//! let pairs = Vec::new();
//! let result = Framework::PtsCp { label_frac: 0.5 }.execute_on(
//!     &coordinator,
//!     Eps::new(2.0)?,
//!     domains,
//!     SliceSource::new(&pairs),
//! )?;
//! # let _ = result;
//! # Ok::<(), mcim_oracles::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;

mod coord;
mod spawn;
mod worker;

pub use coord::{Coordinator, DistConfig};
pub use proto::{Frame, ShardAssignment, MAX_FRAME, PROTOCOL_VERSION};
pub use spawn::{spawn_local_workers, SpawnedWorkers, LISTENING_PREFIX};
pub use worker::{Registry, Worker};

use mcim_core::frameworks::stages::{CpArm, FwStage, HecArm, PtjArm, PtsArm};
use mcim_oracles::{Error, Result};
use mcim_topk::{PemOracleRoundStage, PemVpRoundStage};

/// The registry of every distributable stage in the workspace: the four
/// framework arms (HEC / PTJ / PTS / PTS-CP) and the two PEM round stages
/// (validity-perturbation and adaptive-oracle) that power `Pem` mining and
/// the multi-class top-k methods.
pub fn builtin_registry() -> Registry {
    let mut registry = Registry::new();
    registry.register::<FwStage<HecArm>>();
    registry.register::<FwStage<PtjArm>>();
    registry.register::<FwStage<PtsArm>>();
    registry.register::<FwStage<CpArm>>();
    registry.register::<PemVpRoundStage>();
    registry.register::<PemOracleRoundStage>();
    registry
}

/// A [`Worker`] over the [`builtin_registry`].
pub fn builtin_worker() -> Worker {
    Worker::new(builtin_registry())
}

/// The body of a `worker` subcommand: bind `listen_addr` (port 0 picks an
/// ephemeral port), announce [`LISTENING_PREFIX`]` <addr>` on stdout, and
/// serve — one connection with `once` (spawned workers exit with their
/// coordinator), forever otherwise.
pub fn worker_main(listen_addr: &str, once: bool) -> Result<()> {
    let listener = std::net::TcpListener::bind(listen_addr)
        .map_err(|e| Error::transport(format!("binding {listen_addr}"), e))?;
    let local = listener
        .local_addr()
        .map_err(|e| Error::transport("reading the bound address", e))?;
    // Best-effort announcement (piped parents read it; broken pipes must
    // not kill the worker).
    use std::io::Write;
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "{LISTENING_PREFIX}{local}");
    let _ = stdout.flush();
    let worker = builtin_worker();
    if once {
        worker.serve_once(&listener)
    } else {
        worker.serve(&listener)
    }
}
