//! The coordinator: a socket-backed [`Executor`] that shards a pipeline
//! stage across worker processes.
//!
//! [`Coordinator::fold`] is the whole trick: it ships the stage's
//! [`spec`](Stage::spec) to every connected worker, streams the
//! [`ReportSource`] out in shard-aligned chunks (each worker owns an
//! absolute shard range, so the per-shard RNG streams land exactly where
//! [`InProcess`] would put them), and merges the serialized partials back
//! in worker order. Because the shard contract fixes boundaries, RNG
//! streams and merge associativity, the result is **bit-identical** to
//! in-process execution for every worker count and chunk size — proven by
//! the workspace's distributed equivalence matrix.
//!
//! Stages without a spec (ad-hoc closure stages) fall back to in-process
//! execution: the contract makes that equally correct, just local.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Mutex, MutexGuard, PoisonError};

use mcim_oracles::exec::{Exec, Executor, InProcess, Stage};
use mcim_oracles::parallel::SHARD_SIZE;
use mcim_oracles::stream::ReportSource;
use mcim_oracles::wire::{Wire, WireReader, WireState};
use mcim_oracles::{Error, Result};

use crate::proto::{expect_frame, write_chunk_frame, write_frame, Frame, ShardAssignment};
use crate::PROTOCOL_VERSION;

/// One worker connection (buffered writer for the chunk torrent, direct
/// reader for the single partial per job).
struct WorkerConn {
    peer: String,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl WorkerConn {
    fn connect(addr: &str) -> Result<Self> {
        let ctx = |what: &str| format!("{what} worker {addr}");
        let mut last_err = None;
        let addrs = addr
            .to_socket_addrs()
            .map_err(|e| Error::transport(ctx("resolving"), e))?;
        let mut stream = None;
        for resolved in addrs {
            match TcpStream::connect(resolved) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match (stream, last_err) {
            (Some(s), _) => s,
            (None, Some(e)) => return Err(Error::transport(ctx("connecting to"), e)),
            (None, None) => {
                return Err(Error::transport(
                    ctx("resolving"),
                    std::io::Error::new(std::io::ErrorKind::NotFound, "no addresses"),
                ))
            }
        };
        stream
            .set_nodelay(true)
            .map_err(|e| Error::transport(ctx("configuring"), e))?;
        let reader = stream
            .try_clone()
            .map_err(|e| Error::transport(ctx("cloning the handle of"), e))?;
        let mut conn = WorkerConn {
            peer: addr.to_string(),
            reader: BufReader::new(reader),
            writer: BufWriter::new(stream),
        };
        // Version handshake, coordinator leads.
        conn.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        conn.flush()?;
        match conn.receive()? {
            Frame::Hello {
                version: PROTOCOL_VERSION,
            } => Ok(conn),
            Frame::Hello { version } => Err(Error::protocol(format!(
                "handshaking with worker {addr} (it speaks protocol {version}, we speak \
                 {PROTOCOL_VERSION})"
            ))),
            Frame::Err { message } => Err(Error::protocol(format!(
                "handshaking with worker {addr} (it refused: {message})"
            ))),
            other => Err(Error::protocol(format!(
                "handshaking with worker {addr} (expected Hello, got {})",
                other.name()
            ))),
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        write_frame(&mut self.writer, frame)
    }

    fn send_chunk(&mut self, first_abs: u64, items: &[u8]) -> Result<()> {
        write_chunk_frame(&mut self.writer, first_abs, items)
    }

    fn flush(&mut self) -> Result<()> {
        self.writer
            .flush()
            .map_err(|e| Error::transport(format!("flushing frames to worker {}", self.peer), e))
    }

    fn receive(&mut self) -> Result<Frame> {
        expect_frame(&mut self.reader)
    }
}

/// A socket-backed [`Executor`]: the distributed reducer's client half.
///
/// Connect it to running `mcim worker` processes (or spawn local ones
/// with [`crate::spawn_local_workers`] / `mcim --dist-spawn`), then pass
/// it anywhere an executor goes — `Framework::execute_on`,
/// `PemEngine::execute_round_on`, `Pem::execute_on`,
/// `mcim_topk::execute_on`. Multi-stage pipelines reuse the same
/// connections for every stage; dropping the coordinator sends `Shutdown`
/// so `--once` workers exit.
///
/// The plan's `chunk_size` controls how many items are pulled (and
/// encoded) per network round; `threads` only affects stages that fall
/// back to in-process execution. Neither changes any output.
pub struct Coordinator {
    plan: Exec,
    conns: Mutex<Vec<WorkerConn>>,
}

impl Coordinator {
    /// Connects to workers at `addrs` (e.g. `["127.0.0.1:7001",
    /// "10.0.0.2:7001"]`) and handshakes with each. At least one worker
    /// is required.
    pub fn connect<A: AsRef<str>>(plan: &Exec, addrs: &[A]) -> Result<Self> {
        if addrs.is_empty() {
            return Err(Error::InvalidParameter {
                name: "addrs",
                constraint: "a distributed reducer needs at least one worker",
            });
        }
        let conns = addrs
            .iter()
            .map(|a| WorkerConn::connect(a.as_ref()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Coordinator {
            plan: *plan,
            conns: Mutex::new(conns),
        })
    }

    /// Locks the connection table. Poisoning is survivable: the guarded
    /// state is only a list of socket handles, and a connection left
    /// mid-conversation by a panicking fold surfaces as a protocol error
    /// on its next use — so recover the guard instead of re-panicking.
    fn conns(&self) -> MutexGuard<'_, Vec<WorkerConn>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of connected workers.
    pub fn workers(&self) -> usize {
        self.conns().len()
    }

    /// The shard assignment of each worker for a stream of `size_hint`
    /// items: contiguous ranges when the size is known (one process per
    /// shard range), round-robin strides otherwise.
    fn assignments(&self, size_hint: Option<u64>, workers: u64) -> Vec<ShardAssignment> {
        match size_hint {
            Some(n) => {
                let shards = n.div_ceil(SHARD_SIZE as u64);
                // Evenly split contiguous ranges; the first `extra`
                // workers take one extra shard.
                let base = shards / workers;
                let extra = shards % workers;
                let mut first = 0u64;
                (0..workers)
                    .map(|w| {
                        let len = base + u64::from(w < extra);
                        let range = ShardAssignment::Range {
                            first,
                            end: first + len,
                        };
                        first += len;
                        range
                    })
                    .collect()
            }
            None => (0..workers)
                .map(|offset| ShardAssignment::Stride {
                    offset,
                    stride: workers,
                })
                .collect(),
        }
    }

    /// Sends `Shutdown` to every worker (idempotent; also done on drop).
    pub fn shutdown(&self) {
        let mut conns = self.conns();
        for conn in conns.iter_mut() {
            let _ = conn.send(&Frame::Shutdown);
            let _ = conn.flush();
        }
        conns.clear();
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Executor for Coordinator {
    fn plan(&self) -> &Exec {
        &self.plan
    }

    fn fold<S, St>(&self, source: &mut S, stage_seed: u64, stage: &St) -> Result<St::Acc>
    where
        S: ReportSource<Item = St::Item>,
        St: Stage,
    {
        let Some(spec) = stage.spec() else {
            // No wire form — run the stage locally. The shard contract
            // makes this bit-identical, just not remote.
            return InProcess::new(&self.plan).fold(source, stage_seed, stage);
        };

        let mut conns = self.conns();
        if conns.is_empty() {
            return Err(Error::protocol(
                "starting a job (coordinator already shut down)",
            ));
        }
        let workers = conns.len() as u64;
        let assignments = self.assignments(source.size_hint(), workers);
        for (conn, &shards) in conns.iter_mut().zip(&assignments) {
            conn.send(&Frame::Job {
                stage_seed,
                kind: spec.kind.to_string(),
                payload: spec.payload.clone(),
                shards,
            })?;
        }

        // Stream the source out in shard-aligned runs: consecutive items
        // that land in one worker's shards travel as one Chunk frame.
        let shard_size = SHARD_SIZE as u64;
        let owner_of = |shard: u64| -> Result<usize> {
            assignments
                .iter()
                .position(|a| a.owns(shard))
                .ok_or_else(|| {
                    Error::protocol(format!(
                        "routing shard {shard} (the source yielded more items than its \
                         size_hint declared)"
                    ))
                })
        };
        let chunk_items = self.plan.resolved_chunk_items();
        let mut buf: Vec<St::Item> = Vec::with_capacity(chunk_items);
        let mut encoded = Vec::new();
        let mut abs = 0u64;
        loop {
            buf.clear();
            loop {
                let want = chunk_items - buf.len();
                if want == 0 || source.fill(&mut buf, want)? == 0 {
                    break;
                }
            }
            if buf.is_empty() {
                break;
            }
            let mut offset = 0usize;
            while offset < buf.len() {
                let start_abs = abs + offset as u64;
                let owner = owner_of(start_abs / shard_size)?;
                // Extend the run across consecutive shards with the same
                // owner (always whole shards except at the buffer edges).
                let mut end = offset;
                loop {
                    let shard = (abs + end as u64) / shard_size;
                    if owner_of(shard)? != owner {
                        break;
                    }
                    let shard_end = ((shard + 1) * shard_size - abs) as usize;
                    end = shard_end.min(buf.len());
                    if end == buf.len() {
                        break;
                    }
                }
                encoded.clear();
                ((end - offset) as u32).put(&mut encoded);
                for item in &buf[offset..end] {
                    item.put(&mut encoded);
                }
                // Hot path: the chunk payload goes straight into the
                // buffered socket writer, no owned `Frame` round-trip.
                conns[owner].send_chunk(start_abs, &encoded)?;
                offset = end;
            }
            abs += buf.len() as u64;
        }

        for conn in conns.iter_mut() {
            conn.send(&Frame::Flush)?;
            conn.flush()?;
        }

        // Collect every worker's reply before acting on any failure:
        // each job owes exactly one Partial/Err per connection, so a
        // worker's error must not leave the other workers' replies queued
        // (a later fold would read them as its own).
        let replies: Vec<Result<Frame>> = conns.iter_mut().map(|c| c.receive()).collect();
        let mut first_err: Option<Error> = None;
        let mut acc = stage.template();
        for (conn, reply) in conns.iter().zip(replies) {
            let outcome = match reply {
                Ok(Frame::Partial { state }) => {
                    let mut partial = stage.template();
                    let mut reader = WireReader::new(&state);
                    partial
                        .load(&mut reader)
                        .and_then(|()| reader.finish())
                        .and_then(|()| stage.merge(&mut acc, &partial))
                }
                Ok(Frame::Err { message }) => Err(Error::Source {
                    message: format!("worker {} failed: {message}", conn.peer),
                }),
                Ok(other) => Err(Error::protocol(format!(
                    "collecting partials (worker {} sent {})",
                    conn.peer,
                    other.name()
                ))),
                Err(e) => Err(e),
            };
            if let Err(e) = outcome {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(acc),
            Some(e) => {
                if matches!(e, Error::Transport { .. }) {
                    // A transport failure leaves its socket at an unknown
                    // position — no later fold can trust any connection's
                    // framing. Tear the session down.
                    for conn in conns.iter_mut() {
                        let _ = conn.send(&Frame::Shutdown);
                        let _ = conn.flush();
                    }
                    conns.clear();
                }
                Err(e)
            }
        }
    }
}
