//! The coordinator: a socket-backed [`Executor`] that shards a pipeline
//! stage across worker processes.
//!
//! [`Coordinator::fold`] is the whole trick: it ships the stage's
//! [`spec`](Stage::spec) to every connected worker, streams the
//! [`ReportSource`] out in shard-aligned chunks (each worker owns an
//! absolute shard range, so the per-shard RNG streams land exactly where
//! [`InProcess`] would put them), and merges the serialized partials back
//! in worker order. Because the shard contract fixes boundaries, RNG
//! streams and merge associativity, the result is **bit-identical** to
//! in-process execution for every worker count and chunk size — proven by
//! the workspace's distributed equivalence matrix.
//!
//! Stages without a spec (ad-hoc closure stages) fall back to in-process
//! execution: the contract makes that equally correct, just local.
//!
//! ## Fault tolerance: the re-route invariant
//!
//! A fold survives worker failure because a lost worker's
//! [`ShardAssignment`] is *recomputable anywhere*: the shard contract
//! derives shard `s`'s RNG stream from `(stage_seed, s)` — never from the
//! host that folds it — and merges only disjoint shard ranges. So when a
//! worker dies (transport error) or refuses (an `Err` reply), the
//! coordinator [`rewind`](ReportSource::rewind)s the source, replays
//! *only the lost assignment's shards* on a surviving worker (or
//! in-process as the last resort), and merges the replacement partial.
//! The recovered result is bit-identical to the unfailed run; the only
//! observable difference is the fold's [`FoldReport`].
//!
//! Recovery needs a rewindable source. When the source cannot rewind,
//! the fold fails with [`Error::Unrecoverable`] wrapping the original
//! worker failure. Timeouts ([`DistConfig::io_timeout`]) turn a *hung*
//! worker into an ordinary transport failure so it enters the same path.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use rand::rngs::StdRng;

use mcim_oracles::exec::{Exec, Executor, FoldReport, InProcess, Stage};
use mcim_oracles::parallel::{shard_rng, SHARD_SIZE};
use mcim_oracles::stream::ReportSource;
use mcim_oracles::wire::{StageSpec, Wire, WireReader, WireState};
use mcim_oracles::{Error, Result};

use crate::proto::count::{CountingReader, CountingWriter, IoStats};
use crate::proto::{expect_frame, write_chunk_frame, write_frame, Frame, ShardAssignment};
use crate::spawn::{spawn_local_workers, SpawnedWorkers};
use crate::PROTOCOL_VERSION;

/// Transport-hardening knobs of a [`Coordinator`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistConfig {
    /// Total TCP connection attempts per worker address (≥ 1). Retries
    /// cover establishing the connection; a failed *handshake* (version
    /// mismatch) fails fast, since retrying cannot fix it.
    pub connect_attempts: u32,
    /// Base delay of the deterministic exponential backoff between
    /// connection attempts (see [`DistConfig::backoff_delay`]).
    pub connect_backoff: Duration,
    /// Socket read/write deadline for every worker conversation. A hung
    /// worker then surfaces as a `Transport` error (and enters shard
    /// re-routing) instead of blocking the fold forever. `None` (the
    /// default) blocks indefinitely; must be nonzero when set.
    pub io_timeout: Option<Duration>,
    /// Upper bound on replay jobs re-routed to surviving workers within
    /// one fold; assignments beyond it are replayed in-process.
    pub max_reroutes: u32,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(25),
            io_timeout: None,
            max_reroutes: 8,
        }
    }
}

impl DistConfig {
    /// The delay before retry number `retry` (0-based): the base backoff
    /// doubled per retry, capped at one second. Deliberately jitter-free —
    /// the workspace's determinism rules ban ambient entropy, and the
    /// coordinator retries a handful of known addresses, not a fleet.
    pub fn backoff_delay(&self, retry: u32) -> Duration {
        let base = u64::try_from(self.connect_backoff.as_millis()).unwrap_or(u64::MAX);
        let factor = 1u64 << retry.min(10);
        Duration::from_millis(base.saturating_mul(factor).min(1_000))
    }
}

/// Per-connection I/O tallies already flushed into the metrics registry,
/// so each flush exports only the delta since the previous one.
#[derive(Debug, Default)]
struct FlushedIo {
    tx_bytes: u64,
    rx_bytes: u64,
    tx_frames: u64,
    rx_frames: u64,
    round_trips: u64,
}

/// One worker connection (buffered writer for the chunk torrent, direct
/// reader for the single partial per job). Both halves run through the
/// [`count`](crate::proto::count) wrappers, so byte/frame tallies
/// accumulate as a side effect of ordinary I/O.
struct WorkerConn {
    peer: String,
    /// Position in the connect-time address list — the stable `worker`
    /// metric label. Peer addresses would not do: spawned workers bind
    /// ephemeral ports, which would break run-to-run snapshot identity.
    index: usize,
    stats: Arc<IoStats>,
    round_trips: u64,
    flushed: FlushedIo,
    reader: BufReader<CountingReader<TcpStream>>,
    writer: BufWriter<CountingWriter<TcpStream>>,
}

impl WorkerConn {
    /// Connects and handshakes, retrying the TCP connection per
    /// `config`. Returns the connection and the retries it took.
    fn connect(addr: &str, config: &DistConfig) -> Result<(Self, u32)> {
        let attempts = config.connect_attempts.max(1);
        let mut retries = 0u32;
        let mut last: Option<Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(config.backoff_delay(attempt - 1));
                retries += 1;
            }
            match Self::open_stream(addr, config) {
                Ok(stream) => return Self::handshake(addr, stream).map(|conn| (conn, retries)),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            Error::transport(
                format!("connecting to worker {addr}"),
                std::io::Error::new(std::io::ErrorKind::NotFound, "no connection attempts"),
            )
        }))
    }

    fn open_stream(addr: &str, config: &DistConfig) -> Result<TcpStream> {
        let ctx = |what: &str| format!("{what} worker {addr}");
        let mut last_err = None;
        let addrs = addr
            .to_socket_addrs()
            .map_err(|e| Error::transport(ctx("resolving"), e))?;
        let mut stream = None;
        for resolved in addrs {
            match TcpStream::connect(resolved) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match (stream, last_err) {
            (Some(s), _) => s,
            (None, Some(e)) => return Err(Error::transport(ctx("connecting to"), e)),
            (None, None) => {
                return Err(Error::transport(
                    ctx("resolving"),
                    std::io::Error::new(std::io::ErrorKind::NotFound, "no addresses"),
                ))
            }
        };
        stream
            .set_nodelay(true)
            .map_err(|e| Error::transport(ctx("configuring"), e))?;
        stream
            .set_read_timeout(config.io_timeout)
            .and_then(|()| stream.set_write_timeout(config.io_timeout))
            .map_err(|e| Error::transport(ctx("setting deadlines for"), e))?;
        Ok(stream)
    }

    fn handshake(addr: &str, stream: TcpStream) -> Result<Self> {
        let reader = stream
            .try_clone()
            .map_err(|e| Error::transport(format!("cloning the handle of worker {addr}"), e))?;
        let stats = Arc::new(IoStats::new());
        let mut conn = WorkerConn {
            peer: addr.to_string(),
            index: 0,
            round_trips: 0,
            flushed: FlushedIo::default(),
            reader: BufReader::new(CountingReader::new(reader, Arc::clone(&stats))),
            writer: BufWriter::new(CountingWriter::new(stream, Arc::clone(&stats))),
            stats,
        };
        // Version handshake, coordinator leads.
        conn.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        conn.flush()?;
        match conn.receive()? {
            Frame::Hello {
                version: PROTOCOL_VERSION,
            } => Ok(conn),
            Frame::Hello { version } => Err(Error::protocol(format!(
                "handshaking with worker {addr} (it speaks protocol {version}, we speak \
                 {PROTOCOL_VERSION})"
            ))),
            Frame::Err { message } => Err(Error::protocol(format!(
                "handshaking with worker {addr} (it refused: {message})"
            ))),
            other => Err(Error::protocol(format!(
                "handshaking with worker {addr} (expected Hello, got {})",
                other.name()
            ))),
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        write_frame(&mut self.writer, frame)
    }

    fn send_chunk(&mut self, first_abs: u64, items: &[u8]) -> Result<()> {
        write_chunk_frame(&mut self.writer, first_abs, items)
    }

    fn flush(&mut self) -> Result<()> {
        self.writer
            .flush()
            .map_err(|e| Error::transport(format!("flushing frames to worker {}", self.peer), e))
    }

    fn receive(&mut self) -> Result<Frame> {
        self.round_trips += 1;
        expect_frame(&mut self.reader)
    }

    /// Exports this connection's I/O deltas since the previous flush as
    /// `mcim_dist_*` counters labeled by worker index. No-op while
    /// metrics are disabled (the unflushed tallies keep accumulating and
    /// surface whole once metrics turn on).
    fn flush_obs(&mut self) {
        if !mcim_obs::enabled() {
            return;
        }
        let index = self.index.to_string();
        let flush = |name: &str, current: u64, exported: &mut u64| {
            if current > *exported {
                mcim_obs::counter_add(
                    &mcim_obs::labeled(name, &[("worker", &index)]),
                    current - *exported,
                );
                *exported = current;
            }
        };
        let load = |v: &std::sync::atomic::AtomicU64| v.load(Ordering::Relaxed);
        flush(
            "mcim_dist_tx_bytes_total",
            load(&self.stats.tx_bytes),
            &mut self.flushed.tx_bytes,
        );
        flush(
            "mcim_dist_rx_bytes_total",
            load(&self.stats.rx_bytes),
            &mut self.flushed.rx_bytes,
        );
        flush(
            "mcim_dist_tx_frames_total",
            load(&self.stats.tx_frames),
            &mut self.flushed.tx_frames,
        );
        flush(
            "mcim_dist_rx_frames_total",
            load(&self.stats.rx_frames),
            &mut self.flushed.rx_frames,
        );
        flush(
            "mcim_dist_round_trips_total",
            self.round_trips,
            &mut self.flushed.round_trips,
        );
    }
}

impl Drop for WorkerConn {
    fn drop(&mut self) {
        // Every removal path (a lost worker dropped from the table, a
        // teardown, the coordinator's own drop) exports what the
        // connection still owes the registry.
        self.flush_obs();
    }
}

/// How a replay attempt failed, which decides what happens to the target
/// and to the assignment being replayed.
enum ReplayFailure {
    /// The target's socket failed mid-conversation; the connection is
    /// dead and the assignment goes back on the queue.
    Dead(Error),
    /// The target finished the conversation but failed the job (an `Err`
    /// reply or an undecodable partial). Its socket stays synchronized,
    /// but it is excluded as a replay target for the rest of this fold.
    Refused(Error),
    /// A local failure (source error, merge error): the fold cannot
    /// complete at all.
    Fatal(Error),
}

/// One replay job's immutable inputs (bundled so the replay methods keep
/// a readable arity).
struct Replay<'a, St> {
    stage_seed: u64,
    spec: &'a StageSpec,
    stage: &'a St,
    assignment: ShardAssignment,
}

/// A socket-backed [`Executor`]: the distributed reducer's client half.
///
/// Connect it to running `mcim worker` processes (or spawn local ones
/// with [`Coordinator::connect_spawned`] / `mcim --dist-spawn`), then
/// pass it anywhere an executor goes — `Framework::execute_on`,
/// `PemEngine::execute_round_on`, `Pem::execute_on`,
/// `mcim_topk::execute_on`. Multi-stage pipelines reuse the same
/// connections for every stage; dropping the coordinator sends `Shutdown`
/// so `--once` workers exit (and reaps adopted spawned children).
///
/// The plan's `chunk_size` controls how many items are pulled (and
/// encoded) per network round; `threads` only affects stages that run
/// in-process (spec-less stages and replayed shards). Neither changes
/// any output. Failure handling is described in the
/// [module docs](self); per-fold accounting is available from
/// [`Executor::last_fold_report`] and [`Coordinator::session_report`].
pub struct Coordinator {
    plan: Exec,
    config: DistConfig,
    conns: Mutex<Vec<WorkerConn>>,
    /// Set by an explicit [`Coordinator::shutdown`] (or drop). Tells an
    /// empty connection table apart from one emptied by attrition: the
    /// former is a caller error, the latter degrades to in-process folds.
    shut_down: AtomicBool,
    connect_retries: u32,
    last_report: Mutex<Option<FoldReport>>,
    session: Mutex<FoldReport>,
    spawned: Mutex<Option<SpawnedWorkers>>,
}

impl Coordinator {
    /// Connects to workers at `addrs` (e.g. `["127.0.0.1:7001",
    /// "10.0.0.2:7001"]`) with default [`DistConfig`] and handshakes with
    /// each. At least one worker is required.
    pub fn connect<A: AsRef<str>>(plan: &Exec, addrs: &[A]) -> Result<Self> {
        Self::connect_with(plan, addrs, DistConfig::default())
    }

    /// [`Coordinator::connect`] with explicit transport knobs: connect
    /// retry/backoff, socket deadlines, and the re-route budget.
    pub fn connect_with<A: AsRef<str>>(
        plan: &Exec,
        addrs: &[A],
        config: DistConfig,
    ) -> Result<Self> {
        if addrs.is_empty() {
            return Err(Error::InvalidParameter {
                name: "addrs",
                constraint: "a distributed reducer needs at least one worker",
            });
        }
        let mut conns = Vec::with_capacity(addrs.len());
        let mut retries = 0u32;
        for (index, addr) in addrs.iter().enumerate() {
            let (mut conn, r) = WorkerConn::connect(addr.as_ref(), &config)?;
            conn.index = index;
            conns.push(conn);
            retries += r;
        }
        Ok(Coordinator {
            plan: *plan,
            config,
            conns: Mutex::new(conns),
            shut_down: AtomicBool::new(false),
            connect_retries: retries,
            last_report: Mutex::new(None),
            session: Mutex::new(FoldReport::default()),
            spawned: Mutex::new(None),
        })
    }

    /// Spawns `n` local `--once` workers of `binary`, connects to them,
    /// and adopts the children so the coordinator's drop path shuts them
    /// down and reaps them (no orphaned processes even when a fold
    /// panics the calling thread later).
    pub fn connect_spawned(
        plan: &Exec,
        binary: &Path,
        n: usize,
        config: DistConfig,
    ) -> Result<Self> {
        let spawned = spawn_local_workers(binary, n)?;
        let coordinator = Self::connect_with(plan, &spawned.addrs, config)?;
        coordinator.adopt_workers(spawned);
        Ok(coordinator)
    }

    /// Takes ownership of spawned worker processes: on shutdown (or
    /// drop) they get the `Shutdown` frame first, then a grace period to
    /// exit cleanly, then a kill for stragglers. Replaces (and thereby
    /// immediately reaps) any previously adopted batch.
    pub fn adopt_workers(&self, workers: SpawnedWorkers) {
        *self.spawned.lock().unwrap_or_else(PoisonError::into_inner) = Some(workers);
    }

    /// Locks the connection table. Poisoning is survivable: the guarded
    /// state is only a list of socket handles, and a connection left
    /// mid-conversation by a panicking fold surfaces as a protocol error
    /// on its next use — so recover the guard instead of re-panicking.
    fn conns(&self) -> MutexGuard<'_, Vec<WorkerConn>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of connected workers. Shrinks when folds lose workers.
    pub fn workers(&self) -> usize {
        self.conns().len()
    }

    /// Session-cumulative failure accounting across every fold so far
    /// (see [`FoldReport::absorb`] for the aggregation rules).
    pub fn session_report(&self) -> FoldReport {
        self.session
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn finish_report(&self, conns: &mut [WorkerConn], report: FoldReport) {
        for conn in conns.iter_mut() {
            conn.flush_obs();
        }
        record_report(&report);
        self.session
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .absorb(&report);
        *self
            .last_report
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(report);
    }

    /// The shard assignment of each job for a stream of `size_hint`
    /// items: contiguous ranges when the size is known (one process per
    /// shard range), round-robin strides otherwise. Returns at most
    /// `min(workers, shards)` assignments — surplus workers stay idle
    /// rather than being sent empty no-op jobs over the wire (and double
    /// as first-choice replay targets when a job-holder dies).
    fn assignments(&self, size_hint: Option<u64>, workers: u64) -> Vec<ShardAssignment> {
        match size_hint {
            Some(n) => {
                let shards = n.div_ceil(SHARD_SIZE as u64);
                let jobs = workers.min(shards);
                // Evenly split contiguous ranges; the first `extra`
                // jobs take one extra shard.
                let base = shards.checked_div(jobs).unwrap_or(0);
                let extra = shards.checked_rem(jobs).unwrap_or(0);
                let mut first = 0u64;
                (0..jobs)
                    .map(|w| {
                        let len = base + u64::from(w < extra);
                        let range = ShardAssignment::Range {
                            first,
                            end: first + len,
                        };
                        first += len;
                        range
                    })
                    .collect()
            }
            None => (0..workers)
                .map(|offset| ShardAssignment::Stride {
                    offset,
                    stride: workers,
                })
                .collect(),
        }
    }

    /// Sends `Shutdown` to every worker and reaps any adopted spawned
    /// children (idempotent; also done on drop).
    pub fn shutdown(&self) {
        self.shut_down.store(true, Ordering::Release);
        Self::teardown(&mut self.conns());
        let spawned = self
            .spawned
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(mut spawned) = spawned {
            // The Shutdown frames are already on the wire; give `--once`
            // children a moment to exit on their own before killing.
            spawned.reap(Duration::from_millis(500));
        }
    }

    /// Best-effort `Shutdown` to every connection, then clears the table.
    fn teardown(conns: &mut Vec<WorkerConn>) {
        for conn in conns.iter_mut() {
            let _ = conn.send(&Frame::Shutdown);
            let _ = conn.flush();
        }
        conns.clear();
    }

    /// Drops the connections marked dead, keeping survivors (including
    /// job-refusing but transport-healthy ones) for later folds.
    fn drop_dead(conns: &mut Vec<WorkerConn>, alive: &[bool]) {
        let mut index = 0;
        conns.retain(|_| {
            let keep = alive.get(index).copied().unwrap_or(true);
            index += 1;
            keep
        });
    }

    /// Replays `replay.assignment` on one surviving worker: rewinds the
    /// source to the fold's start, re-streams only the owned shards, and
    /// merges the replacement partial. Returns the shard count replayed.
    fn replay_remote<S, St>(
        &self,
        conn: &mut WorkerConn,
        source: &mut S,
        position: &mut u64,
        replay: &Replay<'_, St>,
        acc: &mut St::Acc,
    ) -> std::result::Result<u64, ReplayFailure>
    where
        S: ReportSource<Item = St::Item>,
        St: Stage,
    {
        conn.send(&Frame::Job {
            stage_seed: replay.stage_seed,
            contract: replay.spec.contract,
            kind: replay.spec.kind.to_string(),
            payload: replay.spec.payload.clone(),
            shards: replay.assignment,
        })
        .map_err(ReplayFailure::Dead)?;
        rewind_to_start(source, position).map_err(ReplayFailure::Fatal)?;

        let shard_size = SHARD_SIZE as u64;
        let chunk_items = self.plan.resolved_chunk_items();
        let mut buf: Vec<St::Item> = Vec::with_capacity(chunk_items);
        let mut encoded = Vec::new();
        let mut counted = 0u64;
        let mut last_counted: Option<u64> = None;
        'stream: loop {
            buf.clear();
            loop {
                let want = chunk_items - buf.len();
                if want == 0 || source.fill(&mut buf, want).map_err(ReplayFailure::Fatal)? == 0 {
                    break;
                }
            }
            if buf.is_empty() {
                break;
            }
            let mut offset = 0usize;
            while offset < buf.len() {
                let abs = *position + offset as u64;
                let shard = abs / shard_size;
                let end = (((shard + 1) * shard_size - *position) as usize).min(buf.len());
                if replay.assignment.owns(shard) {
                    encoded.clear();
                    ((end - offset) as u32).put(&mut encoded);
                    for item in &buf[offset..end] {
                        item.put(&mut encoded);
                    }
                    conn.send_chunk(abs, &encoded)
                        .map_err(ReplayFailure::Dead)?;
                    if last_counted != Some(shard) {
                        counted += 1;
                        last_counted = Some(shard);
                    }
                }
                offset = end;
            }
            *position += buf.len() as u64;
            if let ShardAssignment::Range { end, .. } = replay.assignment {
                // Every shard this assignment can own has streamed; the
                // caller repositions the source afterwards.
                if *position >= end * shard_size {
                    break 'stream;
                }
            }
        }
        conn.send(&Frame::Flush)
            .and_then(|()| conn.flush())
            .map_err(ReplayFailure::Dead)?;
        match conn.receive() {
            Ok(Frame::Partial { state }) => {
                let mut partial = replay.stage.template();
                let mut reader = WireReader::new(&state);
                match partial.load(&mut reader).and_then(|()| reader.finish()) {
                    Ok(()) => {
                        replay
                            .stage
                            .merge(acc, &partial)
                            .map_err(ReplayFailure::Fatal)?;
                        Ok(counted)
                    }
                    Err(e) => Err(ReplayFailure::Refused(e)),
                }
            }
            Ok(Frame::Err { message }) => Err(ReplayFailure::Refused(Error::Source {
                message: format!("worker {} failed a replay: {message}", conn.peer),
            })),
            Ok(other) => Err(ReplayFailure::Dead(Error::protocol(format!(
                "collecting a replayed partial (worker {} sent {})",
                conn.peer,
                other.name()
            )))),
            Err(e) => Err(ReplayFailure::Dead(e)),
        }
    }

    /// Replays `replay.assignment` in-process from the rewound source —
    /// the last resort when no worker survives (or the re-route budget is
    /// spent). Mirrors the worker's fold exactly: fresh
    /// `shard_rng(stage_seed, shard)` at shard starts, carried RNG across
    /// chunk-boundary fragments. Returns the shard count replayed.
    fn replay_local<S, St>(
        &self,
        source: &mut S,
        position: &mut u64,
        replay: &Replay<'_, St>,
        acc: &mut St::Acc,
    ) -> Result<u64>
    where
        S: ReportSource<Item = St::Item>,
        St: Stage,
    {
        rewind_to_start(source, position)?;
        let shard_size = SHARD_SIZE as u64;
        let chunk_items = self.plan.resolved_chunk_items();
        let mut buf: Vec<St::Item> = Vec::with_capacity(chunk_items);
        let mut carry: Option<StdRng> = None;
        let mut counted = 0u64;
        let mut last_counted: Option<u64> = None;
        'stream: loop {
            buf.clear();
            loop {
                let want = chunk_items - buf.len();
                if want == 0 || source.fill(&mut buf, want)? == 0 {
                    break;
                }
            }
            if buf.is_empty() {
                break;
            }
            let mut offset = 0usize;
            while offset < buf.len() {
                let abs = *position + offset as u64;
                let shard = abs / shard_size;
                let shard_end = (shard + 1) * shard_size;
                let end = ((shard_end - *position) as usize).min(buf.len());
                if replay.assignment.owns(shard) {
                    let mut rng = if abs % shard_size == 0 {
                        shard_rng(replay.stage_seed, shard)
                    } else {
                        carry.take().ok_or_else(|| {
                            Error::protocol(format!(
                                "replaying shard {shard} locally (mid-shard fragment without \
                                 carried RNG state)"
                            ))
                        })?
                    };
                    replay.stage.fold(&mut rng, abs, &buf[offset..end], acc)?;
                    if *position + (end as u64) < shard_end {
                        carry = Some(rng);
                    }
                    if last_counted != Some(shard) {
                        counted += 1;
                        last_counted = Some(shard);
                    }
                }
                offset = end;
            }
            *position += buf.len() as u64;
            if let ShardAssignment::Range { end, .. } = replay.assignment {
                if *position >= end * shard_size {
                    break 'stream;
                }
            }
        }
        Ok(counted)
    }
}

/// Absorbs one fold's [`FoldReport`] into the metrics registry: the
/// per-fold event counts become `mcim_dist_*` counters, the state-like
/// fields (worker counts, session-wide connect retries) become gauges.
/// No wire traffic, no behavioral change — the snapshot simply carries
/// the same numbers `session_report` aggregates.
fn record_report(report: &FoldReport) {
    if !mcim_obs::enabled() {
        return;
    }
    let gauge = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    mcim_obs::counter_add("mcim_dist_folds_total", 1);
    mcim_obs::gauge_set("mcim_dist_workers", gauge(report.workers as u64));
    mcim_obs::gauge_set("mcim_dist_workers_used", gauge(report.workers_used as u64));
    mcim_obs::gauge_set(
        "mcim_dist_connect_retries",
        gauge(u64::from(report.connect_retries)),
    );
    mcim_obs::counter_add("mcim_dist_workers_lost_total", report.workers_lost as u64);
    mcim_obs::counter_add("mcim_dist_worker_errors_total", report.worker_errors as u64);
    mcim_obs::counter_add("mcim_dist_reroutes_total", u64::from(report.reroutes));
    mcim_obs::counter_add("mcim_dist_rerouted_shards_total", report.rerouted_shards);
    mcim_obs::counter_add("mcim_dist_local_shards_total", report.local_shards);
    mcim_obs::counter_add(
        "mcim_dist_local_fallbacks_total",
        u64::from(report.local_fallback),
    );
}

/// Rewinds `source` back to the fold's start position (`*position` items
/// ago). `Ok(false)` mid-recovery means the source changed its answer
/// between calls — fail the fold rather than replay from a wrong offset.
fn rewind_to_start<S: ReportSource>(source: &mut S, position: &mut u64) -> Result<()> {
    if *position == 0 {
        return Ok(());
    }
    if !source.rewind(*position)? {
        return Err(Error::unrecoverable(
            "replaying shards (the source stopped supporting rewind mid-recovery)",
            Error::protocol("rewind support changed between calls"),
        ));
    }
    *position = 0;
    Ok(())
}

/// Finds which assignment owns `shard`, if any.
fn owner_of(assignments: &[ShardAssignment], shard: u64) -> Option<usize> {
    assignments.iter().position(|a| a.owns(shard))
}

/// Records a lost (transport-dead) job holder: the connection is gone and
/// its assignment joins the replay queue.
fn mark_lost(
    i: usize,
    e: Error,
    alive: &mut [bool],
    assignments: &[ShardAssignment],
    pending: &mut Vec<ShardAssignment>,
    report: &mut FoldReport,
    first_failure: &mut Option<Error>,
) {
    if alive[i] {
        alive[i] = false;
        report.workers_lost += 1;
        if let Some(&assignment) = assignments.get(i) {
            pending.push(assignment);
        }
    }
    first_failure.get_or_insert(e);
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Executor for Coordinator {
    fn plan(&self) -> &Exec {
        &self.plan
    }

    fn fold<S, St>(&self, source: &mut S, stage_seed: u64, stage: &St) -> Result<St::Acc>
    where
        S: ReportSource<Item = St::Item>,
        St: Stage,
    {
        self.plan.validate_contract()?;
        let Some(spec) = stage.spec() else {
            // No wire form — run the stage locally. The shard contract
            // makes this bit-identical, just not remote.
            return InProcess::new(&self.plan).fold(source, stage_seed, stage);
        };

        let mut conns = self.conns();
        if conns.is_empty() {
            if self.shut_down.load(Ordering::Acquire) {
                return Err(Error::protocol(
                    "starting a job (coordinator already shut down)",
                ));
            }
            // Every worker was lost to earlier folds. Keep multi-stage
            // pipelines alive by degrading to in-process execution — the
            // report says so, the result does not change.
            let report = FoldReport {
                connect_retries: self.connect_retries,
                local_fallback: true,
                ..FoldReport::default()
            };
            let acc = InProcess::new(&self.plan).fold(source, stage_seed, stage)?;
            self.finish_report(&mut conns, report);
            return Ok(acc);
        }

        let workers = conns.len();
        let mut report = FoldReport {
            workers,
            connect_retries: self.connect_retries,
            ..FoldReport::default()
        };
        let assignments = self.assignments(source.size_hint(), workers as u64);
        let njobs = assignments.len();
        let mut alive = vec![true; workers];
        // Workers that cleanly failed a job this fold: their sockets are
        // synchronized (they drained to Flush and replied), but handing
        // them the same shards again would fail again — excluded as
        // replay targets until the next fold.
        let mut tainted = vec![false; workers];
        let mut pending: Vec<ShardAssignment> = Vec::new();
        let mut first_failure: Option<Error> = None;

        for (i, &shards) in assignments.iter().enumerate() {
            let sent = conns[i].send(&Frame::Job {
                stage_seed,
                contract: spec.contract,
                kind: spec.kind.to_string(),
                payload: spec.payload.clone(),
                shards,
            });
            if let Err(e) = sent {
                mark_lost(
                    i,
                    e,
                    &mut alive,
                    &assignments,
                    &mut pending,
                    &mut report,
                    &mut first_failure,
                );
            }
        }

        // Stream the source out in shard-aligned runs: consecutive items
        // that land in one worker's shards travel as one Chunk frame.
        // Sends to workers already marked dead are skipped — their items
        // are still consumed (the position accounting must match the
        // unfailed run), and their shards are already queued for replay.
        let shard_size = SHARD_SIZE as u64;
        let chunk_items = self.plan.resolved_chunk_items();
        let mut buf: Vec<St::Item> = Vec::with_capacity(chunk_items);
        let mut encoded = Vec::new();
        let mut consumed = 0u64;
        let mut source_failure: Option<Error> = None;
        'stream: loop {
            buf.clear();
            loop {
                let want = chunk_items - buf.len();
                if want == 0 {
                    break;
                }
                match source.fill(&mut buf, want) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e) => {
                        source_failure = Some(e);
                        break 'stream;
                    }
                }
            }
            if buf.is_empty() {
                break;
            }
            let mut offset = 0usize;
            while offset < buf.len() {
                let start_abs = consumed + offset as u64;
                let Some(owner) = owner_of(&assignments, start_abs / shard_size) else {
                    source_failure = Some(Error::protocol(format!(
                        "routing shard {} (the source yielded more items than its size_hint \
                         declared)",
                        start_abs / shard_size
                    )));
                    break 'stream;
                };
                // Extend the run across consecutive shards with the same
                // owner (always whole shards except at the buffer edges).
                let mut end = offset;
                loop {
                    let shard = (consumed + end as u64) / shard_size;
                    if owner_of(&assignments, shard) != Some(owner) {
                        break;
                    }
                    let shard_end = ((shard + 1) * shard_size - consumed) as usize;
                    end = shard_end.min(buf.len());
                    if end == buf.len() {
                        break;
                    }
                }
                if alive[owner] {
                    encoded.clear();
                    ((end - offset) as u32).put(&mut encoded);
                    for item in &buf[offset..end] {
                        item.put(&mut encoded);
                    }
                    // Hot path: the chunk payload goes straight into the
                    // buffered socket writer, no owned `Frame` round-trip.
                    if let Err(e) = conns[owner].send_chunk(start_abs, &encoded) {
                        mark_lost(
                            owner,
                            e,
                            &mut alive,
                            &assignments,
                            &mut pending,
                            &mut report,
                            &mut first_failure,
                        );
                    }
                }
                offset = end;
            }
            consumed += buf.len() as u64;
        }
        if let Some(e) = source_failure {
            // The *source* failed mid-stream: every in-flight job is
            // unfinishable and no connection's framing can be trusted by
            // a later fold. Tear the session down.
            Self::teardown(&mut conns);
            self.finish_report(&mut conns, report);
            return Err(e);
        }

        for i in 0..njobs {
            if !alive[i] {
                continue;
            }
            if let Err(e) = conns[i].send(&Frame::Flush).and_then(|()| conns[i].flush()) {
                mark_lost(
                    i,
                    e,
                    &mut alive,
                    &assignments,
                    &mut pending,
                    &mut report,
                    &mut first_failure,
                );
            }
        }

        // Collect every live job's reply before acting on any failure:
        // each job owes exactly one Partial/Err per connection, so a
        // worker's error must not leave the other workers' replies queued
        // (a later fold would read them as its own).
        let replies: Vec<Option<Result<Frame>>> = (0..njobs)
            .map(|i| alive[i].then(|| conns[i].receive()))
            .collect();
        let mut acc = stage.template();
        for (i, reply) in replies.into_iter().enumerate() {
            let Some(reply) = reply else { continue };
            match reply {
                Ok(Frame::Partial { state }) => {
                    let mut partial = stage.template();
                    let mut reader = WireReader::new(&state);
                    match partial.load(&mut reader).and_then(|()| reader.finish()) {
                        Ok(()) => {
                            // A merge failure is a local logic error, not
                            // a worker failure: `acc` may be half-mutated,
                            // so replaying cannot fix it. Every reply is
                            // drained, so the session stays usable.
                            if let Err(e) = stage.merge(&mut acc, &partial) {
                                Self::drop_dead(&mut conns, &alive);
                                self.finish_report(&mut conns, report);
                                return Err(e);
                            }
                            report.workers_used += 1;
                        }
                        Err(e) => {
                            // Undecodable partial in a well-framed reply:
                            // the socket is synchronized, the payload is
                            // not trustworthy. Replay elsewhere.
                            tainted[i] = true;
                            report.worker_errors += 1;
                            pending.push(assignments[i]);
                            first_failure.get_or_insert(e);
                        }
                    }
                }
                Ok(Frame::Err { message }) => {
                    tainted[i] = true;
                    report.worker_errors += 1;
                    pending.push(assignments[i]);
                    first_failure.get_or_insert(Error::Source {
                        message: format!("worker {} failed: {message}", conns[i].peer),
                    });
                }
                Ok(other) => {
                    let e = Error::protocol(format!(
                        "collecting partials (worker {} sent {})",
                        conns[i].peer,
                        other.name()
                    ));
                    mark_lost(
                        i,
                        e,
                        &mut alive,
                        &assignments,
                        &mut pending,
                        &mut report,
                        &mut first_failure,
                    );
                }
                Err(e) => {
                    mark_lost(
                        i,
                        e,
                        &mut alive,
                        &assignments,
                        &mut pending,
                        &mut report,
                        &mut first_failure,
                    );
                }
            }
        }

        if !pending.is_empty() {
            // Recovery. Rewind the source to the fold's start, replay
            // each lost assignment on a surviving worker (idle workers
            // first-class among them), or in-process as the last resort.
            match source.rewind(consumed) {
                Ok(true) => {}
                Ok(false) => {
                    Self::drop_dead(&mut conns, &alive);
                    self.finish_report(&mut conns, report);
                    let cause = first_failure.take().unwrap_or_else(|| {
                        Error::protocol("recovering a fold (failure recorded without a cause)")
                    });
                    return Err(Error::unrecoverable(
                        format!(
                            "{} shard assignment(s) were lost and the source cannot rewind",
                            pending.len()
                        ),
                        cause,
                    ));
                }
                Err(e) => {
                    Self::drop_dead(&mut conns, &alive);
                    self.finish_report(&mut conns, report);
                    return Err(e);
                }
            }
            let mut position = 0u64;
            let mut rr = 0usize;
            while let Some(assignment) = pending.pop() {
                let replay = Replay {
                    stage_seed,
                    spec: &spec,
                    stage,
                    assignment,
                };
                let target = if report.reroutes < self.config.max_reroutes {
                    (0..workers)
                        .map(|k| (rr + k) % workers)
                        .find(|&i| alive[i] && !tainted[i])
                } else {
                    None
                };
                match target {
                    Some(t) => {
                        rr = (t + 1) % workers;
                        report.reroutes += 1;
                        match self.replay_remote(
                            &mut conns[t],
                            source,
                            &mut position,
                            &replay,
                            &mut acc,
                        ) {
                            Ok(shards) => report.rerouted_shards += shards,
                            Err(ReplayFailure::Dead(e)) => {
                                alive[t] = false;
                                report.workers_lost += 1;
                                pending.push(assignment);
                                first_failure.get_or_insert(e);
                            }
                            Err(ReplayFailure::Refused(e)) => {
                                tainted[t] = true;
                                report.worker_errors += 1;
                                pending.push(assignment);
                                first_failure.get_or_insert(e);
                            }
                            Err(ReplayFailure::Fatal(e)) => {
                                Self::teardown(&mut conns);
                                self.finish_report(&mut conns, report);
                                return Err(e);
                            }
                        }
                    }
                    None => {
                        report.local_fallback = true;
                        match self.replay_local(source, &mut position, &replay, &mut acc) {
                            Ok(shards) => report.local_shards += shards,
                            Err(e) => {
                                Self::drop_dead(&mut conns, &alive);
                                self.finish_report(&mut conns, report);
                                return Err(e);
                            }
                        }
                    }
                }
            }
            // Replays may stop early (a Range's last shard streamed);
            // leave the source exactly where the primary pass did — the
            // fold's contract is to consume precisely its items, and
            // round-based callers carve views that rely on it.
            while position < consumed {
                buf.clear();
                let want =
                    chunk_items.min(usize::try_from(consumed - position).unwrap_or(chunk_items));
                match source.fill(&mut buf, want) {
                    Ok(0) => {
                        Self::drop_dead(&mut conns, &alive);
                        self.finish_report(&mut conns, report);
                        return Err(Error::Source {
                            message: format!(
                                "source yielded fewer items on replay ({position}) than on the \
                                 first pass ({consumed})"
                            ),
                        });
                    }
                    Ok(got) => position += got as u64,
                    Err(e) => {
                        Self::drop_dead(&mut conns, &alive);
                        self.finish_report(&mut conns, report);
                        return Err(e);
                    }
                }
            }
        }

        Self::drop_dead(&mut conns, &alive);
        self.finish_report(&mut conns, report);
        Ok(acc)
    }

    fn last_fold_report(&self) -> Option<FoldReport> {
        self.last_report
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}
