//! Spawning local worker processes — the `--dist-spawn` convenience and
//! the test harness's backbone.

use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use mcim_oracles::{Error, Result};

/// The line a worker prints on stdout once it is listening; the spawner
/// reads it to learn the ephemeral port.
pub const LISTENING_PREFIX: &str = "MCIM_WORKER_LISTENING ";

/// Handles to locally spawned worker processes. Dropping kills any child
/// that has not already exited (spawned workers run `--once`, so they
/// normally exit when their coordinator disconnects).
pub struct SpawnedWorkers {
    /// The workers' listen addresses, in spawn order.
    pub addrs: Vec<String>,
    children: Vec<Child>,
}

impl SpawnedWorkers {
    /// Number of spawned workers.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether no workers were spawned.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Reaps the children: waits up to `grace` for each to exit on its
    /// own (spawned workers run `--once`, so a coordinator's `Shutdown`
    /// frame ends them cleanly), then kills and waits any stragglers so
    /// nothing is orphaned. Idempotent; `Duration::ZERO` kills at once.
    pub fn reap(&mut self, grace: Duration) {
        const STEP: Duration = Duration::from_millis(10);
        // Grace is counted in fixed sleep steps rather than measured
        // (library code reads no clocks); the bound is approximate but
        // the outcome is not — stragglers are always killed below.
        let mut waited = Duration::ZERO;
        loop {
            self.children
                .retain_mut(|child| !matches!(child.try_wait(), Ok(Some(_))));
            if self.children.is_empty() || waited >= grace {
                break;
            }
            std::thread::sleep(STEP);
            waited += STEP;
        }
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.children.clear();
    }
}

impl Drop for SpawnedWorkers {
    fn drop(&mut self) {
        self.reap(Duration::ZERO);
    }
}

/// Spawns `n` single-connection worker processes of `binary` on loopback
/// ephemeral ports and waits until each announces its address.
///
/// `binary` must accept `worker --listen 127.0.0.1:0 --once` and print
/// [`LISTENING_PREFIX`]` <addr>` on stdout once bound — `mcim` does, and
/// so does any embedder calling [`crate::worker_main`].
pub fn spawn_local_workers(binary: &Path, n: usize) -> Result<SpawnedWorkers> {
    if n == 0 {
        return Err(Error::InvalidParameter {
            name: "workers",
            constraint: "spawn at least one worker",
        });
    }
    let mut spawned = SpawnedWorkers {
        addrs: Vec::with_capacity(n),
        children: Vec::with_capacity(n),
    };
    for _ in 0..n {
        let mut child = Command::new(binary)
            .args(["worker", "--listen", "127.0.0.1:0", "--once"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| Error::transport(format!("spawning {}", binary.display()), e))?;
        // mcim-lint: allow(panic-freedom, infallible: Stdio::piped() was set on this Command three lines up)
        let stdout = child.stdout.take().expect("stdout was piped");
        // Children are tracked before the blocking read, so Drop kills
        // them even if the announcement never comes.
        spawned.children.push(child);
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| Error::transport("reading a worker's listen address", e))?;
        let addr = line
            .strip_prefix(LISTENING_PREFIX)
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .ok_or_else(|| {
                Error::protocol(format!(
                    "reading a worker's listen address (got {line:?}, expected \
                     {LISTENING_PREFIX:?} + addr)"
                ))
            })?;
        spawned.addrs.push(addr.to_string());
    }
    mcim_obs::counter_add("mcim_dist_spawned_workers_total", n as u64);
    Ok(spawned)
}
