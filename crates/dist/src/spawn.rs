//! Spawning local worker processes — the `--dist-spawn` convenience and
//! the test harness's backbone.

use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};

use mcim_oracles::{Error, Result};

/// The line a worker prints on stdout once it is listening; the spawner
/// reads it to learn the ephemeral port.
pub const LISTENING_PREFIX: &str = "MCIM_WORKER_LISTENING ";

/// Handles to locally spawned worker processes. Dropping kills any child
/// that has not already exited (spawned workers run `--once`, so they
/// normally exit when their coordinator disconnects).
pub struct SpawnedWorkers {
    /// The workers' listen addresses, in spawn order.
    pub addrs: Vec<String>,
    children: Vec<Child>,
}

impl SpawnedWorkers {
    /// Number of spawned workers.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether no workers were spawned.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl Drop for SpawnedWorkers {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns `n` single-connection worker processes of `binary` on loopback
/// ephemeral ports and waits until each announces its address.
///
/// `binary` must accept `worker --listen 127.0.0.1:0 --once` and print
/// [`LISTENING_PREFIX`]` <addr>` on stdout once bound — `mcim` does, and
/// so does any embedder calling [`crate::worker_main`].
pub fn spawn_local_workers(binary: &Path, n: usize) -> Result<SpawnedWorkers> {
    if n == 0 {
        return Err(Error::InvalidParameter {
            name: "workers",
            constraint: "spawn at least one worker",
        });
    }
    let mut spawned = SpawnedWorkers {
        addrs: Vec::with_capacity(n),
        children: Vec::with_capacity(n),
    };
    for _ in 0..n {
        let mut child = Command::new(binary)
            .args(["worker", "--listen", "127.0.0.1:0", "--once"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| Error::transport(format!("spawning {}", binary.display()), e))?;
        // mcim-lint: allow(panic-freedom, infallible: Stdio::piped() was set on this Command three lines up)
        let stdout = child.stdout.take().expect("stdout was piped");
        // Children are tracked before the blocking read, so Drop kills
        // them even if the announcement never comes.
        spawned.children.push(child);
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| Error::transport("reading a worker's listen address", e))?;
        let addr = line
            .strip_prefix(LISTENING_PREFIX)
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .ok_or_else(|| {
                Error::protocol(format!(
                    "reading a worker's listen address (got {line:?}, expected \
                     {LISTENING_PREFIX:?} + addr)"
                ))
            })?;
        spawned.addrs.push(addr.to_string());
    }
    Ok(spawned)
}
