//! The worker process runtime: a connection loop that rebuilds fold
//! stages from their specs and replays the coordinator's shard ranges.
//!
//! A worker is deliberately dumb: it holds no pipeline logic of its own.
//! Every [`Job`](crate::proto::Frame::Job) frame names a stage kind; the
//! [`Registry`] maps the kind to a monomorphized job runner that decodes
//! the stage ([`StageDecode`]), folds the incoming item chunks with the
//! exact per-shard RNG streams the in-process executor would use
//! ([`shard_rng`]`(stage_seed, shard)`, carried state when a chunk
//! boundary splits a shard), and ships the accumulator's
//! [`WireState`](mcim_oracles::wire::WireState) back as one `Partial`
//! frame.
//!
//! If a stage fails mid-stream (out-of-domain item, mismatched report) the
//! worker keeps draining frames until `Flush` and answers with an `Err`
//! frame instead — it never stops reading while the coordinator is
//! writing, which is what keeps the socket deadlock-free.

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};

use rand::rngs::StdRng;

use mcim_oracles::exec::{RngContract, Stage, StageDecode};
use mcim_oracles::parallel::{shard_rng, SHARD_SIZE};
use mcim_oracles::wire::{Wire, WireReader, WireState};
use mcim_oracles::{Error, Result};

use crate::proto::{expect_frame, read_frame, write_frame, Frame, ShardAssignment};
use crate::PROTOCOL_VERSION;

/// The frame I/O a job runner sees (type-erased so runners stay plain
/// function pointers).
struct JobConn<'a> {
    reader: &'a mut dyn Read,
    writer: &'a mut dyn Write,
}

impl JobConn<'_> {
    fn read(&mut self) -> Result<Frame> {
        expect_frame(&mut self.reader)
    }

    fn write(&mut self, frame: &Frame) -> Result<()> {
        write_frame(&mut self.writer, frame)?;
        self.writer
            .flush()
            .map_err(|e| Error::transport("flushing a frame", e))
    }
}

type JobRunner = fn(&[u8], u64, ShardAssignment, &mut JobConn<'_>) -> Result<()>;

/// Maps stage kinds to monomorphized job runners.
///
/// [`crate::builtin_registry`] registers every distributable stage in the
/// workspace; embedders with custom stages add their own with
/// [`Registry::register`].
/// Keyed on a `BTreeMap` so diagnostics and any future capability
/// handshake enumerate kinds deterministically (`mcim-lint` forbids hash
/// iteration in wire paths).
#[derive(Default)]
pub struct Registry {
    runners: BTreeMap<&'static str, JobRunner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a stage type under its [`StageDecode::KIND`].
    ///
    /// # Panics
    /// Panics if the kind is already registered — duplicate kinds would
    /// silently shadow each other's folds.
    pub fn register<St: StageDecode>(&mut self) {
        let previous = self.runners.insert(St::KIND, run_job::<St>);
        assert!(previous.is_none(), "duplicate stage kind {:?}", St::KIND);
    }

    /// The registered kinds (in sorted order; for diagnostics).
    pub fn kinds(&self) -> Vec<&'static str> {
        self.runners.keys().copied().collect()
    }
}

/// Tracks the fold position inside one job: the next expected absolute
/// index while a shard is split across chunks, plus its carried RNG.
struct FoldCursor {
    carry: Option<(u64, StdRng)>,
}

impl FoldCursor {
    fn new() -> Self {
        FoldCursor { carry: None }
    }

    /// Folds one chunk's items, fragment by fragment, validating shard
    /// ownership and mid-shard continuity.
    fn fold_chunk<St: Stage>(
        &mut self,
        stage: &St,
        stage_seed: u64,
        shards: &ShardAssignment,
        first_abs: u64,
        items: &[St::Item],
        acc: &mut St::Acc,
    ) -> Result<()> {
        let shard_size = SHARD_SIZE as u64;
        let mut abs = first_abs;
        let mut offset = 0usize;
        while offset < items.len() {
            let shard = abs / shard_size;
            if !shards.owns(shard) {
                return Err(Error::protocol(format!(
                    "folding a chunk (shard {shard} routed to a worker that does not own it)"
                )));
            }
            let shard_end = (shard + 1) * shard_size;
            let take = ((shard_end - abs) as usize).min(items.len() - offset);
            let mut rng = if abs % shard_size == 0 {
                // Fresh shard; any previous shard must have been completed.
                if self.carry.is_some() {
                    return Err(Error::protocol(format!(
                        "folding a chunk (shard {shard} started while the previous shard was \
                         incomplete)"
                    )));
                }
                shard_rng(stage_seed, shard)
            } else {
                match self.carry.take() {
                    Some((expected, rng)) if expected == abs => rng,
                    Some((expected, _)) => {
                        return Err(Error::protocol(format!(
                            "folding a chunk (expected continuation at item {expected}, got \
                             {abs})"
                        )))
                    }
                    None => {
                        return Err(Error::protocol(format!(
                            "folding a chunk (item {abs} is mid-shard but no RNG state is \
                             carried)"
                        )))
                    }
                }
            };
            stage.fold(&mut rng, abs, &items[offset..offset + take], acc)?;
            abs += take as u64;
            offset += take;
            if abs < shard_end {
                self.carry = Some((abs, rng));
            }
        }
        Ok(())
    }
}

/// One job: decode the stage, fold chunks until `Flush`, reply with the
/// partial (or drain and reply with `Err`).
fn run_job<St: StageDecode>(
    payload: &[u8],
    stage_seed: u64,
    shards: ShardAssignment,
    conn: &mut JobConn<'_>,
) -> Result<()> {
    let stage_err = (|| {
        let mut reader = WireReader::new(payload);
        let stage = St::decode(&mut reader)?;
        reader.finish()?;
        Ok(stage)
    })();
    let mut state = match stage_err {
        Ok(stage) => {
            let acc = stage.template();
            Ok((stage, acc))
        }
        Err(e) => Err(e),
    };
    let mut cursor = FoldCursor::new();
    loop {
        match conn.read()? {
            Frame::Chunk { first_abs, items } => {
                if let Ok((stage, acc)) = &mut state {
                    let outcome = (|| {
                        let mut reader = WireReader::new(&items);
                        let decoded = Vec::<St::Item>::take(&mut reader)?;
                        reader.finish()?;
                        cursor.fold_chunk(stage, stage_seed, &shards, first_abs, &decoded, acc)
                    })();
                    if let Err(e) = outcome {
                        // Keep draining (the coordinator is still
                        // writing); answer at Flush.
                        state = Err(e);
                    }
                }
            }
            Frame::Flush => {
                let reply = match &state {
                    Ok((_, acc)) => {
                        let mut bytes = Vec::new();
                        acc.save(&mut bytes);
                        Frame::Partial { state: bytes }
                    }
                    Err(e) => Frame::Err {
                        message: e.to_string(),
                    },
                };
                return conn.write(&reply);
            }
            other => {
                return Err(Error::protocol(format!(
                    "running a job (unexpected {} frame mid-stream)",
                    other.name()
                )))
            }
        }
    }
}

/// Drains a malformed job's stream (unknown stage kind) until `Flush`,
/// then reports the failure — the coordinator must not be left writing
/// into a closed socket.
fn drain_and_refuse(conn: &mut JobConn<'_>, message: String) -> Result<()> {
    loop {
        match conn.read()? {
            Frame::Chunk { .. } => {}
            Frame::Flush => return conn.write(&Frame::Err { message }),
            other => {
                return Err(Error::protocol(format!(
                    "refusing a job (unexpected {} frame mid-stream)",
                    other.name()
                )))
            }
        }
    }
}

/// A worker process's serving half: a [`Registry`] plus the connection
/// loop.
pub struct Worker {
    registry: Registry,
}

impl Worker {
    /// A worker over an explicit registry.
    pub fn new(registry: Registry) -> Self {
        Worker { registry }
    }

    /// Serves connections forever (the `mcim worker` default).
    pub fn serve(&self, listener: &TcpListener) -> Result<()> {
        loop {
            let (stream, peer) = listener
                .accept()
                .map_err(|e| Error::transport("accepting a coordinator connection", e))?;
            // One coordinator at a time; a protocol error on one
            // connection must not take the worker down for the next —
            // but the operator gets the evidence.
            if let Err(e) = self.serve_conn(stream) {
                // mcim-lint: allow(stdout-noise, serve() is the worker binary's operator-facing loop; stderr is its diagnostic channel)
                eprintln!("mcim worker: connection from {peer} failed: {e}");
            }
        }
    }

    /// Serves exactly one connection, then returns — the mode
    /// coordinator-spawned workers run in (`mcim worker --once`), so the
    /// child process exits when its coordinator disconnects.
    pub fn serve_once(&self, listener: &TcpListener) -> Result<()> {
        let (stream, _) = listener
            .accept()
            .map_err(|e| Error::transport("accepting a coordinator connection", e))?;
        self.serve_conn(stream)
    }

    /// Runs the frame loop on an accepted connection until the
    /// coordinator sends `Shutdown` or closes the socket.
    pub fn serve_conn(&self, stream: TcpStream) -> Result<()> {
        stream
            .set_nodelay(true)
            .map_err(|e| Error::transport("configuring a connection", e))?;
        let reader = stream
            .try_clone()
            .map_err(|e| Error::transport("cloning a connection handle", e))?;
        self.serve_io(reader, stream)
    }

    /// Runs the frame loop over arbitrary reader/writer halves — the
    /// transport-agnostic core of [`Worker::serve_conn`], also driven
    /// directly by the chaos harness over fault-injected streams
    /// ([`crate::proto::fault`]). Buffering is applied here; pass the raw
    /// halves.
    pub fn serve_io<R: Read, W: Write>(&self, reader: R, writer: W) -> Result<()> {
        let mut reader = BufReader::new(reader);
        let mut writer = BufWriter::new(writer);

        // Handshake: the coordinator leads with its version.
        match expect_frame(&mut reader)? {
            Frame::Hello { version } if version == PROTOCOL_VERSION => {}
            Frame::Hello { version } => {
                let refusal = Frame::Err {
                    message: format!(
                        "protocol version mismatch: worker speaks {PROTOCOL_VERSION}, \
                         coordinator {version}"
                    ),
                };
                let mut conn = JobConn {
                    reader: &mut reader,
                    writer: &mut writer,
                };
                conn.write(&refusal)?;
                return Err(Error::protocol(format!(
                    "handshaking (coordinator speaks protocol {version}, worker \
                     {PROTOCOL_VERSION})"
                )));
            }
            other => {
                return Err(Error::protocol(format!(
                    "handshaking (expected Hello, got {})",
                    other.name()
                )))
            }
        }
        {
            let mut conn = JobConn {
                reader: &mut reader,
                writer: &mut writer,
            };
            conn.write(&Frame::Hello {
                version: PROTOCOL_VERSION,
            })?;
        }

        loop {
            let frame = match read_frame(&mut reader)? {
                Some(frame) => frame,
                None => return Ok(()), // clean disconnect between jobs
            };
            match frame {
                Frame::Job {
                    stage_seed,
                    contract,
                    kind,
                    payload,
                    shards,
                } => {
                    shards.validate()?;
                    let mut conn = JobConn {
                        reader: &mut reader,
                        writer: &mut writer,
                    };
                    // Refuse cross-contract jobs before touching the
                    // registry: a stage folded under a different sampling
                    // contract would return plausible but wrong partials.
                    if contract != RngContract::CURRENT_VERSION {
                        drain_and_refuse(
                            &mut conn,
                            format!(
                                "RNG-contract mismatch: job declares v{contract}, worker \
                                 implements v{} — re-run the coordinator under contract \
                                 v{} (see the README section \"RNG contract\")",
                                RngContract::CURRENT_VERSION,
                                RngContract::CURRENT_VERSION,
                            ),
                        )?;
                        continue;
                    }
                    match self.registry.runners.get(kind.as_str()) {
                        Some(runner) => runner(&payload, stage_seed, shards, &mut conn)?,
                        None => drain_and_refuse(
                            &mut conn,
                            format!(
                                "unknown stage kind {kind:?} (worker knows: {:?})",
                                self.registry.kinds()
                            ),
                        )?,
                    }
                }
                Frame::Shutdown => return Ok(()),
                other => {
                    return Err(Error::protocol(format!(
                        "waiting for a job (unexpected {} frame)",
                        other.name()
                    )))
                }
            }
        }
    }
}
