//! The reducer's length-prefixed binary wire protocol.
//!
//! Every message is one **frame**: a little-endian `u32` length, a one-byte
//! tag, and the tag's body encoded with the [`mcim_oracles::wire`] codecs.
//! The length counts the tag plus body and is capped at [`MAX_FRAME`] on
//! both sides, so a corrupt or hostile peer can neither make the other
//! side allocate unboundedly nor stall it mid-message: truncated,
//! oversized and malformed frames all surface as
//! [`Error::Transport`](mcim_oracles::Error::Transport) before any bytes
//! reach an aggregator.
//!
//! ## Conversation shape
//!
//! ```text
//! coordinator                                worker
//!   Hello{version}            ─────────────▶
//!                             ◀─────────────  Hello{version}
//!   Job{seed, kind, payload,  ─────────────▶    (stage rebuilt from spec)
//!       shard assignment}
//!   Chunk{first_abs, items}   ─────────────▶    (fold, carry RNG mid-shard)
//!   Chunk…                    ─────────────▶
//!   Flush                     ─────────────▶
//!                             ◀─────────────  Partial{acc state} | Err{msg}
//!   Job…  (next stage, same socket)
//!   Shutdown                  ─────────────▶    (worker returns)
//! ```
//!
//! Workers never write while a stage is streaming — the only worker frames
//! are the handshake reply and the per-job `Partial`/`Err` after `Flush` —
//! so the socket carries strictly one direction of bulk traffic at a time
//! and the pair cannot deadlock on full TCP windows.
//!
//! ## Schema lock
//!
//! Every layout decision in this module — the [`Frame`] variants, the tag
//! bytes, [`PROTOCOL_VERSION`], [`MAX_FRAME`], and the `Wire` codecs the
//! bodies ride on — is fingerprinted into the workspace's
//! `wire-schema.lock` by `mcim-lint`. Editing any of them fails the lint
//! until the lock is regenerated (`cargo run -p mcim-lint --
//! --write-schema-lock`), and because this file is dist-reachable the
//! regeneration itself is refused unless [`PROTOCOL_VERSION`] is bumped
//! in the same change. See README "Static analysis" for the workflow.

use std::io::{Read, Write};

use mcim_oracles::wire::{Wire, WireReader};
use mcim_oracles::{Error, Result};

pub mod count;
pub mod fault;

/// Protocol version; bumped on any frame-layout change. Coordinator and
/// worker exchange it in `Hello` and refuse mismatches. Version 2 added
/// the RNG-contract field to `Job`, so a v1 coordinator (whose stages
/// sample under the retired split sequential/batch contract) is refused at
/// the handshake rather than silently producing divergent bits.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on one frame's tag+body bytes (64 MiB — comfortably above
/// the default ingestion chunk of 65 536 pairs, far below anything a
/// refusing allocator would mind).
pub const MAX_FRAME: u32 = 64 << 20;

/// Which absolute shards a worker owns for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAssignment {
    /// The contiguous range `[first, end)` — used for sized sources, where
    /// the coordinator can partition the shard count up front.
    Range {
        /// First owned shard.
        first: u64,
        /// One past the last owned shard.
        end: u64,
    },
    /// Every shard with `shard % stride == offset` — used for unsized
    /// sources, dealt round-robin as the stream arrives.
    Stride {
        /// This worker's residue class.
        offset: u64,
        /// Total worker count.
        stride: u64,
    },
}

impl ShardAssignment {
    /// Whether this assignment owns `shard`.
    pub fn owns(&self, shard: u64) -> bool {
        match *self {
            ShardAssignment::Range { first, end } => (first..end).contains(&shard),
            ShardAssignment::Stride { offset, stride } => shard % stride == offset,
        }
    }

    /// Fail-fast shape validation (a `Range` with `first > end` or a
    /// `Stride` with `stride == 0` means the peers disagree about the
    /// worker count).
    pub fn validate(&self) -> Result<()> {
        match *self {
            ShardAssignment::Range { first, end } if first > end => Err(Error::protocol(format!(
                "validating a shard assignment (range {first}..{end} is inverted)"
            ))),
            ShardAssignment::Stride { offset, stride } if stride == 0 || offset >= stride => {
                Err(Error::protocol(format!(
                    "validating a shard assignment (stride {stride} with offset {offset})"
                )))
            }
            _ => Ok(()),
        }
    }
}

impl Wire for ShardAssignment {
    fn put(&self, buf: &mut Vec<u8>) {
        match *self {
            ShardAssignment::Range { first, end } => {
                0u8.put(buf);
                first.put(buf);
                end.put(buf);
            }
            ShardAssignment::Stride { offset, stride } => {
                1u8.put(buf);
                offset.put(buf);
                stride.put(buf);
            }
        }
    }

    fn take(r: &mut WireReader<'_>) -> Result<Self> {
        let assignment = match u8::take(r)? {
            0 => ShardAssignment::Range {
                first: u64::take(r)?,
                end: u64::take(r)?,
            },
            1 => ShardAssignment::Stride {
                offset: u64::take(r)?,
                stride: u64::take(r)?,
            },
            tag => {
                return Err(Error::protocol(format!(
                    "decoding a shard assignment (unknown tag {tag})"
                )))
            }
        };
        assignment.validate()?;
        Ok(assignment)
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Version handshake, sent by the coordinator on connect and echoed by
    /// the worker.
    Hello {
        /// [`PROTOCOL_VERSION`] of the sender.
        version: u32,
    },
    /// Starts one fold job on the worker.
    Job {
        /// Base seed of the stage's per-shard RNG streams.
        stage_seed: u64,
        /// RNG-contract version the coordinator built the stage under
        /// (see [`RngContract`](mcim_oracles::exec::RngContract)). The
        /// worker refuses jobs from a different contract — a mismatch
        /// would merge partials sampled from incompatible RNG streams.
        contract: u32,
        /// Registry key of the stage implementation.
        kind: String,
        /// Encoded stage parameters (see
        /// [`StageSpec`](mcim_oracles::wire::StageSpec)).
        payload: Vec<u8>,
        /// The absolute shards this worker owns.
        shards: ShardAssignment,
    },
    /// A run of consecutive stream items for the current job, starting at
    /// absolute position `first_abs`. `items` is a `Wire`-encoded
    /// `Vec<Item>` of the job's item type.
    Chunk {
        /// Absolute stream index of the first item.
        first_abs: u64,
        /// Encoded items.
        items: Vec<u8>,
    },
    /// Ends the current job's stream; the worker answers with `Partial`
    /// or `Err`.
    Flush,
    /// The worker's serialized accumulator state for the finished job.
    Partial {
        /// Encoded [`WireState`](mcim_oracles::wire::WireState) bytes.
        state: Vec<u8>,
    },
    /// The worker failed the current job (after draining its stream).
    Err {
        /// Human-readable failure description.
        message: String,
    },
    /// Ends the session; the worker's connection loop returns.
    Shutdown,
}

const TAG_HELLO: u8 = 0;
const TAG_JOB: u8 = 1;
const TAG_CHUNK: u8 = 2;
const TAG_FLUSH: u8 = 3;
const TAG_PARTIAL: u8 = 4;
const TAG_ERR: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Job { .. } => TAG_JOB,
            Frame::Chunk { .. } => TAG_CHUNK,
            Frame::Flush => TAG_FLUSH,
            Frame::Partial { .. } => TAG_PARTIAL,
            Frame::Err { .. } => TAG_ERR,
            Frame::Shutdown => TAG_SHUTDOWN,
        }
    }

    /// Short frame name for protocol-error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Job { .. } => "Job",
            Frame::Chunk { .. } => "Chunk",
            Frame::Flush => "Flush",
            Frame::Partial { .. } => "Partial",
            Frame::Err { .. } => "Err",
            Frame::Shutdown => "Shutdown",
        }
    }

    fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Hello { version } => version.put(buf),
            Frame::Job {
                stage_seed,
                contract,
                kind,
                payload,
                shards,
            } => {
                stage_seed.put(buf);
                contract.put(buf);
                kind.put(buf);
                payload.put(buf);
                shards.put(buf);
            }
            Frame::Chunk { first_abs, items } => {
                first_abs.put(buf);
                items.put(buf);
            }
            Frame::Flush | Frame::Shutdown => {}
            Frame::Partial { state } => state.put(buf),
            Frame::Err { message } => message.put(buf),
        }
    }

    fn decode(tag: u8, r: &mut WireReader<'_>) -> Result<Frame> {
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                version: u32::take(r)?,
            },
            TAG_JOB => Frame::Job {
                stage_seed: u64::take(r)?,
                contract: u32::take(r)?,
                kind: String::take(r)?,
                payload: Vec::<u8>::take(r)?,
                shards: ShardAssignment::take(r)?,
            },
            TAG_CHUNK => Frame::Chunk {
                first_abs: u64::take(r)?,
                items: Vec::<u8>::take(r)?,
            },
            TAG_FLUSH => Frame::Flush,
            TAG_PARTIAL => Frame::Partial {
                state: Vec::<u8>::take(r)?,
            },
            TAG_ERR => Frame::Err {
                message: String::take(r)?,
            },
            TAG_SHUTDOWN => Frame::Shutdown,
            other => {
                return Err(Error::protocol(format!(
                    "decoding a frame (unknown tag {other})"
                )))
            }
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Writes one frame. The caller flushes any buffering writer before it
/// expects the peer to react.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    let mut body = vec![frame.tag()];
    frame.encode_body(&mut body);
    if body.len() as u64 > MAX_FRAME as u64 {
        return Err(Error::protocol(format!(
            "writing a {} frame ({} bytes exceeds the {MAX_FRAME}-byte cap)",
            frame.name(),
            body.len()
        )));
    }
    let ctx = || format!("writing a {} frame", frame.name());
    w.write_all(&(body.len() as u32).to_le_bytes())
        .map_err(|e| Error::transport(ctx(), e))?;
    w.write_all(&body).map_err(|e| Error::transport(ctx(), e))?;
    Ok(())
}

/// Writes a `Chunk` frame from a borrowed item payload — the streaming
/// hot path. Byte-identical on the wire to
/// `write_frame(w, &Frame::Chunk { first_abs, items: items.to_vec() })`,
/// but the payload goes straight from the caller's reused encode buffer
/// into the (buffered) writer: no owned `Frame`, no second copy, no
/// per-frame allocation.
pub fn write_chunk_frame(w: &mut impl Write, first_abs: u64, items: &[u8]) -> Result<()> {
    // tag + first_abs + u32 byte-length prefix + payload
    let body_len = 1 + 8 + 4 + items.len();
    if body_len as u64 > MAX_FRAME as u64 {
        return Err(Error::protocol(format!(
            "writing a Chunk frame ({body_len} bytes exceeds the {MAX_FRAME}-byte cap)"
        )));
    }
    let mut header = [0u8; 4 + 1 + 8 + 4];
    header[0..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    header[4] = TAG_CHUNK;
    header[5..13].copy_from_slice(&first_abs.to_le_bytes());
    header[13..17].copy_from_slice(&(items.len() as u32).to_le_bytes());
    let ctx = "writing a Chunk frame";
    w.write_all(&header).map_err(|e| Error::transport(ctx, e))?;
    w.write_all(items).map_err(|e| Error::transport(ctx, e))?;
    Ok(())
}

/// Reads one frame, or `None` on a clean end-of-stream at a frame
/// boundary (the peer closed the connection between messages).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>> {
    let mut len = [0u8; 4];
    // A clean close at a frame boundary yields zero bytes; anything
    // shorter than the length prefix afterwards is a truncated frame.
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::transport(
                    "reading a frame length",
                    std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed inside a length prefix",
                    ),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::transport("reading a frame length", e)),
        }
    }
    let len = u32::from_le_bytes(len);
    if len == 0 {
        return Err(Error::protocol("reading a frame (empty frame)"));
    }
    if len > MAX_FRAME {
        return Err(Error::protocol(format!(
            "reading a frame ({len} bytes exceeds the {MAX_FRAME}-byte cap)"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| Error::transport("reading a frame body", e))?;
    let mut reader = WireReader::new(&body[1..]);
    Frame::decode(body[0], &mut reader).map(Some)
}

/// [`read_frame`] where end-of-stream is a protocol error (used while a
/// job or handshake is in flight and the peer must still be there).
pub fn expect_frame(r: &mut impl Read) -> Result<Frame> {
    read_frame(r)?.ok_or_else(|| {
        Error::transport(
            "reading a frame",
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed the connection mid-conversation",
            ),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut cursor = &buf[..];
        let decoded = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(decoded, frame);
        assert!(cursor.is_empty(), "frame consumed exactly");
    }

    #[test]
    fn frames_round_trip() {
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
        });
        round_trip(Frame::Job {
            stage_seed: 0xDEAD_BEEF,
            contract: 2,
            kind: "fw/pts".into(),
            payload: vec![1, 2, 3],
            shards: ShardAssignment::Range { first: 2, end: 9 },
        });
        round_trip(Frame::Job {
            stage_seed: 1,
            contract: 1,
            kind: "pem/vp-round".into(),
            payload: Vec::new(),
            shards: ShardAssignment::Stride {
                offset: 1,
                stride: 4,
            },
        });
        round_trip(Frame::Chunk {
            first_abs: 123_456,
            items: vec![9; 100],
        });
        round_trip(Frame::Flush);
        round_trip(Frame::Partial {
            state: vec![0xAB; 17],
        });
        round_trip(Frame::Err {
            message: "bucket 7 out of domain".into(),
        });
        round_trip(Frame::Shutdown);
    }

    #[test]
    fn chunk_fast_path_is_byte_identical_to_write_frame() {
        let items: Vec<u8> = (0..200u8).collect();
        let mut slow = Vec::new();
        write_frame(
            &mut slow,
            &Frame::Chunk {
                first_abs: 0xABCD_EF01,
                items: items.clone(),
            },
        )
        .unwrap();
        let mut fast = Vec::new();
        write_chunk_frame(&mut fast, 0xABCD_EF01, &items).unwrap();
        assert_eq!(fast, slow);
        // And the cap applies to the fast path too.
        let mut sink = Vec::new();
        let huge = vec![0u8; MAX_FRAME as usize + 1];
        assert!(write_chunk_frame(&mut sink, 0, &huge).is_err());
        assert!(sink.is_empty());
    }

    #[test]
    fn clean_eof_is_none_and_mid_frame_eof_errors() {
        assert_eq!(read_frame(&mut &[][..]).unwrap(), None);

        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Flush).unwrap();
        // Truncate at every possible byte offset: all must error, never
        // panic and never decode.
        for cut in 1..buf.len() {
            let err = read_frame(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, mcim_oracles::Error::Transport { .. }),
                "cut={cut}: {err}"
            );
        }
        // expect_frame turns even the clean EOF into a transport error.
        assert!(expect_frame(&mut &[][..]).is_err());
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        // Writing: a frame whose body exceeds the cap never hits the wire.
        let huge = Frame::Chunk {
            first_abs: 0,
            items: vec![0; MAX_FRAME as usize + 1],
        };
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &huge).unwrap_err();
        assert!(
            matches!(err, mcim_oracles::Error::Transport { .. }),
            "{err}"
        );
        assert!(sink.is_empty(), "nothing written for an oversized frame");

        // Reading: a hostile length prefix is rejected before allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        wire.push(3);
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(
            matches!(err, mcim_oracles::Error::Transport { .. }),
            "{err}"
        );

        // Zero-length frames are likewise malformed.
        assert!(read_frame(&mut &0u32.to_le_bytes()[..]).is_err());
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        // Unknown tag.
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(99);
        assert!(read_frame(&mut &wire[..]).is_err());

        // Trailing garbage after a valid body.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Flush).unwrap();
        let len = 3u32; // claim 2 extra body bytes
        buf.splice(0..4, len.to_le_bytes());
        buf.extend_from_slice(&[0, 0]);
        assert!(read_frame(&mut &buf[..]).is_err());

        // Inverted range assignment.
        let mut body = vec![1u8]; // Job tag
        7u64.put(&mut body);
        2u32.put(&mut body); // contract
        "k".to_string().put(&mut body);
        Vec::<u8>::new().put(&mut body);
        body.push(0); // Range
        9u64.put(&mut body);
        2u64.put(&mut body);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        assert!(read_frame(&mut &wire[..]).is_err(), "inverted range");
    }

    #[test]
    fn assignments_own_their_shards() {
        let range = ShardAssignment::Range { first: 3, end: 6 };
        assert!(!range.owns(2) && range.owns(3) && range.owns(5) && !range.owns(6));
        let stride = ShardAssignment::Stride {
            offset: 1,
            stride: 3,
        };
        assert!(stride.owns(1) && stride.owns(4) && !stride.owns(0) && !stride.owns(5));
        assert!(ShardAssignment::Range { first: 1, end: 1 }
            .validate()
            .is_ok());
        assert!(ShardAssignment::Stride {
            offset: 3,
            stride: 3
        }
        .validate()
        .is_err());
    }
}
