//! Deterministic-seed roundtrip properties for the reducer's wire
//! protocol: every [`Frame`] variant and [`ShardAssignment`] shape must
//! survive **encode → decode → re-encode byte-identically**, and the
//! borrowed-payload chunk writer must stay byte-compatible with the owned
//! frame encoder.
//!
//! Byte (not just value) equality is the property the distributed
//! equivalence matrix leans on: a frame relayed or re-serialized by any
//! process must not drift.

use mcim_dist::proto::{expect_frame, read_frame, write_chunk_frame, write_frame};
use mcim_dist::{Frame, ShardAssignment, PROTOCOL_VERSION};
use mcim_oracles::wire::{Wire, WireReader};
use proptest::prelude::*;

/// Frame → bytes → frame → bytes; asserts value and byte equality and
/// that the reader stops exactly at the frame boundary.
fn frame_bytes_stable(frame: &Frame) {
    let mut first = Vec::new();
    write_frame(&mut first, frame).expect("encode");
    let mut cursor = &first[..];
    let decoded = read_frame(&mut cursor).expect("decode").expect("one frame");
    assert!(cursor.is_empty(), "frame consumed exactly");
    assert_eq!(&decoded, frame);
    let mut second = Vec::new();
    write_frame(&mut second, &decoded).expect("re-encode");
    assert_eq!(first, second, "re-encode drifted");
}

/// Valid `Range` assignment from two arbitrary draws.
fn range_of(a: u64, b: u64) -> ShardAssignment {
    ShardAssignment::Range {
        first: a.min(b),
        end: a.max(b),
    }
}

/// Valid `Stride` assignment from two arbitrary draws.
fn stride_of(offset: u64, stride: u64) -> ShardAssignment {
    let stride = stride.max(1);
    ShardAssignment::Stride {
        offset: offset % stride,
        stride,
    }
}

proptest! {
    /// Both shard-assignment shapes re-encode byte-identically.
    #[test]
    fn shard_assignment_roundtrip(a in any::<u64>(), b in any::<u64>()) {
        for assignment in [range_of(a, b), stride_of(a, b)] {
            let mut first = Vec::new();
            assignment.put(&mut first);
            let mut r = WireReader::new(&first);
            let decoded = ShardAssignment::take(&mut r).expect("decode");
            r.finish().expect("exact consumption");
            prop_assert_eq!(decoded, assignment);
            let mut second = Vec::new();
            decoded.put(&mut second);
            prop_assert_eq!(first, second);
        }
    }

    /// Every frame variant roundtrips; bodies drawn from the full space
    /// (arbitrary payload bytes, lossily-repaired UTF-8 messages).
    #[test]
    fn every_frame_variant_roundtrips(
        version in any::<u32>(),
        stage_seed in any::<u64>(),
        contract in any::<u32>(),
        raw_kind in prop::collection::vec(any::<u8>(), 0..24),
        payload in prop::collection::vec(any::<u8>(), 0..80),
        first_abs in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        stride_not_range in any::<bool>(),
    ) {
        let kind = String::from_utf8_lossy(&raw_kind).into_owned();
        let shards = if stride_not_range { stride_of(a, b) } else { range_of(a, b) };
        frame_bytes_stable(&Frame::Hello { version });
        frame_bytes_stable(&Frame::Hello { version: PROTOCOL_VERSION });
        frame_bytes_stable(&Frame::Job {
            stage_seed,
            contract,
            kind: kind.clone(),
            payload: payload.clone(),
            shards,
        });
        frame_bytes_stable(&Frame::Chunk { first_abs, items: payload.clone() });
        frame_bytes_stable(&Frame::Flush);
        frame_bytes_stable(&Frame::Partial { state: payload });
        frame_bytes_stable(&Frame::Err { message: kind });
        frame_bytes_stable(&Frame::Shutdown);
    }

    /// The streaming chunk writer is byte-identical on the wire to the
    /// owned `Frame::Chunk` encoder — the hot path may never fork the
    /// protocol.
    #[test]
    fn chunk_fast_path_matches_owned_frame(
        first_abs in any::<u64>(),
        items in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut fast = Vec::new();
        write_chunk_frame(&mut fast, first_abs, &items).expect("fast path");
        let mut owned = Vec::new();
        write_frame(&mut owned, &Frame::Chunk { first_abs, items }).expect("owned path");
        prop_assert_eq!(fast, owned);
    }

    /// Back-to-back frames on one stream decode in order with no
    /// bleed-through, and the stream ends cleanly.
    #[test]
    fn frame_streams_decode_in_order(
        seeds in prop::collection::vec(any::<u64>(), 1..8),
        payload in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let frames: Vec<Frame> = seeds
            .iter()
            .map(|&s| Frame::Chunk { first_abs: s, items: payload.clone() })
            .chain([Frame::Flush, Frame::Shutdown])
            .collect();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).expect("encode");
        }
        let mut cursor = &buf[..];
        for f in &frames {
            prop_assert_eq!(&expect_frame(&mut cursor).expect("decode"), f);
        }
        prop_assert!(read_frame(&mut cursor).expect("clean EOF").is_none());
    }
}
