//! The chaos suite: workers that die, stall, truncate and lag at scripted
//! points of the wire conversation, and the property every test asserts —
//! the recovered fold is **bit-identical** to the unfailed run.
//!
//! Workers here are real `builtin_worker()` frame loops over real loopback
//! TCP, with [`fault::scripted`] wrapped around the worker's side of the
//! socket so faults fire at exact frame boundaries (see
//! `mcim_dist::proto::fault`). Frame indices used below, counted on the
//! worker side: reads complete Hello at 1 and Job at 2 (so the first
//! Chunk is *frame index 2*, the third frame); writes count the Hello
//! reply as frame 0 and the Partial as frame 1.
//!
//! Per the workspace determinism rules, no test measures time — stalls
//! are asserted through *behavior* (the fold recovers and the report says
//! a worker was lost), never through clocks.

use std::net::TcpListener;
use std::thread::JoinHandle;

use mcim_core::{Domains, EstimationResult, Framework, LabelItem};
use mcim_dist::proto::fault::{self, Fault, FaultPlan};
use mcim_dist::{builtin_worker, Coordinator, DistConfig};
use mcim_oracles::exec::{Exec, Executor};
use mcim_oracles::stream::SliceSource;
use mcim_oracles::Eps;
use mcim_topk::{Pem, PemConfig};

/// Workers on loopback TCP, each serving exactly one connection through a
/// scripted fault plan on its own thread. An empty plan is a healthy
/// worker.
struct ChaosWorkers {
    addrs: Vec<String>,
    handles: Vec<JoinHandle<()>>,
}

impl ChaosWorkers {
    fn start(plans: Vec<FaultPlan>) -> Self {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for plan in plans {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            addrs.push(listener.local_addr().expect("local addr").to_string());
            handles.push(std::thread::spawn(move || {
                let worker = builtin_worker();
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                let Ok((reader, writer)) = fault::scripted(stream, plan) else {
                    return;
                };
                // A faulted conversation ends in an I/O error by design;
                // the assertions live on the coordinator side.
                let _ = worker.serve_io(reader, writer);
            }));
        }
        ChaosWorkers { addrs, handles }
    }

    fn join(self) {
        for handle in self.handles {
            handle.join().expect("worker thread panicked");
        }
    }
}

fn pairs(n: usize, domains: Domains) -> Vec<LabelItem> {
    (0..n as u32)
        .map(|u| LabelItem::new(u % domains.classes(), (u * 13) % domains.items()))
        .collect()
}

fn assert_tables_identical(got: &EstimationResult, want: &EstimationResult, ctx: &str) {
    assert_eq!(got.comm, want.comm, "{ctx}: comm diverged");
    let domains = want.table.domains();
    let (classes, items) = (domains.classes(), domains.items());
    for label in 0..classes {
        for item in 0..items {
            assert!(
                got.table.get(label, item) == want.table.get(label, item),
                "{ctx}: diverged at ({label},{item})"
            );
        }
    }
}

/// Runs one PtsCp estimation through a chaos cluster and returns the
/// result plus the coordinator's fold report.
fn chaos_fold(
    plan: &Exec,
    config: DistConfig,
    plans: Vec<FaultPlan>,
    data: &[LabelItem],
    domains: Domains,
) -> (EstimationResult, mcim_oracles::exec::FoldReport) {
    let cluster = ChaosWorkers::start(plans);
    let coordinator = Coordinator::connect_with(plan, &cluster.addrs, config).expect("connect");
    let result = Framework::PtsCp { label_frac: 0.5 }
        .execute_on(
            &coordinator,
            Eps::new(2.0).expect("eps"),
            domains,
            SliceSource::new(data),
        )
        .expect("a chaos fold must recover");
    let report = coordinator.last_fold_report().expect("a report per fold");
    drop(coordinator);
    cluster.join();
    (result, report)
}

/// Reference setup shared by the matrix tests: 6 shards of data split
/// across 2 workers (worker 0 owns shards 0–2, worker 1 owns 3–5), one
/// 4096-item Chunk frame per shard.
fn matrix_fixture() -> (Exec, Domains, Vec<LabelItem>, EstimationResult) {
    let domains = Domains::new(3, 64).expect("domains");
    let data = pairs(5 * 4096 + 20, domains);
    let plan = Exec::seeded(42).threads(2).chunk_size(4096);
    let reference = Framework::PtsCp { label_frac: 0.5 }
        .execute_on(
            &plan.in_process(),
            Eps::new(2.0).expect("eps"),
            domains,
            SliceSource::new(&data),
        )
        .expect("reference");
    (plan, domains, data, reference)
}

/// THE acceptance property: a worker killed partway through a Chunk
/// frame's body loses its whole shard range, and the recovered fold is
/// bit-identical both to in-process execution and to an unfailed
/// distributed run.
#[test]
fn worker_killed_mid_chunk_is_bit_identical() {
    let (plan, domains, data, reference) = matrix_fixture();

    let (failed, report) = chaos_fold(
        &plan,
        DistConfig::default(),
        vec![
            FaultPlan::new().with(Fault::DieInsideFrame { index: 2 }),
            FaultPlan::new(),
        ],
        &data,
        domains,
    );
    assert_tables_identical(&failed, &reference, "mid-chunk kill vs in-process");
    assert_eq!(report.workers_lost, 1, "{report}");
    assert_eq!(report.reroutes, 1, "{report}");
    assert_eq!(report.rerouted_shards, 3, "{report}");
    assert!(!report.local_fallback, "{report}");
    assert!(report.degraded(), "{report}");

    // And against an unfailed single-worker distributed run: the survivor
    // plus re-route must equal the topology that never failed.
    let (unfailed, clean_report) = chaos_fold(
        &plan,
        DistConfig::default(),
        vec![FaultPlan::new()],
        &data,
        domains,
    );
    assert_tables_identical(&unfailed, &reference, "unfailed 1-worker vs in-process");
    assert!(!clean_report.degraded(), "{clean_report}");
    assert_tables_identical(&failed, &unfailed, "mid-chunk kill vs unfailed 1-worker");
}

/// A worker that dies right after the handshake (before ever seeing a
/// Job) is detected while streaming and its shards are re-routed.
#[test]
fn worker_killed_before_job_is_bit_identical() {
    let (plan, domains, data, reference) = matrix_fixture();
    let (result, report) = chaos_fold(
        &plan,
        DistConfig::default(),
        vec![
            FaultPlan::new().with(Fault::DieAfterReadingFrames(1)),
            FaultPlan::new(),
        ],
        &data,
        domains,
    );
    assert_tables_identical(&result, &reference, "pre-job kill");
    assert_eq!(report.workers_lost, 1, "{report}");
    assert_eq!(report.rerouted_shards, 3, "{report}");
}

/// A worker that folds everything but dies after reading Flush — its
/// Partial is never written (truncated at byte 0). The work is lost and
/// redone elsewhere; the result does not change.
#[test]
fn worker_killed_after_flush_is_bit_identical() {
    let (plan, domains, data, reference) = matrix_fixture();
    let (result, report) = chaos_fold(
        &plan,
        DistConfig::default(),
        vec![
            FaultPlan::new().with(Fault::TruncateWrittenFrame {
                index: 1,
                keep_bytes: 0,
            }),
            FaultPlan::new(),
        ],
        &data,
        domains,
    );
    assert_tables_identical(&result, &reference, "post-flush kill");
    assert_eq!(report.workers_lost, 1, "{report}");
    assert_eq!(report.rerouted_shards, 3, "{report}");
}

/// A Partial cut off mid-frame (9 bytes: the length prefix plus a sliver
/// of body) is an unreadable reply, not a crash: the shards are re-routed
/// and the result is identical.
#[test]
fn truncated_partial_frame_is_bit_identical() {
    let (plan, domains, data, reference) = matrix_fixture();
    let (result, report) = chaos_fold(
        &plan,
        DistConfig::default(),
        vec![
            FaultPlan::new().with(Fault::TruncateWrittenFrame {
                index: 1,
                keep_bytes: 9,
            }),
            FaultPlan::new(),
        ],
        &data,
        domains,
    );
    assert_tables_identical(&result, &reference, "truncated partial");
    assert_eq!(report.workers_lost, 1, "{report}");
    assert_eq!(report.rerouted_shards, 3, "{report}");
}

/// A worker that stops consuming input and just holds the socket open: a
/// hang, the failure mode timeouts exist for. With a read/write deadline
/// configured, the hung worker surfaces as an ordinary transport loss and
/// the fold recovers; without one it would block forever.
#[test]
fn stalled_worker_times_out_and_is_rerouted() {
    let (plan, domains, data, reference) = matrix_fixture();
    let config = DistConfig {
        io_timeout: Some(std::time::Duration::from_millis(150)),
        ..DistConfig::default()
    };
    let (result, report) = chaos_fold(
        &plan,
        config,
        vec![
            // Reads Hello + Job, then never consumes another byte. The
            // hold is long enough that the coordinator's 150ms deadline
            // always fires first, and bounded so the worker thread (and
            // the test) cannot leak forever.
            FaultPlan::new().with(Fault::StallAfterReadingFrames {
                frames: 2,
                hold_millis: 2_000,
            }),
            FaultPlan::new(),
        ],
        &data,
        domains,
    );
    assert_tables_identical(&result, &reference, "stalled worker");
    assert_eq!(report.workers_lost, 1, "{report}");
    assert_eq!(report.rerouted_shards, 3, "{report}");
}

/// A slow-but-alive worker (delayed reply, no deadline configured) is not
/// a failure at all: nothing is lost, nothing re-routed.
#[test]
fn slow_worker_without_deadline_is_not_a_failure() {
    let (plan, domains, data, reference) = matrix_fixture();
    let (result, report) = chaos_fold(
        &plan,
        DistConfig::default(),
        vec![
            FaultPlan::new().with(Fault::DelayWrittenFrames {
                from_index: 1,
                millis: 120,
            }),
            FaultPlan::new(),
        ],
        &data,
        domains,
    );
    assert_tables_identical(&result, &reference, "slow worker");
    assert!(!report.degraded(), "{report}");
}

/// Every worker dies: the fold falls back to replaying every lost shard
/// in-process, still bit-identical — and the next fold on the now
/// worker-less coordinator degrades cleanly to in-process execution
/// instead of erroring (attrition is not shutdown).
#[test]
fn losing_every_worker_falls_back_to_local_and_stays_usable() {
    let (plan, domains, data, reference) = matrix_fixture();
    let cluster = ChaosWorkers::start(vec![
        FaultPlan::new().with(Fault::DieInsideFrame { index: 2 }),
        FaultPlan::new().with(Fault::DieInsideFrame { index: 2 }),
    ]);
    let coordinator =
        Coordinator::connect_with(&plan, &cluster.addrs, DistConfig::default()).expect("connect");
    let eps = Eps::new(2.0).expect("eps");
    let result = Framework::PtsCp { label_frac: 0.5 }
        .execute_on(&coordinator, eps, domains, SliceSource::new(&data))
        .expect("total loss must still fold");
    assert_tables_identical(&result, &reference, "all workers dead");
    let report = coordinator.last_fold_report().expect("report");
    assert_eq!(report.workers_lost, 2, "{report}");
    assert!(report.local_fallback, "{report}");
    assert_eq!(
        report.local_shards, 6,
        "every shard replayed locally: {report}"
    );
    assert_eq!(coordinator.workers(), 0, "attrition emptied the pool");

    // The coordinator was never shut down; later folds keep working.
    let again = Framework::PtsCp { label_frac: 0.5 }
        .execute_on(&coordinator, eps, domains, SliceSource::new(&data))
        .expect("worker-less coordinator degrades to in-process");
    assert_tables_identical(&again, &reference, "fold after total attrition");
    let report = coordinator.last_fold_report().expect("report");
    assert!(report.local_fallback, "{report}");

    let session = coordinator.session_report();
    assert_eq!(session.workers_lost, 2, "{session}");
    assert!(session.local_fallback, "{session}");

    drop(coordinator);
    cluster.join();
}

/// A multi-round PEM mine that loses a worker in round one: the lost
/// round-1 shards are re-routed (exercising rewind through the `Take`
/// views each round carves from the source), the survivor serves the
/// remaining rounds alone, and the mined top-k is bit-identical.
#[test]
fn pem_mine_survives_worker_loss_mid_round() {
    let d = 128u32;
    let items: Vec<Option<u32>> = (0..20_000u32)
        .map(|u| {
            if u % 5 == 0 {
                None
            } else {
                Some((u * u) % (u % 7 + 1).pow(2) % d)
            }
        })
        .collect();
    let eps = Eps::new(4.0).expect("eps");
    let pem = Pem::new(d, PemConfig::new(4).with_validity()).expect("pem");
    let plan = Exec::seeded(9).threads(2).chunk_size(4096);

    let reference = pem
        .execute_on(&plan.in_process(), eps, 9, SliceSource::new(&items))
        .expect("reference");

    let cluster = ChaosWorkers::start(vec![
        FaultPlan::new().with(Fault::DieInsideFrame { index: 2 }),
        FaultPlan::new(),
    ]);
    let coordinator =
        Coordinator::connect_with(&plan, &cluster.addrs, DistConfig::default()).expect("connect");
    let mined = pem
        .execute_on(&coordinator, eps, 9, SliceSource::new(&items))
        .expect("mine through the loss");
    assert_eq!(mined.top, reference.top);
    assert_eq!(mined.comm, reference.comm);

    let session = coordinator.session_report();
    assert_eq!(session.workers_lost, 1, "{session}");
    assert!(session.rerouted_shards > 0, "{session}");
    assert_eq!(coordinator.workers(), 1, "the survivor serves the rest");

    drop(coordinator);
    cluster.join();
}
