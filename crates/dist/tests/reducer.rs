//! Socket-level integration tests of the distributed reducer: worker
//! threads serving real TCP connections, a `Coordinator` folding through
//! them, and the equivalence + failure properties the protocol promises.
//! (The full four-pipeline equivalence matrix against spawned worker
//! *processes* lives in `crates/cli/tests/dist_equivalence.rs`.)

use std::net::TcpListener;
use std::thread::JoinHandle;

use mcim_core::{Domains, Framework, LabelItem};
use mcim_dist::{builtin_worker, Coordinator};
use mcim_oracles::exec::{Exec, Executor, FnStage, Stage};
use mcim_oracles::stream::{ReportSource, SliceSource};
use mcim_oracles::wire::StageSpec;
use mcim_oracles::{Eps, Error, Result};
use mcim_topk::{Pem, PemConfig, PemEngine};
use rand::RngCore;

/// Workers on loopback TCP, each serving connections on its own thread
/// until its listener is dropped with the harness.
struct TestWorkers {
    addrs: Vec<String>,
    handles: Vec<JoinHandle<()>>,
}

impl TestWorkers {
    /// `conns_per_worker` lets one worker outlive several coordinators.
    fn start(n: usize, conns_per_worker: usize) -> Self {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            addrs.push(listener.local_addr().expect("local addr").to_string());
            handles.push(std::thread::spawn(move || {
                let worker = builtin_worker();
                for _ in 0..conns_per_worker {
                    if worker.serve_once(&listener).is_err() {
                        break;
                    }
                }
            }));
        }
        TestWorkers { addrs, handles }
    }

    fn join(self) {
        for handle in self.handles {
            handle.join().expect("worker thread panicked");
        }
    }
}

fn pairs(n: usize, domains: Domains) -> Vec<LabelItem> {
    (0..n as u32)
        .map(|u| LabelItem::new(u % domains.classes(), (u * 13) % domains.items()))
        .collect()
}

/// Frequency estimation over sockets is bit-identical to in-process
/// execution, across worker counts and chunk sizes, with connections
/// reused across several folds.
#[test]
fn framework_fold_is_bit_identical_over_sockets() {
    let domains = Domains::new(3, 64).unwrap();
    let data = pairs(3 * 4096 + 777, domains);
    let eps = Eps::new(2.0).unwrap();
    let fw = Framework::PtsCp { label_frac: 0.5 };

    for workers in [1, 2, 3] {
        for chunk in [4096 - 1, 3 * 4096] {
            let plan = Exec::seeded(42).threads(2).chunk_size(chunk);
            let reference = fw
                .execute_on(&plan.in_process(), eps, domains, SliceSource::new(&data))
                .unwrap();
            let cluster = TestWorkers::start(workers, 1);
            let coordinator = Coordinator::connect(&plan, &cluster.addrs).unwrap();
            assert_eq!(coordinator.workers(), workers);
            let distributed = fw
                .execute_on(&coordinator, eps, domains, SliceSource::new(&data))
                .unwrap();
            assert_eq!(distributed.comm, reference.comm, "w={workers} c={chunk}");
            for label in 0..domains.classes() {
                for item in 0..domains.items() {
                    assert!(
                        distributed.table.get(label, item) == reference.table.get(label, item),
                        "w={workers} c={chunk} diverged at ({label},{item})"
                    );
                }
            }
            drop(coordinator);
            cluster.join();
        }
    }
}

/// A whole multi-round PEM mine reuses the worker connections for every
/// round and still matches in-process execution bit for bit.
#[test]
fn pem_mine_reuses_connections_across_rounds() {
    let d = 128u32;
    let items: Vec<Option<u32>> = (0..20_000u32)
        .map(|u| {
            if u % 5 == 0 {
                None
            } else {
                Some((u * u) % (u % 7 + 1).pow(2) % d)
            }
        })
        .collect();
    let eps = Eps::new(4.0).unwrap();
    let pem = Pem::new(d, PemConfig::new(4).with_validity()).unwrap();
    let plan = Exec::seeded(9).threads(2);

    let reference = pem
        .execute_on(&plan.in_process(), eps, 9, SliceSource::new(&items))
        .unwrap();
    let cluster = TestWorkers::start(2, 1);
    let coordinator = Coordinator::connect(&plan, &cluster.addrs).unwrap();
    let distributed = pem
        .execute_on(&coordinator, eps, 9, SliceSource::new(&items))
        .unwrap();
    assert_eq!(distributed.top, reference.top);
    assert_eq!(distributed.comm, reference.comm);
    drop(coordinator);
    cluster.join();
}

/// An unsized source takes the round-robin stride assignment and still
/// matches the sized (contiguous-range) run bit for bit.
#[test]
fn unsized_sources_use_strides_and_stay_identical() {
    struct Unsized<'a> {
        inner: SliceSource<'a, Option<u32>>,
    }
    impl ReportSource for Unsized<'_> {
        type Item = Option<u32>;
        fn fill(&mut self, buf: &mut Vec<Option<u32>>, max: usize) -> Result<usize> {
            self.inner.fill(buf, max)
        }
        // size_hint: deliberately absent.
    }

    let items: Vec<Option<u32>> = (0..10_000u32).map(|u| Some(u % 32)).collect();
    let eps = Eps::new(3.0).unwrap();
    let plan = Exec::seeded(5).threads(2).chunk_size(4096 + 1);

    let mut reference_engine = PemEngine::new(32, PemConfig::new(3)).unwrap();
    let reference = reference_engine
        .execute_round_on(&plan.in_process(), eps, 77, SliceSource::new(&items))
        .unwrap();

    let cluster = TestWorkers::start(3, 1);
    let coordinator = Coordinator::connect(&plan, &cluster.addrs).unwrap();
    let mut engine = PemEngine::new(32, PemConfig::new(3)).unwrap();
    let stats = engine
        .execute_round_on(
            &coordinator,
            eps,
            77,
            Unsized {
                inner: SliceSource::new(&items),
            },
        )
        .unwrap();
    assert_eq!(stats, reference);
    assert_eq!(engine.candidates(), reference_engine.candidates());
    drop(coordinator);
    cluster.join();
}

/// Closure stages carry no spec; the coordinator transparently falls back
/// to in-process execution instead of failing.
#[test]
fn spec_less_stages_fall_back_to_in_process() {
    let items: Vec<u32> = (0..9000).collect();
    let stage = FnStage::new(
        (0u64, 0u64),
        |rng: &mut rand::rngs::StdRng, _abs, chunk: &[u32], acc: &mut (u64, u64)| {
            for &v in chunk {
                acc.0 += v as u64;
                acc.1 = acc.1.wrapping_add(rng.next_u64());
            }
            Ok(())
        },
        |a, b| {
            a.0 += b.0;
            a.1 = a.1.wrapping_add(b.1);
            Ok(())
        },
    );
    let plan = Exec::seeded(1).threads(2);
    let reference = plan
        .in_process()
        .fold(&mut SliceSource::new(&items), 3, &stage)
        .unwrap();

    let cluster = TestWorkers::start(1, 1);
    let coordinator = Coordinator::connect(&plan, &cluster.addrs).unwrap();
    let local = coordinator
        .fold(&mut SliceSource::new(&items), 3, &stage)
        .unwrap();
    assert_eq!(local, reference);
    drop(coordinator);
    cluster.join();
}

/// A stage kind the worker does not know is refused cleanly: the worker
/// drains the stream and reports the failure, the coordinator recovers
/// by replaying the refused shards in-process, and the connections stay
/// usable for the next (valid) job.
/// A stage whose kind no worker registry knows: every remote job it is
/// shipped in comes back as an `Err` reply.
struct AlienStage;
impl Stage for AlienStage {
    type Item = u32;
    type Acc = u64;
    fn template(&self) -> u64 {
        0
    }
    fn fold(
        &self,
        _rng: &mut rand::rngs::StdRng,
        _abs: u64,
        items: &[u32],
        acc: &mut u64,
    ) -> Result<()> {
        *acc += items.len() as u64;
        Ok(())
    }
    fn merge(&self, into: &mut u64, from: &u64) -> Result<()> {
        *into += *from;
        Ok(())
    }
    fn spec(&self) -> Option<StageSpec> {
        Some(StageSpec::new("test/alien", |_| {}))
    }
}

#[test]
fn unknown_stage_kind_is_refused_not_hung() {
    // Two workers: every worker refuses the alien kind, so the fold
    // degrades to the in-process replay path — and still succeeds,
    // because the refused shards are recomputable locally. The refusals
    // must not leave any queued reply behind to desynchronize the next
    // job (the coordinator drains every reply before recovering).
    let cluster = TestWorkers::start(2, 1);
    let plan = Exec::seeded(0);
    let coordinator = Coordinator::connect(&plan, &cluster.addrs).unwrap();
    let items: Vec<u32> = (0..5000).collect();
    let total = coordinator
        .fold(&mut SliceSource::new(&items), 1, &AlienStage)
        .unwrap();
    assert_eq!(total, 5000, "local replay folds every refused shard");
    let report = coordinator.last_fold_report().unwrap();
    assert!(report.degraded(), "{report}");
    assert_eq!(report.worker_errors, 2, "{report}");
    assert!(report.local_fallback, "{report}");
    assert_eq!(report.local_shards, 2, "{report}");
    assert_eq!(report.workers_lost, 0, "refusal is not death: {report}");

    // Same connections, valid job: still works.
    let domains = Domains::new(2, 16).unwrap();
    let data = pairs(2000, domains);
    let eps = Eps::new(1.0).unwrap();
    let reference = Framework::Ptj
        .execute_on(&plan.in_process(), eps, domains, SliceSource::new(&data))
        .unwrap();
    let distributed = Framework::Ptj
        .execute_on(&coordinator, eps, domains, SliceSource::new(&data))
        .unwrap();
    assert_eq!(distributed.comm, reference.comm);
    drop(coordinator);
    cluster.join();
}

/// When recovery needs a rewind the source cannot provide, the fold fails
/// with `Unrecoverable` wrapping the original worker failure — never with
/// silently partial results.
#[test]
fn non_rewindable_source_fails_unrecoverably() {
    struct NonRewind<'a> {
        inner: SliceSource<'a, u32>,
    }
    impl ReportSource for NonRewind<'_> {
        type Item = u32;
        fn fill(&mut self, buf: &mut Vec<u32>, max: usize) -> Result<usize> {
            self.inner.fill(buf, max)
        }
        fn size_hint(&self) -> Option<u64> {
            self.inner.size_hint()
        }
        // rewind: deliberately left at the `Ok(false)` default.
    }

    let cluster = TestWorkers::start(1, 1);
    let plan = Exec::seeded(0);
    let coordinator = Coordinator::connect(&plan, &cluster.addrs).unwrap();
    let items: Vec<u32> = (0..5000).collect();
    let err = coordinator
        .fold(
            &mut NonRewind {
                inner: SliceSource::new(&items),
            },
            1,
            &AlienStage,
        )
        .unwrap_err();
    assert!(matches!(err, Error::Unrecoverable { .. }), "{err}");
    let message = err.to_string();
    assert!(message.contains("cannot rewind"), "{message}");
    assert!(
        message.contains("unknown stage kind"),
        "the original failure is preserved as the cause: {message}"
    );
    drop(coordinator);
    cluster.join();
}

/// A deterministic stage failure (out-of-domain item) fails every replay
/// target the same way, so it ends as a clean error from the local replay
/// — not a hang, not a poisoned socket.
#[test]
fn worker_stage_errors_propagate() {
    let domains = Domains::new(2, 16).unwrap();
    let mut data = pairs(3000, domains);
    data[2999] = LabelItem::new(9, 3); // label outside c=2

    let cluster = TestWorkers::start(2, 1);
    let plan = Exec::seeded(4);
    let coordinator = Coordinator::connect(&plan, &cluster.addrs).unwrap();
    let err = Framework::Ptj
        .execute_on(
            &coordinator,
            Eps::new(1.0).unwrap(),
            domains,
            SliceSource::new(&data),
        )
        .unwrap_err();
    assert!(err.to_string().contains("outside domain"), "{err}");
    // The failure reproduced on every target: the primary worker, the
    // rerouted worker, and finally the in-process replay (whence the
    // typed error instead of a worker's stringified one).
    assert!(!matches!(err, Error::Source { .. }), "{err}");
    let report = coordinator.session_report();
    assert!(report.worker_errors >= 2, "{report}");

    // Every connection was drained (one reply per worker), so a valid
    // retry on the same coordinator produces correct results.
    data.pop();
    let plan2 = Exec::seeded(4);
    let reference = Framework::Ptj
        .execute_on(
            &plan2.in_process(),
            Eps::new(1.0).unwrap(),
            domains,
            SliceSource::new(&data),
        )
        .unwrap();
    let retried = Framework::Ptj
        .execute_on(
            &coordinator,
            Eps::new(1.0).unwrap(),
            domains,
            SliceSource::new(&data),
        )
        .unwrap();
    assert_eq!(retried.comm, reference.comm);
    for label in 0..2 {
        for item in 0..16 {
            assert!(retried.table.get(label, item) == reference.table.get(label, item));
        }
    }
    drop(coordinator);
    cluster.join();
}

/// Zero workers is an immediate configuration error.
#[test]
fn empty_worker_set_is_rejected() {
    let plan = Exec::seeded(0);
    let err = match Coordinator::connect(&plan, &Vec::<String>::new()) {
        Ok(_) => panic!("zero workers must be rejected"),
        Err(e) => e,
    };
    assert!(matches!(err, Error::InvalidParameter { .. }), "{err}");
}

/// More workers than shards: the surplus workers stay idle (no empty
/// no-op jobs on the wire) and the result is still identical.
#[test]
fn more_workers_than_shards_is_fine() {
    let domains = Domains::new(2, 32).unwrap();
    let data = pairs(1500, domains); // < one shard
    let eps = Eps::new(2.0).unwrap();
    let plan = Exec::seeded(8);
    let reference = Framework::Pts { label_frac: 0.5 }
        .execute_on(&plan.in_process(), eps, domains, SliceSource::new(&data))
        .unwrap();
    let cluster = TestWorkers::start(4, 1);
    let coordinator = Coordinator::connect(&plan, &cluster.addrs).unwrap();
    let distributed = Framework::Pts { label_frac: 0.5 }
        .execute_on(&coordinator, eps, domains, SliceSource::new(&data))
        .unwrap();
    assert_eq!(distributed.comm, reference.comm);
    for label in 0..2 {
        for item in 0..32 {
            assert!(distributed.table.get(label, item) == reference.table.get(label, item));
        }
    }
    let report = coordinator.last_fold_report().unwrap();
    assert_eq!(report.workers, 4, "{report}");
    assert_eq!(report.workers_used, 1, "one shard, one job: {report}");
    assert!(!report.degraded(), "{report}");
    drop(coordinator);
    cluster.join();
}
