//! Both forms of Algorithm 2's noise test must run end-to-end and agree in
//! the regime the paper discusses (imbalanced classes, few of them).

use mcim_core::{Domains, LabelItem};
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::SliceSource;
use mcim_oracles::Eps;
use mcim_topk::{execute, NoiseTest, TopKConfig, TopKMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn imbalanced_dataset(n: usize) -> (Domains, Vec<LabelItem>) {
    let domains = Domains::new(3, 64).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let data: Vec<LabelItem> = (0..n)
        .map(|u| {
            // 70% class 0, 25% class 1, 5% class 2; heavy head per class.
            let label = match u % 20 {
                0..=13 => 0,
                14..=18 => 1,
                _ => 2,
            };
            use rand::Rng;
            let item = (label * 20 + rng.random_range(0..4) + rng.random_range(0..4)) % 64;
            LabelItem::new(label, item)
        })
        .collect();
    (domains, data)
}

#[test]
fn both_noise_tests_mine_successfully() {
    let (domains, data) = imbalanced_dataset(90_000);
    let method = TopKMethod::PtsShuffled {
        validity: true,
        global: true,
        correlated: true,
    };
    for test in [NoiseTest::PaperRatio, NoiseTest::NoiseToValid] {
        let mut config = TopKConfig::new(3, Eps::new(6.0).unwrap());
        config.noise_test = test;
        let result = execute(
            method,
            config,
            domains,
            &Exec::sequential().seed(7),
            SliceSource::new(&data),
        )
        .unwrap();
        assert_eq!(result.per_class.len(), 3, "{test:?}");
        // The dominant class must be mined well under either test.
        let truth_top = 0u32; // class 0's head items live at 0..8
        assert!(
            result.per_class[0]
                .iter()
                .any(|&i| (truth_top..8).contains(&i)),
            "{test:?}: class 0 results {:?}",
            result.per_class[0]
        );
    }
}

#[test]
fn default_config_uses_noise_to_valid() {
    let config = TopKConfig::new(5, Eps::new(1.0).unwrap());
    assert_eq!(config.noise_test, NoiseTest::NoiseToValid);
}

#[test]
fn tests_agree_at_few_balanced_classes() {
    // c = 3, ε = 6 → p₁ large: neither test should trip, so results under
    // the same seed are identical (same CP/VP decisions ⇒ same RNG path).
    let (domains, data) = imbalanced_dataset(30_000);
    let method = TopKMethod::PtsShuffled {
        validity: true,
        global: true,
        correlated: true,
    };
    let run = |test: NoiseTest| {
        let mut config = TopKConfig::new(3, Eps::new(6.0).unwrap());
        config.noise_test = test;
        execute(
            method,
            config,
            domains,
            &Exec::sequential().seed(99),
            SliceSource::new(&data),
        )
        .unwrap()
        .per_class
    };
    assert_eq!(run(NoiseTest::PaperRatio), run(NoiseTest::NoiseToValid));
}
