//! Property-based tests for the top-k mining crate.

use mcim_core::{Domains, LabelItem};
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::SliceSource;
use mcim_oracles::Eps;
use mcim_topk::{
    execute, replay, shuffle::bucket_of, PemConfig, PemEngine, ShuffleEngine, TopKConfig,
    TopKMethod,
};
use proptest::prelude::*;

proptest! {
    /// Bucket assignment is a balanced partition for any (n, buckets).
    #[test]
    fn bucket_partition_is_balanced(n in 1usize..2_000, buckets in 1usize..64) {
        let buckets = buckets.min(n);
        let mut sizes = vec![0usize; buckets];
        for pos in 0..n {
            let b = bucket_of(pos, n, buckets);
            prop_assert!(b < buckets);
            sizes[b] += 1;
        }
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced: {sizes:?}");
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
    }

    /// Client-side replay always reconstructs the server's candidate set,
    /// for arbitrary seeds, bucket counts and survival patterns.
    #[test]
    fn replay_equals_server(
        seeds in prop::collection::vec(any::<u64>(), 1..5),
        domain in 8u32..300,
        buckets in 2usize..32,
        keep_frac in 0.2f64..0.9,
    ) {
        let initial: Vec<u32> = (0..domain).collect();
        let mut engine = ShuffleEngine::new(initial.clone());
        for &seed in &seeds {
            if engine.candidates().is_empty() {
                break;
            }
            let view = engine.begin_round(seed, buckets);
            let b = view.buckets();
            let keep = ((b as f64 * keep_frac) as usize).max(1);
            let scores: Vec<f64> = (0..b).map(|i| (seed.wrapping_add(i as u64) % 97) as f64).collect();
            engine.complete_round(&view, &scores, keep);
            prop_assert_eq!(replay(&initial, engine.rounds()), engine.candidates());
        }
    }

    /// PEM round counts shrink by one per round and candidates never leave
    /// the domain.
    #[test]
    fn pem_round_accounting(d in 2u32..1_000, k in 1usize..20, seed in any::<u64>()) {
        let mut engine = PemEngine::new(d, PemConfig::new(k)).unwrap();
        let mut remaining = engine.remaining_rounds();
        let mut round_seed = seed;
        prop_assert!(remaining >= 1);
        while remaining > 0 {
            let inputs: Vec<Option<u32>> = (0..50).map(|i| Some(i % d)).collect();
            engine
                .execute_round(
                    Eps::new(2.0).unwrap(),
                    &Exec::sequential().seed(round_seed),
                    SliceSource::new(&inputs),
                )
                .unwrap();
            round_seed = round_seed.wrapping_add(1);
            let now = engine.remaining_rounds();
            prop_assert_eq!(now, remaining - 1);
            remaining = now;
        }
        let top = engine.top_items().unwrap();
        prop_assert!(top.len() <= k);
        for &item in &top {
            prop_assert!(item < d);
        }
    }

    /// Every mining method returns per-class lists bounded by k with
    /// in-domain items, for arbitrary small datasets.
    #[test]
    fn mining_output_shape(
        seed in any::<u64>(),
        c in 2u32..5,
        d in 16u32..128,
        n in 200usize..1_000,
        k in 1usize..6,
    ) {
        let domains = Domains::new(c, d).unwrap();
        let data: Vec<LabelItem> = (0..n)
            .map(|u| LabelItem::new((u as u32) % c, (u as u32 * 7919) % d))
            .collect();
        let config = TopKConfig::new(k, Eps::new(2.0).unwrap());
        for (i, method) in [
            TopKMethod::Hec,
            TopKMethod::PtjPem { validity: true },
            TopKMethod::PtsShuffled { validity: true, global: true, correlated: true },
        ]
        .into_iter()
        .enumerate()
        {
            let plan = Exec::sequential().seed(seed.wrapping_add(i as u64));
            let result = execute(method, config, domains, &plan, SliceSource::new(&data)).unwrap();
            prop_assert_eq!(result.per_class.len(), c as usize);
            for items in &result.per_class {
                prop_assert!(items.len() <= k);
                let unique: std::collections::HashSet<_> = items.iter().collect();
                prop_assert_eq!(unique.len(), items.len(), "duplicates in {:?}", items);
                for &i in items {
                    prop_assert!(i < d);
                }
            }
        }
    }

    /// Total rounds formula is monotone: bigger domains need ≥ rounds.
    #[test]
    fn rounds_monotone_in_domain(k in 1usize..50) {
        let mut prev = 0;
        for d in [16usize, 64, 256, 1024, 4096, 16384] {
            let r = ShuffleEngine::total_rounds(d, k);
            prop_assert!(r >= prev);
            prev = r;
        }
    }
}
