//! End-to-end quality tests: the paper's headline utility orderings must
//! hold on the simulated datasets at moderate scale.

use mcim_datasets::{anime_like, jd_like, RealConfig};
use mcim_metrics::{f1_at_k, ncr_at_k};
use mcim_oracles::exec::Exec;
use mcim_oracles::stream::SliceSource;
use mcim_oracles::Eps;
use mcim_topk::{execute, TopKConfig, TopKMethod};

fn mean_f1(
    method: TopKMethod,
    config: TopKConfig,
    ds: &mcim_datasets::Dataset,
    truth: &[Vec<u32>],
    seed: u64,
) -> f64 {
    let result = execute(
        method,
        config,
        ds.domains,
        &Exec::sequential().seed(seed),
        SliceSource::new(&ds.pairs),
    )
    .unwrap();
    let scores: Vec<f64> = truth
        .iter()
        .enumerate()
        .map(|(c, t)| f1_at_k(&result.per_class[c], t))
        .collect();
    scores.iter().sum::<f64>() / scores.len() as f64
}

/// Fig. 7's qualitative orderings on the anime-like workload at ε = 8:
/// each family's optimized method beats its own baseline, and the
/// optimized PTS scheme finds most of the true top titles.
#[test]
fn optimized_methods_beat_their_baselines_on_anime() {
    let ds = anime_like(RealConfig {
        users: 200_000,
        items: 2048,
        seed: 42,
    });
    let k = 20;
    let truth = ds.true_top_k(k);
    let config = TopKConfig::new(k, Eps::new(8.0).unwrap());
    let trials = 3;
    let mut scores = std::collections::HashMap::new();
    for (label, method) in [
        (
            "pts_base",
            TopKMethod::PtsPem {
                validity: false,
                global: false,
            },
        ),
        (
            "pts_opt",
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true,
            },
        ),
        ("ptj_base", TopKMethod::PtjPem { validity: false }),
        ("ptj_opt", TopKMethod::PtjShuffled { validity: true }),
    ] {
        let mut total = 0.0;
        for t in 0..trials {
            total += mean_f1(method, config, &ds, &truth, 7 + t);
        }
        scores.insert(label, total / trials as f64);
    }
    assert!(
        scores["pts_opt"] > scores["pts_base"],
        "PTS optimized {} vs baseline {}",
        scores["pts_opt"],
        scores["pts_base"]
    );
    assert!(
        scores["ptj_opt"] > scores["ptj_base"] - 0.05,
        "PTJ optimized {} vs baseline {}",
        scores["ptj_opt"],
        scores["ptj_base"]
    );
    assert!(
        scores["pts_opt"] > 0.7,
        "optimized PTS should find most top titles: {}",
        scores["pts_opt"]
    );
}

/// On the imbalanced JD-like workload the HEC strawman is the worst method
/// (Fig. 7c): partitioned users mostly mine classes they don't belong to.
#[test]
fn hec_loses_on_imbalanced_jd() {
    let ds = jd_like(RealConfig {
        users: 200_000,
        items: 2048,
        seed: 46,
    });
    let k = 20;
    let truth = ds.true_top_k(k);
    let config = TopKConfig::new(k, Eps::new(4.0).unwrap());
    let trials = 3;
    let mut hec = 0.0;
    let mut opt = 0.0;
    for t in 0..trials {
        hec += mean_f1(TopKMethod::Hec, config, &ds, &truth, 50 + t);
        opt += mean_f1(
            TopKMethod::PtjShuffled { validity: true },
            config,
            &ds,
            &truth,
            60 + t,
        );
    }
    assert!(
        opt > hec,
        "optimized mining ({opt}) must beat the HEC strawman ({hec}) on JD"
    );
}

/// Fig. 8's phenomenon: on the JD-like imbalanced workload PTJ produces
/// nothing (or garbage) for the tiny classes while the optimized PTS
/// scheme still returns results there.
#[test]
fn tiny_classes_favor_pts_over_ptj() {
    let ds = jd_like(RealConfig {
        users: 150_000,
        items: 512,
        seed: 43,
    });
    let k = 10;
    let truth = ds.true_top_k(k);
    let config = TopKConfig::new(k, Eps::new(8.0).unwrap());

    let pts = execute(
        TopKMethod::PtsShuffled {
            validity: true,
            global: true,
            correlated: true,
        },
        config,
        ds.domains,
        &Exec::sequential().seed(11),
        SliceSource::new(&ds.pairs),
    )
    .unwrap();
    let ptj = execute(
        TopKMethod::PtjPem { validity: false },
        config,
        ds.domains,
        &Exec::sequential().seed(12),
        SliceSource::new(&ds.pairs),
    )
    .unwrap();

    // Classes 3 and 4 hold ~3.7% and ~2% of users. PTJ mines top k·c joint
    // pairs globally, so the tiny classes get few candidates; PTS routes
    // every user and benefits from the global item pool.
    let tiny = [3usize, 4];
    let pts_f1: f64 = tiny
        .iter()
        .map(|&c| f1_at_k(&pts.per_class[c], &truth[c]))
        .sum::<f64>()
        / 2.0;
    let ptj_f1: f64 = tiny
        .iter()
        .map(|&c| f1_at_k(&ptj.per_class[c], &truth[c]))
        .sum::<f64>()
        / 2.0;
    assert!(
        pts_f1 > ptj_f1,
        "tiny classes: PTS {pts_f1} should beat PTJ {ptj_f1}"
    );
}

/// The VP and shuffling ablations must not *hurt*: optimized PTJ ≥ vanilla
/// PTJ on average (Table III's direction), measured by NCR.
#[test]
fn ptj_optimizations_do_not_hurt() {
    let ds = anime_like(RealConfig {
        users: 100_000,
        items: 256,
        seed: 44,
    });
    let k = 10;
    let truth = ds.true_top_k(k);
    let config = TopKConfig::new(k, Eps::new(5.0).unwrap());
    // Average a few runs to damp run-to-run noise.
    let trials = 3;
    let mut base_total = 0.0;
    let mut opt_total = 0.0;
    for t in 0..trials {
        let base = execute(
            TopKMethod::PtjPem { validity: false },
            config,
            ds.domains,
            &Exec::sequential().seed(100 + t),
            SliceSource::new(&ds.pairs),
        )
        .unwrap();
        let opt = execute(
            TopKMethod::PtjShuffled { validity: true },
            config,
            ds.domains,
            &Exec::sequential().seed(110 + t),
            SliceSource::new(&ds.pairs),
        )
        .unwrap();
        for (c, tru) in truth.iter().enumerate() {
            base_total += ncr_at_k(&base.per_class[c], tru);
            opt_total += ncr_at_k(&opt.per_class[c], tru);
        }
    }
    assert!(
        opt_total >= base_total - 0.2,
        "optimized PTJ ({opt_total}) should not lose to baseline ({base_total})"
    );
}

/// Determinism: the same seed must reproduce identical mining output.
#[test]
fn mining_is_seed_deterministic() {
    let ds = anime_like(RealConfig {
        users: 30_000,
        items: 256,
        seed: 45,
    });
    let config = TopKConfig::new(5, Eps::new(4.0).unwrap());
    let run = || {
        execute(
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true,
            },
            config,
            ds.domains,
            &Exec::sequential().seed(555),
            SliceSource::new(&ds.pairs),
        )
        .unwrap()
        .per_class
    };
    assert_eq!(run(), run());
}
